// metrics_diff: compares two metrics JSON snapshots (obs/snapshot.h)
// and fails on quantile regressions beyond a threshold.
//
//   metrics_diff BASELINE.json CURRENT.json [--threshold PCT]
//                [--gate-counter NAME ...] [--require-series SUBSTR ...]
//
// Compared surfaces:
//  * log-histogram families present in BOTH snapshots: p50/p99/p999
//    must not grow by more than PCT percent (default 10). Instruments
//    with fewer than kMinCount observations on either side are skipped
//    (quantiles of a handful of samples are noise, not signal).
//  * counters named by --gate-counter (repeatable): any increase fails
//    — meant for drop/error counters that must stay where they were.
//  * --require-series SUBSTR (repeatable): the CURRENT snapshot must
//    contain at least one histogram or labeled-counter series whose
//    "family{k=v,...}" key contains SUBSTR — the presence gate for
//    dimensioned families a bench is expected to export (e.g. the
//    per-site "openloop.action_seconds{site=..." families). A missing
//    series is a regression, not a usage error.
//
// Exit codes: 0 = no regressions, 1 = regression found, 2 = usage or
// parse error. CI runs a self-diff (same file twice) as a smoke test:
// by construction it must exit 0 with zero regressions.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "obs/snapshot.h"

namespace {

constexpr uint64_t kMinCount = 16;

struct Options {
  std::string baseline_path;
  std::string current_path;
  double threshold_pct = 10.0;
  std::vector<std::string> gate_counters;
  std::vector<std::string> require_series;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json CURRENT.json [--threshold PCT] "
               "[--gate-counter NAME ...] [--require-series SUBSTR ...]\n",
               argv0);
  return 2;
}

std::string LabeledKey(const std::string& name,
                       const pdm::obs::LabelSet& labels) {
  std::string key = name;
  key += '{';
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ',';
    key += labels[i].first;
    key += '=';
    key += labels[i].second;
  }
  key += '}';
  return key;
}

/// "family{k=v,k=v}" — the identity a quantile series is matched by.
std::string SeriesKey(const pdm::obs::LogHistogramSnapshot& h) {
  return LabeledKey(h.name, h.labels);
}

double PctChange(double base, double cur) {
  if (base <= 0) return cur > 0 ? 100.0 : 0.0;
  return (cur - base) / base * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      opts.threshold_pct = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--gate-counter") == 0 && i + 1 < argc) {
      opts.gate_counters.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--require-series") == 0 && i + 1 < argc) {
      opts.require_series.emplace_back(argv[++i]);
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (positional.size() != 2) return Usage(argv[0]);
  opts.baseline_path = positional[0];
  opts.current_path = positional[1];

  pdm::Result<pdm::obs::MetricsSnapshot> baseline =
      pdm::obs::ReadSnapshotJsonFile(opts.baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "metrics_diff: %s: %s\n", opts.baseline_path.c_str(),
                 baseline.status().message().c_str());
    return 2;
  }
  pdm::Result<pdm::obs::MetricsSnapshot> current =
      pdm::obs::ReadSnapshotJsonFile(opts.current_path);
  if (!current.ok()) {
    std::fprintf(stderr, "metrics_diff: %s: %s\n", opts.current_path.c_str(),
                 current.status().message().c_str());
    return 2;
  }

  std::map<std::string, const pdm::obs::LogHistogramSnapshot*> base_series;
  for (const pdm::obs::LogHistogramSnapshot& h : baseline->log_histograms) {
    base_series[SeriesKey(h)] = &h;
  }

  size_t compared = 0;
  size_t regressions = 0;
  std::printf("%-64s %8s %12s %12s %8s\n", "series", "quantile", "baseline",
              "current", "change");
  for (const pdm::obs::LogHistogramSnapshot& cur : current->log_histograms) {
    const std::string key = SeriesKey(cur);
    auto it = base_series.find(key);
    if (it == base_series.end()) continue;  // new series: informational only
    const pdm::obs::LogHistogramSnapshot& base = *it->second;
    if (base.total_count < kMinCount || cur.total_count < kMinCount) continue;
    struct Q {
      const char* name;
      double base;
      double cur;
    } quantiles[] = {{"p50", base.p50, cur.p50},
                     {"p99", base.p99, cur.p99},
                     {"p999", base.p999, cur.p999}};
    for (const Q& q : quantiles) {
      ++compared;
      const double change = PctChange(q.base, q.cur);
      const bool regressed = change > opts.threshold_pct;
      if (regressed) ++regressions;
      std::printf("%-64s %8s %12.6f %12.6f %+7.1f%%%s\n", key.c_str(), q.name,
                  q.base, q.cur, change, regressed ? "  REGRESSION" : "");
    }
  }

  std::map<std::string, uint64_t> base_counters;
  for (const pdm::obs::CounterSnapshot& c : baseline->counters) {
    base_counters[c.name] = c.value;
  }
  for (const std::string& gate : opts.gate_counters) {
    uint64_t base_value = 0;
    auto it = base_counters.find(gate);
    if (it != base_counters.end()) base_value = it->second;
    uint64_t cur_value = 0;
    bool found = false;
    for (const pdm::obs::CounterSnapshot& c : current->counters) {
      if (c.name == gate) {
        cur_value = c.value;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "metrics_diff: gated counter '%s' missing from %s\n",
                   gate.c_str(), opts.current_path.c_str());
      return 2;
    }
    ++compared;
    const bool regressed = cur_value > base_value;
    if (regressed) ++regressions;
    std::printf("%-64s %8s %12llu %12llu %8s%s\n", gate.c_str(), "count",
                static_cast<unsigned long long>(base_value),
                static_cast<unsigned long long>(cur_value),
                cur_value > base_value ? "+" : "=",
                regressed ? "  REGRESSION" : "");
  }

  if (!opts.require_series.empty()) {
    std::vector<std::string> current_keys;
    for (const pdm::obs::LogHistogramSnapshot& h : current->log_histograms) {
      current_keys.push_back(SeriesKey(h));
    }
    for (const pdm::obs::LabeledCounterSnapshot& c :
         current->labeled_counters) {
      current_keys.push_back(LabeledKey(c.name, c.labels));
    }
    for (const std::string& required : opts.require_series) {
      ++compared;
      bool present = false;
      for (const std::string& key : current_keys) {
        if (key.find(required) != std::string::npos) {
          present = true;
          break;
        }
      }
      std::printf("%-64s %8s %12s %12s %8s%s\n", required.c_str(), "series",
                  "-", present ? "present" : "MISSING", "",
                  present ? "" : "  REGRESSION");
      if (!present) ++regressions;
    }
  }

  std::printf("\n%zu comparisons, %zu regressions (threshold %+.1f%%)\n",
              compared, regressions, opts.threshold_pct);
  return regressions == 0 ? 0 : 1;
}
