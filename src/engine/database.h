#ifndef PDM_ENGINE_DATABASE_H_
#define PDM_ENGINE_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/status.h"
#include "engine/plan_cache.h"
#include "exec/exec_context.h"
#include "exec/result_set.h"
#include "plan/binder.h"
#include "plan/functions.h"
#include "plan/view_registry.h"
#include "sql/ast.h"
#include "sql/fingerprint.h"

namespace pdm {

/// Combined engine configuration: binder/optimizer switches plus
/// execution switches. Mutable between statements; the ablation benches
/// flip these.
struct EngineOptions {
  BinderOptions binder;
  ExecOptions exec;
  /// Reuse bound plans across textual SELECTs that differ only in
  /// literal values (engine/plan_cache.h). Only the Execute() text path
  /// consults the cache; AST-path ExecuteStatement never does.
  bool use_plan_cache = true;
};

/// The embedded SQL engine: catalog + parser + binder + executor behind a
/// textual SQL interface. This is the "relational DBMS underneath the PDM
/// system" substrate; the simulated server (server/db_server.h) wraps one
/// Database instance.
class Database {
 public:
  /// A stored procedure: runs server-side with full engine access. Used
  /// to implement the paper's Section 6 outlook of installing
  /// "application-specific functionality ... at the database server".
  using Procedure = std::function<Status(
      Database& db, const std::vector<Value>& args, ResultSet* out)>;

  Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Sentinel snapshot: "resolve to the commit clock at statement
  /// start". Every entry point that does not name a snapshot reads the
  /// latest committed data — the pre-MVCC behaviour, statement by
  /// statement.
  static constexpr uint64_t kLatestSnapshot = kMaxCommitTs;

  /// RAII read-snapshot handle (DESIGN.md 5h). While live it pins every
  /// version visible at ts(): version GC defers rather than prune under
  /// an active snapshot. Acquire one per read unit (the engine does it
  /// per statement; the admission queue per wave) and drop it promptly —
  /// a long-lived snapshot blocks GC for the whole process.
  class Snapshot {
   public:
    Snapshot() = default;
    Snapshot(Snapshot&& other) noexcept
        : db_(std::exchange(other.db_, nullptr)), ts_(other.ts_) {}
    Snapshot& operator=(Snapshot&& other) noexcept {
      if (this != &other) {
        Release();
        db_ = std::exchange(other.db_, nullptr);
        ts_ = other.ts_;
      }
      return *this;
    }
    ~Snapshot() { Release(); }

    bool valid() const { return db_ != nullptr; }
    uint64_t ts() const { return ts_; }
    /// Unregisters early (idempotent).
    void Release();

   private:
    friend class Database;
    Snapshot(Database* db, uint64_t ts) : db_(db), ts_(ts) {}
    Database* db_ = nullptr;
    uint64_t ts_ = 0;
  };

  /// Registers a read snapshot at the current commit clock. Blocks only
  /// while a GC pass is compacting (a short, bounded window).
  Snapshot AcquireSnapshot();

  /// One committed DML statement, captured at the commit point for
  /// asynchronous replication (DESIGN.md 5l): the statement's canonical
  /// SQL text (sql::Statement::ToSql), its commit timestamp, and the
  /// rows it affected — the applier's divergence guard. Replaying the
  /// records in commit order against a byte-identical bootstrap yields
  /// a byte-identical replica: each record's predicates evaluate
  /// against exactly the state the primary committed it on.
  struct CommitRecord {
    uint64_t commit_ts = 0;
    std::string sql;
    size_t affected_rows = 0;
  };

  /// Enables commit-record capture (off by default: serial workloads
  /// without replicas should not pay ToSql per DML). Capture starts at
  /// the *current* commit clock: a replica must be bootstrapped to this
  /// state (same generator config) before applying records. Successful
  /// DML only — a statement that lost a first-writer-wins race never
  /// committed and is never logged.
  void EnableCommitLog(bool enable);
  bool commit_log_enabled() const {
    return commit_log_enabled_.load(std::memory_order_acquire);
  }

  /// Committed records with commit_ts > after_ts, in commit order
  /// (thread-safe copy). The pull endpoint of the replication stream:
  /// an applier passes its applied timestamp and gets everything it is
  /// missing.
  std::vector<CommitRecord> CommitLogSince(uint64_t after_ts) const;

  size_t commit_log_size() const;

  /// Commit timestamp every retained record is strictly newer than: the
  /// clock at EnableCommitLog, advanced past trimmed records when the
  /// bounded log (set_commit_log_capacity) evicts its oldest entries.
  /// An applier whose applied timestamp is below this floor has lost
  /// records and must re-bootstrap.
  uint64_t commit_log_floor() const;

  /// Bounds the retained records; 0 = unbounded (short-lived tests).
  /// Evictions advance commit_log_floor() and count on the
  /// "engine.commit_log_trimmed" metric.
  void set_commit_log_capacity(size_t capacity);

  /// Current MVCC commit clock: the timestamp of the latest committed
  /// DML statement (0 = bulk-loaded data only).
  uint64_t commit_clock() const {
    return commit_clock_.load(std::memory_order_acquire);
  }

  /// Version garbage collection: prunes, in every table, the versions
  /// no live snapshot can see (dead at or before the GC horizon, which
  /// is the commit clock — plus rolled-back versions). Requires
  /// exclusivity: when any snapshot is active the pass defers (returns
  /// 0, counts obs `mvcc.gc_deferred`) instead of blocking readers.
  /// Returns the number of versions pruned.
  size_t GarbageCollectVersions();

  /// Parses and executes one statement. `out` (optional) receives rows /
  /// affected counts.
  Status Execute(std::string_view sql, ResultSet* out = nullptr);

  /// Re-entrant variant of Execute() writing counters into the
  /// caller-supplied `stats` instead of the member consumed by
  /// last_stats(). This is the engine's concurrency entry point
  /// (DESIGN.md 5d/5h): any number of threads may call it concurrently
  /// for read-only statements (SELECT / WITH) AND DML (INSERT / UPDATE
  /// / DELETE) — readers run against MVCC snapshots, writers serialize
  /// on an internal mutex and conflict under first-writer-wins
  /// (StatusCode::kWriteConflict, retryable). DDL and CALL must still
  /// never run concurrently with anything.
  ///
  /// `snapshot_ts` names the MVCC read snapshot (kLatestSnapshot =
  /// resolve to the commit clock at statement start). For UPDATE /
  /// DELETE it is the snapshot predicates are evaluated against — a
  /// target version killed by a writer that committed after it loses
  /// under first-writer-wins.
  Status Execute(std::string_view sql, ResultSet* out, ExecStats* stats,
                 uint64_t snapshot_ts = kLatestSnapshot);

  /// Executes a statement from its precomputed fingerprint
  /// (sql/fingerprint.h), consuming the token stream it carries instead
  /// of re-lexing the text. The server's batch and wave paths fingerprint
  /// every statement once — for the read-only classification, for
  /// wave-level result sharing, and (through here) for the plan-cache
  /// lookup — so each statement pays exactly one lexer pass. Same
  /// concurrency contract and snapshot semantics as the 4-arg Execute().
  Status ExecuteFingerprinted(sql::StatementFingerprint fp, ResultSet* out,
                              ExecStats* stats,
                              uint64_t snapshot_ts = kLatestSnapshot);

  /// Execute() returning the result set.
  Result<ResultSet> Query(std::string_view sql);

  /// Executes a ';'-separated script (DDL + DML); results discarded.
  Status ExecuteScript(std::string_view sql);

  /// Executes an already-parsed statement (clients that build ASTs avoid
  /// re-parsing; the simulated wire still ships SQL text).
  Status ExecuteStatement(const sql::Statement& stmt, ResultSet* out);

  /// Registers a scalar SQL function (see FunctionRegistry).
  Status RegisterFunction(std::string_view name, size_t min_args,
                          size_t max_args, ScalarFn fn) {
    Status status = functions_.Register(name, min_args, max_args,
                                        std::move(fn));
    if (status.ok()) ++ddl_epoch_;  // new name may change how SQL binds
    return status;
  }

  /// Registers a stored procedure reachable via CALL name(args).
  Status RegisterProcedure(std::string_view name, Procedure procedure);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  FunctionRegistry& functions() { return functions_; }
  ViewRegistry& views() { return views_; }
  const ViewRegistry& views() const { return views_; }
  EngineOptions& options() { return options_; }

  /// Execution counters of the most recent Execute() call.
  const ExecStats& last_stats() const { return stats_; }

  /// The prepared-statement/plan cache consulted by Execute().
  PlanCache& plan_cache() { return plan_cache_; }
  const PlanCache& plan_cache() const { return plan_cache_; }

  /// Monotonic epoch covering every binding-visible definition change:
  /// catalog tables (CREATE/DROP TABLE), views, registered functions.
  /// Plan-cache entries bound under an older epoch are discarded.
  uint64_t schema_epoch() const { return catalog_.version() + ddl_epoch_; }

 private:
  Status ExecuteStatement(const sql::Statement& stmt, ResultSet* out,
                          ExecStats* stats, uint64_t snapshot_ts);
  Status ExecuteCachedSelect(sql::StatementFingerprint fp, ResultSet* out,
                             ExecStats* stats, uint64_t snapshot_ts);
  Status ExecuteBoundSelect(const BoundSelect& bound, ResultSet* out,
                            ExecStats* stats, uint64_t snapshot_ts);
  Status ExecuteSelect(const sql::SelectStmt& stmt, ResultSet* out,
                       ExecStats* stats, uint64_t snapshot_ts);
  Status ExecuteCreateTable(const sql::CreateTableStmt& stmt, ResultSet* out);
  Status ExecuteDropTable(const sql::DropTableStmt& stmt, ResultSet* out);
  Status ExecuteInsert(const sql::InsertStmt& stmt, ResultSet* out,
                       ExecStats* stats);
  Status ExecuteUpdate(const sql::UpdateStmt& stmt, ResultSet* out,
                       ExecStats* stats, uint64_t snapshot_ts);
  Status ExecuteDelete(const sql::DeleteStmt& stmt, ResultSet* out,
                       ExecStats* stats, uint64_t snapshot_ts);
  Status ExecuteCall(const sql::CallStmt& stmt, ResultSet* out,
                     ExecStats* stats);
  /// Releases one registered snapshot (called by Snapshot handles).
  void ReleaseSnapshot(uint64_t ts);
  /// Appends one commit record (no-op unless the log is enabled).
  /// Called at the DML commit sites while dml_mutex_ is held, right
  /// before the commit-clock store — the statement's success is already
  /// decided, so every logged record is a real commit.
  void AppendCommitRecord(uint64_t commit_ts, const sql::Statement& stmt,
                          size_t affected_rows);
  Status ExecuteExplain(const sql::ExplainStmt& stmt, ResultSet* out);
  Status ExecuteCreateView(const sql::CreateViewStmt& stmt, ResultSet* out);
  Status ExecuteDropView(const sql::DropViewStmt& stmt, ResultSet* out);

  Catalog catalog_;
  FunctionRegistry functions_;
  ViewRegistry views_;
  EngineOptions options_;
  ExecStats stats_;
  PlanCache plan_cache_;
  uint64_t ddl_epoch_ = 0;  // views + functions; tables count via catalog
  std::map<std::string, Procedure> procedures_;

  // --- MVCC state (DESIGN.md 5h) ---
  /// Timestamp of the latest committed DML statement. Advancing it
  /// (release, after all of a statement's versions are installed) is
  /// the commit point: snapshots acquired later see the statement
  /// atomically, earlier ones never do.
  std::atomic<uint64_t> commit_clock_{0};
  /// Serializes writers (taken inside ExecuteInsert/Update/Delete, so
  /// CALL may nest DML without deadlocking) and GC.
  std::mutex dml_mutex_;
  /// Active read snapshots; guards the GC gate.
  mutable std::mutex snapshot_mutex_;
  std::condition_variable snapshot_cv_;
  std::multiset<uint64_t> active_snapshots_;
  bool gc_active_ = false;

  // --- Replication commit log (DESIGN.md 5l) ---
  /// Atomic so the commit sites can skip the log mutex entirely while
  /// capture is off (the common case).
  std::atomic<bool> commit_log_enabled_{false};
  /// Guards the records; appenders additionally hold dml_mutex_, so
  /// records are always in commit order. A separate mutex keeps pullers
  /// (replication appliers on other threads) from contending with
  /// writers for the DML lock.
  mutable std::mutex commit_log_mutex_;
  std::deque<CommitRecord> commit_log_;
  size_t commit_log_capacity_ = 65536;
  uint64_t commit_log_floor_ = 0;
};

}  // namespace pdm

#endif  // PDM_ENGINE_DATABASE_H_
