#include "engine/plan_cache.h"

namespace pdm {

namespace {

void CollectFromPlan(PlanNode* plan, PlanCache::Entry* entry);

void CollectFromExpr(BoundExpr* expr, PlanCache::Entry* entry) {
  if (expr == nullptr) return;
  switch (expr->kind) {
    case BoundExprKind::kLiteral: {
      auto* lit = static_cast<BoundLiteral*>(expr);
      if (lit->param_slot >= 0) {
        entry->slots.emplace_back(static_cast<size_t>(lit->param_slot), lit);
      }
      return;
    }
    case BoundExprKind::kColumnRef:
      return;
    case BoundExprKind::kUnary:
      CollectFromExpr(static_cast<BoundUnary*>(expr)->operand.get(), entry);
      return;
    case BoundExprKind::kBinary: {
      auto* e = static_cast<BoundBinary*>(expr);
      CollectFromExpr(e->lhs.get(), entry);
      CollectFromExpr(e->rhs.get(), entry);
      return;
    }
    case BoundExprKind::kFunctionCall:
      for (BoundExprPtr& arg : static_cast<BoundFunctionCall*>(expr)->args) {
        CollectFromExpr(arg.get(), entry);
      }
      return;
    case BoundExprKind::kCast:
      CollectFromExpr(static_cast<BoundCast*>(expr)->operand.get(), entry);
      return;
    case BoundExprKind::kIsNull:
      CollectFromExpr(static_cast<BoundIsNull*>(expr)->operand.get(), entry);
      return;
    case BoundExprKind::kInList: {
      auto* e = static_cast<BoundInList*>(expr);
      CollectFromExpr(e->operand.get(), entry);
      bool any_slot = false;
      for (BoundExprPtr& item : e->items) {
        if (item->kind == BoundExprKind::kLiteral &&
            static_cast<BoundLiteral*>(item.get())->param_slot >= 0) {
          any_slot = true;
        }
        CollectFromExpr(item.get(), entry);
      }
      if (e->use_literal_set && any_slot) {
        entry->inlist_rebuilds.push_back(e);
      }
      return;
    }
    case BoundExprKind::kBetween: {
      auto* e = static_cast<BoundBetween*>(expr);
      CollectFromExpr(e->operand.get(), entry);
      CollectFromExpr(e->low.get(), entry);
      CollectFromExpr(e->high.get(), entry);
      return;
    }
    case BoundExprKind::kLike: {
      auto* e = static_cast<BoundLike*>(expr);
      CollectFromExpr(e->operand.get(), entry);
      CollectFromExpr(e->pattern.get(), entry);
      return;
    }
    case BoundExprKind::kCase: {
      auto* e = static_cast<BoundCase*>(expr);
      for (auto& [cond, value] : e->whens) {
        CollectFromExpr(cond.get(), entry);
        CollectFromExpr(value.get(), entry);
      }
      CollectFromExpr(e->else_expr.get(), entry);
      return;
    }
    case BoundExprKind::kSubquery: {
      auto* e = static_cast<BoundSubquery*>(expr);
      CollectFromExpr(e->operand.get(), entry);
      CollectFromPlan(e->plan.get(), entry);
      return;
    }
  }
}

void CollectFromPlan(PlanNode* plan, PlanCache::Entry* entry) {
  if (plan == nullptr) return;
  switch (plan->kind) {
    case PlanKind::kScan:
      CollectFromExpr(static_cast<ScanNode*>(plan)->filter.get(), entry);
      return;
    case PlanKind::kCteScan:
      return;
    case PlanKind::kFilter: {
      auto* n = static_cast<FilterNode*>(plan);
      CollectFromPlan(n->child.get(), entry);
      CollectFromExpr(n->predicate.get(), entry);
      return;
    }
    case PlanKind::kProject: {
      auto* n = static_cast<ProjectNode*>(plan);
      CollectFromPlan(n->child.get(), entry);
      for (BoundExprPtr& e : n->exprs) CollectFromExpr(e.get(), entry);
      return;
    }
    case PlanKind::kNestedLoopJoin: {
      auto* n = static_cast<NestedLoopJoinNode*>(plan);
      CollectFromPlan(n->left.get(), entry);
      CollectFromPlan(n->right.get(), entry);
      CollectFromExpr(n->predicate.get(), entry);
      return;
    }
    case PlanKind::kHashJoin: {
      auto* n = static_cast<HashJoinNode*>(plan);
      CollectFromPlan(n->left.get(), entry);
      CollectFromPlan(n->right.get(), entry);
      CollectFromExpr(n->residual.get(), entry);
      return;
    }
    case PlanKind::kAggregate: {
      auto* n = static_cast<AggregateNode*>(plan);
      CollectFromPlan(n->child.get(), entry);
      for (BoundExprPtr& e : n->group_exprs) CollectFromExpr(e.get(), entry);
      for (BoundAggregate& agg : n->aggregates) {
        CollectFromExpr(agg.arg.get(), entry);
      }
      CollectFromExpr(n->having.get(), entry);
      return;
    }
    case PlanKind::kSort:
      CollectFromPlan(static_cast<SortNode*>(plan)->child.get(), entry);
      return;
    case PlanKind::kDistinct:
      CollectFromPlan(static_cast<DistinctNode*>(plan)->child.get(), entry);
      return;
    case PlanKind::kUnion:
      for (PlanPtr& child : static_cast<UnionNode*>(plan)->children) {
        CollectFromPlan(child.get(), entry);
      }
      return;
    case PlanKind::kLimit:
      CollectFromPlan(static_cast<LimitNode*>(plan)->child.get(), entry);
      return;
  }
}

void RebuildLiteralSet(BoundInList* inlist) {
  inlist->literal_set.clear();
  inlist->literal_list_has_null = false;
  for (const BoundExprPtr& item : inlist->items) {
    const Value& v = static_cast<const BoundLiteral&>(*item).value;
    if (v.is_null()) {
      inlist->literal_list_has_null = true;
    } else {
      inlist->literal_set.insert(v);
    }
  }
}

bool SameOptions(const BinderOptions& a, const BinderOptions& b) {
  return a.predicate_pushdown == b.predicate_pushdown &&
         a.use_hash_join == b.use_hash_join;
}

}  // namespace

PlanCache::Entry PlanCache::Prepare(BoundSelect bound,
                                    std::vector<Value> params,
                                    uint64_t schema_epoch,
                                    const BinderOptions& options) {
  Entry entry;
  entry.bound = std::move(bound);
  entry.bound_params = std::move(params);
  entry.schema_epoch = schema_epoch;
  entry.binder_options = options;
  for (BoundCte& cte : entry.bound.ctes) {
    CollectFromPlan(cte.seed.get(), &entry);
    for (PlanPtr& term : cte.recursive_terms) {
      CollectFromPlan(term.get(), &entry);
    }
  }
  CollectFromPlan(entry.bound.root.get(), &entry);

  std::vector<char> covered(entry.bound_params.size(), 0);
  bool in_range = true;
  for (const auto& [slot, lit] : entry.slots) {
    if (slot < covered.size()) {
      covered[slot] = 1;
    } else {
      in_range = false;  // stamped AST spliced from elsewhere; be safe
    }
  }
  entry.parameterized = in_range;
  for (char c : covered) {
    if (!c) {
      entry.parameterized = false;
      break;
    }
  }
  return entry;
}

PlanCache::Lease PlanCache::Lookup(const std::string& key,
                                   const std::vector<Value>& params,
                                   uint64_t schema_epoch,
                                   const BinderOptions& options) {
  std::lock_guard<std::mutex> cache_lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    stats_.misses++;
    return Lease();
  }
  SlotPtr slot = it->second->second;
  if (slot->entry.schema_epoch != schema_epoch ||
      !SameOptions(slot->entry.binder_options, options)) {
    EraseLocked(key);
    stats_.invalidations++;
    stats_.misses++;
    return Lease();
  }
  // Never *block* on the entry while holding the cache mutex: if another
  // thread is executing this plan right now, bypass the cache so sibling
  // batch statements with the same fingerprint still run in parallel.
  std::unique_lock<std::mutex> entry_lock(slot->mutex, std::try_to_lock);
  if (!entry_lock.owns_lock()) {
    stats_.bypasses++;
    stats_.misses++;
    return Lease();
  }
  Entry& entry = slot->entry;
  if (!entry.parameterized) {
    // Exact-match only: some parameter is folded into plan structure.
    if (params != entry.bound_params) {
      stats_.misses++;
      return Lease();
    }
  } else if (params != entry.bound_params) {
    for (const auto& [param_slot, lit] : entry.slots) {
      lit->value = params[param_slot];
    }
    for (BoundInList* inlist : entry.inlist_rebuilds) {
      RebuildLiteralSet(inlist);
    }
    entry.bound_params = params;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  stats_.hits++;
  Lease lease;
  lease.entry_ = &slot->entry;
  lease.slot_ = std::move(slot);
  lease.lock_ = std::move(entry_lock);
  return lease;
}

void PlanCache::Insert(const std::string& key, Entry entry) {
  auto slot = std::make_shared<Slot>();
  slot->entry = std::move(entry);
  std::lock_guard<std::mutex> cache_lock(mutex_);
  EraseLocked(key);
  lru_.emplace_front(key, std::move(slot));
  index_[key] = lru_.begin();
  EvictToCapacityLocked();
}

void PlanCache::Flush() {
  std::lock_guard<std::mutex> cache_lock(mutex_);
  stats_.invalidations += index_.size();
  index_.clear();
  lru_.clear();
}

void PlanCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> cache_lock(mutex_);
  capacity_ = capacity;
  EvictToCapacityLocked();
}

size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> cache_lock(mutex_);
  return capacity_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> cache_lock(mutex_);
  return index_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> cache_lock(mutex_);
  return stats_;
}

void PlanCache::ResetStats() {
  std::lock_guard<std::mutex> cache_lock(mutex_);
  stats_.Reset();
}

void PlanCache::EraseLocked(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

void PlanCache::EvictToCapacityLocked() {
  while (index_.size() > capacity_ && !lru_.empty()) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    stats_.evictions++;
  }
}

}  // namespace pdm
