#include "engine/database.h"

#include <cassert>

#include "common/string_util.h"
#include "exec/executor.h"
#include "obs/trace.h"
#include "exec/expr_eval.h"
#include "exec/recursive_cte.h"
#include "sql/parser.h"

namespace pdm {

Database::Database() {
  Status status = functions_.RegisterBuiltins();
  assert(status.ok());
  (void)status;
}

Status Database::Execute(std::string_view sql, ResultSet* out) {
  return Execute(sql, out, &stats_);
}

Status Database::Execute(std::string_view sql, ResultSet* out,
                         ExecStats* stats) {
  if (options_.use_plan_cache) {
    Result<sql::StatementFingerprint> fp = sql::FingerprintSql(sql);
    if (fp.ok()) return ExecuteFingerprinted(std::move(*fp), out, stats);
    // Lexical error: fall through so ParseSql reports it normally.
  }
  sql::StatementPtr stmt;
  {
    obs::ScopedSpan span("engine:parse", obs::ModelTerm::kParsePlan);
    PDM_ASSIGN_OR_RETURN(stmt, sql::ParseSql(sql));
  }
  obs::ScopedSpan span("engine:exec", obs::ModelTerm::kExec);
  return ExecuteStatement(*stmt, out, stats);
}

Status Database::ExecuteFingerprinted(sql::StatementFingerprint fp,
                                      ResultSet* out, ExecStats* stats) {
  if (options_.use_plan_cache && fp.cacheable) {
    return ExecuteCachedSelect(std::move(fp), out, stats);
  }
  sql::StatementPtr stmt;
  {
    obs::ScopedSpan span("engine:parse", obs::ModelTerm::kParsePlan);
    sql::Parser parser(std::move(fp.tokens));
    PDM_ASSIGN_OR_RETURN(stmt, parser.ParseStatement());
  }
  obs::ScopedSpan span("engine:exec", obs::ModelTerm::kExec);
  return ExecuteStatement(*stmt, out, stats);
}

Status Database::ExecuteCachedSelect(sql::StatementFingerprint fp,
                                     ResultSet* out, ExecStats* stats) {
  stats->Reset();
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  out->schema = Schema();
  out->rows.clear();
  out->affected_rows = 0;

  if (PlanCache::Lease lease = plan_cache_.Lookup(
          fp.key, fp.params, schema_epoch(), options_.binder)) {
    stats->plan_cache_hits = 1;
    obs::ScopedSpan span("engine:exec", obs::ModelTerm::kExec);
    span.set_detail("plan-cache-hit");
    return ExecuteBoundSelect(lease->bound, out, stats);
  }
  stats->plan_cache_misses = 1;

  PlanCache::Entry entry;
  {
    obs::ScopedSpan parse_span("engine:parse+bind", obs::ModelTerm::kParsePlan);
    sql::Parser parser(std::move(fp.tokens));
    PDM_ASSIGN_OR_RETURN(sql::StatementPtr stmt, parser.ParseStatement());
    if (stmt->kind != sql::StatementKind::kSelect) {
      return ExecuteStatement(*stmt, out, stats);  // unreachable; defensive
    }
    Binder binder(&catalog_, &functions_, options_.binder, &views_);
    PDM_ASSIGN_OR_RETURN(
        BoundSelect bound,
        binder.BindSelect(static_cast<const sql::SelectStmt&>(*stmt)));
    entry = PlanCache::Prepare(std::move(bound), std::move(fp.params),
                               schema_epoch(), options_.binder);
  }
  // Execute before handing the entry to the cache: even a failed
  // execution is deterministic, so the plan stays cacheable.
  Status status;
  {
    obs::ScopedSpan exec_span("engine:exec", obs::ModelTerm::kExec);
    status = ExecuteBoundSelect(entry.bound, out, stats);
  }
  plan_cache_.Insert(fp.key, std::move(entry));
  return status;
}

Result<ResultSet> Database::Query(std::string_view sql) {
  ResultSet result;
  PDM_RETURN_NOT_OK(Execute(sql, &result));
  return result;
}

Status Database::ExecuteScript(std::string_view sql) {
  PDM_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> stmts,
                       sql::ParseSqlScript(sql));
  for (const sql::StatementPtr& stmt : stmts) {
    PDM_RETURN_NOT_OK(ExecuteStatement(*stmt, nullptr));
  }
  return Status::OK();
}

Status Database::ExecuteStatement(const sql::Statement& stmt, ResultSet* out) {
  return ExecuteStatement(stmt, out, &stats_);
}

Status Database::ExecuteStatement(const sql::Statement& stmt, ResultSet* out,
                                  ExecStats* stats) {
  stats->Reset();
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  out->schema = Schema();
  out->rows.clear();
  out->affected_rows = 0;
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      return ExecuteSelect(static_cast<const sql::SelectStmt&>(stmt), out,
                           stats);
    case sql::StatementKind::kCreateTable:
      return ExecuteCreateTable(
          static_cast<const sql::CreateTableStmt&>(stmt), out);
    case sql::StatementKind::kDropTable:
      return ExecuteDropTable(static_cast<const sql::DropTableStmt&>(stmt),
                              out);
    case sql::StatementKind::kInsert:
      return ExecuteInsert(static_cast<const sql::InsertStmt&>(stmt), out,
                           stats);
    case sql::StatementKind::kUpdate:
      return ExecuteUpdate(static_cast<const sql::UpdateStmt&>(stmt), out,
                           stats);
    case sql::StatementKind::kDelete:
      return ExecuteDelete(static_cast<const sql::DeleteStmt&>(stmt), out,
                           stats);
    case sql::StatementKind::kCall:
      return ExecuteCall(static_cast<const sql::CallStmt&>(stmt), out, stats);
    case sql::StatementKind::kExplain:
      return ExecuteExplain(static_cast<const sql::ExplainStmt&>(stmt), out);
    case sql::StatementKind::kCreateView:
      return ExecuteCreateView(static_cast<const sql::CreateViewStmt&>(stmt),
                               out);
    case sql::StatementKind::kDropView:
      return ExecuteDropView(static_cast<const sql::DropViewStmt&>(stmt),
                             out);
  }
  return Status::Internal("unhandled statement kind");
}

Status Database::ExecuteSelect(const sql::SelectStmt& stmt, ResultSet* out,
                               ExecStats* stats) {
  Binder binder(&catalog_, &functions_, options_.binder, &views_);
  PDM_ASSIGN_OR_RETURN(BoundSelect bound, binder.BindSelect(stmt));
  return ExecuteBoundSelect(bound, out, stats);
}

Status Database::ExecuteBoundSelect(const BoundSelect& bound, ResultSet* out,
                                    ExecStats* stats) {
  ExecContext ctx(&catalog_, &options_.exec, stats);
  std::map<std::string, std::vector<Row>> cte_storage;
  PDM_RETURN_NOT_OK(MaterializeCtes(bound.ctes, &ctx, &cte_storage));
  PDM_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecutePlan(*bound.root, &ctx));
  stats->rows_emitted = rows.size();
  out->schema = bound.root->schema;
  out->rows = std::move(rows);
  return Status::OK();
}

Status Database::ExecuteCreateTable(const sql::CreateTableStmt& stmt,
                                    ResultSet* out) {
  (void)out;
  return catalog_.CreateTable(stmt.table_name, Schema(stmt.columns),
                              stmt.if_not_exists);
}

Status Database::ExecuteDropTable(const sql::DropTableStmt& stmt,
                                  ResultSet* out) {
  (void)out;
  return catalog_.DropTable(stmt.table_name, stmt.if_exists);
}

Status Database::ExecuteInsert(const sql::InsertStmt& stmt, ResultSet* out,
                               ExecStats* stats) {
  Binder binder(&catalog_, &functions_, options_.binder);
  PDM_ASSIGN_OR_RETURN(BoundInsert bound, binder.BindInsert(stmt));
  PDM_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(bound.table_name));

  ExecContext ctx(&catalog_, &options_.exec, stats);
  Row empty;
  for (const std::vector<BoundExprPtr>& exprs : bound.rows) {
    Row row;
    row.reserve(exprs.size());
    for (const BoundExprPtr& e : exprs) {
      PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e, empty, &ctx));
      row.push_back(std::move(v));
    }
    PDM_RETURN_NOT_OK(table->Insert(std::move(row)));
    out->affected_rows++;
  }
  return Status::OK();
}

Status Database::ExecuteUpdate(const sql::UpdateStmt& stmt, ResultSet* out,
                               ExecStats* stats) {
  Binder binder(&catalog_, &functions_, options_.binder);
  PDM_ASSIGN_OR_RETURN(BoundUpdate bound, binder.BindUpdate(stmt));
  PDM_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(bound.table_name));
  const Schema& schema = table->schema();

  ExecContext ctx(&catalog_, &options_.exec, stats);

  // Phase 1: decide matches and compute new values against the old rows,
  // so predicates/subqueries never observe partially applied updates.
  struct PendingUpdate {
    size_t row_index;
    std::vector<Value> values;  // aligned with bound.assignments
  };
  std::vector<PendingUpdate> pending;
  const std::vector<Row>& rows = table->rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (bound.predicate != nullptr) {
      PDM_ASSIGN_OR_RETURN(bool pass,
                           EvaluatePredicate(*bound.predicate, rows[i], &ctx));
      if (!pass) continue;
    }
    PendingUpdate update;
    update.row_index = i;
    for (const auto& [col, expr] : bound.assignments) {
      PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*expr, rows[i], &ctx));
      if (!KindFitsColumn(v.kind(), schema.column(col).type)) {
        return Status::ExecutionError(StrFormat(
            "UPDATE value of kind %s does not fit column '%s'",
            std::string(ValueKindName(v.kind())).c_str(),
            schema.column(col).name.c_str()));
      }
      update.values.push_back(std::move(v));
    }
    pending.push_back(std::move(update));
  }

  // Phase 2: apply.
  std::vector<Row>& mutable_rows = table->mutable_rows();
  for (const PendingUpdate& update : pending) {
    for (size_t a = 0; a < bound.assignments.size(); ++a) {
      mutable_rows[update.row_index][bound.assignments[a].first] =
          update.values[a];
    }
  }
  out->affected_rows = pending.size();
  return Status::OK();
}

Status Database::ExecuteDelete(const sql::DeleteStmt& stmt, ResultSet* out,
                               ExecStats* stats) {
  Binder binder(&catalog_, &functions_, options_.binder);
  PDM_ASSIGN_OR_RETURN(BoundDelete bound, binder.BindDelete(stmt));
  PDM_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(bound.table_name));

  ExecContext ctx(&catalog_, &options_.exec, stats);

  // Phase 1: decide, phase 2: erase (see ExecuteUpdate).
  std::vector<bool> doomed(table->num_rows(), false);
  const std::vector<Row>& rows = table->rows();
  size_t matched = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    bool pass = true;
    if (bound.predicate != nullptr) {
      PDM_ASSIGN_OR_RETURN(pass,
                           EvaluatePredicate(*bound.predicate, rows[i], &ctx));
    }
    if (pass) {
      doomed[i] = true;
      ++matched;
    }
  }
  std::vector<Row>& mutable_rows = table->mutable_rows();
  std::vector<Row> kept;
  kept.reserve(mutable_rows.size() - matched);
  for (size_t i = 0; i < mutable_rows.size(); ++i) {
    if (!doomed[i]) kept.push_back(std::move(mutable_rows[i]));
  }
  mutable_rows = std::move(kept);
  out->affected_rows = matched;
  return Status::OK();
}

Status Database::ExecuteCall(const sql::CallStmt& stmt, ResultSet* out,
                             ExecStats* stats) {
  auto it = procedures_.find(ToLowerAscii(stmt.procedure_name));
  if (it == procedures_.end()) {
    return Status::NotFound("unknown procedure '" + stmt.procedure_name + "'");
  }
  Binder binder(&catalog_, &functions_, options_.binder);
  ExecContext ctx(&catalog_, &options_.exec, stats);
  Row empty;
  std::vector<Value> args;
  args.reserve(stmt.args.size());
  for (const sql::ExprPtr& arg : stmt.args) {
    PDM_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.BindConstantExpr(*arg));
    PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*bound, empty, &ctx));
    args.push_back(std::move(v));
  }
  return it->second(*this, args, out);
}

Status Database::ExecuteExplain(const sql::ExplainStmt& stmt,
                                ResultSet* out) {
  Binder binder(&catalog_, &functions_, options_.binder, &views_);
  PDM_ASSIGN_OR_RETURN(BoundSelect bound, binder.BindSelect(*stmt.select));

  std::string text;
  for (const BoundCte& cte : bound.ctes) {
    text += std::string(cte.recursive ? "RecursiveCTE " : "CTE ") + cte.name +
            ":\n";
    text += cte.seed->ToString(1);
    for (size_t i = 0; i < cte.recursive_terms.size(); ++i) {
      text += StrFormat("  recursive term %zu:\n", i + 1);
      text += cte.recursive_terms[i]->ToString(2);
    }
  }
  text += bound.root->ToString();

  out->schema = Schema({Column{"plan", ColumnType::kString}});
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    out->rows.push_back(
        Row{Value::String(text.substr(start, end - start))});
    start = end + 1;
  }
  return Status::OK();
}

Status Database::ExecuteCreateView(const sql::CreateViewStmt& stmt,
                                   ResultSet* out) {
  (void)out;
  if (catalog_.HasTable(stmt.view_name)) {
    return Status::AlreadyExists("a table named '" + stmt.view_name +
                                 "' already exists");
  }
  // Validate the definition binds against the current schema.
  Binder binder(&catalog_, &functions_, options_.binder, &views_);
  PDM_RETURN_NOT_OK(binder.BindSelect(*stmt.select).status().WithContext(
      "invalid view definition"));
  Status status = views_.Define(stmt.view_name, stmt.select->CloneSelect(),
                                stmt.or_replace);
  if (status.ok()) ++ddl_epoch_;
  return status;
}

Status Database::ExecuteDropView(const sql::DropViewStmt& stmt,
                                 ResultSet* out) {
  (void)out;
  Status status = views_.Drop(stmt.view_name, stmt.if_exists);
  if (status.ok()) ++ddl_epoch_;
  return status;
}

Status Database::RegisterProcedure(std::string_view name,
                                   Procedure procedure) {
  std::string key = ToLowerAscii(name);
  if (procedures_.count(key) > 0) {
    return Status::AlreadyExists("procedure '" + key + "' already registered");
  }
  procedures_[key] = std::move(procedure);
  return Status::OK();
}

}  // namespace pdm
