#include "engine/database.h"

#include <cassert>

#include "common/string_util.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "exec/expr_eval.h"
#include "exec/recursive_cte.h"
#include "sql/parser.h"

namespace pdm {

namespace {

obs::Counter& WriteConflictCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("mvcc.write_conflicts");
  return c;
}

/// Age of a DML statement's read snapshot in commit-clock ticks — how
/// far behind the latest commit the statement's view was when it tried
/// to write. 0 on every serial (latest-snapshot) statement; grows with
/// wave-admission snapshots under concurrent writers.
obs::Histogram& SnapshotAgeHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().histogram(
      "mvcc.snapshot_age_commits", obs::ExponentialBounds(1.0, 4.0, 8));
  return h;
}

}  // namespace

Database::Database() {
  Status status = functions_.RegisterBuiltins();
  assert(status.ok());
  (void)status;
}

void Database::Snapshot::Release() {
  if (db_ != nullptr) {
    db_->ReleaseSnapshot(ts_);
    db_ = nullptr;
  }
}

Database::Snapshot Database::AcquireSnapshot() {
  std::unique_lock<std::mutex> lock(snapshot_mutex_);
  // GC holds exclusivity only while physically compacting; registration
  // waits it out rather than racing the renumbering. Resolving the
  // clock under the same lock closes the acquire/prune race: either we
  // register first (GC defers) or GC finished first (we see the
  // post-compaction world).
  snapshot_cv_.wait(lock, [this] { return !gc_active_; });
  const uint64_t ts = commit_clock();
  active_snapshots_.insert(ts);
  return Snapshot(this, ts);
}

void Database::ReleaseSnapshot(uint64_t ts) {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  auto it = active_snapshots_.find(ts);
  if (it != active_snapshots_.end()) active_snapshots_.erase(it);
  snapshot_cv_.notify_all();
}

void Database::EnableCommitLog(bool enable) {
  // Hold the DML mutex so enablement is ordered against every commit:
  // records either start exactly at the clock we stamp into the floor,
  // or capture stays off for the whole statement.
  std::lock_guard<std::mutex> dml(dml_mutex_);
  std::lock_guard<std::mutex> lock(commit_log_mutex_);
  if (enable && !commit_log_enabled_.load(std::memory_order_relaxed)) {
    commit_log_.clear();
    commit_log_floor_ = commit_clock();
  }
  commit_log_enabled_.store(enable, std::memory_order_release);
}

void Database::AppendCommitRecord(uint64_t commit_ts,
                                  const sql::Statement& stmt,
                                  size_t affected_rows) {
  if (!commit_log_enabled_.load(std::memory_order_acquire)) return;
  CommitRecord record;
  record.commit_ts = commit_ts;
  record.sql = stmt.ToSql();
  record.affected_rows = affected_rows;
  std::lock_guard<std::mutex> lock(commit_log_mutex_);
  commit_log_.push_back(std::move(record));
  if (commit_log_capacity_ > 0 && commit_log_.size() > commit_log_capacity_) {
    commit_log_floor_ = commit_log_.front().commit_ts;
    commit_log_.pop_front();
    obs::MetricsRegistry::Global()
        .counter("engine.commit_log_trimmed")
        .Increment();
  }
}

std::vector<Database::CommitRecord> Database::CommitLogSince(
    uint64_t after_ts) const {
  std::lock_guard<std::mutex> lock(commit_log_mutex_);
  std::vector<CommitRecord> out;
  for (const CommitRecord& record : commit_log_) {
    if (record.commit_ts > after_ts) out.push_back(record);
  }
  return out;
}

size_t Database::commit_log_size() const {
  std::lock_guard<std::mutex> lock(commit_log_mutex_);
  return commit_log_.size();
}

uint64_t Database::commit_log_floor() const {
  std::lock_guard<std::mutex> lock(commit_log_mutex_);
  return commit_log_floor_;
}

void Database::set_commit_log_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(commit_log_mutex_);
  commit_log_capacity_ = capacity;
}

size_t Database::GarbageCollectVersions() {
  // Writers pause for the pass (dml mutex); readers make it defer.
  std::lock_guard<std::mutex> dml(dml_mutex_);
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    if (!active_snapshots_.empty()) {
      obs::MetricsRegistry::Global().counter("mvcc.gc_deferred").Increment();
      return 0;
    }
    gc_active_ = true;
  }
  // Horizon = commit clock: with no live snapshot, every version dead
  // at or before it is unreachable by any current or future snapshot.
  const uint64_t horizon = commit_clock();
  size_t pruned = 0;
  for (const std::string& name : catalog_.TableNames()) {
    Table* table = catalog_.FindTable(name);
    if (table != nullptr) pruned += table->PruneVersions(horizon);
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    gc_active_ = false;
  }
  snapshot_cv_.notify_all();
  obs::MetricsRegistry::Global().counter("mvcc.gc_runs").Increment();
  if (pruned > 0) {
    obs::MetricsRegistry::Global()
        .counter("mvcc.versions_pruned")
        .Add(pruned);
  }
  return pruned;
}

Status Database::Execute(std::string_view sql, ResultSet* out) {
  return Execute(sql, out, &stats_);
}

Status Database::Execute(std::string_view sql, ResultSet* out,
                         ExecStats* stats, uint64_t snapshot_ts) {
  if (options_.use_plan_cache) {
    Result<sql::StatementFingerprint> fp = sql::FingerprintSql(sql);
    if (fp.ok()) {
      return ExecuteFingerprinted(std::move(*fp), out, stats, snapshot_ts);
    }
    // Lexical error: fall through so ParseSql reports it normally.
  }
  sql::StatementPtr stmt;
  {
    obs::ScopedSpan span("engine:parse", obs::ModelTerm::kParsePlan);
    PDM_ASSIGN_OR_RETURN(stmt, sql::ParseSql(sql));
  }
  obs::ScopedSpan span("engine:exec", obs::ModelTerm::kExec);
  return ExecuteStatement(*stmt, out, stats, snapshot_ts);
}

Status Database::ExecuteFingerprinted(sql::StatementFingerprint fp,
                                      ResultSet* out, ExecStats* stats,
                                      uint64_t snapshot_ts) {
  if (options_.use_plan_cache && fp.cacheable) {
    return ExecuteCachedSelect(std::move(fp), out, stats, snapshot_ts);
  }
  sql::StatementPtr stmt;
  {
    obs::ScopedSpan span("engine:parse", obs::ModelTerm::kParsePlan);
    sql::Parser parser(std::move(fp.tokens));
    PDM_ASSIGN_OR_RETURN(stmt, parser.ParseStatement());
  }
  obs::ScopedSpan span("engine:exec", obs::ModelTerm::kExec);
  return ExecuteStatement(*stmt, out, stats, snapshot_ts);
}

Status Database::ExecuteCachedSelect(sql::StatementFingerprint fp,
                                     ResultSet* out, ExecStats* stats,
                                     uint64_t snapshot_ts) {
  stats->Reset();
  // Expose the normalized key so server-side telemetry (slow-query log)
  // can report it without re-lexing the statement text.
  stats->fingerprint_key = fp.key;
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  out->schema = Schema();
  out->rows.clear();
  out->affected_rows = 0;

  if (PlanCache::Lease lease = plan_cache_.Lookup(
          fp.key, fp.params, schema_epoch(), options_.binder)) {
    stats->plan_cache_hits = 1;
    obs::ScopedSpan span("engine:exec", obs::ModelTerm::kExec);
    span.set_detail("plan-cache-hit");
    return ExecuteBoundSelect(lease->bound, out, stats, snapshot_ts);
  }
  stats->plan_cache_misses = 1;

  PlanCache::Entry entry;
  {
    obs::ScopedSpan parse_span("engine:parse+bind", obs::ModelTerm::kParsePlan);
    sql::Parser parser(std::move(fp.tokens));
    PDM_ASSIGN_OR_RETURN(sql::StatementPtr stmt, parser.ParseStatement());
    if (stmt->kind != sql::StatementKind::kSelect) {
      // Unreachable; defensive.
      return ExecuteStatement(*stmt, out, stats, snapshot_ts);
    }
    Binder binder(&catalog_, &functions_, options_.binder, &views_);
    PDM_ASSIGN_OR_RETURN(
        BoundSelect bound,
        binder.BindSelect(static_cast<const sql::SelectStmt&>(*stmt)));
    entry = PlanCache::Prepare(std::move(bound), std::move(fp.params),
                               schema_epoch(), options_.binder);
  }
  // Execute before handing the entry to the cache: even a failed
  // execution is deterministic, so the plan stays cacheable.
  Status status;
  {
    obs::ScopedSpan exec_span("engine:exec", obs::ModelTerm::kExec);
    status = ExecuteBoundSelect(entry.bound, out, stats, snapshot_ts);
  }
  plan_cache_.Insert(fp.key, std::move(entry));
  return status;
}

Result<ResultSet> Database::Query(std::string_view sql) {
  ResultSet result;
  PDM_RETURN_NOT_OK(Execute(sql, &result));
  return result;
}

Status Database::ExecuteScript(std::string_view sql) {
  PDM_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> stmts,
                       sql::ParseSqlScript(sql));
  for (const sql::StatementPtr& stmt : stmts) {
    PDM_RETURN_NOT_OK(ExecuteStatement(*stmt, nullptr));
  }
  return Status::OK();
}

Status Database::ExecuteStatement(const sql::Statement& stmt, ResultSet* out) {
  return ExecuteStatement(stmt, out, &stats_, kLatestSnapshot);
}

Status Database::ExecuteStatement(const sql::Statement& stmt, ResultSet* out,
                                  ExecStats* stats, uint64_t snapshot_ts) {
  stats->Reset();
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  out->schema = Schema();
  out->rows.clear();
  out->affected_rows = 0;
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      return ExecuteSelect(static_cast<const sql::SelectStmt&>(stmt), out,
                           stats, snapshot_ts);
    case sql::StatementKind::kCreateTable:
      return ExecuteCreateTable(
          static_cast<const sql::CreateTableStmt&>(stmt), out);
    case sql::StatementKind::kDropTable:
      return ExecuteDropTable(static_cast<const sql::DropTableStmt&>(stmt),
                              out);
    case sql::StatementKind::kInsert:
      return ExecuteInsert(static_cast<const sql::InsertStmt&>(stmt), out,
                           stats);
    case sql::StatementKind::kUpdate:
      return ExecuteUpdate(static_cast<const sql::UpdateStmt&>(stmt), out,
                           stats, snapshot_ts);
    case sql::StatementKind::kDelete:
      return ExecuteDelete(static_cast<const sql::DeleteStmt&>(stmt), out,
                           stats, snapshot_ts);
    case sql::StatementKind::kCall:
      return ExecuteCall(static_cast<const sql::CallStmt&>(stmt), out, stats);
    case sql::StatementKind::kExplain:
      return ExecuteExplain(static_cast<const sql::ExplainStmt&>(stmt), out);
    case sql::StatementKind::kCreateView:
      return ExecuteCreateView(static_cast<const sql::CreateViewStmt&>(stmt),
                               out);
    case sql::StatementKind::kDropView:
      return ExecuteDropView(static_cast<const sql::DropViewStmt&>(stmt),
                             out);
  }
  return Status::Internal("unhandled statement kind");
}

Status Database::ExecuteSelect(const sql::SelectStmt& stmt, ResultSet* out,
                               ExecStats* stats, uint64_t snapshot_ts) {
  Binder binder(&catalog_, &functions_, options_.binder, &views_);
  PDM_ASSIGN_OR_RETURN(BoundSelect bound, binder.BindSelect(stmt));
  return ExecuteBoundSelect(bound, out, stats, snapshot_ts);
}

Status Database::ExecuteBoundSelect(const BoundSelect& bound, ResultSet* out,
                                    ExecStats* stats, uint64_t snapshot_ts) {
  // Callers that did not pin a snapshot read the latest committed data:
  // register one for the statement's duration so GC cannot renumber
  // versions under the running plan.
  Snapshot snapshot;
  if (snapshot_ts == kLatestSnapshot) {
    snapshot = AcquireSnapshot();
    snapshot_ts = snapshot.ts();
  }
  ExecContext ctx(&catalog_, &options_.exec, stats, snapshot_ts);
  std::map<std::string, std::vector<Row>> cte_storage;
  PDM_RETURN_NOT_OK(MaterializeCtes(bound.ctes, &ctx, &cte_storage));
  PDM_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecutePlan(*bound.root, &ctx));
  stats->rows_emitted = rows.size();
  out->schema = bound.root->schema;
  out->rows = std::move(rows);
  return Status::OK();
}

Status Database::ExecuteCreateTable(const sql::CreateTableStmt& stmt,
                                    ResultSet* out) {
  (void)out;
  return catalog_.CreateTable(stmt.table_name, Schema(stmt.columns),
                              stmt.if_not_exists);
}

Status Database::ExecuteDropTable(const sql::DropTableStmt& stmt,
                                  ResultSet* out) {
  (void)out;
  return catalog_.DropTable(stmt.table_name, stmt.if_exists);
}

Status Database::ExecuteInsert(const sql::InsertStmt& stmt, ResultSet* out,
                               ExecStats* stats) {
  Binder binder(&catalog_, &functions_, options_.binder);
  PDM_ASSIGN_OR_RETURN(BoundInsert bound, binder.BindInsert(stmt));
  PDM_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(bound.table_name));

  std::lock_guard<std::mutex> writer(dml_mutex_);
  const uint64_t write_ts = commit_clock() + 1;

  // Evaluate and validate every row before appending any: a failed
  // INSERT applies nothing, and nothing ever needs rolling back.
  ExecContext ctx(&catalog_, &options_.exec, stats);
  Row empty;
  std::vector<Row> rows;
  rows.reserve(bound.rows.size());
  for (const std::vector<BoundExprPtr>& exprs : bound.rows) {
    Row row;
    row.reserve(exprs.size());
    for (const BoundExprPtr& e : exprs) {
      PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e, empty, &ctx));
      row.push_back(std::move(v));
    }
    PDM_RETURN_NOT_OK(table->schema().ValidateRow(row).WithContext(
        "insert into table '" + table->name() + "'"));
    rows.push_back(std::move(row));
  }
  for (Row& row : rows) {
    table->AppendVersion(std::move(row), write_ts, nullptr);
    out->affected_rows++;
  }
  AppendCommitRecord(write_ts, stmt, rows.size());
  // Commit point: the release store makes every appended version
  // visible atomically to snapshots acquired from here on.
  commit_clock_.store(write_ts, std::memory_order_release);
  return Status::OK();
}

Status Database::ExecuteUpdate(const sql::UpdateStmt& stmt, ResultSet* out,
                               ExecStats* stats, uint64_t snapshot_ts) {
  Binder binder(&catalog_, &functions_, options_.binder);
  PDM_ASSIGN_OR_RETURN(BoundUpdate bound, binder.BindUpdate(stmt));
  PDM_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(bound.table_name));
  const Schema& schema = table->schema();

  std::lock_guard<std::mutex> writer(dml_mutex_);
  // A caller that did not pin a snapshot reads the commit clock as of
  // now; since we hold the DML mutex no writer can commit past it, so
  // the serial path can never lose a first-writer-wins race.
  Snapshot pinned;
  uint64_t read_ts = snapshot_ts;
  if (read_ts == kLatestSnapshot) {
    pinned = AcquireSnapshot();
    read_ts = pinned.ts();
  }
  const uint64_t write_ts = commit_clock() + 1;
  SnapshotAgeHistogram().Observe(static_cast<double>(commit_clock() - read_ts));

  ExecContext ctx(&catalog_, &options_.exec, stats, read_ts);

  // Phase 1: decide matches and compute new values against the snapshot,
  // so predicates/subqueries never observe partially applied updates.
  struct PendingUpdate {
    size_t pos;                 // version to kill
    std::vector<Value> values;  // aligned with bound.assignments
  };
  std::vector<PendingUpdate> pending;
  const size_t bound_versions = table->num_versions();
  Row row;  // recycled materialization buffer
  for (size_t pos = 0; pos < bound_versions; ++pos) {
    if (!table->VisibleAt(pos, read_ts)) continue;
    table->MaterializeRow(pos, &row);
    if (bound.predicate != nullptr) {
      PDM_ASSIGN_OR_RETURN(bool pass,
                           EvaluatePredicate(*bound.predicate, row, &ctx));
      if (!pass) continue;
    }
    PendingUpdate update;
    update.pos = pos;
    for (const auto& [col, expr] : bound.assignments) {
      PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*expr, row, &ctx));
      if (!KindFitsColumn(v.kind(), schema.column(col).type)) {
        return Status::ExecutionError(StrFormat(
            "UPDATE value of kind %s does not fit column '%s'",
            std::string(ValueKindName(v.kind())).c_str(),
            schema.column(col).name.c_str()));
      }
      update.values.push_back(std::move(v));
    }
    pending.push_back(std::move(update));
  }

  // Phase 2: kill every target version first (first-writer-wins — a
  // target already killed by a later-committed writer means this
  // statement loses and rolls back whole), then append the replacements.
  TableUndo undo;
  for (const PendingUpdate& update : pending) {
    if (!table->KillVersion(update.pos, write_ts, &undo)) {
      undo.Rollback();
      WriteConflictCounter().Increment();
      return Status::WriteConflict(
          "UPDATE of table '" + table->name() +
          "' lost a first-writer-wins race; retry against a fresh snapshot");
    }
  }
  for (const PendingUpdate& update : pending) {
    Row copy = table->VersionData(update.pos);
    for (size_t a = 0; a < bound.assignments.size(); ++a) {
      copy[bound.assignments[a].first] = update.values[a];
    }
    table->AppendVersion(std::move(copy), write_ts, &undo);
  }
  AppendCommitRecord(write_ts, stmt, pending.size());
  commit_clock_.store(write_ts, std::memory_order_release);
  out->affected_rows = pending.size();
  return Status::OK();
}

Status Database::ExecuteDelete(const sql::DeleteStmt& stmt, ResultSet* out,
                               ExecStats* stats, uint64_t snapshot_ts) {
  Binder binder(&catalog_, &functions_, options_.binder);
  PDM_ASSIGN_OR_RETURN(BoundDelete bound, binder.BindDelete(stmt));
  PDM_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(bound.table_name));

  std::lock_guard<std::mutex> writer(dml_mutex_);
  Snapshot pinned;
  uint64_t read_ts = snapshot_ts;
  if (read_ts == kLatestSnapshot) {
    pinned = AcquireSnapshot();
    read_ts = pinned.ts();
  }
  const uint64_t write_ts = commit_clock() + 1;
  SnapshotAgeHistogram().Observe(static_cast<double>(commit_clock() - read_ts));

  ExecContext ctx(&catalog_, &options_.exec, stats, read_ts);

  // Phase 1: decide against the snapshot; phase 2: kill (see
  // ExecuteUpdate for the conflict rule).
  std::vector<size_t> doomed;
  const size_t bound_versions = table->num_versions();
  Row row;  // recycled materialization buffer
  for (size_t pos = 0; pos < bound_versions; ++pos) {
    if (!table->VisibleAt(pos, read_ts)) continue;
    bool pass = true;
    if (bound.predicate != nullptr) {
      table->MaterializeRow(pos, &row);
      PDM_ASSIGN_OR_RETURN(pass,
                           EvaluatePredicate(*bound.predicate, row, &ctx));
    }
    if (pass) doomed.push_back(pos);
  }
  TableUndo undo;
  for (size_t pos : doomed) {
    if (!table->KillVersion(pos, write_ts, &undo)) {
      undo.Rollback();
      WriteConflictCounter().Increment();
      return Status::WriteConflict(
          "DELETE from table '" + table->name() +
          "' lost a first-writer-wins race; retry against a fresh snapshot");
    }
  }
  AppendCommitRecord(write_ts, stmt, doomed.size());
  commit_clock_.store(write_ts, std::memory_order_release);
  out->affected_rows = doomed.size();
  return Status::OK();
}

Status Database::ExecuteCall(const sql::CallStmt& stmt, ResultSet* out,
                             ExecStats* stats) {
  auto it = procedures_.find(ToLowerAscii(stmt.procedure_name));
  if (it == procedures_.end()) {
    return Status::NotFound("unknown procedure '" + stmt.procedure_name + "'");
  }
  Binder binder(&catalog_, &functions_, options_.binder);
  ExecContext ctx(&catalog_, &options_.exec, stats);
  Row empty;
  std::vector<Value> args;
  args.reserve(stmt.args.size());
  for (const sql::ExprPtr& arg : stmt.args) {
    PDM_ASSIGN_OR_RETURN(BoundExprPtr bound, binder.BindConstantExpr(*arg));
    PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*bound, empty, &ctx));
    args.push_back(std::move(v));
  }
  return it->second(*this, args, out);
}

Status Database::ExecuteExplain(const sql::ExplainStmt& stmt,
                                ResultSet* out) {
  Binder binder(&catalog_, &functions_, options_.binder, &views_);
  PDM_ASSIGN_OR_RETURN(BoundSelect bound, binder.BindSelect(*stmt.select));

  std::string text;
  for (const BoundCte& cte : bound.ctes) {
    text += std::string(cte.recursive ? "RecursiveCTE " : "CTE ") + cte.name +
            ":\n";
    text += cte.seed->ToString(1);
    for (size_t i = 0; i < cte.recursive_terms.size(); ++i) {
      text += StrFormat("  recursive term %zu:\n", i + 1);
      text += cte.recursive_terms[i]->ToString(2);
    }
  }
  text += bound.root->ToString();

  out->schema = Schema({Column{"plan", ColumnType::kString}});
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    out->rows.push_back(
        Row{Value::String(text.substr(start, end - start))});
    start = end + 1;
  }
  return Status::OK();
}

Status Database::ExecuteCreateView(const sql::CreateViewStmt& stmt,
                                   ResultSet* out) {
  (void)out;
  if (catalog_.HasTable(stmt.view_name)) {
    return Status::AlreadyExists("a table named '" + stmt.view_name +
                                 "' already exists");
  }
  // Validate the definition binds against the current schema.
  Binder binder(&catalog_, &functions_, options_.binder, &views_);
  PDM_RETURN_NOT_OK(binder.BindSelect(*stmt.select).status().WithContext(
      "invalid view definition"));
  Status status = views_.Define(stmt.view_name, stmt.select->CloneSelect(),
                                stmt.or_replace);
  if (status.ok()) ++ddl_epoch_;
  return status;
}

Status Database::ExecuteDropView(const sql::DropViewStmt& stmt,
                                 ResultSet* out) {
  (void)out;
  Status status = views_.Drop(stmt.view_name, stmt.if_exists);
  if (status.ok()) ++ddl_epoch_;
  return status;
}

Status Database::RegisterProcedure(std::string_view name,
                                   Procedure procedure) {
  std::string key = ToLowerAscii(name);
  if (procedures_.count(key) > 0) {
    return Status::AlreadyExists("procedure '" + key + "' already registered");
  }
  procedures_[key] = std::move(procedure);
  return Status::OK();
}

}  // namespace pdm
