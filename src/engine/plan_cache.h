#ifndef PDM_ENGINE_PLAN_CACHE_H_
#define PDM_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/value.h"
#include "plan/binder.h"
#include "plan/plan_node.h"

namespace pdm {

/// Aggregate counters of one PlanCache, exposed through DbServer next
/// to the statement log (per-statement hit/miss lives in ExecStats).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      // LRU capacity evictions
  uint64_t invalidations = 0;  // discarded by schema-epoch/option change
  uint64_t bypasses = 0;       // entry busy on another thread (also a miss)

  void Reset() { *this = PlanCacheStats{}; }
};

/// LRU cache of bound SELECT plans keyed by statement fingerprint
/// (sql/fingerprint.h). An entry holds the bound tree plus the
/// addresses of the BoundLiteral nodes carrying each fingerprint
/// parameter; re-execution stamps the new literal values into those
/// slots instead of re-lexing/parsing/binding.
///
/// Correctness:
///  - Entries record the schema epoch and binder options they were
///    bound under; Lookup discards entries from an older epoch (DDL —
///    CREATE/DROP of tables and views — bumps the epoch) or different
///    optimizer settings.
///  - If some fingerprint parameter reached no literal slot in the plan
///    (the binder folded it into structure, e.g. an ORDER BY expression
///    matched against a select item by text, or a GROUP BY literal
///    matched the same way), the entry is *exact-match only*: it is
///    reused only when the parameters equal the values it was bound
///    with, never substituted.
///  - IN-lists whose precomputed literal hash set contains substituted
///    values are re-derived after every substitution.
///
/// Thread safety (the engine's first concurrency contract, DESIGN.md 5d):
/// all public methods may be called concurrently. Because Lookup
/// substitutes parameters *in place* into the shared bound plan, a hit
/// hands out an exclusive Lease on the entry; the plan must only be
/// executed while the lease is held. If another thread already holds the
/// lease for a key (same-fingerprint statements executing concurrently,
/// the common case inside a batch), Lookup does not block — it reports a
/// bypass/miss and the caller parses + binds a private plan instead,
/// preserving intra-batch parallelism.
class PlanCache {
 public:
  struct Entry {
    BoundSelect bound;
    /// (fingerprint parameter ordinal, literal node) — one parameter
    /// may surface in several nodes (e.g. a literal bound both as a
    /// group expression and in the post-aggregate select list).
    std::vector<std::pair<size_t, BoundLiteral*>> slots;
    /// IN-list nodes whose literal_set must be rebuilt after
    /// substitution.
    std::vector<BoundInList*> inlist_rebuilds;
    /// True if every fingerprint parameter is covered by `slots`.
    bool parameterized = false;
    /// The parameter values currently stamped into the plan.
    std::vector<Value> bound_params;
    uint64_t schema_epoch = 0;
    BinderOptions binder_options;
  };

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Exclusive lease on a cache entry, returned by Lookup on a hit. The
  /// substituted plan stays valid (and owned) for the lease's lifetime,
  /// even if the entry is concurrently evicted or replaced.
  class Lease {
   public:
    Lease() = default;
    explicit operator bool() const { return entry_ != nullptr; }
    Entry* operator->() const { return entry_; }
    Entry& operator*() const { return *entry_; }

   private:
    friend class PlanCache;
    std::shared_ptr<void> slot_;  // keeps the entry alive while leased
    std::unique_lock<std::mutex> lock_;
    Entry* entry_ = nullptr;
  };

  /// Builds a cache entry from a freshly bound plan: walks the plan
  /// collecting parameter slots and IN-list rebuild hooks, and decides
  /// whether the entry is fully parameterized.
  static Entry Prepare(BoundSelect bound, std::vector<Value> params,
                       uint64_t schema_epoch, const BinderOptions& options);

  /// Returns a lease on the cached entry for `key` with `params`
  /// substituted into its plan, ready to execute — or an empty lease on
  /// miss, invalidation (different schema epoch / binder options), or
  /// when another thread currently leases the entry (bypass).
  Lease Lookup(const std::string& key, const std::vector<Value>& params,
               uint64_t schema_epoch, const BinderOptions& options);

  /// Inserts (or replaces) the entry under `key`, evicting LRU entries
  /// beyond capacity.
  void Insert(const std::string& key, Entry entry);

  /// Drops every entry.
  void Flush();

  /// Shrinking below the current size evicts LRU entries immediately.
  void set_capacity(size_t capacity);

  size_t capacity() const;
  size_t size() const;
  PlanCacheStats stats() const;
  void ResetStats();

  static constexpr size_t kDefaultCapacity = 128;

 private:
  struct Slot {
    Entry entry;
    std::mutex mutex;  // held (via Lease) while the plan executes
  };
  using SlotPtr = std::shared_ptr<Slot>;
  using LruList = std::list<std::pair<std::string, SlotPtr>>;

  void EraseLocked(const std::string& key);
  void EvictToCapacityLocked();

  mutable std::mutex mutex_;  // guards everything below
  size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  PlanCacheStats stats_;
};

}  // namespace pdm

#endif  // PDM_ENGINE_PLAN_CACHE_H_
