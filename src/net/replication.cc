#include "net/replication.h"

#include <algorithm>

#include "obs/metrics.h"

namespace pdm::net {

ReplicationChannel::ReplicationChannel(WanConfig config)
    : link_(std::move(config)) {
  // Bound once; registry instruments are stable for the process life.
  lag_hist_ = &obs::MetricsRegistry::Global().log_histogram(
      "replication.lag_seconds", {{"site", link_.config().site}});
  obs::MetricsRegistry::Global().counter("replication.shipped_statements",
                                         {{"site", link_.config().site}});
}

ReplicationShipment ReplicationChannel::Ship(size_t payload_bytes,
                                             size_t n_statements,
                                             double commit_s,
                                             double apply_seconds) {
  ReplicationShipment shipment;
  if (!link_.status().ok() || n_statements == 0) return shipment;
  shipment.statements = n_statements;
  shipment.payload_bytes = payload_bytes;
  shipment.commit_s = commit_s;
  shipment.apply_seconds = apply_seconds;
  // One shipment in flight per site: a pull issued while the previous
  // response is still streaming waits for the channel.
  shipment.queued = busy_until_s_ > commit_s;
  shipment.start_s = std::max(commit_s, busy_until_s_);
  // The pull is an ordinary WAN exchange — request (the pull) padded to
  // whole packets, response (the DML text) charged payload plus half a
  // packet — so replication traffic shows up in the site's
  // wan.exchange_sim_seconds and exchange records like any other.
  shipment.link_seconds = link_.RecordBatchRoundTrip(
      kReplicationPullBytes, payload_bytes, n_statements);
  busy_until_s_ = shipment.start_s + shipment.link_seconds;
  // Apply is replica CPU, not wire time: it extends the visible lag but
  // leaves the channel free for the next pull.
  shipment.end_s = busy_until_s_ + apply_seconds;

  shipments_ += 1;
  statements_shipped_ += n_statements;
  const double lag = shipment.lag_seconds();
  max_lag_s_ = std::max(max_lag_s_, lag);
  sum_lag_s_ += lag;
  lag_hist_->Observe(lag);
  obs::MetricsRegistry::Global()
      .counter("replication.shipped_statements", {{"site", link_.config().site}})
      .Add(n_statements);
  return shipment;
}

void ReplicationChannel::Reset() {
  link_.ResetStats();
  busy_until_s_ = 0;
  shipments_ = 0;
  statements_shipped_ = 0;
  max_lag_s_ = 0;
  sum_lag_s_ = 0;
}

}  // namespace pdm::net
