#include "net/wan_model.h"

#include <cmath>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pdm::net {

void WanStats::Add(const WanStats& other) {
  round_trips += other.round_trips;
  statements += other.statements;
  messages += other.messages;
  request_packets += other.request_packets;
  response_packets += other.response_packets;
  request_payload_bytes += other.request_payload_bytes;
  response_payload_bytes += other.response_payload_bytes;
  charged_bytes += other.charged_bytes;
  latency_seconds += other.latency_seconds;
  transfer_seconds += other.transfer_seconds;
}

std::string WanStats::ToString() const {
  return StrFormat(
      "round_trips=%zu statements=%zu charged_bytes=%.0f latency=%.2fs "
      "transfer=%.2fs total=%.2fs",
      round_trips, statements, charged_bytes, latency_seconds,
      transfer_seconds, total_seconds());
}

double WanLink::RecordRoundTrip(size_t request_bytes,
                                size_t response_payload_bytes) {
  return RecordBatchRoundTrip(request_bytes, response_payload_bytes,
                              /*n_statements=*/1);
}

double WanLink::RecordBatchRoundTrip(size_t request_bytes,
                                     size_t response_payload_bytes,
                                     size_t n_statements) {
  // An empty batch never reaches the wire: no exchange, no packet
  // padding, no latency.
  if (n_statements == 0) return 0.0;
  const double packet = static_cast<double>(config_.packet_bytes);
  size_t req_packets = static_cast<size_t>(
      std::max(1.0, std::ceil(static_cast<double>(request_bytes) / packet)));

  double charged = 0;
  size_t resp_packets = 0;
  switch (config_.accounting) {
    case Accounting::kPaperModel:
      // Requests padded to whole packets; responses charged payload plus
      // the expected half-filled last packet (paper eq. (3)). A batch is
      // one exchange: the concatenated request is padded once and only
      // one half-filled final response packet is charged — not one per
      // statement.
      charged = static_cast<double>(req_packets) * packet +
                static_cast<double>(response_payload_bytes) + packet / 2.0;
      break;
    case Accounting::kExactPackets:
      resp_packets = static_cast<size_t>(std::max(
          1.0,
          std::ceil(static_cast<double>(response_payload_bytes) / packet)));
      charged = static_cast<double>(req_packets + resp_packets) * packet;
      break;
  }

  double latency = 2.0 * config_.latency_s;
  double transfer = config_.TransferSeconds(charged);

  stats_.round_trips += 1;
  stats_.statements += n_statements;
  stats_.messages += 2;
  stats_.request_packets += req_packets;
  stats_.response_packets += resp_packets;
  stats_.request_payload_bytes += static_cast<double>(request_bytes);
  stats_.response_payload_bytes += static_cast<double>(response_payload_bytes);
  stats_.charged_bytes += charged;
  stats_.latency_seconds += latency;
  stats_.transfer_seconds += transfer;

  // One t_lat + one t_transfer span per exchange on the simulated
  // timeline, attributed to whatever action is current on this thread.
  // Summing these spans reproduces the WAN stats split exactly — the
  // per-component hook bench/trace_breakdown reconciles against
  // model::PredictFromTraffic (eqs. (1)-(3)).
  obs::Tracer& tracer = obs::Tracer::Global();
  if (tracer.enabled()) {
    obs::TraceContext ctx = obs::CurrentContext();
    tracer.RecordSim(ctx, "wan:latency", obs::ModelTerm::kLat, latency,
                     StrFormat("stmts=%zu", n_statements));
    tracer.RecordSim(ctx, "wan:transfer", obs::ModelTerm::kTransfer, transfer,
                     StrFormat("charged=%.0fB", charged));
  }
  static obs::Histogram& exchange_hist = obs::MetricsRegistry::Global().histogram(
      "wan.exchange_sim_seconds", obs::ExponentialBounds(0.01, 4.0, 10));
  exchange_hist.Observe(latency + transfer);
  return latency + transfer;
}

}  // namespace pdm::net
