#include "net/wan_model.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pdm::net {

WanLink::WanLink(WanConfig config)
    : config_(std::move(config)), status_(config_.Validate()) {
  // Per-site exchange histogram, bound once: the pointer stays valid
  // for the life of the process (MetricsRegistry never evicts an
  // instrument, and ResetAll zeroes values in place — see the
  // reset-then-record regression in tests/obs_test.cc). Eager-register
  // the ring drop counter alongside so the exporter surfaces it at
  // zero before anything is lost.
  exchange_hist_ = &obs::MetricsRegistry::Global().log_histogram(
      "wan.exchange_sim_seconds", {{"site", config_.site}});
  obs::MetricsRegistry::Global().counter("wan.exchange_log_dropped");
  obs::MetricsRegistry::Global().counter("wan.exchange_aborted",
                                         {{"site", config_.site}});
}

Status WanConfig::Validate() const {
  if (!std::isfinite(latency_s) || latency_s < 0) {
    return Status::InvalidArgument(
        StrFormat("WanConfig: latency_s must be finite and >= 0 (got %g)",
                  latency_s));
  }
  if (!std::isfinite(dtr_kbit) || dtr_kbit <= 0) {
    return Status::InvalidArgument(StrFormat(
        "WanConfig: dtr_kbit must be finite and > 0 (got %g) — "
        "TransferSeconds would divide by it",
        dtr_kbit));
  }
  if (packet_bytes == 0) {
    return Status::InvalidArgument(
        "WanConfig: packet_bytes must be > 0 — packet accounting would "
        "divide by it");
  }
  return Status::OK();
}

Result<WanLink> WanLink::Create(WanConfig config) {
  PDM_RETURN_NOT_OK(config.Validate());
  return WanLink(config);
}

void WanStats::Add(const WanStats& other) {
  round_trips += other.round_trips;
  statements += other.statements;
  messages += other.messages;
  request_packets += other.request_packets;
  response_packets += other.response_packets;
  request_payload_bytes += other.request_payload_bytes;
  response_payload_bytes += other.response_payload_bytes;
  charged_bytes += other.charged_bytes;
  latency_seconds += other.latency_seconds;
  transfer_seconds += other.transfer_seconds;
  overlap_hidden_seconds += other.overlap_hidden_seconds;
}

std::string WanStats::ToString() const {
  return StrFormat(
      "round_trips=%zu statements=%zu charged_bytes=%.0f latency=%.2fs "
      "transfer=%.2fs hidden=%.2fs total=%.2fs",
      round_trips, statements, charged_bytes, latency_seconds,
      transfer_seconds, overlap_hidden_seconds, total_seconds());
}

double WanLink::RecordRoundTrip(size_t request_bytes,
                                size_t response_payload_bytes) {
  return RecordBatchRoundTrip(request_bytes, response_payload_bytes,
                              /*n_statements=*/1);
}

double WanLink::RecordBatchRoundTrip(size_t request_bytes,
                                     size_t response_payload_bytes,
                                     size_t n_statements) {
  // An empty batch never reaches the wire: no exchange, no packet
  // padding, no latency.
  if (n_statements == 0) return 0.0;
  // The degenerate sequential case: issued at the previous exchange's
  // completion, so nothing can overlap and the timings stay additive.
  BeginExchange(request_bytes, n_statements, /*overlap_previous=*/false);
  return CompleteExchange(response_payload_bytes).seconds();
}

void WanLink::BeginExchange(size_t request_bytes, size_t n_statements,
                            bool overlap_previous) {
  if (!status_.ok() || exchange_open_ || n_statements == 0) return;
  exchange_open_ = true;
  open_request_bytes_ = request_bytes;
  open_statements_ = n_statements;
  // Speculative issue: the previous response's prefix becomes decodable
  // the instant its transfer starts, so that is the earliest the next
  // request can leave the client. Sequential issue — and an "overlapped"
  // issue with no previous exchange on the timeline — waits for full
  // completion.
  open_overlapped_ = overlap_previous && stats_.round_trips > 0;
  open_issue_s_ = open_overlapped_ ? last_transfer_start_s_ : now_s_;
}

ExchangeTiming WanLink::CompleteExchange(size_t response_payload_bytes) {
  ExchangeTiming timing;
  if (!status_.ok() || !exchange_open_) return timing;
  exchange_open_ = false;

  const double packet = static_cast<double>(config_.packet_bytes);
  size_t req_packets = static_cast<size_t>(std::max(
      1.0,
      std::ceil(static_cast<double>(open_request_bytes_) / packet)));

  double charged = 0;
  size_t resp_packets = 0;
  switch (config_.accounting) {
    case Accounting::kPaperModel:
      // Requests padded to whole packets; responses charged payload plus
      // the expected half-filled last packet (paper eq. (3)). A batch is
      // one exchange: the concatenated request is padded once and only
      // one half-filled final response packet is charged — not one per
      // statement.
      charged = static_cast<double>(req_packets) * packet +
                static_cast<double>(response_payload_bytes) + packet / 2.0;
      break;
    case Accounting::kExactPackets:
      resp_packets = static_cast<size_t>(std::max(
          1.0,
          std::ceil(static_cast<double>(response_payload_bytes) / packet)));
      charged = static_cast<double>(req_packets + resp_packets) * packet;
      break;
  }

  const double latency = 2.0 * config_.latency_s;
  const double transfer = config_.TransferSeconds(charged);

  // Timeline: the latency window runs from the issue; the response
  // transfer then serializes on link occupancy (one stream at a time).
  // Whatever part of the latency window coincided with the previous
  // exchange's still-running transfer is hidden — for an exchange
  // issued at the previous transfer's start this is exactly
  // min(2 * T_Lat, previous transfer time).
  timing.issue_s = open_issue_s_;
  timing.latency_s = latency;
  timing.transfer_s = transfer;
  timing.transfer_start_s =
      std::max(open_issue_s_ + latency, link_busy_until_s_);
  timing.end_s = timing.transfer_start_s + transfer;
  double elapsed = timing.end_s - now_s_;
  // A sequential issue adds its full latency + transfer by construction;
  // forcing 0 (rather than clamping the recomputed difference) keeps it
  // exact against floating-point reassociation residue.
  timing.hidden_s =
      open_overlapped_
          ? std::clamp(latency + transfer - elapsed, 0.0, latency)
          : 0.0;

  now_s_ = timing.end_s;
  link_busy_until_s_ = timing.end_s;
  last_transfer_start_s_ = timing.transfer_start_s;

  stats_.round_trips += 1;
  stats_.statements += open_statements_;
  stats_.messages += 2;
  stats_.request_packets += req_packets;
  stats_.response_packets += resp_packets;
  stats_.request_payload_bytes += static_cast<double>(open_request_bytes_);
  stats_.response_payload_bytes += static_cast<double>(response_payload_bytes);
  stats_.charged_bytes += charged;
  stats_.latency_seconds += latency;
  stats_.transfer_seconds += transfer;
  stats_.overlap_hidden_seconds += timing.hidden_s;

  ExchangeRecord record;
  record.statements = open_statements_;
  record.request_packets = req_packets;
  record.response_payload_bytes = static_cast<double>(response_payload_bytes);
  record.charged_bytes = charged;
  record.transfer_seconds = transfer;
  record.hidden_seconds = timing.hidden_s;
  record.overlapped = open_overlapped_;
  exchanges_.push_back(record);
  if (config_.exchange_log_capacity > 0 &&
      exchanges_.size() > config_.exchange_log_capacity) {
    exchanges_.pop_front();
    ++exchanges_dropped_;
    obs::MetricsRegistry::Global()
        .counter("wan.exchange_log_dropped")
        .Increment();
  }

  // One t_lat + one t_transfer span per exchange on the simulated
  // timeline, attributed to whatever action is current on this thread.
  // The hidden part of the latency window is recorded as an *overlay*
  // (it coincides with the previous transfer rather than adding time),
  // so summing t_lat + t_transfer spans still reproduces the WAN's
  // elapsed total exactly, and t_overlap_hidden attributes the saving
  // per level (bench/table_pipelined reconciles all three).
  obs::Tracer& tracer = obs::Tracer::Global();
  if (tracer.enabled()) {
    obs::TraceContext ctx = obs::CurrentContext();
    if (timing.hidden_s > 0) {
      tracer.RecordSimOverlay(ctx, "wan:overlap_hidden",
                              obs::ModelTerm::kOverlapHidden, timing.hidden_s,
                              StrFormat("stmts=%zu", open_statements_));
    }
    tracer.RecordSim(ctx, "wan:latency", obs::ModelTerm::kLat,
                     latency - timing.hidden_s,
                     StrFormat("stmts=%zu", open_statements_));
    tracer.RecordSim(ctx, "wan:transfer", obs::ModelTerm::kTransfer, transfer,
                     StrFormat("charged=%.0fB", charged));
  }
  exchange_hist_->Observe(timing.seconds());
  return timing;
}

void WanLink::AbortExchange() {
  if (!exchange_open_) return;  // idempotent; nothing to release
  // Release the whole open-exchange state, not just the flag: a stale
  // issue point / request size surviving here would silently corrupt
  // the next Begin/Complete pair's accounting. The timeline fields
  // (now_s_, link_busy_until_s_, last_transfer_start_s_) were never
  // touched by BeginExchange, so clearing the open state restores the
  // link exactly to its pre-BeginExchange occupancy.
  exchange_open_ = false;
  open_overlapped_ = false;
  open_issue_s_ = 0;
  open_request_bytes_ = 0;
  open_statements_ = 0;
  ++aborted_exchanges_;
  obs::MetricsRegistry::Global()
      .counter("wan.exchange_aborted", {{"site", config_.site}})
      .Increment();
}

void WanLink::ResetStats() {
  stats_ = WanStats();
  exchanges_.clear();
  exchanges_dropped_ = 0;
  aborted_exchanges_ = 0;
  now_s_ = 0;
  link_busy_until_s_ = 0;
  last_transfer_start_s_ = 0;
  exchange_open_ = false;
  open_overlapped_ = false;
  open_issue_s_ = 0;
  open_request_bytes_ = 0;
  open_statements_ = 0;
}

}  // namespace pdm::net
