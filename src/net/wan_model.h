#ifndef PDM_NET_WAN_MODEL_H_
#define PDM_NET_WAN_MODEL_H_

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "common/result.h"

namespace pdm::obs {
class LogHistogram;
}  // namespace pdm::obs

namespace pdm::net {

/// How message volume is charged to the link.
enum class Accounting {
  /// The paper's Section 2 conventions: every request is padded to whole
  /// packets, every response is charged its payload plus half a packet
  /// (the expected fill of the last packet).
  kPaperModel,
  /// Exact packetization: requests and responses are both rounded up to
  /// whole packets (ablation; see EXPERIMENTS.md).
  kExactPackets,
};

/// WAN link parameters. The kbit/kB units follow the paper: 1 kbit =
/// 1024 bit, 1 kB = 1024 B (verified against its printed tables).
struct WanConfig {
  double latency_s = 0.15;     // one-way latency T_Lat
  double dtr_kbit = 256;       // data transfer rate, kbit/s
  size_t packet_bytes = 4096;  // size_p
  Accounting accounting = Accounting::kPaperModel;
  /// Site label this link's metrics report under (the paper's worldwide
  /// deployment: one link per remote site). Keep values low-cardinality
  /// — they become metric dimensions.
  std::string site = "local";
  /// Ring capacity of the per-exchange record log: once full, the
  /// oldest record is dropped per completed exchange
  /// (WanLink::exchanges_dropped() counts them). 0 = unbounded — only
  /// for short-lived links whose caller owns the lifecycle; a
  /// long-running workload on an unbounded log grows without limit.
  size_t exchange_log_capacity = 4096;

  double TransferSeconds(double bytes) const {
    return bytes * 8.0 / (dtr_kbit * 1024.0);
  }

  /// Rejects configurations whose arithmetic would poison every derived
  /// statistic: `TransferSeconds` divides by `dtr_kbit` and packet
  /// accounting divides by `packet_bytes`, so zero (or non-finite)
  /// values yield inf/NaN seconds that propagate silently into stats,
  /// spans and model reconciliation.
  Status Validate() const;
};

/// Accumulated traffic statistics of a simulated link. `latency_seconds`
/// and `transfer_seconds` reproduce exactly the two-way split the
/// paper's tables print; `overlap_hidden_seconds` is the portion of the
/// latency that pipelined exchanges hid under a still-streaming previous
/// response (DESIGN.md 5g) — zero on every non-pipelined path.
struct WanStats {
  size_t round_trips = 0;
  size_t statements = 0;  // SQL statements shipped (>= round_trips when batched)
  size_t messages = 0;    // 2 per round trip
  size_t request_packets = 0;
  size_t response_packets = 0;  // only charged in kExactPackets mode
  double request_payload_bytes = 0;
  double response_payload_bytes = 0;
  double charged_bytes = 0;  // volume after packet accounting
  double latency_seconds = 0;
  double transfer_seconds = 0;
  double overlap_hidden_seconds = 0;  // latency hidden by pipelining

  /// Elapsed simulated time of all exchanges: additive latency +
  /// transfer, minus whatever latency pipelining hid. Identical to the
  /// historical latency + transfer sum whenever nothing was pipelined.
  double total_seconds() const {
    return latency_seconds + transfer_seconds - overlap_hidden_seconds;
  }

  void Add(const WanStats& other);
  std::string ToString() const;
};

/// Timing of one completed exchange on the link's simulated timeline.
struct ExchangeTiming {
  double issue_s = 0;           // request left the client
  double transfer_start_s = 0;  // first response byte on the wire
  double end_s = 0;             // last response byte at the client
  double latency_s = 0;         // full 2 * T_Lat of this exchange
  double transfer_s = 0;        // charged volume / dtr
  double hidden_s = 0;          // latency overlapped with prior transfer
  /// Wall the exchange added to the timeline (latency - hidden +
  /// transfer); equals latency_s + transfer_s when nothing overlapped.
  double seconds() const { return latency_s - hidden_s + transfer_s; }
};

/// Realized traffic of one exchange, kept per exchange so the pipelined
/// closed form can be reconciled level by level (bench/table_pipelined).
struct ExchangeRecord {
  size_t statements = 0;
  size_t request_packets = 0;
  double response_payload_bytes = 0;
  double charged_bytes = 0;
  double transfer_seconds = 0;
  double hidden_seconds = 0;
  bool overlapped = false;  // issued against the previous response stream
};

/// Deterministic WAN link simulator: turns request/response sizes into
/// latency + transfer delay per the configured accounting and keeps
/// cumulative statistics. This replaces the paper's Germany<->Brazil WAN.
///
/// Two accounting paths share one timeline (DESIGN.md 5g):
///  * `RecordRoundTrip`/`RecordBatchRoundTrip` — the degenerate
///    sequential case: each exchange is issued when the previous one
///    fully completed, so latency and transfer are purely additive.
///  * `BeginExchange`/`CompleteExchange` — the pipelined case: an
///    exchange issued with `overlap_previous` starts while the previous
///    response is still streaming (at its transfer start, the earliest
///    instant its prefix is decodable). Its latency window then runs
///    concurrently with the remaining transfer, and only the
///    non-overlapped part — 2*T_Lat minus min(2*T_Lat, previous
///    transfer) — is charged; transfer itself serializes on link
///    occupancy (one response stream at a time).
class WanLink {
 public:
  /// Binds the per-site exchange histogram at construction (defined in
  /// wan_model.cc); an invalid config leaves the link inert.
  explicit WanLink(WanConfig config);

  /// Validating factory; prefer this over direct construction when the
  /// config is not statically known-good.
  static Result<WanLink> Create(WanConfig config);

  const WanConfig& config() const { return config_; }

  /// Construction-time validation result. An invalid link is inert:
  /// every Record*/Begin/Complete call accounts nothing and returns
  /// zeroed timings, so a misconfigured link can never emit inf/NaN.
  const Status& status() const { return status_; }

  /// Accounts one query/response exchange. `request_bytes` is the size
  /// of the shipped SQL text, `response_payload_bytes` the serialized
  /// result. Returns the seconds this exchange took.
  double RecordRoundTrip(size_t request_bytes, size_t response_payload_bytes);

  /// Accounts one *batched* exchange: `n_statements` statements
  /// concatenated into one request and answered by one response stream.
  /// Packet accounting is per batch, not per statement — the request is
  /// padded to whole packets once, and (in paper mode) only ONE
  /// half-filled final response packet is charged for the whole batch.
  /// An empty batch (`n_statements == 0`) is not an exchange: nothing
  /// is recorded and 0 seconds are returned.
  /// Returns the seconds the exchange took.
  double RecordBatchRoundTrip(size_t request_bytes,
                              size_t response_payload_bytes,
                              size_t n_statements);

  /// Opens an exchange on the timeline. With `overlap_previous` the
  /// request is issued at the previous exchange's transfer start
  /// (speculative issue against the streaming prefix); without, at the
  /// previous exchange's completion — the degenerate sequential case.
  /// At most one exchange may be open at a time; an empty batch
  /// (`n_statements == 0`) opens nothing.
  void BeginExchange(size_t request_bytes, size_t n_statements,
                     bool overlap_previous);

  /// Closes the open exchange with its response size: computes the
  /// timeline (occupancy-serialized transfer, non-overlapped latency),
  /// accumulates stats and emits wan:latency / wan:transfer /
  /// wan:overlap_hidden spans. Returns zeroed timing if no exchange is
  /// open (or the link is invalid).
  ExchangeTiming CompleteExchange(size_t response_payload_bytes);

  /// Abandons the open exchange without accounting any traffic or time
  /// (fail-fast paths that drained an in-flight batch whose action
  /// already failed, e.g. a PendingBatch destroyed mid-pipeline). The
  /// timeline is left exactly as if BeginExchange had never been called
  /// — the next exchange issues at the previous *completed* exchange's
  /// boundary — and every open-exchange field is cleared so no stale
  /// issue point or request size can leak into a later completion.
  /// Aborts are observable: aborted_exchanges() counts them, as does
  /// the "wan.exchange_aborted"{site} metric family.
  void AbortExchange();

  bool exchange_open() const { return exchange_open_; }

  /// Exchanges opened and then abandoned (never accounted) since the
  /// last ResetStats.
  size_t aborted_exchanges() const { return aborted_exchanges_; }

  const WanStats& stats() const { return stats_; }

  /// Per-exchange traffic since the last ResetStats, oldest first
  /// (thread-compatible copy of the bounded ring). When the ring
  /// overflowed, only the newest `exchange_log_capacity` records
  /// remain — check exchanges_dropped() before reconciling totals
  /// against the records.
  std::vector<ExchangeRecord> exchanges() const {
    return {exchanges_.begin(), exchanges_.end()};
  }

  /// Records evicted from the ring since the last ResetStats.
  size_t exchanges_dropped() const { return exchanges_dropped_; }

  /// Clears stats, the per-exchange records (including the drop
  /// counter) and the timeline (the next exchange starts at simulated
  /// time zero with a free link).
  void ResetStats();

 private:
  WanConfig config_;
  Status status_;
  WanStats stats_;
  /// Labeled "wan.exchange_sim_seconds"{site} instrument, bound once at
  /// construction (registry pointers are stable for the process life).
  obs::LogHistogram* exchange_hist_ = nullptr;
  /// Bounded ring (WanConfig::exchange_log_capacity).
  std::deque<ExchangeRecord> exchanges_;
  size_t exchanges_dropped_ = 0;
  size_t aborted_exchanges_ = 0;

  // Timeline state (simulated seconds since the last ResetStats).
  double now_s_ = 0;                  // completion of the latest exchange
  double link_busy_until_s_ = 0;      // end of the latest transfer
  double last_transfer_start_s_ = 0;  // start of the latest transfer

  // The open exchange, if any.
  bool exchange_open_ = false;
  bool open_overlapped_ = false;
  double open_issue_s_ = 0;
  size_t open_request_bytes_ = 0;
  size_t open_statements_ = 0;
};

}  // namespace pdm::net

#endif  // PDM_NET_WAN_MODEL_H_
