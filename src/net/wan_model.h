#ifndef PDM_NET_WAN_MODEL_H_
#define PDM_NET_WAN_MODEL_H_

#include <cstddef>
#include <string>

namespace pdm::net {

/// How message volume is charged to the link.
enum class Accounting {
  /// The paper's Section 2 conventions: every request is padded to whole
  /// packets, every response is charged its payload plus half a packet
  /// (the expected fill of the last packet).
  kPaperModel,
  /// Exact packetization: requests and responses are both rounded up to
  /// whole packets (ablation; see EXPERIMENTS.md).
  kExactPackets,
};

/// WAN link parameters. The kbit/kB units follow the paper: 1 kbit =
/// 1024 bit, 1 kB = 1024 B (verified against its printed tables).
struct WanConfig {
  double latency_s = 0.15;     // one-way latency T_Lat
  double dtr_kbit = 256;       // data transfer rate, kbit/s
  size_t packet_bytes = 4096;  // size_p
  Accounting accounting = Accounting::kPaperModel;

  double TransferSeconds(double bytes) const {
    return bytes * 8.0 / (dtr_kbit * 1024.0);
  }
};

/// Accumulated traffic statistics of a simulated link. `latency_seconds`
/// and `transfer_seconds` reproduce exactly the two-way split the
/// paper's tables print.
struct WanStats {
  size_t round_trips = 0;
  size_t statements = 0;  // SQL statements shipped (>= round_trips when batched)
  size_t messages = 0;    // 2 per round trip
  size_t request_packets = 0;
  size_t response_packets = 0;  // only charged in kExactPackets mode
  double request_payload_bytes = 0;
  double response_payload_bytes = 0;
  double charged_bytes = 0;  // volume after packet accounting
  double latency_seconds = 0;
  double transfer_seconds = 0;

  double total_seconds() const { return latency_seconds + transfer_seconds; }

  void Add(const WanStats& other);
  std::string ToString() const;
};

/// Deterministic WAN link simulator: turns request/response sizes into
/// latency + transfer delay per the configured accounting and keeps
/// cumulative statistics. This replaces the paper's Germany<->Brazil WAN.
class WanLink {
 public:
  explicit WanLink(WanConfig config) : config_(config) {}

  const WanConfig& config() const { return config_; }

  /// Accounts one query/response exchange. `request_bytes` is the size
  /// of the shipped SQL text, `response_payload_bytes` the serialized
  /// result. Returns the seconds this exchange took.
  double RecordRoundTrip(size_t request_bytes, size_t response_payload_bytes);

  /// Accounts one *batched* exchange: `n_statements` statements
  /// concatenated into one request and answered by one response stream.
  /// Packet accounting is per batch, not per statement — the request is
  /// padded to whole packets once, and (in paper mode) only ONE
  /// half-filled final response packet is charged for the whole batch.
  /// An empty batch (`n_statements == 0`) is not an exchange: nothing
  /// is recorded and 0 seconds are returned.
  /// Returns the seconds the exchange took.
  double RecordBatchRoundTrip(size_t request_bytes,
                              size_t response_payload_bytes,
                              size_t n_statements);

  const WanStats& stats() const { return stats_; }
  void ResetStats() { stats_ = WanStats(); }

 private:
  WanConfig config_;
  WanStats stats_;
};

}  // namespace pdm::net

#endif  // PDM_NET_WAN_MODEL_H_
