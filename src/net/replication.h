#ifndef PDM_NET_REPLICATION_H_
#define PDM_NET_REPLICATION_H_

#include <cstddef>

#include "net/wan_model.h"

namespace pdm::obs {
class LogHistogram;
}  // namespace pdm::obs

namespace pdm::net {

/// Wire size of the replication pull request ("send me everything past
/// commit ts N"). One packet under every realistic packet size.
inline constexpr size_t kReplicationPullBytes = 64;

/// Timing of one replication shipment on the channel's simulated
/// timeline: a batch of commit records committed at `commit_s`, pulled
/// over the site's WAN link and applied at the replica.
struct ReplicationShipment {
  size_t statements = 0;
  size_t payload_bytes = 0;   // concatenated DML text
  double commit_s = 0;        // when the newest shipped record committed
  double start_s = 0;         // when the pull left the replica
  double link_seconds = 0;    // 2*T_Lat + transfer (paper accounting)
  double apply_seconds = 0;   // replica-side apply cost
  double end_s = 0;           // records applied and visible at the replica
  /// Staleness this shipment's records were visible at: commit on the
  /// primary to applied-and-readable on the replica.
  double lag_seconds() const { return end_s - commit_s; }
  /// True when the channel was still busy with the previous shipment at
  /// commit time — the queued part of the lag is then start_s - commit_s
  /// on top of the closed-form ship time.
  bool queued = false;
};

/// The asynchronous replication stream of one site (DESIGN.md 5l):
/// commit records are pulled from the primary over the site's own WAN
/// link — one pull request out, one DML-payload response back, so the
/// paper's packet accounting (request padded to whole packets, response
/// charged payload plus half a packet) applies to replication traffic
/// exactly as it does to query traffic. The channel serializes
/// shipments (one in flight per site) and keeps the site's replication
/// lag aggregates plus the "replication.lag_seconds"{site} histogram.
///
/// For a shipment that finds the channel idle the visible lag is the
/// closed form model::ReplicaStalenessSeconds reconciles against:
///   lag = 2*T_Lat + (size_p + payload + size_p/2) / dtr + t_apply
class ReplicationChannel {
 public:
  /// An invalid config leaves the channel inert (see WanLink).
  explicit ReplicationChannel(WanConfig config);

  const Status& status() const { return link_.status(); }
  const WanConfig& config() const { return link_.config(); }

  /// Ships one batch of `n_statements` commit records totalling
  /// `payload_bytes` of DML text, committed (the newest of them) at
  /// simulated time `commit_s`, and applies them at the replica for
  /// `apply_seconds`. Returns the shipment timing; an empty batch ships
  /// nothing. `commit_s` must be non-decreasing across calls (commit
  /// order is ship order).
  ReplicationShipment Ship(size_t payload_bytes, size_t n_statements,
                           double commit_s, double apply_seconds);

  /// The underlying link (exchange records, WAN stats, site label).
  const WanLink& link() const { return link_; }

  /// Simulated time the channel becomes free for the next pull.
  double busy_until_s() const { return busy_until_s_; }

  size_t shipments() const { return shipments_; }
  size_t statements_shipped() const { return statements_shipped_; }
  double max_lag_seconds() const { return max_lag_s_; }
  double sum_lag_seconds() const { return sum_lag_s_; }
  double mean_lag_seconds() const {
    return shipments_ == 0 ? 0.0 : sum_lag_s_ / static_cast<double>(shipments_);
  }

  /// Clears the aggregates and the timeline (next shipment starts at
  /// simulated time zero on a free channel).
  void Reset();

 private:
  WanLink link_;
  obs::LogHistogram* lag_hist_ = nullptr;
  double busy_until_s_ = 0;
  size_t shipments_ = 0;
  size_t statements_shipped_ = 0;
  double max_lag_s_ = 0;
  double sum_lag_s_ = 0;
};

}  // namespace pdm::net

#endif  // PDM_NET_REPLICATION_H_
