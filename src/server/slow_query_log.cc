#include "server/slow_query_log.h"

#include <algorithm>
#include <bit>
#include <cctype>

#include "common/string_util.h"
#include "obs/export.h"

namespace pdm {

namespace {

constexpr uint64_t kUnsetBound = ~uint64_t{0};

/// First SQL keyword, lowercased (bounded — keywords are short).
std::string FirstKeywordLower(std::string_view sql) {
  size_t i = 0;
  while (i < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[i])) != 0) {
    ++i;
  }
  size_t start = i;
  while (i < sql.size() && i - start < 16 &&
         std::isalpha(static_cast<unsigned char>(sql[i])) != 0) {
    ++i;
  }
  return ToLowerAscii(sql.substr(start, i - start));
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty() || haystack.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    size_t j = 0;
    while (j < needle.size() &&
           std::tolower(static_cast<unsigned char>(haystack[i + j])) ==
               std::tolower(static_cast<unsigned char>(needle[j]))) {
      ++j;
    }
    if (j == needle.size()) return true;
  }
  return false;
}

/// Orders records most-expensive-first (ties broken by wall seconds so
/// the order is still deterministic for equal simulated charges).
bool MoreExpensive(const SlowQueryRecord& a, const SlowQueryRecord& b) {
  if (a.sim_server_seconds != b.sim_server_seconds) {
    return a.sim_server_seconds > b.sim_server_seconds;
  }
  return a.wall_seconds > b.wall_seconds;
}

/// Min-heap comparator: heap_[0] is the cheapest kept record.
bool HeapCmp(const SlowQueryRecord& a, const SlowQueryRecord& b) {
  return MoreExpensive(a, b);
}

}  // namespace

std::string_view ClassifyStatementClass(std::string_view sql,
                                        const ExecStats& stats) {
  // DML first: a write is a write regardless of what its scans touched.
  std::string kw = FirstKeywordLower(sql);
  if (kw == "insert" || kw == "update" || kw == "delete") return "dml";
  // Structure expansion (the paper's dominant workload): recursive CTE
  // traversals and direct link-table hops.
  if (stats.cte_rows_scanned > 0 ||
      ContainsIgnoreCase(sql, "with recursive") ||
      ContainsIgnoreCase(sql, "link.left")) {
    return "expand";
  }
  if (stats.agg_input_rows + stats.vec_agg_input_rows > 0) return "agg";
  if (stats.join_probe_rows + stats.vec_join_probe_rows > 0 ||
      stats.hash_join_builds > 0 || stats.index_join_probes > 0) {
    return "join";
  }
  if (stats.index_scans > 0) return "point";
  return "scan";
}

std::string_view EngineLabel(const ExecStats& stats) {
  return stats.vec_rows_scanned + stats.vec_join_probe_rows +
                     stats.vec_agg_input_rows >
                 0
             ? "vec"
             : "row";
}

bool SlowQueryLog::MightRecord(const Limits& limits, double sim_seconds,
                               double wall_seconds) const {
  if (limits.threshold_seconds > 0 &&
      (sim_seconds > limits.threshold_seconds ||
       wall_seconds > limits.threshold_seconds)) {
    return true;
  }
  if (limits.top_k == 0) return false;
  uint64_t bound = heap_min_bits_.load(std::memory_order_relaxed);
  if (bound == kUnsetBound) return true;  // heap not full yet
  return sim_seconds > std::bit_cast<double>(bound);
}

size_t SlowQueryLog::Note(const Limits& limits, SlowQueryRecord record) {
  bool over_threshold =
      limits.threshold_seconds > 0 &&
      (record.sim_server_seconds > limits.threshold_seconds ||
       record.wall_seconds > limits.threshold_seconds);

  std::lock_guard<std::mutex> lock(mutex_);
  bool for_heap = limits.top_k > 0 &&
                  (heap_.size() < limits.top_k ||
                   MoreExpensive(record, heap_.front()));
  if (!over_threshold && !for_heap) return 0;

  size_t evicted = 0;
  if (over_threshold && limits.ring_capacity > 0) {
    ring_.push_back(record);
    while (ring_.size() > limits.ring_capacity) {
      ring_.pop_front();
      ++dropped_;
      ++evicted;
    }
  }

  if (for_heap) {
    if (heap_.size() >= limits.top_k) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapCmp);
      heap_.back() = std::move(record);
    } else {
      heap_.push_back(std::move(record));
    }
    std::push_heap(heap_.begin(), heap_.end(), HeapCmp);
    heap_min_bits_.store(
        heap_.size() >= limits.top_k
            ? std::bit_cast<uint64_t>(heap_.front().sim_server_seconds)
            : kUnsetBound,
        std::memory_order_relaxed);
  }
  return evicted;
}

std::vector<SlowQueryRecord> SlowQueryLog::OverThreshold() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

size_t SlowQueryLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<SlowQueryRecord> SlowQueryLog::TopK() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SlowQueryRecord> out = heap_;
  std::sort(out.begin(), out.end(), MoreExpensive);
  return out;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  dropped_ = 0;
  heap_.clear();
  heap_min_bits_.store(kUnsetBound, std::memory_order_relaxed);
}

std::string SlowQueryRecordsToJson(
    const std::vector<SlowQueryRecord>& records) {
  std::string out = "[\n";
  bool first = true;
  for (const SlowQueryRecord& r : records) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"sql\":\"";
    obs::AppendJsonEscaped(&out, r.sql);
    out += "\",\"fingerprint\":\"";
    obs::AppendJsonEscaped(&out, r.fingerprint);
    out += "\",\"stmt_class\":\"";
    obs::AppendJsonEscaped(&out, r.stmt_class);
    out += "\",\"engine\":\"";
    obs::AppendJsonEscaped(&out, r.engine);
    out += "\",\"site\":\"";
    obs::AppendJsonEscaped(&out, r.site);
    out += "\",\"plan_summary\":\"";
    obs::AppendJsonEscaped(&out, r.plan_summary);
    out += StrFormat(
        "\",\"wave_id\":%llu,\"batch_id\":%llu,\"client_id\":%llu,"
        "\"plan_cache_hit\":%s,\"coalesced\":%s",
        static_cast<unsigned long long>(r.wave_id),
        static_cast<unsigned long long>(r.batch_id),
        static_cast<unsigned long long>(r.client_id),
        r.plan_cache_hit ? "true" : "false", r.coalesced ? "true" : "false");
    out += StrFormat(
        ",\"result_rows\":%zu,\"response_bytes\":%zu,\"rows_scanned\":%zu,"
        "\"cte_rows_scanned\":%zu,\"vec_rows_scanned\":%zu",
        r.result_rows, r.response_bytes, r.rows_scanned, r.cte_rows_scanned,
        r.vec_rows_scanned);
    out += StrFormat(
        ",\"join_probe_rows\":%zu,\"vec_join_probe_rows\":%zu,"
        "\"agg_input_rows\":%zu,\"vec_agg_input_rows\":%zu",
        r.join_probe_rows, r.vec_join_probe_rows, r.agg_input_rows,
        r.vec_agg_input_rows);
    out += StrFormat(
        ",\"sim_server_seconds\":%.9f,\"wall_seconds\":%.9f,"
        "\"queue_wait_seconds\":%.9f}",
        r.sim_server_seconds, r.wall_seconds, r.queue_wait_seconds);
  }
  out += "\n]\n";
  return out;
}

}  // namespace pdm
