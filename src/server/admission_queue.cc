#include "server/admission_queue.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace pdm {

namespace {

/// Queue-pressure gauges: live depth of the admission queue, sampled by
/// the exporter (DESIGN.md 5k). Registry references are stable.
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().gauge("queue.depth");
  return g;
}

obs::Gauge& QueuePendingStatementsGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().gauge("queue.pending_statements");
  return g;
}

}  // namespace

void AdmissionQueue::RegisterClient() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++active_clients_;
}

void AdmissionQueue::UnregisterClient() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_clients_ > 0) --active_clients_;
  // Departure can complete the barrier for the remaining submitters.
  cv_.notify_all();
}

size_t AdmissionQueue::active_clients() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_clients_;
}

bool AdmissionQueue::WaveReadyLocked() const {
  if (queue_.empty()) return false;
  if (active_clients_ == 0) return true;  // nobody to wait for
  size_t statements = 0;
  std::vector<uint64_t> clients;
  clients.reserve(queue_.size());
  for (const Submission* sub : queue_) {
    statements += sub->statements.size();
    if (std::find(clients.begin(), clients.end(), sub->client_id) ==
        clients.end()) {
      clients.push_back(sub->client_id);
    }
  }
  const size_t window = server_->config().coalesce_window;
  if (window > 0 && statements >= window) return true;
  return clients.size() >= active_clients_;
}

std::vector<DbServer::BatchStatementResult> AdmissionQueue::Submit(
    uint64_t client_id, std::span<const std::string> statements) {
  if (statements.empty()) return {};

  Submission sub;
  sub.client_id = client_id;
  sub.statements = statements;
  sub.results.resize(statements.size());
  sub.trace = obs::CurrentContext();
  sub.enqueue_time = std::chrono::steady_clock::now();

  QueueDepthGauge().Increment();
  QueuePendingStatementsGauge().Add(static_cast<int64_t>(statements.size()));

  std::unique_lock<std::mutex> lock(mutex_);
  queue_.push_back(&sub);
  cv_.notify_all();  // our arrival may complete the barrier
  for (;;) {
    if (sub.done) return std::move(sub.results);
    if (!wave_in_progress_ && WaveReadyLocked()) {
      RunWaveLocked(lock);  // we are the leader; loop to re-check `done`
      continue;
    }
    cv_.wait(lock);
  }
}

void AdmissionQueue::RunWaveLocked(std::unique_lock<std::mutex>& lock) {
  wave_in_progress_ = true;
  const size_t window = server_->config().coalesce_window;

  // Drain whole submissions FIFO until the window is reached. The first
  // submission is always taken, so oversized submissions still execute.
  std::vector<Submission*> wave;
  size_t statements = 0;
  while (!queue_.empty()) {
    Submission* sub = queue_.front();
    if (!wave.empty() && window > 0 &&
        statements + sub->statements.size() > window) {
      break;
    }
    queue_.pop_front();
    wave.push_back(sub);
    statements += sub->statements.size();
  }
  const uint64_t wave_id = ++last_wave_id_;

  WaveLogEntry entry;
  entry.wave_id = wave_id;
  entry.statements = statements;
  entry.submissions = wave.size();
  std::vector<uint64_t> clients;
  for (const Submission* sub : wave) {
    if (std::find(clients.begin(), clients.end(), sub->client_id) ==
        clients.end()) {
      clients.push_back(sub->client_id);
    }
  }
  entry.clients = clients.size();

  QueueDepthGauge().Sub(static_cast<int64_t>(wave.size()));
  QueuePendingStatementsGauge().Sub(static_cast<int64_t>(statements));

  // Admission-to-drain wait, computed unconditionally at the drain
  // moment: it feeds the queue.wait_seconds histograms and the wave
  // items' slow-query attribution even when tracing is off. One
  // queue:wait span per submission still attaches to the submitter's
  // trace when the tracer is on.
  obs::Tracer& tracer = obs::Tracer::Global();
  const auto drained = std::chrono::steady_clock::now();
  std::vector<double> waits;
  waits.reserve(wave.size());
  obs::LogHistogram& wait_hist =
      obs::MetricsRegistry::Global().log_histogram("queue.wait_seconds");
  for (const Submission* sub : wave) {
    const double wait_s =
        std::chrono::duration<double>(drained - sub->enqueue_time).count();
    waits.push_back(wait_s);
    wait_hist.Observe(wait_s);
    obs::MetricsRegistry::Global()
        .log_histogram(
            "queue.wait_seconds",
            {{"client", StrFormat("%llu", static_cast<unsigned long long>(
                                              sub->client_id))}})
        .Observe(wait_s);
    if (tracer.enabled()) {
      tracer.RecordWallRange(sub->trace, "queue:wait",
                             obs::ModelTerm::kQueueWait, sub->enqueue_time,
                             drained);
    }
  }

  std::vector<DbServer::WaveItem> items;
  items.reserve(statements);
  for (size_t s = 0; s < wave.size(); ++s) {
    Submission* sub = wave[s];
    for (size_t i = 0; i < sub->statements.size(); ++i) {
      items.push_back(
          DbServer::WaveItem{sub->client_id, &sub->statements[i],
                             &sub->results[i], sub->trace,
                             /*submission=*/s, /*queue_wait_s=*/waits[s]});
    }
  }

  // Engine work happens outside the queue lock; `wave_in_progress_`
  // keeps this the only executing wave, so the server's statement log
  // and worker pool see one wave at a time.
  lock.unlock();
  DbServer::WaveExecution execution = server_->ExecuteWave(items, wave_id);
  lock.lock();

  entry.unique_statements = execution.unique_statements;
  entry.read_only = execution.read_only;
  entry.dml_statements = execution.dml_statements;
  entry.conflicts = execution.conflicts;
  wave_log_.push_back(entry);
  for (Submission* sub : wave) sub->done = true;
  wave_in_progress_ = false;
  cv_.notify_all();
}

std::vector<AdmissionQueue::WaveLogEntry> AdmissionQueue::wave_log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wave_log_;
}

void AdmissionQueue::ClearWaveLog() {
  std::lock_guard<std::mutex> lock(mutex_);
  wave_log_.clear();
}

}  // namespace pdm
