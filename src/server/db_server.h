#ifndef PDM_SERVER_DB_SERVER_H_
#define PDM_SERVER_DB_SERVER_H_

#include <atomic>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <array>

#include "common/status.h"
#include "engine/database.h"
#include "exec/result_set.h"
#include "model/cost_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/slow_query_log.h"
#include "server/worker_pool.h"

namespace pdm {

class AdmissionQueue;

/// The database server endpoint of the simulated client/server system.
/// Owns the Database, executes SQL text arriving "over the wire" and
/// sizes the serialized response.
///
/// Response sizing: with `fixed_row_bytes` > 0, every result row is
/// charged that many bytes — this mirrors the paper's "average size of a
/// node" accounting (512 B). With 0, realistic per-value wire sizes are
/// used instead (ablation).
class DbServer {
 public:
  struct Config {
    size_t fixed_row_bytes = 0;  // 0 = realistic serialization
    /// Worker threads for ExecuteBatch and read-only admission waves.
    /// 1 (default) = serial execution, identical to today's behaviour;
    /// > 1 executes the read-only statements of a batch/wave
    /// concurrently (DESIGN.md 5d).
    size_t batch_threads = 1;
    /// Maximum statements the admission queue coalesces into one
    /// execution wave (DESIGN.md 5e); 0 = unbounded. Submissions are
    /// never split across waves, so a wave always holds at least one
    /// whole submission even when it exceeds the window.
    size_t coalesce_window = 0;
    /// Ring capacity of the statement log: once full, the oldest entry
    /// is dropped per append (statement_log_dropped() counts them).
    /// 0 = unbounded (callers owning the lifecycle, e.g. short tests).
    size_t statement_log_capacity = 4096;
    /// MVCC wave lanes (DESIGN.md 5h): a wave mixing read-only and
    /// DML-carrying submissions runs the readers against the wave
    /// snapshot (dedup + worker pool, as in all-read-only waves) while
    /// a serial writer lane applies the DML submissions concurrently.
    /// false = pre-MVCC behaviour — any wave containing DML runs fully
    /// serial in admission order (the A/B baseline the concurrent-DML
    /// bench measures against). Waves containing DDL/CALL or
    /// unparseable statements always run serial regardless.
    bool mvcc_waves = true;
    /// Run MVCC version garbage collection after every N DML-carrying
    /// waves (0 = never). GC prunes only versions no live snapshot can
    /// reach, so it never changes results.
    size_t gc_interval_waves = 64;
    /// Simulated server-cost calibration for the t_server spans
    /// (DESIGN.md 5f): every executed statement is charged simulated
    /// seconds from its ExecStats, so per-component reconciliation
    /// covers eq. (1)'s server term too.
    model::ServerCostParams server_cost;
    /// Site label this server reports under in the dimensioned metrics
    /// (DESIGN.md 5k): the paper's worldwide deployment is modeled as
    /// one server per site, so the label is per-server, not per-call.
    std::string site = "local";
    /// Slow-query log (DESIGN.md 5k): statements whose simulated OR
    /// wall cost exceeds the threshold land in a bounded ring; the K
    /// most expensive by simulated cost are kept regardless.
    /// threshold <= 0 disables the ring (top-K stays on).
    double slow_query_threshold = 0.05;
    size_t slow_query_log_capacity = 256;
    size_t slow_query_top_k = 16;
  };

  /// One executed statement, as observed at the server boundary.
  struct StatementLogEntry {
    std::string sql;
    size_t result_rows = 0;
    size_t affected_rows = 0;
    size_t response_bytes = 0;
    /// True if the statement reused a cached plan (engine/plan_cache.h).
    bool plan_cache_hit = false;
    /// Batch this statement arrived in; 0 = standalone Execute().
    uint64_t batch_id = 0;
    /// Pool worker that executed it (0 = serial / the calling thread).
    size_t worker = 0;
    /// Execution wave of the admission queue that ran this statement;
    /// 0 = the statement did not pass through the queue (DESIGN.md 5e).
    uint64_t wave_id = 0;
    /// Submitting client of a wave statement (meaningful when
    /// wave_id != 0; standalone traffic reports 0).
    uint64_t client_id = 0;
    /// True if this statement never reached the engine: its wave
    /// contained an identical statement (same fingerprint key and
    /// parameters) whose result was fanned out to this slot.
    bool coalesced = false;
    /// Engine work of this statement (0 for coalesced fan-out slots):
    /// base-table and recursive-CTE rows touched (exec/exec_context.h).
    /// `vec_rows_scanned` is the subset of `rows_scanned` swept by the
    /// vectorized engine, charged at the cheaper per-row rate.
    size_t rows_scanned = 0;
    size_t cte_rows_scanned = 0;
    size_t vec_rows_scanned = 0;
    /// Join-probe and aggregate-input rows, split by engine (disjoint
    /// pairs, see exec/exec_context.h). Trailing so the coalesced
    /// fan-out entry's aggregate-init keeps zero-defaulting them.
    size_t join_probe_rows = 0;
    size_t vec_join_probe_rows = 0;
    size_t agg_input_rows = 0;
    size_t vec_agg_input_rows = 0;

    /// The entry's engine work, shaped for model::ServerSeconds.
    model::ServerWork Work() const {
      model::ServerWork work;
      work.parsed = !plan_cache_hit;
      work.rows_scanned = rows_scanned;
      work.vec_rows_scanned = vec_rows_scanned;
      work.cte_rows_scanned = cte_rows_scanned;
      work.result_rows = result_rows;
      work.join_probe_rows = join_probe_rows;
      work.vec_join_probe_rows = vec_join_probe_rows;
      work.agg_input_rows = agg_input_rows;
      work.vec_agg_input_rows = vec_agg_input_rows;
      return work;
    }
  };

  /// Outcome of one statement of a batch. Fail-fast-per-statement: an
  /// error is recorded in its slot, sibling statements still complete.
  struct BatchStatementResult {
    Status status;
    ResultSet result;         // empty on error
    size_t response_bytes = 0;  // errors occupy a minimal frame
  };

  /// One statement of an execution wave: who submitted it, the SQL
  /// text, and the result slot to fill. Built by the AdmissionQueue
  /// when it drains submissions into a wave.
  struct WaveItem {
    uint64_t client_id = 0;
    const std::string* sql = nullptr;
    BatchStatementResult* slot = nullptr;
    /// Submitter's trace context: spans recorded while the wave leader
    /// executes this statement attach to the submitting client's action.
    obs::TraceContext trace;
    /// Index of the submission this statement belongs to within its
    /// wave. Lane assignment is per submission: one DML statement sends
    /// the whole submission to the writer lane, so its later statements
    /// read their own writes.
    size_t submission = 0;
    /// Wall seconds this statement's submission spent in the admission
    /// queue before its wave drained (reported by the slow-query log).
    double queue_wait_s = 0;
  };

  /// What ExecuteWave did with a wave, reported back to the queue's
  /// wave log.
  struct WaveExecution {
    size_t unique_statements = 0;  // engine executions after dedup
    bool read_only = false;        // dedup + worker pool eligible
    size_t dml_statements = 0;     // INSERT/UPDATE/DELETE in the wave
    /// Writer-lane statements that lost a first-writer-wins race and
    /// returned StatusCode::kWriteConflict (clients retry those).
    size_t conflicts = 0;
  };

  DbServer();
  explicit DbServer(Config config);
  ~DbServer();

  DbServer(const DbServer&) = delete;
  DbServer& operator=(const DbServer&) = delete;

  /// Executes one statement arriving as SQL text; fills `out` and
  /// `response_bytes` (serialized size under the configured policy).
  Status Execute(std::string_view sql, ResultSet* out,
                 size_t* response_bytes);

  /// Executes the statements of one batch (a single wire round trip)
  /// and returns one result per statement, in statement order. When
  /// `Config::batch_threads > 1` and every statement is read-only
  /// (SELECT / WITH), statements run concurrently on the worker pool;
  /// batches containing DML/DDL/CALL always run serially in statement
  /// order. Results are identical across thread counts; the statement
  /// log keeps statement order and records the batch id + worker.
  std::vector<BatchStatementResult> ExecuteBatch(
      std::span<const std::string> statements);

  /// Async submission handle (DESIGN.md 5g): executes the batch on a
  /// background thread and returns immediately, so a pipelined client
  /// can overlap the next level's execution with its own processing of
  /// the previous response. The submitting thread's trace context is
  /// captured here and re-established on the background thread, so
  /// server spans still attach to the submitting client's action.
  /// Concurrent in-flight batches are safe for read-only statements
  /// (the DESIGN.md 5d contract).
  std::future<std::vector<BatchStatementResult>> ExecuteBatchAsync(
      std::vector<std::string> statements);

  /// ExecuteBatchAsync through the shared admission queue: the
  /// background thread calls Submit(), so concurrent pipelined clients
  /// still coalesce into execution waves (DESIGN.md 5e).
  std::future<std::vector<BatchStatementResult>> SubmitAsync(
      uint64_t client_id, std::vector<std::string> statements);

  /// Submits one client's statements to the shared admission queue
  /// (DESIGN.md 5e) and blocks until an execution wave has produced
  /// every result. Concurrent clients' submissions coalesce into one
  /// wave; identical statements within a wave execute once and fan
  /// their result out. Thread-safe — this is the endpoint concurrent
  /// clients are expected to use; while admission traffic is in flight,
  /// do not call Execute()/ExecuteBatch() directly on this server.
  std::vector<BatchStatementResult> Submit(
      uint64_t client_id, std::span<const std::string> statements);

  /// The shared admission queue (client registration and the per-wave
  /// log live there).
  AdmissionQueue& admission_queue() { return *admission_; }

  /// Serialized size of a result set under this server's policy.
  size_t ResponseBytes(const ResultSet& result) const;

  Database& database() { return db_; }
  const Config& config() const { return config_; }
  Config& mutable_config() { return config_; }

  /// Statement logging (off by default): records every statement that
  /// arrives over the wire — the tool a DBA would use to diagnose the
  /// paper's "series of isolated SQL queries" problem. The log is a
  /// bounded ring (Config::statement_log_capacity) and every append is
  /// mutex-guarded, so serial Execute() traffic may interleave with
  /// batch/wave execution without racing or growing without bound.
  void EnableStatementLog(bool enable) { log_enabled_ = enable; }
  /// Snapshot of the log, oldest first (thread-safe copy).
  std::vector<StatementLogEntry> statement_log() const;
  size_t statement_log_size() const;
  /// Entries evicted from the ring since the last clear.
  size_t statement_log_dropped() const;
  void ClearStatementLog();

  /// Aggregate plan-cache counters of the owned Database, reported next
  /// to the statement log: hit rate here is what tells a DBA whether the
  /// client's navigational queries are reusing server-side plans.
  PlanCacheStats plan_cache_stats() const { return db_.plan_cache().stats(); }

  /// Slow-query log (DESIGN.md 5k): the over-threshold ring and the
  /// always-on top-K of the most expensive statements, with per-term
  /// breakdowns. Always on; tuned via Config::slow_query_*.
  const SlowQueryLog& slow_query_log() const { return slow_query_log_; }
  /// JSON array of the current top-K, most expensive first.
  std::string SlowQueryTopKJson() const {
    return SlowQueryRecordsToJson(slow_query_log_.TopK());
  }

  /// Resets everything observability-only — the statement log, the
  /// plan-cache hit/miss counters, the admission queue's wave log, the
  /// process-wide metrics registry and the tracer's finished spans —
  /// without touching cached plans or data. Benches and tests use this
  /// instead of rebuilding the server. Note the last two are
  /// process-wide surfaces (obs/): resetting one server resets them for
  /// every server in the process.
  void ResetObservability();

 private:
  friend class AdmissionQueue;

  /// Executes one drained wave (called by the AdmissionQueue's leader,
  /// never concurrently with itself): fingerprints every statement
  /// once, deduplicates identical fingerprints among the read-only
  /// statements (one engine execution, result fan-out) and runs the
  /// unique ones on the worker pool against the wave's MVCC snapshot.
  /// DML-carrying submissions run on a concurrent serial writer lane
  /// (Config::mvcc_waves); waves containing DDL/CALL or unparseable
  /// statements fall back to serial admission order.
  WaveExecution ExecuteWave(std::span<const WaveItem> items,
                            uint64_t wave_id);

  /// The pool is created lazily and rebuilt when batch_threads changes.
  /// WorkerPool::ParallelFor is not reentrant, so every pool use (and
  /// rebuild) happens under `pool_mutex_` — concurrent batches' parallel
  /// sections serialize against each other while their serial paths and
  /// engine work still overlap freely.
  WorkerPool& EnsurePool(size_t threads);

  /// Appends one entry under the log mutex, evicting the oldest past
  /// the ring capacity.
  void AppendLogEntry(StatementLogEntry entry);

  /// Post-execution telemetry shared by all three paths (serial, batch,
  /// wave): observes the dimensioned statement histogram
  /// "server.statement_sim_seconds"{site, stmt_class, engine} and feeds
  /// the slow-query log.
  void RecordStatementTelemetry(const std::string& sql,
                                const ExecStats& stats, size_t result_rows,
                                size_t response_bytes, double sim_seconds,
                                double wall_seconds, double queue_wait_s,
                                uint64_t wave_id, uint64_t batch_id,
                                uint64_t client_id, bool plan_cache_hit);

  Config config_;
  Database db_;
  bool log_enabled_ = false;
  mutable std::mutex log_mutex_;
  std::deque<StatementLogEntry> statement_log_;
  size_t statement_log_dropped_ = 0;
  std::atomic<uint64_t> last_batch_id_{0};
  std::atomic<uint64_t> dml_waves_since_gc_{0};
  std::mutex pool_mutex_;
  std::unique_ptr<WorkerPool> pool_;
  std::unique_ptr<AdmissionQueue> admission_;
  SlowQueryLog slow_query_log_;
  /// Per-(stmt_class × engine) cache of the labeled statement-histogram
  /// pointers (site is fixed per server). Registry instruments are
  /// never evicted, so a benign racing fill stores the same pointer.
  std::array<std::atomic<obs::LogHistogram*>, 12> stmt_histograms_{};
};

}  // namespace pdm

#endif  // PDM_SERVER_DB_SERVER_H_
