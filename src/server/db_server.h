#ifndef PDM_SERVER_DB_SERVER_H_
#define PDM_SERVER_DB_SERVER_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "exec/result_set.h"
#include "server/worker_pool.h"

namespace pdm {

/// The database server endpoint of the simulated client/server system.
/// Owns the Database, executes SQL text arriving "over the wire" and
/// sizes the serialized response.
///
/// Response sizing: with `fixed_row_bytes` > 0, every result row is
/// charged that many bytes — this mirrors the paper's "average size of a
/// node" accounting (512 B). With 0, realistic per-value wire sizes are
/// used instead (ablation).
class DbServer {
 public:
  struct Config {
    size_t fixed_row_bytes = 0;  // 0 = realistic serialization
    /// Worker threads for ExecuteBatch. 1 (default) = serial execution,
    /// identical to today's behaviour; > 1 executes the read-only
    /// statements of a batch concurrently (DESIGN.md 5d).
    size_t batch_threads = 1;
  };

  /// One executed statement, as observed at the server boundary.
  struct StatementLogEntry {
    std::string sql;
    size_t result_rows = 0;
    size_t affected_rows = 0;
    size_t response_bytes = 0;
    /// True if the statement reused a cached plan (engine/plan_cache.h).
    bool plan_cache_hit = false;
    /// Batch this statement arrived in; 0 = standalone Execute().
    uint64_t batch_id = 0;
    /// Pool worker that executed it (0 = serial / the calling thread).
    size_t worker = 0;
  };

  /// Outcome of one statement of a batch. Fail-fast-per-statement: an
  /// error is recorded in its slot, sibling statements still complete.
  struct BatchStatementResult {
    Status status;
    ResultSet result;         // empty on error
    size_t response_bytes = 0;  // errors occupy a minimal frame
  };

  DbServer() = default;
  explicit DbServer(Config config) : config_(config) {}

  DbServer(const DbServer&) = delete;
  DbServer& operator=(const DbServer&) = delete;

  /// Executes one statement arriving as SQL text; fills `out` and
  /// `response_bytes` (serialized size under the configured policy).
  Status Execute(std::string_view sql, ResultSet* out,
                 size_t* response_bytes);

  /// Executes the statements of one batch (a single wire round trip)
  /// and returns one result per statement, in statement order. When
  /// `Config::batch_threads > 1` and every statement is read-only
  /// (SELECT / WITH), statements run concurrently on the worker pool;
  /// batches containing DML/DDL/CALL always run serially in statement
  /// order. Results are identical across thread counts; the statement
  /// log keeps statement order and records the batch id + worker.
  std::vector<BatchStatementResult> ExecuteBatch(
      std::span<const std::string> statements);

  /// Serialized size of a result set under this server's policy.
  size_t ResponseBytes(const ResultSet& result) const;

  Database& database() { return db_; }
  const Config& config() const { return config_; }
  Config& mutable_config() { return config_; }

  /// Statement logging (off by default): records every statement that
  /// arrives over the wire — the tool a DBA would use to diagnose the
  /// paper's "series of isolated SQL queries" problem.
  void EnableStatementLog(bool enable) { log_enabled_ = enable; }
  const std::vector<StatementLogEntry>& statement_log() const {
    return statement_log_;
  }
  void ClearStatementLog() { statement_log_.clear(); }

  /// Aggregate plan-cache counters of the owned Database, reported next
  /// to the statement log: hit rate here is what tells a DBA whether the
  /// client's navigational queries are reusing server-side plans.
  PlanCacheStats plan_cache_stats() const { return db_.plan_cache().stats(); }

  /// Resets everything observability-only — the statement log and the
  /// plan-cache hit/miss counters — without touching cached plans or
  /// data. Benches and tests use this instead of rebuilding the server.
  void ResetObservability() {
    ClearStatementLog();
    db_.plan_cache().ResetStats();
  }

 private:
  /// The pool is created lazily and rebuilt when batch_threads changes.
  WorkerPool& EnsurePool(size_t threads);

  Config config_;
  Database db_;
  bool log_enabled_ = false;
  std::vector<StatementLogEntry> statement_log_;
  uint64_t last_batch_id_ = 0;
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace pdm

#endif  // PDM_SERVER_DB_SERVER_H_
