#ifndef PDM_SERVER_DB_SERVER_H_
#define PDM_SERVER_DB_SERVER_H_

#include <memory>
#include <string_view>

#include "common/status.h"
#include "engine/database.h"
#include "exec/result_set.h"

namespace pdm {

/// The database server endpoint of the simulated client/server system.
/// Owns the Database, executes SQL text arriving "over the wire" and
/// sizes the serialized response.
///
/// Response sizing: with `fixed_row_bytes` > 0, every result row is
/// charged that many bytes — this mirrors the paper's "average size of a
/// node" accounting (512 B). With 0, realistic per-value wire sizes are
/// used instead (ablation).
class DbServer {
 public:
  struct Config {
    size_t fixed_row_bytes = 0;  // 0 = realistic serialization
  };

  /// One executed statement, as observed at the server boundary.
  struct StatementLogEntry {
    std::string sql;
    size_t result_rows = 0;
    size_t affected_rows = 0;
    size_t response_bytes = 0;
    /// True if the statement reused a cached plan (engine/plan_cache.h).
    bool plan_cache_hit = false;
  };

  DbServer() = default;
  explicit DbServer(Config config) : config_(config) {}

  DbServer(const DbServer&) = delete;
  DbServer& operator=(const DbServer&) = delete;

  /// Executes one statement arriving as SQL text; fills `out` and
  /// `response_bytes` (serialized size under the configured policy).
  Status Execute(std::string_view sql, ResultSet* out,
                 size_t* response_bytes);

  /// Serialized size of a result set under this server's policy.
  size_t ResponseBytes(const ResultSet& result) const;

  Database& database() { return db_; }
  const Config& config() const { return config_; }
  Config& mutable_config() { return config_; }

  /// Statement logging (off by default): records every statement that
  /// arrives over the wire — the tool a DBA would use to diagnose the
  /// paper's "series of isolated SQL queries" problem.
  void EnableStatementLog(bool enable) { log_enabled_ = enable; }
  const std::vector<StatementLogEntry>& statement_log() const {
    return statement_log_;
  }
  void ClearStatementLog() { statement_log_.clear(); }

  /// Aggregate plan-cache counters of the owned Database, reported next
  /// to the statement log: hit rate here is what tells a DBA whether the
  /// client's navigational queries are reusing server-side plans.
  const PlanCacheStats& plan_cache_stats() const {
    return db_.plan_cache().stats();
  }

 private:
  Config config_;
  Database db_;
  bool log_enabled_ = false;
  std::vector<StatementLogEntry> statement_log_;
};

}  // namespace pdm

#endif  // PDM_SERVER_DB_SERVER_H_
