#include "server/worker_pool.h"

#include <chrono>

#include "obs/metrics.h"

namespace pdm {

namespace {

/// Pool utilization metrics (DESIGN.md 5k): items executed, busy
/// microseconds across workers, and a live gauge of workers currently
/// draining items (the calling thread counts as one).
obs::Counter& PoolItemsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("pool.items");
  return c;
}

obs::Counter& PoolBusyMicrosCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("pool.busy_micros");
  return c;
}

obs::Gauge& PoolActiveWorkersGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().gauge("pool.active_workers");
  return g;
}

}  // namespace

WorkerPool::WorkerPool(size_t threads) : threads_(threads == 0 ? 1 : threads) {
  workers_.reserve(threads_ - 1);
  for (size_t w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerMain(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::RunItems(size_t worker) {
  PoolActiveWorkersGauge().Increment();
  const auto start = std::chrono::steady_clock::now();
  size_t ran = 0;
  while (true) {
    size_t item = next_item_.fetch_add(1, std::memory_order_relaxed);
    if (item >= n_items_) break;
    (*task_)(item, worker);
    ++ran;
  }
  if (ran > 0) {
    PoolItemsCounter().Add(ran);
    PoolBusyMicrosCounter().Add(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  PoolActiveWorkersGauge().Decrement();
}

void WorkerPool::WorkerMain(size_t worker) {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    RunItems(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::ParallelFor(size_t n, const Task& fn) {
  if (n == 0) return;
  if (threads_ == 1 || n == 1) {
    // Inline path still counts its work so pool.items reflects every
    // item regardless of thread count.
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < n; ++i) fn(i, 0);
    PoolItemsCounter().Add(n);
    PoolBusyMicrosCounter().Add(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &fn;
    n_items_ = n;
    next_item_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  RunItems(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  task_ = nullptr;
}

}  // namespace pdm
