#include "server/worker_pool.h"

namespace pdm {

WorkerPool::WorkerPool(size_t threads) : threads_(threads == 0 ? 1 : threads) {
  workers_.reserve(threads_ - 1);
  for (size_t w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerMain(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::RunItems(size_t worker) {
  while (true) {
    size_t item = next_item_.fetch_add(1, std::memory_order_relaxed);
    if (item >= n_items_) return;
    (*task_)(item, worker);
  }
}

void WorkerPool::WorkerMain(size_t worker) {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    RunItems(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::ParallelFor(size_t n, const Task& fn) {
  if (n == 0) return;
  if (threads_ == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &fn;
    n_items_ = n;
    next_item_.store(0, std::memory_order_relaxed);
    active_workers_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  RunItems(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  task_ = nullptr;
}

}  // namespace pdm
