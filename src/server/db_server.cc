#include "server/db_server.h"

namespace pdm {

Status DbServer::Execute(std::string_view sql, ResultSet* out,
                         size_t* response_bytes) {
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  PDM_RETURN_NOT_OK(db_.Execute(sql, out));
  size_t bytes = ResponseBytes(*out);
  if (response_bytes != nullptr) *response_bytes = bytes;
  if (log_enabled_) {
    statement_log_.push_back(StatementLogEntry{
        std::string(sql), out->num_rows(), out->affected_rows, bytes,
        db_.last_stats().plan_cache_hits > 0});
  }
  return Status::OK();
}

size_t DbServer::ResponseBytes(const ResultSet& result) const {
  if (config_.fixed_row_bytes > 0) {
    // DML acks and empty results still occupy a minimal frame.
    if (result.rows.empty()) return 64;
    return result.rows.size() * config_.fixed_row_bytes;
  }
  return result.WireSize() + 64;
}

}  // namespace pdm
