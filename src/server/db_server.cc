#include "server/db_server.h"

#include "sql/fingerprint.h"

namespace pdm {

namespace {

/// Read-only statements (SELECT / WITH) are exactly the
/// fingerprint-cacheable ones; only they may run concurrently under the
/// engine's concurrency contract (DESIGN.md 5d).
bool IsReadOnlyStatement(const std::string& sql) {
  Result<sql::StatementFingerprint> fp = sql::FingerprintSql(sql);
  return fp.ok() && fp->cacheable;
}

}  // namespace

Status DbServer::Execute(std::string_view sql, ResultSet* out,
                         size_t* response_bytes) {
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  PDM_RETURN_NOT_OK(db_.Execute(sql, out));
  // Sizing walks every result row; skip it when nobody consumes it.
  if (response_bytes != nullptr || log_enabled_) {
    size_t bytes = ResponseBytes(*out);
    if (response_bytes != nullptr) *response_bytes = bytes;
    if (log_enabled_) {
      statement_log_.push_back(StatementLogEntry{
          std::string(sql), out->num_rows(), out->affected_rows, bytes,
          db_.last_stats().plan_cache_hits > 0, /*batch_id=*/0,
          /*worker=*/0});
    }
  }
  return Status::OK();
}

std::vector<DbServer::BatchStatementResult> DbServer::ExecuteBatch(
    std::span<const std::string> statements) {
  const uint64_t batch_id = ++last_batch_id_;
  std::vector<BatchStatementResult> results(statements.size());
  std::vector<StatementLogEntry> entries;
  if (log_enabled_) entries.resize(statements.size());

  size_t threads = config_.batch_threads == 0 ? 1 : config_.batch_threads;
  if (threads > 1) {
    // Parallel execution is only safe for all-read-only batches; a batch
    // containing DML/DDL/CALL runs serially in statement order.
    for (const std::string& sql : statements) {
      if (!IsReadOnlyStatement(sql)) {
        threads = 1;
        break;
      }
    }
  }

  auto run_one = [&](size_t i, size_t worker) {
    BatchStatementResult& r = results[i];
    ExecStats stats;
    r.status = db_.Execute(statements[i], &r.result, &stats);
    if (!r.status.ok()) r.result = ResultSet();
    r.response_bytes = ResponseBytes(r.result);
    if (log_enabled_) {
      entries[i] = StatementLogEntry{
          statements[i], r.result.num_rows(), r.result.affected_rows,
          r.response_bytes, stats.plan_cache_hits > 0, batch_id, worker};
    }
  };

  if (threads <= 1) {
    for (size_t i = 0; i < statements.size(); ++i) run_one(i, 0);
  } else {
    EnsurePool(threads).ParallelFor(statements.size(), run_one);
  }

  // Append log entries in statement order regardless of which worker ran
  // what, keeping the log deterministic across thread counts.
  for (StatementLogEntry& e : entries) {
    statement_log_.push_back(std::move(e));
  }
  return results;
}

WorkerPool& DbServer::EnsurePool(size_t threads) {
  if (pool_ == nullptr || pool_->threads() != threads) {
    pool_ = std::make_unique<WorkerPool>(threads);
  }
  return *pool_;
}

size_t DbServer::ResponseBytes(const ResultSet& result) const {
  if (config_.fixed_row_bytes > 0) {
    // DML acks and empty results still occupy a minimal frame.
    if (result.rows.empty()) return 64;
    return result.rows.size() * config_.fixed_row_bytes;
  }
  return result.WireSize() + 64;
}

}  // namespace pdm
