#include "server/db_server.h"

#include <cctype>
#include <chrono>
#include <numeric>
#include <thread>
#include <unordered_map>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "server/admission_queue.h"
#include "sql/fingerprint.h"

namespace pdm {

namespace {

/// Lane classification of one wave statement (DESIGN.md 5h).
enum class StatementClass {
  kReadOnly,  // SELECT / WITH: wave snapshot, dedup, worker pool
  kDml,       // INSERT / UPDATE / DELETE: serial writer lane
  kBarrier,   // DDL / CALL / EXPLAIN / unparseable: whole wave serial
};

StatementClass ClassifyStatement(const Result<sql::StatementFingerprint>& fp,
                                 const std::string& sql) {
  if (fp.ok() && fp->cacheable) return StatementClass::kReadOnly;
  // The first keyword separates DML from barriers; anything
  // unrecognized (DDL, CALL, EXPLAIN, lexical errors) is a barrier.
  size_t begin = 0;
  while (begin < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[begin]))) {
    ++begin;
  }
  size_t end = begin;
  while (end < sql.size() &&
         std::isalpha(static_cast<unsigned char>(sql[end]))) {
    ++end;
  }
  std::string word = ToLowerAscii(
      std::string_view(sql).substr(begin, end - begin));
  if (word == "insert" || word == "update" || word == "delete") {
    return StatementClass::kDml;
  }
  return StatementClass::kBarrier;
}

/// Dedup identity of a statement within a wave: the normalized
/// fingerprint key plus the type-tagged parameter values. Two
/// statements with equal group keys are the same query with the same
/// literals — one execution serves both (DESIGN.md 5e).
std::string WaveGroupKey(const sql::StatementFingerprint& fp) {
  std::string key = fp.key;
  for (const Value& param : fp.params) {
    key += '\x1f';
    key += ValueKindName(param.kind());
    key += ':';
    key += param.ToString();
  }
  return key;
}

/// Process-wide statement counter — every execution path (serial,
/// batch, wave) funnels through it, so it is the one number to watch
/// for "how much SQL hit the engine".
obs::Counter& ServerStatementCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("server.statements");
  return c;
}

/// Slot of the per-server labeled-histogram cache for a (stmt_class,
/// engine) pair. Class order: dml, expand, agg, join, point, scan.
size_t StmtHistogramSlot(std::string_view stmt_class, std::string_view engine) {
  size_t c = 5;  // scan
  if (stmt_class == "dml") c = 0;
  else if (stmt_class == "expand") c = 1;
  else if (stmt_class == "agg") c = 2;
  else if (stmt_class == "join") c = 3;
  else if (stmt_class == "point") c = 4;
  return c * 2 + (engine == "vec" ? 1 : 0);
}

/// Wall seconds since `start` on the steady clock.
double WallSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One statement's engine work, shaped for model::ServerSeconds.
model::ServerWork WorkOf(const ExecStats& stats, size_t result_rows) {
  model::ServerWork work;
  work.parsed = stats.plan_cache_hits == 0;
  work.rows_scanned = stats.rows_scanned;
  work.vec_rows_scanned = stats.vec_rows_scanned;
  work.cte_rows_scanned = stats.cte_rows_scanned;
  work.result_rows = result_rows;
  work.join_probe_rows = stats.join_probe_rows;
  work.vec_join_probe_rows = stats.vec_join_probe_rows;
  work.agg_input_rows = stats.agg_input_rows;
  work.vec_agg_input_rows = stats.vec_agg_input_rows;
  return work;
}

}  // namespace

DbServer::DbServer() : DbServer(Config{}) {}

DbServer::DbServer(Config config)
    : config_(std::move(config)),
      admission_(std::make_unique<AdmissionQueue>(this)) {
  // Eager-register the ring drop counters so the exporter surfaces
  // them at zero before anything is dropped — a dashboard that only
  // shows a drop counter once data is already lost is late.
  obs::MetricsRegistry::Global().counter("server.statement_log_dropped");
  obs::MetricsRegistry::Global().counter("server.slow_query_log_dropped");
}

DbServer::~DbServer() = default;

Status DbServer::Execute(std::string_view sql, ResultSet* out,
                         size_t* response_bytes) {
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  // Per-call stats, exactly like the batch path: last_stats() is a
  // serial-only concept and must not be used for log attribution when
  // serial and batched/wave traffic interleave.
  ExecStats stats;
  Status status;
  double sim = 0;
  double wall = 0;
  {
    obs::ScopedSpan span("server:statement", obs::ModelTerm::kServer);
    const auto wall_start = std::chrono::steady_clock::now();
    status = db_.Execute(sql, out, &stats);
    wall = WallSince(wall_start);
    sim =
        model::ServerSeconds(config_.server_cost, WorkOf(stats, out->num_rows()));
    span.set_sim_seconds(sim);
  }
  ServerStatementCounter().Increment();
  std::string sql_text(sql);
  RecordStatementTelemetry(sql_text, stats, out->num_rows(),
                           /*response_bytes=*/0, sim, wall,
                           /*queue_wait_s=*/0, /*wave_id=*/0, /*batch_id=*/0,
                           /*client_id=*/0, stats.plan_cache_hits > 0);
  PDM_RETURN_NOT_OK(status);
  // Sizing walks every result row; skip it when nobody consumes it.
  if (response_bytes != nullptr || log_enabled_) {
    size_t bytes = ResponseBytes(*out);
    if (response_bytes != nullptr) *response_bytes = bytes;
    if (log_enabled_) {
      AppendLogEntry(StatementLogEntry{
          std::move(sql_text), out->num_rows(), out->affected_rows, bytes,
          stats.plan_cache_hits > 0, /*batch_id=*/0, /*worker=*/0,
          /*wave_id=*/0, /*client_id=*/0, /*coalesced=*/false,
          stats.rows_scanned, stats.cte_rows_scanned,
          stats.vec_rows_scanned, stats.join_probe_rows,
          stats.vec_join_probe_rows, stats.agg_input_rows,
          stats.vec_agg_input_rows});
    }
  }
  return Status::OK();
}

std::vector<DbServer::BatchStatementResult> DbServer::ExecuteBatch(
    std::span<const std::string> statements) {
  const uint64_t batch_id =
      last_batch_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  // A batch is one client action: every statement span — whichever pool
  // worker runs it — attaches to the submitting thread's trace.
  const obs::TraceContext batch_ctx = obs::CurrentContext();
  std::vector<BatchStatementResult> results(statements.size());
  std::vector<StatementLogEntry> entries;
  if (log_enabled_) entries.resize(statements.size());

  // Fingerprint every statement exactly once: the fingerprint answers
  // the read-only classification here and is then consumed by
  // ExecuteFingerprinted for the plan-cache lookup — no second lex.
  std::vector<Result<sql::StatementFingerprint>> fingerprints;
  fingerprints.reserve(statements.size());
  bool read_only = true;
  for (const std::string& sql : statements) {
    fingerprints.push_back(sql::FingerprintSql(sql));
    if (!fingerprints.back().ok() || !fingerprints.back()->cacheable) {
      read_only = false;
    }
  }

  // Parallel execution is only safe for all-read-only batches; a batch
  // containing DML/DDL/CALL runs serially in statement order.
  size_t threads = config_.batch_threads == 0 ? 1 : config_.batch_threads;
  if (!read_only) threads = 1;

  auto run_one = [&](size_t i, size_t worker) {
    BatchStatementResult& r = results[i];
    ExecStats stats;
    obs::ContextScope ctx_scope(batch_ctx);
    double sim = 0;
    double wall = 0;
    {
      obs::ScopedSpan span("server:statement", obs::ModelTerm::kServer);
      const auto wall_start = std::chrono::steady_clock::now();
      if (fingerprints[i].ok()) {
        r.status = db_.ExecuteFingerprinted(std::move(*fingerprints[i]),
                                            &r.result, &stats);
      } else {
        // Lexical error: re-run through the text path for its diagnostics.
        r.status = db_.Execute(statements[i], &r.result, &stats);
      }
      wall = WallSince(wall_start);
      sim = model::ServerSeconds(config_.server_cost,
                                 WorkOf(stats, r.result.num_rows()));
      span.set_sim_seconds(sim);
    }
    ServerStatementCounter().Increment();
    if (!r.status.ok()) r.result = ResultSet();
    r.response_bytes = ResponseBytes(r.result);
    RecordStatementTelemetry(statements[i], stats, r.result.num_rows(),
                             r.response_bytes, sim, wall, /*queue_wait_s=*/0,
                             /*wave_id=*/0, batch_id, /*client_id=*/0,
                             stats.plan_cache_hits > 0);
    if (log_enabled_) {
      entries[i] = StatementLogEntry{
          statements[i], r.result.num_rows(), r.result.affected_rows,
          r.response_bytes, stats.plan_cache_hits > 0, batch_id, worker,
          /*wave_id=*/0, /*client_id=*/0, /*coalesced=*/false,
          stats.rows_scanned, stats.cte_rows_scanned,
          stats.vec_rows_scanned, stats.join_probe_rows,
          stats.vec_join_probe_rows, stats.agg_input_rows,
          stats.vec_agg_input_rows};
    }
  };

  if (threads <= 1) {
    for (size_t i = 0; i < statements.size(); ++i) run_one(i, 0);
  } else {
    // ParallelFor is not reentrant and the pool may be rebuilt when
    // batch_threads changes: concurrent async batches serialize their
    // parallel sections here (engine-level read concurrency is what the
    // pool provides; batch-level overlap comes from the serial paths).
    std::lock_guard<std::mutex> pool_lock(pool_mutex_);
    EnsurePool(threads).ParallelFor(statements.size(), run_one);
  }

  obs::MetricsRegistry::Global().counter("server.batches").Increment();
  // Append log entries in statement order regardless of which worker ran
  // what, keeping the log deterministic across thread counts.
  for (StatementLogEntry& e : entries) {
    AppendLogEntry(std::move(e));
  }
  return results;
}

std::vector<DbServer::BatchStatementResult> DbServer::Submit(
    uint64_t client_id, std::span<const std::string> statements) {
  return admission_->Submit(client_id, statements);
}

std::future<std::vector<DbServer::BatchStatementResult>>
DbServer::ExecuteBatchAsync(std::vector<std::string> statements) {
  // Capture the submitter's trace context NOW: std::async bodies run on
  // a fresh thread whose thread-local context is empty, and the spans
  // of this batch belong to the action that submitted it.
  const obs::TraceContext ctx = obs::CurrentContext();
  return std::async(std::launch::async,
                    [this, ctx, statements = std::move(statements)]() {
                      obs::ContextScope scope(ctx);
                      return ExecuteBatch(statements);
                    });
}

std::future<std::vector<DbServer::BatchStatementResult>>
DbServer::SubmitAsync(uint64_t client_id,
                      std::vector<std::string> statements) {
  const obs::TraceContext ctx = obs::CurrentContext();
  return std::async(std::launch::async,
                    [this, client_id, ctx,
                     statements = std::move(statements)]() {
                      obs::ContextScope scope(ctx);
                      return Submit(client_id, statements);
                    });
}

DbServer::WaveExecution DbServer::ExecuteWave(
    std::span<const WaveItem> items, uint64_t wave_id) {
  WaveExecution execution;
  const size_t n = items.size();

  // One fingerprint per statement, reused for the lane classification,
  // the dedup grouping, and (inside ExecuteFingerprinted) the
  // plan-cache lookup.
  std::vector<Result<sql::StatementFingerprint>> fingerprints;
  fingerprints.reserve(n);
  std::vector<StatementClass> classes;
  classes.reserve(n);
  bool read_only = true;
  bool has_barrier = false;
  size_t dml_count = 0;
  for (const WaveItem& item : items) {
    fingerprints.push_back(sql::FingerprintSql(*item.sql));
    classes.push_back(ClassifyStatement(fingerprints.back(), *item.sql));
    switch (classes.back()) {
      case StatementClass::kReadOnly:
        break;
      case StatementClass::kDml:
        read_only = false;
        ++dml_count;
        break;
      case StatementClass::kBarrier:
        read_only = false;
        has_barrier = true;
        break;
    }
  }
  execution.read_only = read_only;
  execution.dml_statements = dml_count;

  std::vector<StatementLogEntry> entries;
  if (log_enabled_) entries.resize(n);

  std::atomic<size_t> conflicts{0};

  auto run_one = [&](size_t i, size_t worker, uint64_t snapshot_ts) {
    BatchStatementResult& r = *items[i].slot;
    ExecStats stats;
    // The leader (or a pool worker) may be executing another client's
    // statement: charge the span to the submitter's trace, not ours.
    obs::ContextScope ctx_scope(items[i].trace);
    double sim = 0;
    double wall = 0;
    {
      obs::ScopedSpan span("server:statement", obs::ModelTerm::kServer);
      const auto wall_start = std::chrono::steady_clock::now();
      if (fingerprints[i].ok()) {
        r.status = db_.ExecuteFingerprinted(std::move(*fingerprints[i]),
                                            &r.result, &stats, snapshot_ts);
      } else {
        r.status = db_.Execute(*items[i].sql, &r.result, &stats, snapshot_ts);
      }
      wall = WallSince(wall_start);
      sim = model::ServerSeconds(config_.server_cost,
                                 WorkOf(stats, r.result.num_rows()));
      span.set_sim_seconds(sim);
    }
    ServerStatementCounter().Increment();
    if (IsRetryableConflict(r.status.code())) {
      conflicts.fetch_add(1, std::memory_order_relaxed);
    }
    if (!r.status.ok()) r.result = ResultSet();
    r.response_bytes = ResponseBytes(r.result);
    RecordStatementTelemetry(*items[i].sql, stats, r.result.num_rows(),
                             r.response_bytes, sim, wall,
                             items[i].queue_wait_s, wave_id, /*batch_id=*/0,
                             items[i].client_id, stats.plan_cache_hits > 0);
    if (log_enabled_) {
      entries[i] = StatementLogEntry{
          *items[i].sql, r.result.num_rows(), r.result.affected_rows,
          r.response_bytes, stats.plan_cache_hits > 0, /*batch_id=*/0,
          worker, wave_id, items[i].client_id, /*coalesced=*/false,
          stats.rows_scanned, stats.cte_rows_scanned,
          stats.vec_rows_scanned, stats.join_probe_rows,
          stats.vec_join_probe_rows, stats.agg_input_rows,
          stats.vec_agg_input_rows};
    }
  };

  // Dedups and executes a set of read-only statements against one
  // snapshot: identical fingerprints execute once (the first occurrence
  // is the representative), unique ones go to the worker pool.
  auto run_read_only = [&](const std::vector<size_t>& ro,
                           uint64_t snapshot_ts) {
    if (ro.empty()) return;
    std::unordered_map<std::string, size_t> groups;
    std::vector<size_t> rep_of(n);
    std::vector<size_t> reps;
    groups.reserve(ro.size());
    for (size_t i : ro) {
      auto [it, inserted] =
          groups.try_emplace(WaveGroupKey(*fingerprints[i]), i);
      if (inserted) reps.push_back(i);
      rep_of[i] = it->second;
    }
    execution.unique_statements += reps.size();

    size_t threads = config_.batch_threads == 0 ? 1 : config_.batch_threads;
    auto run_rep = [&](size_t r, size_t worker) {
      run_one(reps[r], worker, snapshot_ts);
    };
    if (threads <= 1 || reps.size() <= 1) {
      for (size_t r = 0; r < reps.size(); ++r) run_rep(r, 0);
    } else {
      // Same non-reentrancy rule as the batch path: only one parallel
      // section may drive the pool at a time (waves never race each
      // other, but async direct batches may be in flight too).
      std::lock_guard<std::mutex> pool_lock(pool_mutex_);
      EnsurePool(threads).ParallelFor(reps.size(), run_rep);
    }

    // Fan-out: duplicates copy the representative's outcome. Identical
    // fingerprints are the same query with the same literals evaluated
    // at the same snapshot, so this is byte-identical to executing each
    // copy.
    static obs::Counter& coalesced_counter =
        obs::MetricsRegistry::Global().counter("server.coalesced_statements");
    for (size_t i : ro) {
      if (rep_of[i] == i) continue;
      coalesced_counter.Increment();
      const BatchStatementResult& rep = *items[rep_of[i]].slot;
      BatchStatementResult& r = *items[i].slot;
      r.status = rep.status;
      r.result = rep.result;
      r.response_bytes = rep.response_bytes;
      if (log_enabled_) {
        entries[i] = StatementLogEntry{
            *items[i].sql, r.result.num_rows(), r.result.affected_rows,
            r.response_bytes, /*plan_cache_hit=*/false, /*batch_id=*/0,
            /*worker=*/0, wave_id, items[i].client_id, /*coalesced=*/true};
      }
    }
  };

  if (read_only) {
    // All-read-only wave: one snapshot for the whole wave, so every
    // statement — whichever client submitted it — sees the same data
    // even if standalone writers commit mid-wave.
    Database::Snapshot snapshot = db_.AcquireSnapshot();
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), size_t{0});
    run_read_only(all, snapshot.ts());
  } else if (has_barrier || !config_.mvcc_waves) {
    // Barrier wave (DDL/CALL/unparseable) or MVCC lanes disabled:
    // serial admission order, no deduplication (two identical INSERTs
    // are two inserts), every statement at the latest snapshot.
    for (size_t i = 0; i < n; ++i) run_one(i, 0, Database::kLatestSnapshot);
    execution.unique_statements = n;
  } else {
    // Mixed read/DML wave (the tuning-paper bottleneck this layer
    // removes): submissions carrying DML run whole — reads included, so
    // they see their own writes — on one serial writer lane, while
    // read-only submissions run concurrently against the wave snapshot.
    // Readers never see this wave's writes; writers conflict under
    // first-writer-wins and surface kWriteConflict for client retry.
    size_t num_subs = 0;
    for (const WaveItem& item : items) {
      num_subs = std::max(num_subs, item.submission + 1);
    }
    std::vector<char> sub_has_dml(num_subs, 0);
    for (size_t i = 0; i < n; ++i) {
      if (classes[i] == StatementClass::kDml) {
        sub_has_dml[items[i].submission] = 1;
      }
    }
    std::vector<size_t> readers;
    std::vector<size_t> writers;
    for (size_t i = 0; i < n; ++i) {
      (sub_has_dml[items[i].submission] ? writers : readers).push_back(i);
    }

    Database::Snapshot snapshot = db_.AcquireSnapshot();
    const uint64_t wave_ts = snapshot.ts();
    std::thread writer_lane([&] {
      // Each submission starts at the wave snapshot; its own commits
      // advance its view (read-your-writes) without exposing sibling
      // submissions' writes admitted later in the same wave.
      uint64_t sub_ts = wave_ts;
      size_t current_sub = ~size_t{0};
      for (size_t i : writers) {
        if (items[i].submission != current_sub) {
          current_sub = items[i].submission;
          sub_ts = wave_ts;
        }
        run_one(i, 0, sub_ts);
        if (classes[i] == StatementClass::kDml && items[i].slot->status.ok()) {
          sub_ts = db_.commit_clock();
        }
      }
    });
    execution.unique_statements += writers.size();
    run_read_only(readers, wave_ts);
    writer_lane.join();
  }
  execution.conflicts = conflicts.load(std::memory_order_relaxed);

  obs::MetricsRegistry::Global().counter("server.waves").Increment();
  // Admission order, whatever worker ran what — same determinism rule
  // as the batch path. Only one wave executes at a time (the queue's
  // leader), but serial Execute() traffic from other servers' clients
  // may interleave, so each append still takes the log mutex.
  for (StatementLogEntry& e : entries) {
    AppendLogEntry(std::move(e));
  }

  // Periodic version GC, after the wave snapshot is released: prunes
  // versions no live snapshot can reach (concurrent waves' snapshots
  // make the pass defer harmlessly).
  if (dml_count > 0 && config_.gc_interval_waves > 0 &&
      dml_waves_since_gc_.fetch_add(1, std::memory_order_relaxed) + 1 >=
          config_.gc_interval_waves) {
    dml_waves_since_gc_.store(0, std::memory_order_relaxed);
    db_.GarbageCollectVersions();
  }
  return execution;
}

WorkerPool& DbServer::EnsurePool(size_t threads) {
  if (pool_ == nullptr || pool_->threads() != threads) {
    pool_ = std::make_unique<WorkerPool>(threads);
  }
  return *pool_;
}

size_t DbServer::ResponseBytes(const ResultSet& result) const {
  if (config_.fixed_row_bytes > 0) {
    // DML acks and empty results still occupy a minimal frame.
    if (result.rows.empty()) return 64;
    return result.rows.size() * config_.fixed_row_bytes;
  }
  return result.WireSize() + 64;
}

void DbServer::RecordStatementTelemetry(
    const std::string& sql, const ExecStats& stats, size_t result_rows,
    size_t response_bytes, double sim_seconds, double wall_seconds,
    double queue_wait_s, uint64_t wave_id, uint64_t batch_id,
    uint64_t client_id, bool plan_cache_hit) {
  const std::string_view stmt_class = ClassifyStatementClass(sql, stats);
  const std::string_view engine = EngineLabel(stats);

  // Dimensioned latency: one LogHistogram per (site, stmt_class,
  // engine). Site is fixed per server, so the slot cache keys on the
  // other two; a racing first fill stores the same stable pointer.
  const size_t slot = StmtHistogramSlot(stmt_class, engine);
  obs::LogHistogram* hist = stmt_histograms_[slot].load(std::memory_order_acquire);
  if (hist == nullptr) {
    hist = &obs::MetricsRegistry::Global().log_histogram(
        "server.statement_sim_seconds",
        {{"site", config_.site},
         {"stmt_class", std::string(stmt_class)},
         {"engine", std::string(engine)}});
    stmt_histograms_[slot].store(hist, std::memory_order_release);
  }
  hist->Observe(sim_seconds);

  const SlowQueryLog::Limits limits{config_.slow_query_threshold,
                                    config_.slow_query_log_capacity,
                                    config_.slow_query_top_k};
  if (!slow_query_log_.MightRecord(limits, sim_seconds, wall_seconds)) return;

  SlowQueryRecord rec;
  rec.sql = sql;
  rec.fingerprint = stats.fingerprint_key;
  rec.stmt_class = std::string(stmt_class);
  rec.engine = std::string(engine);
  rec.site = config_.site;
  rec.plan_summary = StrFormat(
      "scan=%zu(vec=%zu) cte=%zu probe=%zu(vec=%zu) agg=%zu(vec=%zu) "
      "plan=%s",
      stats.rows_scanned, stats.vec_rows_scanned, stats.cte_rows_scanned,
      stats.join_probe_rows + stats.vec_join_probe_rows,
      stats.vec_join_probe_rows,
      stats.agg_input_rows + stats.vec_agg_input_rows,
      stats.vec_agg_input_rows, plan_cache_hit ? "cached" : "parsed");
  rec.wave_id = wave_id;
  rec.batch_id = batch_id;
  rec.client_id = client_id;
  rec.plan_cache_hit = plan_cache_hit;
  rec.result_rows = result_rows;
  rec.response_bytes = response_bytes;
  rec.rows_scanned = stats.rows_scanned;
  rec.cte_rows_scanned = stats.cte_rows_scanned;
  rec.vec_rows_scanned = stats.vec_rows_scanned;
  rec.join_probe_rows = stats.join_probe_rows;
  rec.vec_join_probe_rows = stats.vec_join_probe_rows;
  rec.agg_input_rows = stats.agg_input_rows;
  rec.vec_agg_input_rows = stats.vec_agg_input_rows;
  rec.sim_server_seconds = sim_seconds;
  rec.wall_seconds = wall_seconds;
  rec.queue_wait_seconds = queue_wait_s;
  size_t evicted = slow_query_log_.Note(limits, std::move(rec));
  if (evicted > 0) {
    obs::MetricsRegistry::Global()
        .counter("server.slow_query_log_dropped")
        .Add(evicted);
  }
}

void DbServer::AppendLogEntry(StatementLogEntry entry) {
  std::lock_guard<std::mutex> lock(log_mutex_);
  statement_log_.push_back(std::move(entry));
  if (config_.statement_log_capacity > 0 &&
      statement_log_.size() > config_.statement_log_capacity) {
    statement_log_.pop_front();
    ++statement_log_dropped_;
    obs::MetricsRegistry::Global()
        .counter("server.statement_log_dropped")
        .Increment();
  }
}

std::vector<DbServer::StatementLogEntry> DbServer::statement_log() const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  return {statement_log_.begin(), statement_log_.end()};
}

size_t DbServer::statement_log_size() const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  return statement_log_.size();
}

size_t DbServer::statement_log_dropped() const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  return statement_log_dropped_;
}

void DbServer::ClearStatementLog() {
  std::lock_guard<std::mutex> lock(log_mutex_);
  statement_log_.clear();
  statement_log_dropped_ = 0;
}

void DbServer::ResetObservability() {
  ClearStatementLog();
  slow_query_log_.Clear();
  db_.plan_cache().ResetStats();
  admission_->ClearWaveLog();
  // Process-wide surfaces: finished spans and every registered metric.
  // A reset means "start a fresh measurement window", and a window that
  // kept stale spans or counter values would double-count.
  obs::Tracer::Global().Clear();
  obs::MetricsRegistry::Global().ResetAll();
}

}  // namespace pdm
