#include "server/db_server.h"

#include <unordered_map>

#include "obs/metrics.h"
#include "server/admission_queue.h"
#include "sql/fingerprint.h"

namespace pdm {

namespace {

/// Dedup identity of a statement within a wave: the normalized
/// fingerprint key plus the type-tagged parameter values. Two
/// statements with equal group keys are the same query with the same
/// literals — one execution serves both (DESIGN.md 5e).
std::string WaveGroupKey(const sql::StatementFingerprint& fp) {
  std::string key = fp.key;
  for (const Value& param : fp.params) {
    key += '\x1f';
    key += ValueKindName(param.kind());
    key += ':';
    key += param.ToString();
  }
  return key;
}

/// Process-wide statement counter — every execution path (serial,
/// batch, wave) funnels through it, so it is the one number to watch
/// for "how much SQL hit the engine".
obs::Counter& ServerStatementCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("server.statements");
  return c;
}

obs::Histogram& ServerStatementHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().histogram(
      "server.statement_sim_seconds", obs::ExponentialBounds(1e-5, 4.0, 10));
  return h;
}

}  // namespace

DbServer::DbServer() : admission_(std::make_unique<AdmissionQueue>(this)) {}

DbServer::DbServer(Config config)
    : config_(config),
      admission_(std::make_unique<AdmissionQueue>(this)) {}

DbServer::~DbServer() = default;

Status DbServer::Execute(std::string_view sql, ResultSet* out,
                         size_t* response_bytes) {
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  // Per-call stats, exactly like the batch path: last_stats() is a
  // serial-only concept and must not be used for log attribution when
  // serial and batched/wave traffic interleave.
  ExecStats stats;
  Status status;
  {
    obs::ScopedSpan span("server:statement", obs::ModelTerm::kServer);
    status = db_.Execute(sql, out, &stats);
    double sim = model::ServerSeconds(
        config_.server_cost, stats.plan_cache_hits == 0, stats.rows_scanned,
        stats.cte_rows_scanned, out->num_rows());
    span.set_sim_seconds(sim);
    ServerStatementHistogram().Observe(sim);
  }
  ServerStatementCounter().Increment();
  PDM_RETURN_NOT_OK(status);
  // Sizing walks every result row; skip it when nobody consumes it.
  if (response_bytes != nullptr || log_enabled_) {
    size_t bytes = ResponseBytes(*out);
    if (response_bytes != nullptr) *response_bytes = bytes;
    if (log_enabled_) {
      AppendLogEntry(StatementLogEntry{
          std::string(sql), out->num_rows(), out->affected_rows, bytes,
          stats.plan_cache_hits > 0, /*batch_id=*/0, /*worker=*/0,
          /*wave_id=*/0, /*client_id=*/0, /*coalesced=*/false,
          stats.rows_scanned, stats.cte_rows_scanned});
    }
  }
  return Status::OK();
}

std::vector<DbServer::BatchStatementResult> DbServer::ExecuteBatch(
    std::span<const std::string> statements) {
  const uint64_t batch_id =
      last_batch_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  // A batch is one client action: every statement span — whichever pool
  // worker runs it — attaches to the submitting thread's trace.
  const obs::TraceContext batch_ctx = obs::CurrentContext();
  std::vector<BatchStatementResult> results(statements.size());
  std::vector<StatementLogEntry> entries;
  if (log_enabled_) entries.resize(statements.size());

  // Fingerprint every statement exactly once: the fingerprint answers
  // the read-only classification here and is then consumed by
  // ExecuteFingerprinted for the plan-cache lookup — no second lex.
  std::vector<Result<sql::StatementFingerprint>> fingerprints;
  fingerprints.reserve(statements.size());
  bool read_only = true;
  for (const std::string& sql : statements) {
    fingerprints.push_back(sql::FingerprintSql(sql));
    if (!fingerprints.back().ok() || !fingerprints.back()->cacheable) {
      read_only = false;
    }
  }

  // Parallel execution is only safe for all-read-only batches; a batch
  // containing DML/DDL/CALL runs serially in statement order.
  size_t threads = config_.batch_threads == 0 ? 1 : config_.batch_threads;
  if (!read_only) threads = 1;

  auto run_one = [&](size_t i, size_t worker) {
    BatchStatementResult& r = results[i];
    ExecStats stats;
    obs::ContextScope ctx_scope(batch_ctx);
    {
      obs::ScopedSpan span("server:statement", obs::ModelTerm::kServer);
      if (fingerprints[i].ok()) {
        r.status = db_.ExecuteFingerprinted(std::move(*fingerprints[i]),
                                            &r.result, &stats);
      } else {
        // Lexical error: re-run through the text path for its diagnostics.
        r.status = db_.Execute(statements[i], &r.result, &stats);
      }
      double sim = model::ServerSeconds(
          config_.server_cost, stats.plan_cache_hits == 0, stats.rows_scanned,
          stats.cte_rows_scanned, r.result.num_rows());
      span.set_sim_seconds(sim);
      ServerStatementHistogram().Observe(sim);
    }
    ServerStatementCounter().Increment();
    if (!r.status.ok()) r.result = ResultSet();
    r.response_bytes = ResponseBytes(r.result);
    if (log_enabled_) {
      entries[i] = StatementLogEntry{
          statements[i], r.result.num_rows(), r.result.affected_rows,
          r.response_bytes, stats.plan_cache_hits > 0, batch_id, worker,
          /*wave_id=*/0, /*client_id=*/0, /*coalesced=*/false,
          stats.rows_scanned, stats.cte_rows_scanned};
    }
  };

  if (threads <= 1) {
    for (size_t i = 0; i < statements.size(); ++i) run_one(i, 0);
  } else {
    // ParallelFor is not reentrant and the pool may be rebuilt when
    // batch_threads changes: concurrent async batches serialize their
    // parallel sections here (engine-level read concurrency is what the
    // pool provides; batch-level overlap comes from the serial paths).
    std::lock_guard<std::mutex> pool_lock(pool_mutex_);
    EnsurePool(threads).ParallelFor(statements.size(), run_one);
  }

  obs::MetricsRegistry::Global().counter("server.batches").Increment();
  // Append log entries in statement order regardless of which worker ran
  // what, keeping the log deterministic across thread counts.
  for (StatementLogEntry& e : entries) {
    AppendLogEntry(std::move(e));
  }
  return results;
}

std::vector<DbServer::BatchStatementResult> DbServer::Submit(
    uint64_t client_id, std::span<const std::string> statements) {
  return admission_->Submit(client_id, statements);
}

std::future<std::vector<DbServer::BatchStatementResult>>
DbServer::ExecuteBatchAsync(std::vector<std::string> statements) {
  // Capture the submitter's trace context NOW: std::async bodies run on
  // a fresh thread whose thread-local context is empty, and the spans
  // of this batch belong to the action that submitted it.
  const obs::TraceContext ctx = obs::CurrentContext();
  return std::async(std::launch::async,
                    [this, ctx, statements = std::move(statements)]() {
                      obs::ContextScope scope(ctx);
                      return ExecuteBatch(statements);
                    });
}

std::future<std::vector<DbServer::BatchStatementResult>>
DbServer::SubmitAsync(uint64_t client_id,
                      std::vector<std::string> statements) {
  const obs::TraceContext ctx = obs::CurrentContext();
  return std::async(std::launch::async,
                    [this, client_id, ctx,
                     statements = std::move(statements)]() {
                      obs::ContextScope scope(ctx);
                      return Submit(client_id, statements);
                    });
}

DbServer::WaveExecution DbServer::ExecuteWave(
    std::span<const WaveItem> items, uint64_t wave_id) {
  WaveExecution execution;
  const size_t n = items.size();

  // One fingerprint per statement, reused for the read-only check, the
  // dedup grouping, and (inside ExecuteFingerprinted) the plan-cache
  // lookup.
  std::vector<Result<sql::StatementFingerprint>> fingerprints;
  fingerprints.reserve(n);
  bool read_only = true;
  for (const WaveItem& item : items) {
    fingerprints.push_back(sql::FingerprintSql(*item.sql));
    if (!fingerprints.back().ok() || !fingerprints.back()->cacheable) {
      read_only = false;
    }
  }
  execution.read_only = read_only;

  std::vector<StatementLogEntry> entries;
  if (log_enabled_) entries.resize(n);

  auto run_one = [&](size_t i, size_t worker) {
    BatchStatementResult& r = *items[i].slot;
    ExecStats stats;
    // The leader (or a pool worker) may be executing another client's
    // statement: charge the span to the submitter's trace, not ours.
    obs::ContextScope ctx_scope(items[i].trace);
    {
      obs::ScopedSpan span("server:statement", obs::ModelTerm::kServer);
      if (fingerprints[i].ok()) {
        r.status = db_.ExecuteFingerprinted(std::move(*fingerprints[i]),
                                            &r.result, &stats);
      } else {
        r.status = db_.Execute(*items[i].sql, &r.result, &stats);
      }
      double sim = model::ServerSeconds(
          config_.server_cost, stats.plan_cache_hits == 0, stats.rows_scanned,
          stats.cte_rows_scanned, r.result.num_rows());
      span.set_sim_seconds(sim);
      ServerStatementHistogram().Observe(sim);
    }
    ServerStatementCounter().Increment();
    if (!r.status.ok()) r.result = ResultSet();
    r.response_bytes = ResponseBytes(r.result);
    if (log_enabled_) {
      entries[i] = StatementLogEntry{
          *items[i].sql, r.result.num_rows(), r.result.affected_rows,
          r.response_bytes, stats.plan_cache_hits > 0, /*batch_id=*/0,
          worker, wave_id, items[i].client_id, /*coalesced=*/false,
          stats.rows_scanned, stats.cte_rows_scanned};
    }
  };

  if (!read_only) {
    // DML/DDL/CALL wave: serial admission order, no deduplication (two
    // identical INSERTs are two inserts).
    for (size_t i = 0; i < n; ++i) run_one(i, 0);
    execution.unique_statements = n;
  } else {
    // Group identical fingerprints: the first occurrence is the
    // representative that executes; duplicates share its result.
    std::unordered_map<std::string, size_t> groups;
    std::vector<size_t> rep_of(n);
    std::vector<size_t> reps;
    groups.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto [it, inserted] = groups.try_emplace(WaveGroupKey(*fingerprints[i]), i);
      if (inserted) reps.push_back(i);
      rep_of[i] = it->second;
    }
    execution.unique_statements = reps.size();

    size_t threads = config_.batch_threads == 0 ? 1 : config_.batch_threads;
    auto run_rep = [&](size_t r, size_t worker) { run_one(reps[r], worker); };
    if (threads <= 1 || reps.size() <= 1) {
      for (size_t r = 0; r < reps.size(); ++r) run_rep(r, 0);
    } else {
      // Same non-reentrancy rule as the batch path: only one parallel
      // section may drive the pool at a time (waves never race each
      // other, but async direct batches may be in flight too).
      std::lock_guard<std::mutex> pool_lock(pool_mutex_);
      EnsurePool(threads).ParallelFor(reps.size(), run_rep);
    }

    // Fan-out: duplicates copy the representative's outcome. Identical
    // fingerprints are the same query with the same literals, so this
    // is byte-identical to executing each copy (read-only statements
    // are pure within a wave).
    static obs::Counter& coalesced_counter =
        obs::MetricsRegistry::Global().counter("server.coalesced_statements");
    for (size_t i = 0; i < n; ++i) {
      if (rep_of[i] == i) continue;
      coalesced_counter.Increment();
      const BatchStatementResult& rep = *items[rep_of[i]].slot;
      BatchStatementResult& r = *items[i].slot;
      r.status = rep.status;
      r.result = rep.result;
      r.response_bytes = rep.response_bytes;
      if (log_enabled_) {
        entries[i] = StatementLogEntry{
            *items[i].sql, r.result.num_rows(), r.result.affected_rows,
            r.response_bytes, /*plan_cache_hit=*/false, /*batch_id=*/0,
            /*worker=*/0, wave_id, items[i].client_id, /*coalesced=*/true};
      }
    }
  }

  obs::MetricsRegistry::Global().counter("server.waves").Increment();
  // Admission order, whatever worker ran what — same determinism rule
  // as the batch path. Only one wave executes at a time (the queue's
  // leader), but serial Execute() traffic from other servers' clients
  // may interleave, so each append still takes the log mutex.
  for (StatementLogEntry& e : entries) {
    AppendLogEntry(std::move(e));
  }
  return execution;
}

WorkerPool& DbServer::EnsurePool(size_t threads) {
  if (pool_ == nullptr || pool_->threads() != threads) {
    pool_ = std::make_unique<WorkerPool>(threads);
  }
  return *pool_;
}

size_t DbServer::ResponseBytes(const ResultSet& result) const {
  if (config_.fixed_row_bytes > 0) {
    // DML acks and empty results still occupy a minimal frame.
    if (result.rows.empty()) return 64;
    return result.rows.size() * config_.fixed_row_bytes;
  }
  return result.WireSize() + 64;
}

void DbServer::AppendLogEntry(StatementLogEntry entry) {
  std::lock_guard<std::mutex> lock(log_mutex_);
  statement_log_.push_back(std::move(entry));
  if (config_.statement_log_capacity > 0 &&
      statement_log_.size() > config_.statement_log_capacity) {
    statement_log_.pop_front();
    ++statement_log_dropped_;
    obs::MetricsRegistry::Global()
        .counter("server.statement_log_dropped")
        .Increment();
  }
}

std::vector<DbServer::StatementLogEntry> DbServer::statement_log() const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  return {statement_log_.begin(), statement_log_.end()};
}

size_t DbServer::statement_log_size() const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  return statement_log_.size();
}

size_t DbServer::statement_log_dropped() const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  return statement_log_dropped_;
}

void DbServer::ClearStatementLog() {
  std::lock_guard<std::mutex> lock(log_mutex_);
  statement_log_.clear();
  statement_log_dropped_ = 0;
}

void DbServer::ResetObservability() {
  ClearStatementLog();
  db_.plan_cache().ResetStats();
  admission_->ClearWaveLog();
  // Process-wide surfaces: finished spans and every registered metric.
  // A reset means "start a fresh measurement window", and a window that
  // kept stale spans or counter values would double-count.
  obs::Tracer::Global().Clear();
  obs::MetricsRegistry::Global().ResetAll();
}

}  // namespace pdm
