#ifndef PDM_SERVER_SLOW_QUERY_LOG_H_
#define PDM_SERVER_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "exec/exec_context.h"

namespace pdm {

/// One statement captured by the slow-query log: the SQL, its
/// fingerprint, a plan summary and the per-term breakdown a DBA needs
/// to attribute the cost (DESIGN.md 5k) — the paper's "find the slow
/// statements first" workflow as a server feature.
struct SlowQueryRecord {
  std::string sql;
  /// Normalized fingerprint key (empty when the statement was not
  /// fingerprintable — DDL, lexical errors).
  std::string fingerprint;
  std::string stmt_class;  // expand/point/join/agg/dml/scan
  std::string engine;      // "vec" when the batch tier did the heavy rows
  std::string site;
  /// One-line plan/work summary (scan/join/agg rows, cache outcome).
  std::string plan_summary;
  uint64_t wave_id = 0;
  uint64_t batch_id = 0;
  uint64_t client_id = 0;
  bool plan_cache_hit = false;
  /// True when this statement's result was satisfied by wave-level
  /// read coalescing rather than its own execution.
  bool coalesced = false;
  size_t result_rows = 0;
  size_t response_bytes = 0;
  size_t rows_scanned = 0;
  size_t cte_rows_scanned = 0;
  size_t vec_rows_scanned = 0;
  size_t join_probe_rows = 0;
  size_t vec_join_probe_rows = 0;
  size_t agg_input_rows = 0;
  size_t vec_agg_input_rows = 0;
  /// Per-term cost split: the simulated t_server charge (deterministic,
  /// the ranking key), the wall seconds this machine spent, and the
  /// admission-queue wait (0 for non-wave traffic).
  double sim_server_seconds = 0;
  double wall_seconds = 0;
  double queue_wait_seconds = 0;
};

/// Statement-class label for the dimensioned metrics and the slow-query
/// log: dml | expand | agg | join | point | scan, decided from the SQL
/// shape plus the realized ExecStats (a recursive expand is "expand"
/// even though it also joins and scans).
std::string_view ClassifyStatementClass(std::string_view sql,
                                        const ExecStats& stats);

/// Engine label: "vec" when any vectorized row counter is non-zero,
/// "row" otherwise.
std::string_view EngineLabel(const ExecStats& stats);

/// Thread-safe slow-statement store with two surfaces:
///  * an over-threshold ring — every statement whose simulated OR wall
///    cost exceeded the threshold, bounded (oldest dropped, counted);
///  * an always-on top-K — the K most expensive statements by simulated
///    server seconds (deterministic across runs), kept via a min-heap
///    so the common fast path is one comparison against the cached
///    heap minimum.
/// Thresholds/capacities arrive per call (they live in
/// DbServer::Config, which benches mutate after construction).
class SlowQueryLog {
 public:
  struct Limits {
    /// Ring qualification: record when sim OR wall seconds exceed this.
    /// <= 0 disables the ring.
    double threshold_seconds = 0;
    size_t ring_capacity = 256;
    /// Top-K size; 0 disables the top-K surface.
    size_t top_k = 16;
  };

  /// Cheap pre-check callable before building a record: false means
  /// Note() would certainly discard it (no lock taken).
  bool MightRecord(const Limits& limits, double sim_seconds,
                   double wall_seconds) const;

  /// Records (or discards) one statement; returns the number of ring
  /// entries evicted by this call, so the caller can keep a drop
  /// counter in whatever registry it reports through.
  size_t Note(const Limits& limits, SlowQueryRecord record);

  /// Over-threshold ring, oldest first.
  std::vector<SlowQueryRecord> OverThreshold() const;
  /// Ring entries evicted since the last Clear().
  size_t dropped() const;
  /// The top-K records, most expensive (sim seconds) first.
  std::vector<SlowQueryRecord> TopK() const;

  void Clear();

 private:
  mutable std::mutex mutex_;
  std::deque<SlowQueryRecord> ring_;
  size_t dropped_ = 0;
  /// Min-heap on sim_server_seconds (heap_[0] is the cheapest kept).
  std::vector<SlowQueryRecord> heap_;
  /// Relaxed cache of heap_[0].sim_server_seconds once the heap is
  /// full — the lock-free fast-path bound. Stored as the double's bit
  /// pattern; kUnsetBound (never a valid positive double) means "heap
  /// not full yet, take the lock".
  std::atomic<uint64_t> heap_min_bits_{~uint64_t{0}};
};

/// JSON array of records (schema mirrors SlowQueryRecord; consumed by
/// bench artifacts and CI).
std::string SlowQueryRecordsToJson(const std::vector<SlowQueryRecord>& records);

}  // namespace pdm

#endif  // PDM_SERVER_SLOW_QUERY_LOG_H_
