#ifndef PDM_SERVER_ADMISSION_QUEUE_H_
#define PDM_SERVER_ADMISSION_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "server/db_server.h"

namespace pdm {

/// Shared server admission queue coalescing statements from many
/// concurrent clients into execution waves (DESIGN.md 5e) — the
/// cross-client generalization of the single-client level batch. The
/// paper's lesson is that per-exchange overheads dominate; on the
/// server the same logic says per-statement parse/plan work should be
/// amortized over as many concurrently arriving statements as possible.
///
/// Mechanics (leader/follower, like group commit): DbServer::Submit
/// enqueues one client's submission and blocks. When the queue is
/// ready — every registered active client has a submission pending, or
/// the pending statement count reaches Config::coalesce_window — the
/// submitter observing readiness becomes the wave leader: it drains
/// whole submissions (never splitting one) up to the window into a
/// wave, executes the wave through DbServer::ExecuteWave, publishes the
/// results into the submissions' slots, and wakes all waiters. Within
/// an all-read-only wave, statements with identical fingerprints (same
/// normalized key and parameter values) execute once and fan their
/// result out to every duplicate slot; waves containing DML/DDL/CALL
/// run serially in admission order with no deduplication.
///
/// Registration contract: a client registers before its first Submit
/// and unregisters when its session ends (client/Connection does both
/// when attached). Between those calls it must either have a submission
/// pending or be computing its next one — a registered client that
/// stops submitting without unregistering stalls wave formation for
/// everyone (the queue waits for it). Unregistered callers may Submit
/// too; with no registered clients at all, every submission forms its
/// own wave immediately.
///
/// Wire invariants: coalescing changes neither round trips nor bytes
/// per client — each submission is still one client round trip; only
/// server-side parse/plan work is amortized (by the wave dedup factor).
class AdmissionQueue {
 public:
  /// Per-wave observability, appended by the leader after each wave.
  struct WaveLogEntry {
    uint64_t wave_id = 0;
    size_t statements = 0;         // total statements in the wave
    size_t unique_statements = 0;  // engine executions after dedup
    size_t submissions = 0;        // client submissions coalesced
    size_t clients = 0;            // distinct submitting clients
    bool read_only = false;        // dedup + worker pool eligible
    size_t dml_statements = 0;     // INSERT/UPDATE/DELETE in the wave
    size_t conflicts = 0;          // first-writer-wins losers (retryable)
  };

  explicit AdmissionQueue(DbServer* server) : server_(server) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Declares one more active client whose submissions waves should
  /// wait for. Thread-safe.
  void RegisterClient();

  /// Ends one client's session; may complete the barrier for waiting
  /// submitters. Thread-safe.
  void UnregisterClient();

  size_t active_clients() const;

  /// Blocking submission endpoint (see DbServer::Submit). Returns one
  /// result per statement, in statement order. Thread-safe; the calling
  /// thread may become the wave leader and execute other clients'
  /// statements before returning. An empty span returns immediately
  /// without touching the queue.
  std::vector<DbServer::BatchStatementResult> Submit(
      uint64_t client_id, std::span<const std::string> statements);

  /// Snapshot of the per-wave log (thread-safe copy).
  std::vector<WaveLogEntry> wave_log() const;
  void ClearWaveLog();

 private:
  /// One blocked Submit call. Lives on the submitting thread's stack;
  /// the queue holds pointers only while the submitter waits.
  struct Submission {
    uint64_t client_id = 0;
    std::span<const std::string> statements;
    std::vector<DbServer::BatchStatementResult> results;
    bool done = false;
    /// Submitter's action trace: wave execution spans for these
    /// statements attach to it, and the leader records a queue:wait
    /// span covering enqueue -> drain (t_queue_wait).
    obs::TraceContext trace;
    std::chrono::steady_clock::time_point enqueue_time;
  };

  /// True when a wave should form now: at least one submission is
  /// pending and either every registered client has one pending or the
  /// pending statement count reached the coalesce window.
  bool WaveReadyLocked() const;

  /// Drains one wave and executes it. Called with `lock` held; unlocks
  /// around the engine work and re-locks to publish results.
  void RunWaveLocked(std::unique_lock<std::mutex>& lock);

  DbServer* server_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Submission*> queue_;
  size_t active_clients_ = 0;
  bool wave_in_progress_ = false;
  uint64_t last_wave_id_ = 0;
  std::vector<WaveLogEntry> wave_log_;
};

}  // namespace pdm

#endif  // PDM_SERVER_ADMISSION_QUEUE_H_
