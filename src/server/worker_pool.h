#ifndef PDM_SERVER_WORKER_POOL_H_
#define PDM_SERVER_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pdm {

/// Fixed-size worker pool executing the independent items of one batch
/// concurrently (server/db_server.h uses it for intra-batch statement
/// parallelism). The calling thread participates as worker 0, so a pool
/// of `threads == 1` never starts a thread and runs everything inline —
/// bit-identical to the serial path. Items are claimed from an atomic
/// counter: which worker runs which item is nondeterministic under
/// `threads > 1`, so callers must keep outputs per-item, never
/// per-worker.
class WorkerPool {
 public:
  /// fn(item, worker): `item` in [0, n), `worker` in [0, threads).
  using Task = std::function<void(size_t item, size_t worker)>;

  explicit WorkerPool(size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(item, worker) for every item in [0, n); returns once all
  /// items completed. Not reentrant: one ParallelFor at a time.
  void ParallelFor(size_t n, const Task& fn);

  size_t threads() const { return threads_; }

 private:
  void WorkerMain(size_t worker);
  void RunItems(size_t worker);

  size_t threads_;
  std::vector<std::thread> workers_;  // threads_ - 1 background workers

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;  // bumped per ParallelFor to wake the pool
  bool shutdown_ = false;
  const Task* task_ = nullptr;
  size_t n_items_ = 0;
  std::atomic<size_t> next_item_{0};
  size_t active_workers_ = 0;  // background workers still draining items
};

}  // namespace pdm

#endif  // PDM_SERVER_WORKER_POOL_H_
