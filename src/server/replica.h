#ifndef PDM_SERVER_REPLICA_H_
#define PDM_SERVER_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/result.h"
#include "engine/database.h"
#include "server/db_server.h"

namespace pdm {

/// A site-local read replica of a primary Database (DESIGN.md 5l). The
/// replica owns a full DbServer (so site clients read it through the
/// ordinary admission/batch/wave machinery) whose database is kept in
/// sync by replaying the primary's commit log:
///
///  * Bootstrap: the caller loads the replica database to the exact
///    state the primary had when its commit log was enabled — in this
///    repo, by running the same deterministic pdmsys::GenerateProduct
///    config, the simulated equivalent of an initial full sync.
///  * Catch-up: PumpReplication() pulls every commit record past the
///    applied timestamp and replays it in commit order. Each record
///    carries the rows it affected on the primary; a mismatch on replay
///    aborts the pump with an error (divergence guard) instead of
///    silently forking the replica.
///
/// Replica reads are ordinary MVCC snapshot reads on the replica
/// database: because records apply in commit order under the replica's
/// own commit clock, every snapshot is a consistent prefix of the
/// primary's history — a lagged timestamp, never a torn state. The
/// applier may therefore race replica readers and GC freely; only one
/// pump runs at a time.
class ReplicaServer {
 public:
  /// `primary` must outlive the replica. The replica starts considered
  /// in sync at the primary's *current* commit clock: construct it
  /// after EnableCommitLog and bootstrap the database to that state
  /// before the first pump.
  ReplicaServer(Database* primary, DbServer::Config config);

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  DbServer& server() { return server_; }
  Database& database() { return server_.database(); }

  /// Commit timestamp of the newest applied record (acquire: pairs with
  /// the applier's release store, so a reader that saw this value also
  /// sees the applied data).
  uint64_t applied_commit_ts() const {
    return applied_ts_.load(std::memory_order_acquire);
  }

  /// Primary commits not yet applied here — staleness in commit-clock
  /// ticks. Also published as the "replication.staleness_commits"{site}
  /// gauge after every pump.
  uint64_t StalenessCommits() const;

  struct PumpResult {
    size_t applied = 0;        // records replayed by this pump
    size_t payload_bytes = 0;  // their concatenated DML text (with ';'
                               // separators, as the wire ships batches)
  };

  /// Pulls every commit record past applied_commit_ts() from the
  /// primary's commit log and replays it in commit order. Thread-safe;
  /// concurrent pumps serialize. Fails without applying further records
  /// if the primary trimmed records this replica never saw (re-bootstrap
  /// required) or if a replayed statement diverges from its primary
  /// outcome.
  Result<PumpResult> PumpReplication();

 private:
  Status ApplyRecord(const Database::CommitRecord& record);

  Database* primary_;
  DbServer server_;
  std::mutex pump_mutex_;
  std::atomic<uint64_t> applied_ts_;
};

}  // namespace pdm

#endif  // PDM_SERVER_REPLICA_H_
