#include "server/replica.h"

#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace pdm {

ReplicaServer::ReplicaServer(Database* primary, DbServer::Config config)
    : primary_(primary),
      server_(std::move(config)),
      applied_ts_(primary->commit_clock()) {
  obs::MetricsRegistry::Global().gauge("replication.staleness_commits");
}

uint64_t ReplicaServer::StalenessCommits() const {
  const uint64_t primary_ts = primary_->commit_clock();
  const uint64_t applied = applied_commit_ts();
  return primary_ts > applied ? primary_ts - applied : 0;
}

Status ReplicaServer::ApplyRecord(const Database::CommitRecord& record) {
  ResultSet out;
  ExecStats stats;
  PDM_RETURN_NOT_OK(database()
                        .Execute(record.sql, &out, &stats)
                        .WithContext(StrFormat(
                            "replication apply of commit %llu at site '%s'",
                            static_cast<unsigned long long>(record.commit_ts),
                            server_.config().site.c_str())));
  // Divergence guard: in commit order from a byte-identical bootstrap,
  // every replayed predicate must match exactly the rows it matched on
  // the primary. A different affected count means the replica forked —
  // stop before compounding it.
  if (out.affected_rows != record.affected_rows) {
    return Status::Internal(StrFormat(
        "replica '%s' diverged at commit %llu: statement affected %zu rows, "
        "primary affected %zu (%s)",
        server_.config().site.c_str(),
        static_cast<unsigned long long>(record.commit_ts), out.affected_rows,
        record.affected_rows, record.sql.c_str()));
  }
  return Status::OK();
}

Result<ReplicaServer::PumpResult> ReplicaServer::PumpReplication() {
  std::lock_guard<std::mutex> pump(pump_mutex_);
  const uint64_t applied = applied_commit_ts();
  if (applied < primary_->commit_log_floor()) {
    return Status::Internal(StrFormat(
        "replica '%s' fell behind the primary's trimmed commit log "
        "(applied %llu < floor %llu); re-bootstrap required",
        server_.config().site.c_str(),
        static_cast<unsigned long long>(applied),
        static_cast<unsigned long long>(primary_->commit_log_floor())));
  }
  PumpResult result;
  for (const Database::CommitRecord& record :
       primary_->CommitLogSince(applied)) {
    PDM_RETURN_NOT_OK(ApplyRecord(record));
    result.applied += 1;
    result.payload_bytes += record.sql.size() + (result.applied > 1 ? 1 : 0);
    applied_ts_.store(record.commit_ts, std::memory_order_release);
    obs::MetricsRegistry::Global()
        .counter("replication.applied_statements",
                 {{"site", server_.config().site}})
        .Increment();
  }
  obs::MetricsRegistry::Global()
      .gauge("replication.staleness_commits")
      .Set(static_cast<int64_t>(StalenessCommits()));
  return result;
}

}  // namespace pdm
