#include "sql/token.h"

#include <array>

#include "common/string_util.h"

namespace pdm::sql {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kIntegerLiteral:
      return "integer literal";
    case TokenKind::kDoubleLiteral:
      return "double literal";
    case TokenKind::kStringLiteral:
      return "string literal";
    case TokenKind::kLeftParen:
      return "'('";
    case TokenKind::kRightParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNotEq:
      return "'<>'";
    case TokenKind::kLess:
      return "'<'";
    case TokenKind::kLessEq:
      return "'<='";
    case TokenKind::kGreater:
      return "'>'";
    case TokenKind::kGreaterEq:
      return "'>='";
    case TokenKind::kConcat:
      return "'||'";
  }
  return "unknown token";
}

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier '" + text + "'";
    case TokenKind::kKeyword:
      return "keyword " + text;
    case TokenKind::kIntegerLiteral:
    case TokenKind::kDoubleLiteral:
    case TokenKind::kStringLiteral:
      return "literal '" + text + "'";
    default:
      return std::string(TokenKindName(kind));
  }
}

bool IsReservedKeyword(std::string_view word) {
  // Deliberately small: the paper's schemas use LEFT, RIGHT, TYPE and DEC
  // as *column names*, so none of those may be reserved (the dialect has
  // INNER JOIN only). Aggregate names (COUNT, SUM, ...) parse as ordinary
  // function-call identifiers.
  static constexpr std::array<std::string_view, 50> kKeywords = {
      "SELECT", "FROM",      "WHERE",  "AND",     "OR",     "NOT",
      "AS",     "JOIN",      "INNER",  "ON",      "UNION",  "ALL",
      "ORDER",  "BY",        "GROUP",  "HAVING",  "LIMIT",  "WITH",
      "RECURSIVE",           "EXISTS", "IN",      "BETWEEN", "LIKE",
      "IS",     "NULL",      "TRUE",   "FALSE",   "CAST",   "CREATE",
      "TABLE",  "DROP",      "IF",     "INSERT",  "INTO",   "VALUES",
      "UPDATE", "SET",       "DELETE", "CALL",    "DISTINCT", "ASC",
      "DESC",   "CASE",      "WHEN",   "THEN",    "ELSE",   "END",
      "EXPLAIN", "VIEW",     "REPLACE",
  };
  std::string upper = ToUpperAscii(word);
  for (std::string_view kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

}  // namespace pdm::sql
