#ifndef PDM_SQL_AST_H_
#define PDM_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/value.h"

namespace pdm::sql {

struct QueryExpr;
struct SelectStmt;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kStar,             // bare `*` inside COUNT(*)
  kUnary,
  kBinary,
  kFunctionCall,
  kCast,
  kIsNull,
  kInList,
  kInSubquery,
  kExists,
  kScalarSubquery,
  kBetween,
  kLike,
  kCase,
};

enum class UnaryOp { kNot, kNegate };

enum class BinaryOp {
  kAnd,
  kOr,
  kEq,
  kNotEq,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kConcat,
};

std::string_view BinaryOpSymbol(BinaryOp op);

/// Base class of all expression AST nodes. Nodes render back to SQL text
/// (`ToSql`) — the query builder and the rule modificator construct and
/// rewrite ASTs, then ship rendered text over the simulated wire — and
/// deep-copy (`Clone`) so stored rule conditions can be spliced into many
/// queries.
struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  virtual std::string ToSql() const = 0;
  virtual std::unique_ptr<Expr> Clone() const = 0;

  const ExprKind kind;
};

using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr : Expr {
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  std::string ToSql() const override;
  ExprPtr Clone() const override;

  Value value;
  /// Ordinal of this literal in the statement's fingerprint parameter
  /// list (sql/fingerprint.h), or -1 for literals the fingerprint keeps
  /// verbatim (LIMIT counts, ORDER BY positions, type lengths) and for
  /// literals not produced by the parser (built ASTs, NULL/TRUE/FALSE).
  int param_slot = -1;
};

struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string t, std::string c)
      : Expr(ExprKind::kColumnRef), table(std::move(t)), column(std::move(c)) {}
  std::string ToSql() const override;
  ExprPtr Clone() const override;

  std::string table;   // qualifier; empty if unqualified
  std::string column;
};

struct StarExpr : Expr {
  StarExpr() : Expr(ExprKind::kStar) {}
  std::string ToSql() const override { return "*"; }
  ExprPtr Clone() const override;
};

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp o, ExprPtr e)
      : Expr(ExprKind::kUnary), op(o), operand(std::move(e)) {}
  std::string ToSql() const override;
  ExprPtr Clone() const override;

  UnaryOp op;
  ExprPtr operand;
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(o), lhs(std::move(l)), rhs(std::move(r)) {}
  std::string ToSql() const override;
  ExprPtr Clone() const override;

  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// Covers both scalar functions and aggregates; which one it is gets
/// decided at bind time against the function registry.
struct FunctionCallExpr : Expr {
  FunctionCallExpr(std::string n, std::vector<ExprPtr> a, bool dist = false)
      : Expr(ExprKind::kFunctionCall),
        name(std::move(n)),
        args(std::move(a)),
        distinct(dist) {}
  std::string ToSql() const override;
  ExprPtr Clone() const override;

  std::string name;           // stored upper-cased by the parser
  std::vector<ExprPtr> args;  // a single StarExpr arg encodes COUNT(*)
  bool distinct;
};

struct CastExpr : Expr {
  CastExpr(ExprPtr e, ColumnType t)
      : Expr(ExprKind::kCast), operand(std::move(e)), target_type(t) {}
  std::string ToSql() const override;
  ExprPtr Clone() const override;

  ExprPtr operand;
  ColumnType target_type;
};

struct IsNullExpr : Expr {
  IsNullExpr(ExprPtr e, bool neg)
      : Expr(ExprKind::kIsNull), operand(std::move(e)), negated(neg) {}
  std::string ToSql() const override;
  ExprPtr Clone() const override;

  ExprPtr operand;
  bool negated;
};

struct InListExpr : Expr {
  InListExpr(ExprPtr e, std::vector<ExprPtr> it, bool neg)
      : Expr(ExprKind::kInList),
        operand(std::move(e)),
        items(std::move(it)),
        negated(neg) {}
  std::string ToSql() const override;
  ExprPtr Clone() const override;

  ExprPtr operand;
  std::vector<ExprPtr> items;
  bool negated;
};

struct InSubqueryExpr : Expr {
  InSubqueryExpr(ExprPtr e, std::unique_ptr<QueryExpr> q, bool neg);
  ~InSubqueryExpr() override;
  std::string ToSql() const override;
  ExprPtr Clone() const override;

  ExprPtr operand;
  std::unique_ptr<QueryExpr> subquery;
  bool negated;
};

struct ExistsExpr : Expr {
  ExistsExpr(std::unique_ptr<QueryExpr> q, bool neg);
  ~ExistsExpr() override;
  std::string ToSql() const override;
  ExprPtr Clone() const override;

  std::unique_ptr<QueryExpr> subquery;
  bool negated;
};

struct ScalarSubqueryExpr : Expr {
  explicit ScalarSubqueryExpr(std::unique_ptr<QueryExpr> q);
  ~ScalarSubqueryExpr() override;
  std::string ToSql() const override;
  ExprPtr Clone() const override;

  std::unique_ptr<QueryExpr> subquery;
};

struct BetweenExpr : Expr {
  BetweenExpr(ExprPtr e, ExprPtr lo, ExprPtr hi, bool neg)
      : Expr(ExprKind::kBetween),
        operand(std::move(e)),
        low(std::move(lo)),
        high(std::move(hi)),
        negated(neg) {}
  std::string ToSql() const override;
  ExprPtr Clone() const override;

  ExprPtr operand;
  ExprPtr low;
  ExprPtr high;
  bool negated;
};

struct LikeExpr : Expr {
  LikeExpr(ExprPtr e, ExprPtr p, bool neg)
      : Expr(ExprKind::kLike),
        operand(std::move(e)),
        pattern(std::move(p)),
        negated(neg) {}
  std::string ToSql() const override;
  ExprPtr Clone() const override;

  ExprPtr operand;
  ExprPtr pattern;
  bool negated;
};

/// Searched CASE: CASE WHEN c1 THEN v1 ... [ELSE e] END.
struct CaseExpr : Expr {
  CaseExpr(std::vector<std::pair<ExprPtr, ExprPtr>> w, ExprPtr e)
      : Expr(ExprKind::kCase),
        whens(std::move(w)),
        else_expr(std::move(e)) {}
  std::string ToSql() const override;
  ExprPtr Clone() const override;

  std::vector<std::pair<ExprPtr, ExprPtr>> whens;
  ExprPtr else_expr;  // may be null
};

// ---------------------------------------------------------------------------
// Expression construction helpers (used pervasively by rules/ and pdm/)
// ---------------------------------------------------------------------------

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeColumnRef(std::string column);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeNot(ExprPtr e);
/// Folds `exprs` with AND/OR; returns nullptr for an empty vector.
ExprPtr MakeConjunction(std::vector<ExprPtr> exprs);
ExprPtr MakeDisjunction(std::vector<ExprPtr> exprs);
/// a AND b where either side may be null (returns the other side).
ExprPtr AndWith(ExprPtr a, ExprPtr b);

// ---------------------------------------------------------------------------
// Query structure
// ---------------------------------------------------------------------------

/// One item of a SELECT list: either `*` / `alias.*`, or an expression
/// with an optional alias.
struct SelectItem {
  bool is_star = false;
  std::string star_qualifier;  // for `t.*`; empty for bare `*`
  ExprPtr expr;                // null when is_star
  std::string alias;

  SelectItem() = default;
  SelectItem Clone() const;
  std::string ToSql() const;
};

/// A table reference in FROM: base table or derived table (subquery).
struct TableRef {
  enum class Kind { kBaseTable, kSubquery };

  Kind kind = Kind::kBaseTable;
  std::string table_name;                 // base table
  std::unique_ptr<QueryExpr> subquery;    // derived table
  std::string alias;                      // optional (required for subquery)

  TableRef() = default;
  TableRef(TableRef&&) = default;
  TableRef& operator=(TableRef&&) = default;
  ~TableRef();

  /// Name this reference is known by in scopes: alias if present, else
  /// the table name.
  const std::string& EffectiveName() const {
    return alias.empty() ? table_name : alias;
  }

  TableRef Clone() const;
  std::string ToSql() const;
};

/// `JOIN <ref> ON <expr>` attached to the previous FROM element.
struct JoinClause {
  TableRef ref;
  ExprPtr on;  // may be null for CROSS-style comma joins folded in

  JoinClause Clone() const;
};

/// One FROM element: a base reference plus its chain of inner joins.
struct FromItem {
  TableRef ref;
  std::vector<JoinClause> joins;

  FromItem Clone() const;
  std::string ToSql() const;
};

/// A single SELECT ... FROM ... WHERE ... GROUP BY ... HAVING block.
struct SelectCore {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<FromItem> from;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;

  SelectCore() = default;
  SelectCore(SelectCore&&) = default;
  SelectCore& operator=(SelectCore&&) = default;

  SelectCore Clone() const;
  std::string ToSql() const;

  /// AND-appends a predicate to the WHERE clause (creates one if absent).
  /// This is the primitive both tuning approaches are built on
  /// (paper Sections 4.1 and 5.5).
  void AddWherePredicate(ExprPtr predicate);

  /// True if any FROM element (base or join) references `table_name`
  /// (case-insensitive, by underlying table name not alias).
  bool ReferencesTable(std::string_view table_name) const;
};

struct OrderByItem {
  // Either a 1-based output-column position (the paper's ORDER BY 1,2)
  // or an expression resolved against the output columns.
  std::optional<int64_t> position;
  ExprPtr expr;
  bool descending = false;

  OrderByItem Clone() const;
  std::string ToSql() const;
};

/// select_core (UNION [ALL] select_core)* [ORDER BY ...] [LIMIT n].
struct QueryExpr {
  std::vector<SelectCore> terms;
  std::vector<bool> union_all;  // size terms.size()-1; true = UNION ALL
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;

  QueryExpr() = default;
  QueryExpr(QueryExpr&&) = default;
  QueryExpr& operator=(QueryExpr&&) = default;

  std::unique_ptr<QueryExpr> Clone() const;
  std::string ToSql() const;
};

/// WITH [RECURSIVE] name (cols) AS (query), ... — one named CTE.
struct CommonTableExpr {
  std::string name;
  std::vector<std::string> column_names;  // may be empty
  std::unique_ptr<QueryExpr> query;

  CommonTableExpr Clone() const;
  std::string ToSql() const;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind {
  kSelect,
  kCreateTable,
  kDropTable,
  kInsert,
  kUpdate,
  kDelete,
  kCall,
  kExplain,
  kCreateView,
  kDropView,
};

struct Statement {
  explicit Statement(StatementKind k) : kind(k) {}
  virtual ~Statement() = default;
  Statement(const Statement&) = delete;
  Statement& operator=(const Statement&) = delete;

  virtual std::string ToSql() const = 0;

  const StatementKind kind;
};

using StatementPtr = std::unique_ptr<Statement>;

struct SelectStmt : Statement {
  SelectStmt() : Statement(StatementKind::kSelect) {}
  std::string ToSql() const override;
  std::unique_ptr<SelectStmt> CloneSelect() const;

  bool recursive = false;
  std::vector<CommonTableExpr> ctes;
  QueryExpr query;
};

struct CreateTableStmt : Statement {
  CreateTableStmt() : Statement(StatementKind::kCreateTable) {}
  std::string ToSql() const override;

  std::string table_name;
  std::vector<Column> columns;
  bool if_not_exists = false;
};

struct DropTableStmt : Statement {
  DropTableStmt() : Statement(StatementKind::kDropTable) {}
  std::string ToSql() const override;

  std::string table_name;
  bool if_exists = false;
};

struct InsertStmt : Statement {
  InsertStmt() : Statement(StatementKind::kInsert) {}
  std::string ToSql() const override;

  std::string table_name;
  std::vector<std::string> columns;          // may be empty = all columns
  std::vector<std::vector<ExprPtr>> rows;    // VALUES rows
};

struct UpdateStmt : Statement {
  UpdateStmt() : Statement(StatementKind::kUpdate) {}
  std::string ToSql() const override;

  std::string table_name;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
};

struct DeleteStmt : Statement {
  DeleteStmt() : Statement(StatementKind::kDelete) {}
  std::string ToSql() const override;

  std::string table_name;
  ExprPtr where;  // may be null
};

struct CallStmt : Statement {
  CallStmt() : Statement(StatementKind::kCall) {}
  std::string ToSql() const override;

  std::string procedure_name;
  std::vector<ExprPtr> args;
};

/// EXPLAIN <select>: returns the bound physical plan as text rows.
struct ExplainStmt : Statement {
  ExplainStmt() : Statement(StatementKind::kExplain) {}
  std::string ToSql() const override;

  std::unique_ptr<SelectStmt> select;
};

/// CREATE [OR REPLACE] VIEW name AS <select>. Views are stored as ASTs
/// and expanded at bind time; see engine/view_registry.h — and the
/// paper's Section 5.5 remark on why views defeat the query modificator.
struct CreateViewStmt : Statement {
  CreateViewStmt() : Statement(StatementKind::kCreateView) {}
  std::string ToSql() const override;

  std::string view_name;
  std::unique_ptr<SelectStmt> select;
  bool or_replace = false;
};

struct DropViewStmt : Statement {
  DropViewStmt() : Statement(StatementKind::kDropView) {}
  std::string ToSql() const override;

  std::string view_name;
  bool if_exists = false;
};

}  // namespace pdm::sql

#endif  // PDM_SQL_AST_H_
