#include "sql/ast.h"

#include "common/string_util.h"

namespace pdm::sql {

namespace {

/// Parenthesizes subexpressions conservatively: any non-leaf operand is
/// wrapped. Keeps rendering simple and unambiguous; the engine never
/// depends on minimal parentheses.
std::string Paren(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
    case ExprKind::kStar:
    case ExprKind::kFunctionCall:
    case ExprKind::kCast:
    case ExprKind::kScalarSubquery:
      return e.ToSql();
    default:
      return "(" + e.ToSql() + ")";
  }
}

std::vector<ExprPtr> CloneAll(const std::vector<ExprPtr>& exprs) {
  std::vector<ExprPtr> out;
  out.reserve(exprs.size());
  for (const ExprPtr& e : exprs) out.push_back(e->Clone());
  return out;
}

}  // namespace

std::string_view BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNotEq:
      return "<>";
    case BinaryOp::kLess:
      return "<";
    case BinaryOp::kLessEq:
      return "<=";
    case BinaryOp::kGreater:
      return ">";
    case BinaryOp::kGreaterEq:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kConcat:
      return "||";
  }
  return "?";
}

// --- Expr rendering / cloning ---------------------------------------------

std::string LiteralExpr::ToSql() const { return value.ToSqlLiteral(); }
ExprPtr LiteralExpr::Clone() const {
  auto clone = std::make_unique<LiteralExpr>(value);
  clone->param_slot = param_slot;
  return clone;
}

std::string ColumnRefExpr::ToSql() const {
  return table.empty() ? column : table + "." + column;
}
ExprPtr ColumnRefExpr::Clone() const {
  return std::make_unique<ColumnRefExpr>(table, column);
}

ExprPtr StarExpr::Clone() const { return std::make_unique<StarExpr>(); }

std::string UnaryExpr::ToSql() const {
  return op == UnaryOp::kNot ? "NOT " + Paren(*operand)
                             : "-" + Paren(*operand);
}
ExprPtr UnaryExpr::Clone() const {
  return std::make_unique<UnaryExpr>(op, operand->Clone());
}

std::string BinaryExpr::ToSql() const {
  return Paren(*lhs) + " " + std::string(BinaryOpSymbol(op)) + " " +
         Paren(*rhs);
}
ExprPtr BinaryExpr::Clone() const {
  return std::make_unique<BinaryExpr>(op, lhs->Clone(), rhs->Clone());
}

std::string FunctionCallExpr::ToSql() const {
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (const ExprPtr& a : args) parts.push_back(a->ToSql());
  return name + "(" + (distinct ? "DISTINCT " : "") + Join(parts, ", ") + ")";
}
ExprPtr FunctionCallExpr::Clone() const {
  return std::make_unique<FunctionCallExpr>(name, CloneAll(args), distinct);
}

std::string CastExpr::ToSql() const {
  return "CAST(" + operand->ToSql() + " AS " +
         std::string(ColumnTypeName(target_type)) + ")";
}
ExprPtr CastExpr::Clone() const {
  return std::make_unique<CastExpr>(operand->Clone(), target_type);
}

std::string IsNullExpr::ToSql() const {
  return Paren(*operand) + (negated ? " IS NOT NULL" : " IS NULL");
}
ExprPtr IsNullExpr::Clone() const {
  return std::make_unique<IsNullExpr>(operand->Clone(), negated);
}

std::string InListExpr::ToSql() const {
  std::vector<std::string> parts;
  parts.reserve(items.size());
  for (const ExprPtr& e : items) parts.push_back(e->ToSql());
  return Paren(*operand) + (negated ? " NOT IN (" : " IN (") +
         Join(parts, ", ") + ")";
}
ExprPtr InListExpr::Clone() const {
  return std::make_unique<InListExpr>(operand->Clone(), CloneAll(items),
                                      negated);
}

InSubqueryExpr::InSubqueryExpr(ExprPtr e, std::unique_ptr<QueryExpr> q,
                               bool neg)
    : Expr(ExprKind::kInSubquery),
      operand(std::move(e)),
      subquery(std::move(q)),
      negated(neg) {}
InSubqueryExpr::~InSubqueryExpr() = default;

std::string InSubqueryExpr::ToSql() const {
  return Paren(*operand) + (negated ? " NOT IN (" : " IN (") +
         subquery->ToSql() + ")";
}
ExprPtr InSubqueryExpr::Clone() const {
  return std::make_unique<InSubqueryExpr>(operand->Clone(), subquery->Clone(),
                                          negated);
}

ExistsExpr::ExistsExpr(std::unique_ptr<QueryExpr> q, bool neg)
    : Expr(ExprKind::kExists), subquery(std::move(q)), negated(neg) {}
ExistsExpr::~ExistsExpr() = default;

std::string ExistsExpr::ToSql() const {
  return std::string(negated ? "NOT EXISTS (" : "EXISTS (") +
         subquery->ToSql() + ")";
}
ExprPtr ExistsExpr::Clone() const {
  return std::make_unique<ExistsExpr>(subquery->Clone(), negated);
}

ScalarSubqueryExpr::ScalarSubqueryExpr(std::unique_ptr<QueryExpr> q)
    : Expr(ExprKind::kScalarSubquery), subquery(std::move(q)) {}
ScalarSubqueryExpr::~ScalarSubqueryExpr() = default;

std::string ScalarSubqueryExpr::ToSql() const {
  return "(" + subquery->ToSql() + ")";
}
ExprPtr ScalarSubqueryExpr::Clone() const {
  return std::make_unique<ScalarSubqueryExpr>(subquery->Clone());
}

std::string BetweenExpr::ToSql() const {
  return Paren(*operand) + (negated ? " NOT BETWEEN " : " BETWEEN ") +
         Paren(*low) + " AND " + Paren(*high);
}
ExprPtr BetweenExpr::Clone() const {
  return std::make_unique<BetweenExpr>(operand->Clone(), low->Clone(),
                                       high->Clone(), negated);
}

std::string LikeExpr::ToSql() const {
  return Paren(*operand) + (negated ? " NOT LIKE " : " LIKE ") +
         Paren(*pattern);
}
ExprPtr LikeExpr::Clone() const {
  return std::make_unique<LikeExpr>(operand->Clone(), pattern->Clone(),
                                    negated);
}

std::string CaseExpr::ToSql() const {
  std::string out = "CASE";
  for (const auto& [cond, val] : whens) {
    out += " WHEN " + cond->ToSql() + " THEN " + val->ToSql();
  }
  if (else_expr != nullptr) out += " ELSE " + else_expr->ToSql();
  out += " END";
  return out;
}
ExprPtr CaseExpr::Clone() const {
  std::vector<std::pair<ExprPtr, ExprPtr>> w;
  w.reserve(whens.size());
  for (const auto& [cond, val] : whens) {
    w.emplace_back(cond->Clone(), val->Clone());
  }
  return std::make_unique<CaseExpr>(
      std::move(w), else_expr ? else_expr->Clone() : nullptr);
}

// --- Construction helpers ---------------------------------------------------

ExprPtr MakeLiteral(Value v) {
  return std::make_unique<LiteralExpr>(std::move(v));
}
ExprPtr MakeColumnRef(std::string table, std::string column) {
  return std::make_unique<ColumnRefExpr>(std::move(table), std::move(column));
}
ExprPtr MakeColumnRef(std::string column) {
  return std::make_unique<ColumnRefExpr>("", std::move(column));
}
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr MakeNot(ExprPtr e) {
  return std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(e));
}

namespace {
ExprPtr FoldWith(BinaryOp op, std::vector<ExprPtr> exprs) {
  ExprPtr acc;
  for (ExprPtr& e : exprs) {
    acc = acc == nullptr ? std::move(e)
                         : MakeBinary(op, std::move(acc), std::move(e));
  }
  return acc;
}
}  // namespace

ExprPtr MakeConjunction(std::vector<ExprPtr> exprs) {
  return FoldWith(BinaryOp::kAnd, std::move(exprs));
}
ExprPtr MakeDisjunction(std::vector<ExprPtr> exprs) {
  return FoldWith(BinaryOp::kOr, std::move(exprs));
}
ExprPtr AndWith(ExprPtr a, ExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return MakeBinary(BinaryOp::kAnd, std::move(a), std::move(b));
}

// --- Query structure ---------------------------------------------------------

SelectItem SelectItem::Clone() const {
  SelectItem out;
  out.is_star = is_star;
  out.star_qualifier = star_qualifier;
  out.expr = expr ? expr->Clone() : nullptr;
  out.alias = alias;
  return out;
}

std::string SelectItem::ToSql() const {
  if (is_star) {
    return star_qualifier.empty() ? "*" : star_qualifier + ".*";
  }
  std::string out = expr->ToSql();
  if (!alias.empty()) out += " AS \"" + alias + "\"";
  return out;
}

TableRef::~TableRef() = default;

TableRef TableRef::Clone() const {
  TableRef out;
  out.kind = kind;
  out.table_name = table_name;
  out.subquery = subquery ? subquery->Clone() : nullptr;
  out.alias = alias;
  return out;
}

std::string TableRef::ToSql() const {
  std::string out = kind == Kind::kBaseTable
                        ? table_name
                        : "(" + subquery->ToSql() + ")";
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

JoinClause JoinClause::Clone() const {
  JoinClause out;
  out.ref = ref.Clone();
  out.on = on ? on->Clone() : nullptr;
  return out;
}

FromItem FromItem::Clone() const {
  FromItem out;
  out.ref = ref.Clone();
  out.joins.reserve(joins.size());
  for (const JoinClause& j : joins) out.joins.push_back(j.Clone());
  return out;
}

std::string FromItem::ToSql() const {
  std::string out = ref.ToSql();
  for (const JoinClause& j : joins) {
    out += " JOIN " + j.ref.ToSql();
    if (j.on != nullptr) out += " ON " + j.on->ToSql();
  }
  return out;
}

SelectCore SelectCore::Clone() const {
  SelectCore out;
  out.distinct = distinct;
  out.items.reserve(items.size());
  for (const SelectItem& i : items) out.items.push_back(i.Clone());
  out.from.reserve(from.size());
  for (const FromItem& f : from) out.from.push_back(f.Clone());
  out.where = where ? where->Clone() : nullptr;
  out.group_by = CloneAll(group_by);
  out.having = having ? having->Clone() : nullptr;
  return out;
}

std::string SelectCore::ToSql() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  std::vector<std::string> item_sql;
  item_sql.reserve(items.size());
  for (const SelectItem& i : items) item_sql.push_back(i.ToSql());
  out += Join(item_sql, ", ");
  if (!from.empty()) {
    std::vector<std::string> from_sql;
    from_sql.reserve(from.size());
    for (const FromItem& f : from) from_sql.push_back(f.ToSql());
    out += " FROM " + Join(from_sql, ", ");
  }
  if (where != nullptr) out += " WHERE " + where->ToSql();
  if (!group_by.empty()) {
    std::vector<std::string> g;
    g.reserve(group_by.size());
    for (const ExprPtr& e : group_by) g.push_back(e->ToSql());
    out += " GROUP BY " + Join(g, ", ");
  }
  if (having != nullptr) out += " HAVING " + having->ToSql();
  return out;
}

void SelectCore::AddWherePredicate(ExprPtr predicate) {
  where = AndWith(std::move(where), std::move(predicate));
}

bool SelectCore::ReferencesTable(std::string_view table_name) const {
  for (const FromItem& f : from) {
    if (f.ref.kind == TableRef::Kind::kBaseTable &&
        EqualsIgnoreCase(f.ref.table_name, table_name)) {
      return true;
    }
    for (const JoinClause& j : f.joins) {
      if (j.ref.kind == TableRef::Kind::kBaseTable &&
          EqualsIgnoreCase(j.ref.table_name, table_name)) {
        return true;
      }
    }
  }
  return false;
}

OrderByItem OrderByItem::Clone() const {
  OrderByItem out;
  out.position = position;
  out.expr = expr ? expr->Clone() : nullptr;
  out.descending = descending;
  return out;
}

std::string OrderByItem::ToSql() const {
  std::string out =
      position.has_value() ? std::to_string(*position) : expr->ToSql();
  if (descending) out += " DESC";
  return out;
}

std::unique_ptr<QueryExpr> QueryExpr::Clone() const {
  auto out = std::make_unique<QueryExpr>();
  out->terms.reserve(terms.size());
  for (const SelectCore& t : terms) out->terms.push_back(t.Clone());
  out->union_all = union_all;
  out->order_by.reserve(order_by.size());
  for (const OrderByItem& o : order_by) out->order_by.push_back(o.Clone());
  out->limit = limit;
  return out;
}

std::string QueryExpr::ToSql() const {
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += union_all[i - 1] ? " UNION ALL " : " UNION ";
    out += terms[i].ToSql();
  }
  if (!order_by.empty()) {
    std::vector<std::string> o;
    o.reserve(order_by.size());
    for (const OrderByItem& item : order_by) o.push_back(item.ToSql());
    out += " ORDER BY " + Join(o, ", ");
  }
  if (limit.has_value()) out += " LIMIT " + std::to_string(*limit);
  return out;
}

CommonTableExpr CommonTableExpr::Clone() const {
  CommonTableExpr out;
  out.name = name;
  out.column_names = column_names;
  out.query = query->Clone();
  return out;
}

std::string CommonTableExpr::ToSql() const {
  std::string out = name;
  if (!column_names.empty()) {
    out += " (" + Join(column_names, ", ") + ")";
  }
  out += " AS (" + query->ToSql() + ")";
  return out;
}

// --- Statements --------------------------------------------------------------

std::string SelectStmt::ToSql() const {
  std::string out;
  if (!ctes.empty()) {
    out += recursive ? "WITH RECURSIVE " : "WITH ";
    std::vector<std::string> c;
    c.reserve(ctes.size());
    for (const CommonTableExpr& cte : ctes) c.push_back(cte.ToSql());
    out += Join(c, ", ") + " ";
  }
  out += query.ToSql();
  return out;
}

std::unique_ptr<SelectStmt> SelectStmt::CloneSelect() const {
  auto out = std::make_unique<SelectStmt>();
  out->recursive = recursive;
  out->ctes.reserve(ctes.size());
  for (const CommonTableExpr& cte : ctes) out->ctes.push_back(cte.Clone());
  out->query = std::move(*query.Clone());
  return out;
}

std::string CreateTableStmt::ToSql() const {
  std::vector<std::string> cols;
  cols.reserve(columns.size());
  for (const Column& c : columns) {
    cols.push_back(c.name + " " + std::string(ColumnTypeName(c.type)));
  }
  return std::string("CREATE TABLE ") +
         (if_not_exists ? "IF NOT EXISTS " : "") + table_name + " (" +
         Join(cols, ", ") + ")";
}

std::string DropTableStmt::ToSql() const {
  return std::string("DROP TABLE ") + (if_exists ? "IF EXISTS " : "") +
         table_name;
}

std::string InsertStmt::ToSql() const {
  std::string out = "INSERT INTO " + table_name;
  if (!columns.empty()) out += " (" + Join(columns, ", ") + ")";
  out += " VALUES ";
  std::vector<std::string> row_sql;
  row_sql.reserve(rows.size());
  for (const std::vector<ExprPtr>& row : rows) {
    std::vector<std::string> vals;
    vals.reserve(row.size());
    for (const ExprPtr& e : row) vals.push_back(e->ToSql());
    row_sql.push_back("(" + Join(vals, ", ") + ")");
  }
  out += Join(row_sql, ", ");
  return out;
}

std::string UpdateStmt::ToSql() const {
  std::string out = "UPDATE " + table_name + " SET ";
  std::vector<std::string> sets;
  sets.reserve(assignments.size());
  for (const auto& [col, expr] : assignments) {
    sets.push_back(col + " = " + expr->ToSql());
  }
  out += Join(sets, ", ");
  if (where != nullptr) out += " WHERE " + where->ToSql();
  return out;
}

std::string DeleteStmt::ToSql() const {
  std::string out = "DELETE FROM " + table_name;
  if (where != nullptr) out += " WHERE " + where->ToSql();
  return out;
}

std::string CallStmt::ToSql() const {
  std::vector<std::string> a;
  a.reserve(args.size());
  for (const ExprPtr& e : args) a.push_back(e->ToSql());
  return "CALL " + procedure_name + "(" + Join(a, ", ") + ")";
}

std::string ExplainStmt::ToSql() const {
  return "EXPLAIN " + select->ToSql();
}

std::string CreateViewStmt::ToSql() const {
  return std::string("CREATE ") + (or_replace ? "OR REPLACE " : "") +
         "VIEW " + view_name + " AS " + select->ToSql();
}

std::string DropViewStmt::ToSql() const {
  return std::string("DROP VIEW ") + (if_exists ? "IF EXISTS " : "") +
         view_name;
}

}  // namespace pdm::sql
