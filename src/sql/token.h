#ifndef PDM_SQL_TOKEN_H_
#define PDM_SQL_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace pdm::sql {

/// Lexical token kinds. Keywords are folded into kKeyword with the
/// upper-cased text in Token::text (the dialect is small enough that the
/// parser matches keywords by name).
enum class TokenKind {
  kEnd = 0,
  kIdentifier,        // bare or "quoted" identifier (quotes stripped)
  kKeyword,           // reserved word, upper-cased in text
  kIntegerLiteral,    // 42
  kDoubleLiteral,     // 4.2, .5, 1e3
  kStringLiteral,     // 'abc' with '' unescaped in text
  // Punctuation / operators:
  kLeftParen,         // (
  kRightParen,        // )
  kComma,             // ,
  kDot,               // .
  kSemicolon,         // ;
  kStar,              // *
  kPlus,              // +
  kMinus,             // -
  kSlash,             // /
  kPercent,           // %
  kEq,                // =
  kNotEq,             // <> or !=
  kLess,              // <
  kLessEq,            // <=
  kGreater,           // >
  kGreaterEq,         // >=
  kConcat,            // ||
};

std::string_view TokenKindName(TokenKind kind);

/// One lexical token with source position (1-based line/column) for
/// error messages.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // identifier/keyword/literal text
  int64_t int_value = 0;   // valid for kIntegerLiteral
  double double_value = 0; // valid for kDoubleLiteral
  int line = 1;
  int column = 1;

  bool IsKeyword(std::string_view kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }

  /// Display form used in parser diagnostics.
  std::string Describe() const;
};

/// True if `word` (any case) is a reserved keyword of the dialect.
bool IsReservedKeyword(std::string_view word);

}  // namespace pdm::sql

#endif  // PDM_SQL_TOKEN_H_
