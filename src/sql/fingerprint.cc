#include "sql/fingerprint.h"

#include "obs/metrics.h"
#include "sql/lexer.h"

namespace pdm::sql {

namespace {

/// The counter lives in the process-wide MetricsRegistry; the reference
/// is stable for the life of the process, so it is looked up once.
obs::Counter& FingerprintCallCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("sql.fingerprint_calls");
  return counter;
}

}  // namespace

uint64_t FingerprintCallCount() { return FingerprintCallCounter().value(); }

namespace {

std::string_view PunctText(TokenKind kind) {
  switch (kind) {
    case TokenKind::kLeftParen:  return "(";
    case TokenKind::kRightParen: return ")";
    case TokenKind::kComma:      return ",";
    case TokenKind::kDot:        return ".";
    case TokenKind::kSemicolon:  return ";";
    case TokenKind::kStar:       return "*";
    case TokenKind::kPlus:       return "+";
    case TokenKind::kMinus:      return "-";
    case TokenKind::kSlash:      return "/";
    case TokenKind::kPercent:    return "%";
    case TokenKind::kEq:         return "=";
    case TokenKind::kNotEq:      return "<>";
    case TokenKind::kLess:       return "<";
    case TokenKind::kLessEq:     return "<=";
    case TokenKind::kGreater:    return ">";
    case TokenKind::kGreaterEq:  return ">=";
    case TokenKind::kConcat:     return "||";
    default:                     return "?";
  }
}

/// Per-parenthesis-depth ORDER BY state. `item_start` is true exactly
/// where Parser::ParseOrderByItem would treat a bare integer as an
/// output-column position: right after ORDER BY and after each
/// item-separating comma at the same depth.
struct OrderState {
  bool in_order_by = false;
  bool item_start = false;
};

}  // namespace

Result<StatementFingerprint> FingerprintSql(std::string_view sql) {
  FingerprintCallCounter().Increment();
  StatementFingerprint fp;
  PDM_ASSIGN_OR_RETURN(fp.tokens, TokenizeSql(sql));
  if (fp.tokens.empty() ||
      !(fp.tokens[0].IsKeyword("SELECT") || fp.tokens[0].IsKeyword("WITH"))) {
    return fp;
  }
  fp.cacheable = true;

  std::vector<OrderState> levels(1);
  std::string& key = fp.key;
  auto append = [&key](std::string_view piece) {
    if (!key.empty()) key += ' ';
    key += piece;
  };

  const std::vector<Token>& toks = fp.tokens;
  for (size_t i = 0; i < toks.size() && toks[i].kind != TokenKind::kEnd; ++i) {
    const Token& t = toks[i];
    const bool was_item_start =
        levels.back().in_order_by && levels.back().item_start;
    levels.back().item_start = false;

    switch (t.kind) {
      case TokenKind::kKeyword:
        if (t.text == "BY" && i > 0 && toks[i - 1].IsKeyword("ORDER")) {
          levels.back().in_order_by = true;
          levels.back().item_start = true;
        } else if (t.text == "LIMIT") {
          levels.back().in_order_by = false;
        }
        append(t.text);
        break;
      case TokenKind::kIdentifier:
        // Quoted so an identifier can never collide with a keyword.
        key += key.empty() ? "\"" : " \"";
        key += t.text;
        key += '"';
        break;
      case TokenKind::kLeftParen:
        levels.emplace_back();
        append("(");
        break;
      case TokenKind::kRightParen:
        if (levels.size() > 1) levels.pop_back();
        append(")");
        break;
      case TokenKind::kComma:
        if (levels.back().in_order_by) levels.back().item_start = true;
        append(",");
        break;
      case TokenKind::kIntegerLiteral: {
        const bool after_limit = i > 0 && toks[i - 1].IsKeyword("LIMIT");
        const bool type_length = i >= 3 &&
                                 toks[i - 1].kind == TokenKind::kLeftParen &&
                                 toks[i - 2].kind == TokenKind::kIdentifier &&
                                 toks[i - 3].IsKeyword("AS");
        if (after_limit || type_length || was_item_start) {
          append(t.text);  // structural: baked into the plan, not a slot
        } else {
          append("?i");
          fp.params.push_back(Value::Int64(t.int_value));
        }
        break;
      }
      case TokenKind::kDoubleLiteral:
        append("?d");
        fp.params.push_back(Value::Double(t.double_value));
        break;
      case TokenKind::kStringLiteral:
        append("?s");
        fp.params.push_back(Value::String(t.text));
        break;
      default:
        append(PunctText(t.kind));
        break;
    }
  }
  return fp;
}

}  // namespace pdm::sql
