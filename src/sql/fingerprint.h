#ifndef PDM_SQL_FINGERPRINT_H_
#define PDM_SQL_FINGERPRINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "sql/token.h"

namespace pdm::sql {

/// Normalized form of one SQL statement, produced by a pass over the
/// lexer token stream (no parse). Literals are replaced by type-tagged
/// placeholders (`?i` / `?d` / `?s`) and collected into `params` in
/// token order, so that the navigational workload's per-node queries —
/// identical shapes differing only in `link.left = <obid>` — share one
/// key. The key is what engine/plan_cache.h caches bound plans under.
///
/// Three classes of integer literals stay verbatim in the key because
/// the parser folds them into plan *structure* rather than binding them
/// as literal expressions: the LIMIT count, ORDER BY output-column
/// positions, and type lengths (`CAST(x AS VARCHAR(10))`). The
/// classification here must stay in lockstep with Parser::StampedLiteral
/// so that `params[i]` always describes the literal stamped with
/// param_slot i.
struct StatementFingerprint {
  /// Normalized statement text; empty unless `cacheable`.
  std::string key;
  /// Extracted literal values, in token order.
  std::vector<Value> params;
  /// True for SELECT/WITH statements — the only ones worth caching.
  bool cacheable = false;
  /// The token stream, reusable to parse the statement without
  /// re-lexing on a cache miss.
  std::vector<Token> tokens;
};

/// Tokenizes `sql` and fingerprints it. Non-SELECT statements come back
/// with `cacheable == false` (tokens still populated). Fails only on
/// lexical errors.
Result<StatementFingerprint> FingerprintSql(std::string_view sql);

/// Process-wide count of FingerprintSql calls (each is one full lexer
/// pass over the statement text). Observability only: the batch/wave
/// execution paths assert through it that every statement is lexed
/// exactly once, and bench/micro_engine reports it per statement.
///
/// Thin shim over the "sql.fingerprint_calls" counter in
/// obs::MetricsRegistry (the process-wide metrics home); kept so
/// existing benches and tests compile unchanged. Note that a full
/// observability reset (MetricsRegistry::ResetAll) zeroes it.
uint64_t FingerprintCallCount();

}  // namespace pdm::sql

#endif  // PDM_SQL_FINGERPRINT_H_
