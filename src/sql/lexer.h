#ifndef PDM_SQL_LEXER_H_
#define PDM_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace pdm::sql {

/// Tokenizes SQL text. Supports `--` line comments, `/* */` block
/// comments, single-quoted strings with `''` escapes, and double-quoted
/// identifiers.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Tokenizes the whole input. The final token is always kEnd.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> NextToken();
  void SkipWhitespaceAndComments();
  char Peek(size_t offset = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= input_.size(); }
  Status ErrorHere(std::string message) const;

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

/// Convenience: tokenize a full statement string.
Result<std::vector<Token>> TokenizeSql(std::string_view sql);

}  // namespace pdm::sql

#endif  // PDM_SQL_LEXER_H_
