#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace pdm::sql {

// --- Token helpers -----------------------------------------------------------

const Token& Parser::Peek(size_t offset) const {
  size_t i = pos_ + offset;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // the trailing kEnd
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::MatchToken(TokenKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchKeyword(std::string_view kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenKind kind, std::string_view what) {
  if (Check(kind)) {
    Advance();
    return Status::OK();
  }
  return ErrorHere("expected " + std::string(what) + ", found " +
                   Peek().Describe());
}

Status Parser::ExpectKeyword(std::string_view kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return Status::OK();
  }
  return ErrorHere("expected " + std::string(kw) + ", found " +
                   Peek().Describe());
}

Result<std::string> Parser::ExpectIdentifier(std::string_view what) {
  if (Check(TokenKind::kIdentifier)) {
    return Advance().text;
  }
  return ErrorHere("expected " + std::string(what) + ", found " +
                   Peek().Describe());
}

Status Parser::ErrorHere(std::string message) const {
  const Token& t = Peek();
  return Status::ParseError(StrFormat("%s (line %d, column %d)",
                                      message.c_str(), t.line, t.column));
}

// --- Entry points ------------------------------------------------------------

Result<StatementPtr> Parser::ParseTopLevel() {
  next_param_slot_ = 0;  // fingerprint parameter ordinals are per-statement
  if (CheckKeyword("SELECT") || CheckKeyword("WITH")) {
    return ParseSelectStatement();
  }
  if (CheckKeyword("EXPLAIN")) return ParseExplain();
  if (CheckKeyword("CREATE")) {
    if (Peek(1).IsKeyword("VIEW") ||
        (Peek(1).IsKeyword("OR") && Peek(2).IsKeyword("REPLACE"))) {
      return ParseCreateView();
    }
    return ParseCreateTable();
  }
  if (CheckKeyword("DROP")) {
    if (Peek(1).IsKeyword("VIEW")) return ParseDropView();
    return ParseDropTable();
  }
  if (CheckKeyword("INSERT")) return ParseInsert();
  if (CheckKeyword("UPDATE")) return ParseUpdate();
  if (CheckKeyword("DELETE")) return ParseDelete();
  if (CheckKeyword("CALL")) return ParseCall();
  return ErrorHere("expected a statement, found " + Peek().Describe());
}

Result<StatementPtr> Parser::ParseStatement() {
  Result<StatementPtr> stmt = ParseTopLevel();
  if (!stmt.ok()) return stmt;
  MatchToken(TokenKind::kSemicolon);
  if (!Check(TokenKind::kEnd)) {
    return ErrorHere("unexpected trailing input: " + Peek().Describe());
  }
  return stmt;
}

Result<std::vector<StatementPtr>> Parser::ParseScript() {
  std::vector<StatementPtr> out;
  while (!Check(TokenKind::kEnd)) {
    if (MatchToken(TokenKind::kSemicolon)) continue;
    Result<StatementPtr> stmt = ParseTopLevel();
    if (!stmt.ok()) return stmt.status();
    out.push_back(std::move(stmt).value());
    if (!Check(TokenKind::kEnd)) {
      PDM_RETURN_NOT_OK(Expect(TokenKind::kSemicolon, "';'"));
    }
  }
  return out;
}

Result<StatementPtr> Parser::ParseExplain() {
  PDM_RETURN_NOT_OK(ExpectKeyword("EXPLAIN"));
  auto stmt = std::make_unique<ExplainStmt>();
  PDM_ASSIGN_OR_RETURN(StatementPtr select, ParseSelectStatement());
  stmt->select.reset(static_cast<SelectStmt*>(select.release()));
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseCreateView() {
  PDM_RETURN_NOT_OK(ExpectKeyword("CREATE"));
  auto stmt = std::make_unique<CreateViewStmt>();
  if (MatchKeyword("OR")) {
    PDM_RETURN_NOT_OK(ExpectKeyword("REPLACE"));
    stmt->or_replace = true;
  }
  PDM_RETURN_NOT_OK(ExpectKeyword("VIEW"));
  PDM_ASSIGN_OR_RETURN(stmt->view_name, ExpectIdentifier("view name"));
  PDM_RETURN_NOT_OK(ExpectKeyword("AS"));
  PDM_ASSIGN_OR_RETURN(StatementPtr select, ParseSelectStatement());
  stmt->select.reset(static_cast<SelectStmt*>(select.release()));
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseDropView() {
  PDM_RETURN_NOT_OK(ExpectKeyword("DROP"));
  PDM_RETURN_NOT_OK(ExpectKeyword("VIEW"));
  auto stmt = std::make_unique<DropViewStmt>();
  if (CheckKeyword("IF")) {
    Advance();
    PDM_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
    stmt->if_exists = true;
  }
  PDM_ASSIGN_OR_RETURN(stmt->view_name, ExpectIdentifier("view name"));
  return StatementPtr(std::move(stmt));
}

Result<ExprPtr> Parser::ParseStandaloneExpression() {
  next_param_slot_ = 0;
  PDM_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
  if (!Check(TokenKind::kEnd)) {
    return ErrorHere("unexpected trailing input: " + Peek().Describe());
  }
  return expr;
}

// --- Statements ---------------------------------------------------------------

Result<StatementPtr> Parser::ParseSelectStatement() {
  auto stmt = std::make_unique<SelectStmt>();
  if (MatchKeyword("WITH")) {
    stmt->recursive = MatchKeyword("RECURSIVE");
    do {
      CommonTableExpr cte;
      PDM_ASSIGN_OR_RETURN(cte.name, ExpectIdentifier("CTE name"));
      if (MatchToken(TokenKind::kLeftParen)) {
        do {
          PDM_ASSIGN_OR_RETURN(std::string col,
                               ExpectIdentifier("CTE column name"));
          cte.column_names.push_back(std::move(col));
        } while (MatchToken(TokenKind::kComma));
        PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
      }
      PDM_RETURN_NOT_OK(ExpectKeyword("AS"));
      PDM_RETURN_NOT_OK(Expect(TokenKind::kLeftParen, "'('"));
      PDM_ASSIGN_OR_RETURN(cte.query, ParseQueryExpr());
      PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
      stmt->ctes.push_back(std::move(cte));
    } while (MatchToken(TokenKind::kComma));
  }
  PDM_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> q, ParseQueryExpr());
  stmt->query = std::move(*q);
  return StatementPtr(std::move(stmt));
}

Result<std::unique_ptr<QueryExpr>> Parser::ParseQueryExpr() {
  auto query = std::make_unique<QueryExpr>();
  PDM_ASSIGN_OR_RETURN(SelectCore first, ParseSelectCore());
  query->terms.push_back(std::move(first));
  while (MatchKeyword("UNION")) {
    bool all = MatchKeyword("ALL");
    PDM_ASSIGN_OR_RETURN(SelectCore term, ParseSelectCore());
    query->terms.push_back(std::move(term));
    query->union_all.push_back(all);
  }
  if (MatchKeyword("ORDER")) {
    PDM_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      PDM_ASSIGN_OR_RETURN(OrderByItem item, ParseOrderByItem());
      query->order_by.push_back(std::move(item));
    } while (MatchToken(TokenKind::kComma));
  }
  if (MatchKeyword("LIMIT")) {
    if (!Check(TokenKind::kIntegerLiteral)) {
      return ErrorHere("expected integer after LIMIT");
    }
    query->limit = Advance().int_value;
  }
  return query;
}

Result<OrderByItem> Parser::ParseOrderByItem() {
  OrderByItem item;
  if (Check(TokenKind::kIntegerLiteral)) {
    item.position = Advance().int_value;
  } else {
    PDM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  }
  if (MatchKeyword("DESC")) {
    item.descending = true;
  } else {
    MatchKeyword("ASC");
  }
  return item;
}

Result<SelectCore> Parser::ParseSelectCore() {
  SelectCore core;
  PDM_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  core.distinct = MatchKeyword("DISTINCT");
  if (!core.distinct) MatchKeyword("ALL");
  do {
    PDM_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    core.items.push_back(std::move(item));
  } while (MatchToken(TokenKind::kComma));

  if (MatchKeyword("FROM")) {
    do {
      PDM_ASSIGN_OR_RETURN(FromItem item, ParseFromItem());
      core.from.push_back(std::move(item));
    } while (MatchToken(TokenKind::kComma));
  }
  if (MatchKeyword("WHERE")) {
    PDM_ASSIGN_OR_RETURN(core.where, ParseExpr());
  }
  if (MatchKeyword("GROUP")) {
    PDM_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      PDM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      core.group_by.push_back(std::move(e));
    } while (MatchToken(TokenKind::kComma));
  }
  if (MatchKeyword("HAVING")) {
    PDM_ASSIGN_OR_RETURN(core.having, ParseExpr());
  }
  return core;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  if (Check(TokenKind::kStar)) {
    Advance();
    item.is_star = true;
    return item;
  }
  // `alias.*`
  if (Check(TokenKind::kIdentifier) && Peek(1).kind == TokenKind::kDot &&
      Peek(2).kind == TokenKind::kStar) {
    item.is_star = true;
    item.star_qualifier = Advance().text;
    Advance();  // '.'
    Advance();  // '*'
    return item;
  }
  PDM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  if (MatchKeyword("AS")) {
    PDM_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("column alias"));
  } else if (Check(TokenKind::kIdentifier)) {
    item.alias = Advance().text;
  }
  return item;
}

Result<FromItem> Parser::ParseFromItem() {
  FromItem item;
  PDM_ASSIGN_OR_RETURN(item.ref, ParseTableRef());
  while (true) {
    bool is_join = false;
    if (CheckKeyword("JOIN")) {
      Advance();
      is_join = true;
    } else if (CheckKeyword("INNER") && Peek(1).IsKeyword("JOIN")) {
      Advance();
      Advance();
      is_join = true;
    }
    if (!is_join) break;
    JoinClause join;
    PDM_ASSIGN_OR_RETURN(join.ref, ParseTableRef());
    PDM_RETURN_NOT_OK(ExpectKeyword("ON"));
    PDM_ASSIGN_OR_RETURN(join.on, ParseExpr());
    item.joins.push_back(std::move(join));
  }
  return item;
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  if (MatchToken(TokenKind::kLeftParen)) {
    ref.kind = TableRef::Kind::kSubquery;
    PDM_ASSIGN_OR_RETURN(ref.subquery, ParseQueryExpr());
    PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
    MatchKeyword("AS");
    PDM_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("derived table alias"));
    return ref;
  }
  PDM_ASSIGN_OR_RETURN(ref.table_name, ExpectIdentifier("table name"));
  if (MatchKeyword("AS")) {
    PDM_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("table alias"));
  } else if (Check(TokenKind::kIdentifier)) {
    ref.alias = Advance().text;
  }
  return ref;
}

Result<StatementPtr> Parser::ParseCreateTable() {
  PDM_RETURN_NOT_OK(ExpectKeyword("CREATE"));
  PDM_RETURN_NOT_OK(ExpectKeyword("TABLE"));
  auto stmt = std::make_unique<CreateTableStmt>();
  if (CheckKeyword("IF")) {
    Advance();
    PDM_RETURN_NOT_OK(ExpectKeyword("NOT"));
    PDM_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
    stmt->if_not_exists = true;
  }
  PDM_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
  PDM_RETURN_NOT_OK(Expect(TokenKind::kLeftParen, "'('"));
  do {
    Column col;
    PDM_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
    PDM_ASSIGN_OR_RETURN(std::string type_name,
                         ExpectIdentifier("column type"));
    PDM_ASSIGN_OR_RETURN(col.type, ParseColumnType(type_name));
    // Swallow optional length: VARCHAR(80).
    if (MatchToken(TokenKind::kLeftParen)) {
      if (!Check(TokenKind::kIntegerLiteral)) {
        return ErrorHere("expected length in type");
      }
      Advance();
      PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
    }
    stmt->columns.push_back(std::move(col));
  } while (MatchToken(TokenKind::kComma));
  PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseDropTable() {
  PDM_RETURN_NOT_OK(ExpectKeyword("DROP"));
  PDM_RETURN_NOT_OK(ExpectKeyword("TABLE"));
  auto stmt = std::make_unique<DropTableStmt>();
  if (CheckKeyword("IF")) {
    Advance();
    PDM_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
    stmt->if_exists = true;
  }
  PDM_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseInsert() {
  PDM_RETURN_NOT_OK(ExpectKeyword("INSERT"));
  PDM_RETURN_NOT_OK(ExpectKeyword("INTO"));
  auto stmt = std::make_unique<InsertStmt>();
  PDM_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
  if (MatchToken(TokenKind::kLeftParen)) {
    do {
      PDM_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      stmt->columns.push_back(std::move(col));
    } while (MatchToken(TokenKind::kComma));
    PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
  }
  PDM_RETURN_NOT_OK(ExpectKeyword("VALUES"));
  do {
    PDM_RETURN_NOT_OK(Expect(TokenKind::kLeftParen, "'('"));
    std::vector<ExprPtr> row;
    do {
      PDM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      row.push_back(std::move(e));
    } while (MatchToken(TokenKind::kComma));
    PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
    stmt->rows.push_back(std::move(row));
  } while (MatchToken(TokenKind::kComma));
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseUpdate() {
  PDM_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
  auto stmt = std::make_unique<UpdateStmt>();
  PDM_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
  PDM_RETURN_NOT_OK(ExpectKeyword("SET"));
  do {
    PDM_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
    PDM_RETURN_NOT_OK(Expect(TokenKind::kEq, "'='"));
    PDM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    stmt->assignments.emplace_back(std::move(col), std::move(e));
  } while (MatchToken(TokenKind::kComma));
  if (MatchKeyword("WHERE")) {
    PDM_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseDelete() {
  PDM_RETURN_NOT_OK(ExpectKeyword("DELETE"));
  PDM_RETURN_NOT_OK(ExpectKeyword("FROM"));
  auto stmt = std::make_unique<DeleteStmt>();
  PDM_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier("table name"));
  if (MatchKeyword("WHERE")) {
    PDM_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseCall() {
  PDM_RETURN_NOT_OK(ExpectKeyword("CALL"));
  auto stmt = std::make_unique<CallStmt>();
  PDM_ASSIGN_OR_RETURN(stmt->procedure_name,
                       ExpectIdentifier("procedure name"));
  PDM_RETURN_NOT_OK(Expect(TokenKind::kLeftParen, "'('"));
  if (!Check(TokenKind::kRightParen)) {
    do {
      PDM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->args.push_back(std::move(e));
    } while (MatchToken(TokenKind::kComma));
  }
  PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
  return StatementPtr(std::move(stmt));
}

// --- Expressions ---------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() {
  PDM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchKeyword("OR")) {
    PDM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  PDM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (MatchKeyword("AND")) {
    PDM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  // NOT EXISTS is handled as a unit by ParsePrimary so it yields an
  // ExistsExpr with its negated flag set (matching how the rule layer
  // builds and inspects these nodes).
  if (CheckKeyword("NOT") && !Peek(1).IsKeyword("EXISTS")) {
    Advance();
    PDM_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
    return MakeNot(std::move(e));
  }
  return ParseComparison();
}

bool Parser::PeekSubqueryAfterLParen() const {
  return Check(TokenKind::kLeftParen) &&
         (Peek(1).IsKeyword("SELECT") || Peek(1).IsKeyword("WITH"));
}

Result<ExprPtr> Parser::ParseComparison() {
  PDM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  while (true) {
    BinaryOp op;
    if (Check(TokenKind::kEq)) {
      op = BinaryOp::kEq;
    } else if (Check(TokenKind::kNotEq)) {
      op = BinaryOp::kNotEq;
    } else if (Check(TokenKind::kLess)) {
      op = BinaryOp::kLess;
    } else if (Check(TokenKind::kLessEq)) {
      op = BinaryOp::kLessEq;
    } else if (Check(TokenKind::kGreater)) {
      op = BinaryOp::kGreater;
    } else if (Check(TokenKind::kGreaterEq)) {
      op = BinaryOp::kGreaterEq;
    } else {
      break;
    }
    Advance();
    PDM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  // Postfix predicates: IS [NOT] NULL, [NOT] IN / BETWEEN / LIKE.
  while (true) {
    if (MatchKeyword("IS")) {
      bool negated = MatchKeyword("NOT");
      PDM_RETURN_NOT_OK(ExpectKeyword("NULL"));
      lhs = std::make_unique<IsNullExpr>(std::move(lhs), negated);
      continue;
    }
    bool negated = false;
    size_t saved = pos_;
    if (MatchKeyword("NOT")) {
      if (CheckKeyword("IN") || CheckKeyword("BETWEEN") ||
          CheckKeyword("LIKE")) {
        negated = true;
      } else {
        pos_ = saved;  // the NOT belongs to a boolean context above us
        break;
      }
    }
    if (MatchKeyword("IN")) {
      if (PeekSubqueryAfterLParen()) {
        PDM_RETURN_NOT_OK(Expect(TokenKind::kLeftParen, "'('"));
        PDM_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> sub, ParseQueryExpr());
        PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
        lhs = std::make_unique<InSubqueryExpr>(std::move(lhs), std::move(sub),
                                               negated);
      } else {
        PDM_RETURN_NOT_OK(Expect(TokenKind::kLeftParen, "'('"));
        std::vector<ExprPtr> items;
        do {
          PDM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          items.push_back(std::move(e));
        } while (MatchToken(TokenKind::kComma));
        PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
        lhs = std::make_unique<InListExpr>(std::move(lhs), std::move(items),
                                           negated);
      }
      continue;
    }
    if (MatchKeyword("BETWEEN")) {
      PDM_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
      PDM_RETURN_NOT_OK(ExpectKeyword("AND"));
      PDM_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
      lhs = std::make_unique<BetweenExpr>(std::move(lhs), std::move(low),
                                          std::move(high), negated);
      continue;
    }
    if (MatchKeyword("LIKE")) {
      PDM_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      lhs = std::make_unique<LikeExpr>(std::move(lhs), std::move(pattern),
                                       negated);
      continue;
    }
    break;
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAdditive() {
  PDM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (Check(TokenKind::kPlus)) {
      op = BinaryOp::kAdd;
    } else if (Check(TokenKind::kMinus)) {
      op = BinaryOp::kSub;
    } else if (Check(TokenKind::kConcat)) {
      op = BinaryOp::kConcat;
    } else {
      break;
    }
    Advance();
    PDM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  PDM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (true) {
    BinaryOp op;
    if (Check(TokenKind::kStar)) {
      op = BinaryOp::kMul;
    } else if (Check(TokenKind::kSlash)) {
      op = BinaryOp::kDiv;
    } else if (Check(TokenKind::kPercent)) {
      op = BinaryOp::kMod;
    } else {
      break;
    }
    Advance();
    PDM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchToken(TokenKind::kMinus)) {
    PDM_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
    return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNegate, std::move(e)));
  }
  if (MatchToken(TokenKind::kPlus)) {
    return ParseUnary();
  }
  return ParsePrimary();
}

ExprPtr Parser::StampedLiteral(Value v) {
  auto lit = std::make_unique<LiteralExpr>(std::move(v));
  lit->param_slot = static_cast<int>(next_param_slot_++);
  return lit;
}

Result<ExprPtr> Parser::ParsePrimary() {
  // Literals.
  if (Check(TokenKind::kIntegerLiteral)) {
    return StampedLiteral(Value::Int64(Advance().int_value));
  }
  if (Check(TokenKind::kDoubleLiteral)) {
    return StampedLiteral(Value::Double(Advance().double_value));
  }
  if (Check(TokenKind::kStringLiteral)) {
    return StampedLiteral(Value::String(Advance().text));
  }
  if (MatchKeyword("NULL")) return MakeLiteral(Value::Null());
  if (MatchKeyword("TRUE")) return MakeLiteral(Value::Bool(true));
  if (MatchKeyword("FALSE")) return MakeLiteral(Value::Bool(false));

  if (CheckKeyword("CASE")) return ParseCase();

  if (MatchKeyword("CAST")) {
    PDM_RETURN_NOT_OK(Expect(TokenKind::kLeftParen, "'('"));
    PDM_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
    PDM_RETURN_NOT_OK(ExpectKeyword("AS"));
    PDM_ASSIGN_OR_RETURN(std::string type_name,
                         ExpectIdentifier("type name"));
    PDM_ASSIGN_OR_RETURN(ColumnType type, ParseColumnType(type_name));
    // Optional length, e.g. CAST(x AS VARCHAR(10)).
    if (MatchToken(TokenKind::kLeftParen)) {
      if (!Check(TokenKind::kIntegerLiteral)) {
        return ErrorHere("expected length in type");
      }
      Advance();
      PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
    }
    PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
    return ExprPtr(std::make_unique<CastExpr>(std::move(operand), type));
  }

  if (CheckKeyword("EXISTS") ||
      (CheckKeyword("NOT") && Peek(1).IsKeyword("EXISTS"))) {
    bool negated = MatchKeyword("NOT");
    PDM_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
    PDM_RETURN_NOT_OK(Expect(TokenKind::kLeftParen, "'('"));
    PDM_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> sub, ParseQueryExpr());
    PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
    return ExprPtr(std::make_unique<ExistsExpr>(std::move(sub), negated));
  }

  // Parenthesized: scalar subquery or grouped expression.
  if (Check(TokenKind::kLeftParen)) {
    if (PeekSubqueryAfterLParen()) {
      Advance();  // '('
      PDM_ASSIGN_OR_RETURN(std::unique_ptr<QueryExpr> sub, ParseQueryExpr());
      PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
      return ExprPtr(std::make_unique<ScalarSubqueryExpr>(std::move(sub)));
    }
    Advance();  // '('
    PDM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
    return e;
  }

  // Identifiers: function call, qualified or bare column ref.
  if (Check(TokenKind::kIdentifier)) {
    std::string name = Advance().text;
    if (Check(TokenKind::kLeftParen)) {
      return ParseFunctionCall(std::move(name));
    }
    if (MatchToken(TokenKind::kDot)) {
      PDM_ASSIGN_OR_RETURN(std::string column,
                           ExpectIdentifier("column name"));
      return MakeColumnRef(std::move(name), std::move(column));
    }
    return MakeColumnRef(std::move(name));
  }

  return ErrorHere("expected an expression, found " + Peek().Describe());
}

Result<ExprPtr> Parser::ParseFunctionCall(std::string name) {
  PDM_RETURN_NOT_OK(Expect(TokenKind::kLeftParen, "'('"));
  bool distinct = MatchKeyword("DISTINCT");
  std::vector<ExprPtr> args;
  if (!Check(TokenKind::kRightParen)) {
    if (Check(TokenKind::kStar)) {
      Advance();
      args.push_back(std::make_unique<StarExpr>());
    } else {
      do {
        PDM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        args.push_back(std::move(e));
      } while (MatchToken(TokenKind::kComma));
    }
  }
  PDM_RETURN_NOT_OK(Expect(TokenKind::kRightParen, "')'"));
  return ExprPtr(std::make_unique<FunctionCallExpr>(
      ToUpperAscii(name), std::move(args), distinct));
}

Result<ExprPtr> Parser::ParseCase() {
  PDM_RETURN_NOT_OK(ExpectKeyword("CASE"));
  std::vector<std::pair<ExprPtr, ExprPtr>> whens;
  while (MatchKeyword("WHEN")) {
    PDM_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    PDM_RETURN_NOT_OK(ExpectKeyword("THEN"));
    PDM_ASSIGN_OR_RETURN(ExprPtr val, ParseExpr());
    whens.emplace_back(std::move(cond), std::move(val));
  }
  if (whens.empty()) {
    return ErrorHere("CASE requires at least one WHEN clause");
  }
  ExprPtr else_expr;
  if (MatchKeyword("ELSE")) {
    PDM_ASSIGN_OR_RETURN(else_expr, ParseExpr());
  }
  PDM_RETURN_NOT_OK(ExpectKeyword("END"));
  return ExprPtr(
      std::make_unique<CaseExpr>(std::move(whens), std::move(else_expr)));
}

// --- Free functions -------------------------------------------------------------

Result<StatementPtr> ParseSql(std::string_view sql) {
  PDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeSql(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<std::vector<StatementPtr>> ParseSqlScript(std::string_view sql) {
  PDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeSql(sql));
  Parser parser(std::move(tokens));
  return parser.ParseScript();
}

Result<ExprPtr> ParseSqlExpression(std::string_view text) {
  PDM_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeSql(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace pdm::sql
