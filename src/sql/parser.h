#ifndef PDM_SQL_PARSER_H_
#define PDM_SQL_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace pdm::sql {

/// Recursive-descent parser for the SQL dialect described in DESIGN.md.
/// The dialect is the subset the paper's queries need (plus DML/DDL):
/// it deliberately has no LEFT JOIN so that LEFT/RIGHT stay usable as
/// column names, matching the paper's `link(left, right, ...)` schema.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  /// Parses exactly one statement (optionally ';'-terminated).
  Result<StatementPtr> ParseStatement();

  /// Parses a ';'-separated list of statements.
  Result<std::vector<StatementPtr>> ParseScript();

  /// Parses a standalone expression (used by tests and the rule layer to
  /// build conditions from text).
  Result<ExprPtr> ParseStandaloneExpression();

 private:
  // Token helpers.
  const Token& Peek(size_t offset = 0) const;
  const Token& Advance();
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool CheckKeyword(std::string_view kw) const { return Peek().IsKeyword(kw); }
  bool MatchToken(TokenKind kind);
  bool MatchKeyword(std::string_view kw);
  Status Expect(TokenKind kind, std::string_view what);
  Status ExpectKeyword(std::string_view kw);
  Result<std::string> ExpectIdentifier(std::string_view what);
  Status ErrorHere(std::string message) const;

  // Statements.
  Result<StatementPtr> ParseTopLevel();
  Result<StatementPtr> ParseSelectStatement();
  Result<StatementPtr> ParseCreateTable();
  Result<StatementPtr> ParseDropTable();
  Result<StatementPtr> ParseInsert();
  Result<StatementPtr> ParseUpdate();
  Result<StatementPtr> ParseDelete();
  Result<StatementPtr> ParseCall();
  Result<StatementPtr> ParseExplain();
  Result<StatementPtr> ParseCreateView();
  Result<StatementPtr> ParseDropView();

  // Query structure.
  Result<std::unique_ptr<QueryExpr>> ParseQueryExpr();
  Result<SelectCore> ParseSelectCore();
  Result<SelectItem> ParseSelectItem();
  Result<FromItem> ParseFromItem();
  Result<TableRef> ParseTableRef();
  Result<OrderByItem> ParseOrderByItem();

  // Expressions (by descending precedence level).
  Result<ExprPtr> ParseExpr();           // OR
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();     // = <> < <= > >= IN BETWEEN LIKE IS
  Result<ExprPtr> ParseAdditive();       // + - ||
  Result<ExprPtr> ParseMultiplicative(); // * / %
  Result<ExprPtr> ParseUnary();          // -x
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseFunctionCall(std::string name);
  Result<ExprPtr> ParseCase();

  /// True if the upcoming '('-enclosed production is a subquery
  /// (starts with SELECT or WITH).
  bool PeekSubqueryAfterLParen() const;

  /// Literal stamped with the next fingerprint parameter ordinal. Every
  /// literal *token* that reaches ParsePrimary gets a slot; literals the
  /// fingerprint keeps verbatim (LIMIT, ORDER BY positions, type
  /// lengths) and keyword literals (NULL/TRUE/FALSE) do not. The
  /// numbering must stay in lockstep with sql/fingerprint.cc.
  ExprPtr StampedLiteral(Value v);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  size_t next_param_slot_ = 0;
};

/// Tokenizes and parses one statement.
Result<StatementPtr> ParseSql(std::string_view sql);

/// Tokenizes and parses a ';'-separated script.
Result<std::vector<StatementPtr>> ParseSqlScript(std::string_view sql);

/// Tokenizes and parses a standalone expression (e.g. a rule condition).
Result<ExprPtr> ParseSqlExpression(std::string_view text);

}  // namespace pdm::sql

#endif  // PDM_SQL_PARSER_H_
