#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace pdm::sql {

namespace {
bool IsIdentStart(char c) {
  // '$' admits the rule layer's $user placeholder qualifier.
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return c >= '0' && c <= '9'; }
}  // namespace

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    PDM_ASSIGN_OR_RETURN(Token token, NextToken());
    bool at_end = token.kind == TokenKind::kEnd;
    tokens.push_back(std::move(token));
    if (at_end) break;
  }
  return tokens;
}

char Lexer::Peek(size_t offset) const {
  return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
}

char Lexer::Advance() {
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

Status Lexer::ErrorHere(std::string message) const {
  return Status::ParseError(StrFormat("%s at line %d, column %d",
                                      message.c_str(), line_, column_));
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      Advance();
    } else if (c == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else if (c == '/' && Peek(1) == '*') {
      Advance();
      Advance();
      while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
      if (!AtEnd()) {
        Advance();
        Advance();
      }
    } else {
      break;
    }
  }
}

Result<Token> Lexer::NextToken() {
  SkipWhitespaceAndComments();
  Token token;
  token.line = line_;
  token.column = column_;
  if (AtEnd()) {
    token.kind = TokenKind::kEnd;
    return token;
  }

  char c = Peek();

  // Identifiers and keywords.
  if (IsIdentStart(c)) {
    std::string word;
    word += Advance();  // first char may be '$', which IsIdentChar rejects
    while (!AtEnd() && IsIdentChar(Peek())) word += Advance();
    if (IsReservedKeyword(word)) {
      token.kind = TokenKind::kKeyword;
      token.text = ToUpperAscii(word);
    } else {
      token.kind = TokenKind::kIdentifier;
      token.text = std::move(word);
    }
    return token;
  }

  // Quoted identifiers: "NAME" (used by the paper for result aliases).
  if (c == '"') {
    Advance();
    std::string word;
    while (!AtEnd() && Peek() != '"') word += Advance();
    if (AtEnd()) return ErrorHere("unterminated quoted identifier");
    Advance();  // closing quote
    token.kind = TokenKind::kIdentifier;
    token.text = std::move(word);
    return token;
  }

  // String literals: 'abc', with '' as escaped quote.
  if (c == '\'') {
    Advance();
    std::string text;
    while (true) {
      if (AtEnd()) return ErrorHere("unterminated string literal");
      char s = Advance();
      if (s == '\'') {
        if (Peek() == '\'') {
          text += '\'';
          Advance();
        } else {
          break;
        }
      } else {
        text += s;
      }
    }
    token.kind = TokenKind::kStringLiteral;
    token.text = std::move(text);
    return token;
  }

  // Numeric literals: 42, 4.2, .5, 1e3, 1.5e-2.
  if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
    std::string text;
    bool is_double = false;
    while (!AtEnd() && IsDigit(Peek())) text += Advance();
    if (!AtEnd() && Peek() == '.' && IsDigit(Peek(1))) {
      is_double = true;
      text += Advance();
      while (!AtEnd() && IsDigit(Peek())) text += Advance();
    } else if (!AtEnd() && Peek() == '.' && !IsIdentStart(Peek(1))) {
      // trailing dot as in "5." — tolerate
      is_double = true;
      text += Advance();
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E') &&
        (IsDigit(Peek(1)) ||
         ((Peek(1) == '+' || Peek(1) == '-') && IsDigit(Peek(2))))) {
      is_double = true;
      text += Advance();
      if (Peek() == '+' || Peek() == '-') text += Advance();
      while (!AtEnd() && IsDigit(Peek())) text += Advance();
    }
    token.text = text;
    if (is_double) {
      token.kind = TokenKind::kDoubleLiteral;
      token.double_value = std::strtod(text.c_str(), nullptr);
    } else {
      token.kind = TokenKind::kIntegerLiteral;
      errno = 0;
      token.int_value = std::strtoll(text.c_str(), nullptr, 10);
      if (errno == ERANGE) return ErrorHere("integer literal out of range");
    }
    return token;
  }

  // Operators / punctuation.
  Advance();
  switch (c) {
    case '(':
      token.kind = TokenKind::kLeftParen;
      return token;
    case ')':
      token.kind = TokenKind::kRightParen;
      return token;
    case ',':
      token.kind = TokenKind::kComma;
      return token;
    case '.':
      token.kind = TokenKind::kDot;
      return token;
    case ';':
      token.kind = TokenKind::kSemicolon;
      return token;
    case '*':
      token.kind = TokenKind::kStar;
      return token;
    case '+':
      token.kind = TokenKind::kPlus;
      return token;
    case '-':
      token.kind = TokenKind::kMinus;
      return token;
    case '/':
      token.kind = TokenKind::kSlash;
      return token;
    case '%':
      token.kind = TokenKind::kPercent;
      return token;
    case '=':
      token.kind = TokenKind::kEq;
      return token;
    case '!':
      if (Peek() == '=') {
        Advance();
        token.kind = TokenKind::kNotEq;
        return token;
      }
      return ErrorHere("unexpected character '!'");
    case '<':
      if (Peek() == '=') {
        Advance();
        token.kind = TokenKind::kLessEq;
      } else if (Peek() == '>') {
        Advance();
        token.kind = TokenKind::kNotEq;
      } else {
        token.kind = TokenKind::kLess;
      }
      return token;
    case '>':
      if (Peek() == '=') {
        Advance();
        token.kind = TokenKind::kGreaterEq;
      } else {
        token.kind = TokenKind::kGreater;
      }
      return token;
    case '|':
      if (Peek() == '|') {
        Advance();
        token.kind = TokenKind::kConcat;
        return token;
      }
      return ErrorHere("unexpected character '|'");
    default:
      return ErrorHere(StrFormat("unexpected character '%c'", c));
  }
}

Result<std::vector<Token>> TokenizeSql(std::string_view sql) {
  Lexer lexer(sql);
  return lexer.Tokenize();
}

}  // namespace pdm::sql
