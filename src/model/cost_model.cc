#include "model/cost_model.h"

#include <cmath>

namespace pdm::model {

std::string_view ActionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kQuery:
      return "Query";
    case ActionKind::kSingleLevelExpand:
      return "Expand";
    case ActionKind::kMultiLevelExpand:
      return "MLE";
  }
  return "?";
}

std::string_view StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kNavigationalLate:
      return "late eval";
    case StrategyKind::kNavigationalEarly:
      return "early eval";
    case StrategyKind::kRecursive:
      return "recursion";
  }
  return "?";
}

namespace {

/// Σ_{i=1..n} x^i
double GeometricSum(double x, int n) {
  double sum = 0;
  double term = 1;
  for (int i = 1; i <= n; ++i) {
    term *= x;
    sum += term;
  }
  return sum;
}

}  // namespace

double VisibleNodes(const TreeParams& tree) {
  return GeometricSum(tree.sigma * tree.branching, tree.depth);
}

double TotalNodes(const TreeParams& tree) {
  return GeometricSum(tree.branching, tree.depth);
}

double QueryCount(StrategyKind strategy, ActionKind action,
                  const TreeParams& tree) {
  if (strategy == StrategyKind::kRecursive) return 1;
  switch (action) {
    case ActionKind::kQuery:
    case ActionKind::kSingleLevelExpand:
      return 1;
    case ActionKind::kMultiLevelExpand:
      // One expand query per visible node plus the root (which "is
      // already at the client" but still gets expanded).
      return VisibleNodes(tree) + 1;
  }
  return 1;
}

double TransmittedNodes(StrategyKind strategy, ActionKind action,
                        const TreeParams& tree) {
  double sw = tree.sigma * tree.branching;
  switch (strategy) {
    case StrategyKind::kNavigationalLate:
      switch (action) {
        case ActionKind::kQuery:
          return TotalNodes(tree);
        case ActionKind::kSingleLevelExpand:
          return tree.branching;
        case ActionKind::kMultiLevelExpand:
          // Every expanded (visible) node ships all ω children; the
          // client filters. ω * Σ_{i=0..α-1} (σω)^i.
          return tree.branching * (1.0 + GeometricSum(sw, tree.depth - 1));
      }
      break;
    case StrategyKind::kNavigationalEarly:
    case StrategyKind::kRecursive:
      switch (action) {
        case ActionKind::kQuery:
        case ActionKind::kMultiLevelExpand:
          return VisibleNodes(tree);
        case ActionKind::kSingleLevelExpand:
          return sw;
      }
      break;
  }
  return 0;
}

ResponseTime Predict(StrategyKind strategy, ActionKind action,
                     const TreeParams& tree, const NetworkParams& net,
                     double query_bytes) {
  double q = QueryCount(strategy, action, tree);
  double n_t = TransmittedNodes(strategy, action, tree);

  double request_packets = q;
  if (strategy == StrategyKind::kRecursive && query_bytes > 0) {
    // Eq. (5): q_r = packets needed to ship the (large) recursive query.
    request_packets = std::ceil(query_bytes / net.packet_bytes);
  }

  // Eq. (3)/(5): requests as full packets, responses as payload plus a
  // half-filled final packet per response.
  double vol = request_packets * net.packet_bytes + n_t * net.node_bytes +
               request_packets * net.packet_bytes / 2.0;

  ResponseTime rt;
  rt.latency_part = 2.0 * q * net.latency_s;
  rt.transfer_part = net.TransferSeconds(vol);
  return rt;
}

double SavingPercent(const ResponseTime& baseline, const ResponseTime& t) {
  double base = baseline.total();
  if (base <= 0) return 0;
  return (base - t.total()) / base * 100.0;
}

std::vector<TreeParams> PaperTreeScenarios() {
  return {
      TreeParams{3, 9, 0.6},
      TreeParams{9, 3, 0.6},
      TreeParams{7, 5, 0.6},
  };
}

std::vector<NetworkParams> PaperNetworkScenarios() {
  return {
      NetworkParams{0.15, 256, 4096, 512},
      NetworkParams{0.15, 512, 4096, 512},
      NetworkParams{0.05, 1024, 4096, 512},
  };
}

std::vector<TableCell> ComputePaperTable(StrategyKind strategy) {
  std::vector<TableCell> cells;
  std::vector<ActionKind> actions;
  if (strategy == StrategyKind::kRecursive) {
    actions = {ActionKind::kMultiLevelExpand};
  } else {
    actions = {ActionKind::kQuery, ActionKind::kSingleLevelExpand,
               ActionKind::kMultiLevelExpand};
  }
  for (const NetworkParams& net : PaperNetworkScenarios()) {
    for (const TreeParams& tree : PaperTreeScenarios()) {
      for (ActionKind action : actions) {
        cells.push_back(
            TableCell{tree, net, action, Predict(strategy, action, tree, net)});
      }
    }
  }
  return cells;
}

}  // namespace pdm::model
