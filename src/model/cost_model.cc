#include "model/cost_model.h"

#include <algorithm>
#include <cmath>

namespace pdm::model {

std::string_view ActionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kQuery:
      return "Query";
    case ActionKind::kSingleLevelExpand:
      return "Expand";
    case ActionKind::kMultiLevelExpand:
      return "MLE";
  }
  return "?";
}

std::string_view StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kNavigationalLate:
      return "late eval";
    case StrategyKind::kNavigationalEarly:
      return "early eval";
    case StrategyKind::kRecursive:
      return "recursion";
    case StrategyKind::kBatchedLate:
      return "batch late";
    case StrategyKind::kBatchedEarly:
      return "batch early";
    case StrategyKind::kPipelinedLate:
      return "pipe late";
    case StrategyKind::kPipelinedEarly:
      return "pipe early";
  }
  return "?";
}

namespace {

/// Σ_{i=1..n} x^i
double GeometricSum(double x, int n) {
  double sum = 0;
  double term = 1;
  for (int i = 1; i <= n; ++i) {
    term *= x;
    sum += term;
  }
  return sum;
}

bool IsPipelined(StrategyKind strategy) {
  return strategy == StrategyKind::kPipelinedLate ||
         strategy == StrategyKind::kPipelinedEarly;
}

/// Strategies that ship one batch per tree level (α + 1 round trips):
/// the batched client and its pipelined refinement, whose wire traffic
/// is identical batch for batch.
bool IsLevelBatched(StrategyKind strategy) {
  return strategy == StrategyKind::kBatchedLate ||
         strategy == StrategyKind::kBatchedEarly || IsPipelined(strategy);
}

/// The navigational regime a batched/pipelined strategy wraps: its
/// per-statement SQL, and therefore its transmitted volume, is
/// identical.
StrategyKind Unbatched(StrategyKind strategy) {
  switch (strategy) {
    case StrategyKind::kBatchedLate:
    case StrategyKind::kPipelinedLate:
      return StrategyKind::kNavigationalLate;
    case StrategyKind::kBatchedEarly:
    case StrategyKind::kPipelinedEarly:
      return StrategyKind::kNavigationalEarly;
    default:
      return strategy;
  }
}

}  // namespace

double VisibleNodes(const TreeParams& tree) {
  return GeometricSum(tree.sigma * tree.branching, tree.depth);
}

double TotalNodes(const TreeParams& tree) {
  return GeometricSum(tree.branching, tree.depth);
}

double QueryCount(StrategyKind strategy, ActionKind action,
                  const TreeParams& tree) {
  if (strategy == StrategyKind::kRecursive) return 1;
  switch (action) {
    case ActionKind::kQuery:
    case ActionKind::kSingleLevelExpand:
      return 1;
    case ActionKind::kMultiLevelExpand:
      // One expand query per visible node plus the root (which "is
      // already at the client" but still gets expanded).
      return VisibleNodes(tree) + 1;
  }
  return 1;
}

double RoundTripCount(StrategyKind strategy, ActionKind action,
                      const TreeParams& tree) {
  if (IsLevelBatched(strategy) && action == ActionKind::kMultiLevelExpand) {
    // One batch per tree level: the root's expand (level 0) plus one
    // batch for each of the α levels below it.
    return tree.depth + 1;
  }
  return QueryCount(strategy, action, tree);
}

double TransmittedNodes(StrategyKind strategy, ActionKind action,
                        const TreeParams& tree) {
  double sw = tree.sigma * tree.branching;
  switch (strategy) {
    case StrategyKind::kNavigationalLate:
    case StrategyKind::kBatchedLate:
    case StrategyKind::kPipelinedLate:
      switch (action) {
        case ActionKind::kQuery:
          return TotalNodes(tree);
        case ActionKind::kSingleLevelExpand:
          return tree.branching;
        case ActionKind::kMultiLevelExpand:
          // Every expanded (visible) node ships all ω children; the
          // client filters. ω * Σ_{i=0..α-1} (σω)^i.
          return tree.branching * (1.0 + GeometricSum(sw, tree.depth - 1));
      }
      break;
    case StrategyKind::kNavigationalEarly:
    case StrategyKind::kBatchedEarly:
    case StrategyKind::kPipelinedEarly:
    case StrategyKind::kRecursive:
      switch (action) {
        case ActionKind::kQuery:
        case ActionKind::kMultiLevelExpand:
          return VisibleNodes(tree);
        case ActionKind::kSingleLevelExpand:
          return sw;
      }
      break;
  }
  return 0;
}

ResponseTime Predict(StrategyKind strategy, ActionKind action,
                     const TreeParams& tree, const NetworkParams& net,
                     double query_bytes) {
  if (IsLevelBatched(strategy) && action == ActionKind::kMultiLevelExpand) {
    // Level-batched regimes (DESIGN.md 5d/5g): same transmitted volume
    // as the wrapped navigational strategy, but latency and packet
    // overheads are paid per level-batch, not per statement. Computed
    // per level so the pipelined overlap term can see each level's
    // transfer time X_i; the summed volume is identical to the
    // aggregate batched form.
    const bool late = Unbatched(strategy) == StrategyKind::kNavigationalLate;
    const bool pipelined = IsPipelined(strategy);
    double sw = tree.sigma * tree.branching;
    double round_trips = RoundTripCount(strategy, action, tree);

    ResponseTime rt;
    rt.latency_part = 2.0 * round_trips * net.latency_s;
    double k = 1;       // k_i = (σω)^i statements in the level-i batch
    double prev_x = 0;  // X_{i-1}
    for (int i = 0; i <= tree.depth; ++i) {
      // Requests: k_i statements of s_q = query_bytes each, concatenated
      // and padded to whole packets per batch. With s_q unknown, fall
      // back to the paper's own simplification that every request
      // message fits one packet.
      double request_packets =
          query_bytes > 0 ? std::ceil(k * query_bytes / net.packet_bytes)
                          : 1.0;
      // Responses: late ships all ω children per expanded node, early
      // only the σω visible ones. The leaf-level expands all come back
      // empty; their minimal 64-byte frames are a visible fraction of
      // the (small) batched volume, so the closed form charges them —
      // the navigational forms don't need to, since their q·size_p/2
      // term swamps the frames. One half-filled final packet per batch.
      double payload =
          i < tree.depth
              ? k * (late ? tree.branching : sw) * net.node_bytes
              : k * 64.0;
      double x = net.TransferSeconds(request_packets * net.packet_bytes +
                                     payload + net.packet_bytes / 2.0);
      rt.transfer_part += x;
      // Pipelined (DESIGN.md 5g): the level-(i) batch is issued at the
      // level-(i-1) response's transfer start, hiding the part of its
      // 2·T_Lat window that coincides with that transfer.
      if (pipelined && i > 0) {
        rt.overlap_hidden += std::min(2.0 * net.latency_s, prev_x);
      }
      prev_x = x;
      k *= sw;
    }
    return rt;
  }
  // Batched Query / single-level expand are single statements and
  // behave exactly like the navigational strategy they wrap.
  strategy = Unbatched(strategy);
  double q = QueryCount(strategy, action, tree);
  double n_t = TransmittedNodes(strategy, action, tree);

  double request_packets = q;
  if (strategy == StrategyKind::kRecursive && query_bytes > 0) {
    // Eq. (5): q_r = packets needed to ship the (large) recursive query.
    request_packets = std::ceil(query_bytes / net.packet_bytes);
  }

  // Eq. (3)/(5): requests as full packets, responses as payload plus a
  // half-filled final packet per response.
  double vol = request_packets * net.packet_bytes + n_t * net.node_bytes +
               request_packets * net.packet_bytes / 2.0;

  ResponseTime rt;
  rt.latency_part = 2.0 * q * net.latency_s;
  rt.transfer_part = net.TransferSeconds(vol);
  return rt;
}

ResponseTime PredictFromTraffic(const NetworkParams& net,
                                const TrafficCounts& counts) {
  ResponseTime rt;
  rt.latency_part = 2.0 * counts.round_trips * net.latency_s;
  double vol = counts.request_packets * net.packet_bytes +
               counts.response_payload_bytes +
               counts.round_trips * net.packet_bytes / 2.0;
  rt.transfer_part = net.TransferSeconds(vol);
  return rt;
}

double ReplicaStalenessSeconds(const NetworkParams& net, double payload_bytes,
                               double apply_seconds) {
  // The pull is one ordinary exchange: a one-packet request (the pull
  // message always fits a packet), the DML payload as the response.
  TrafficCounts counts;
  counts.round_trips = 1;
  counts.request_packets = 1;
  counts.response_payload_bytes = payload_bytes;
  return PredictFromTraffic(net, counts).total() + apply_seconds;
}

ResponseTime PredictPipelinedFromTraffic(
    const NetworkParams& net, const std::vector<ExchangeTraffic>& exchanges) {
  ResponseTime rt;
  rt.latency_part =
      2.0 * static_cast<double>(exchanges.size()) * net.latency_s;
  double prev_x = 0;
  for (size_t i = 0; i < exchanges.size(); ++i) {
    double x = net.TransferSeconds(
        exchanges[i].request_packets * net.packet_bytes +
        exchanges[i].response_payload_bytes + net.packet_bytes / 2.0);
    rt.transfer_part += x;
    // An exchange issued at the previous transfer's start hides exactly
    // the part of its 2·T_Lat window that coincides with that transfer.
    if (i > 0 && exchanges[i].overlapped) {
      rt.overlap_hidden += std::min(2.0 * net.latency_s, prev_x);
    }
    prev_x = x;
  }
  return rt;
}

double ServerSeconds(const ServerCostParams& params, const ServerWork& work) {
  double seconds = params.statement_overhead_s;
  if (work.parsed) seconds += params.parse_plan_s;
  // vec_rows_scanned is a subset of rows_scanned (clamp defensively so
  // inconsistent inputs cannot produce a negative row-engine share).
  const size_t vec = work.vec_rows_scanned < work.rows_scanned
                         ? work.vec_rows_scanned
                         : work.rows_scanned;
  seconds +=
      params.per_row_scan_s * static_cast<double>(work.rows_scanned - vec);
  seconds += params.per_row_scan_vec_s * static_cast<double>(vec);
  seconds += params.per_cte_row_s * static_cast<double>(work.cte_rows_scanned);
  seconds += params.per_result_row_s * static_cast<double>(work.result_rows);
  // The join/agg pairs are disjoint per-engine counters; no clamp.
  seconds += params.per_row_join_s * static_cast<double>(work.join_probe_rows);
  seconds +=
      params.per_row_join_vec_s * static_cast<double>(work.vec_join_probe_rows);
  seconds += params.per_row_agg_s * static_cast<double>(work.agg_input_rows);
  seconds +=
      params.per_row_agg_vec_s * static_cast<double>(work.vec_agg_input_rows);
  return seconds;
}

double SavingPercent(const ResponseTime& baseline, const ResponseTime& t) {
  double base = baseline.total();
  if (base <= 0) return 0;
  return (base - t.total()) / base * 100.0;
}

double WaveDedupFactor(size_t clients, double level_statements,
                       size_t coalesce_window) {
  if (clients == 0) return 1.0;
  double by_clients = static_cast<double>(clients);
  if (coalesce_window == 0) return by_clients;  // unbounded window
  if (level_statements <= 0) return 1.0;
  // Whole level-batches per wave under the cap; the first batch is
  // always admitted even when it alone exceeds the window.
  double batches = std::floor(static_cast<double>(coalesce_window) /
                              level_statements);
  if (batches < 1.0) batches = 1.0;
  return std::min(by_clients, batches);
}

double CoalescedParseCostFactor(size_t clients, const TreeParams& tree,
                                size_t coalesce_window) {
  double total = 0;
  double coalesced = 0;
  for (int i = 0; i <= tree.depth; ++i) {
    double k_i = std::pow(tree.sigma * tree.branching, i);
    total += k_i;
    coalesced += k_i / WaveDedupFactor(clients, k_i, coalesce_window);
  }
  if (total <= 0) return 1.0;
  return coalesced / total;
}

std::vector<TreeParams> PaperTreeScenarios() {
  return {
      TreeParams{3, 9, 0.6},
      TreeParams{9, 3, 0.6},
      TreeParams{7, 5, 0.6},
  };
}

std::vector<NetworkParams> PaperNetworkScenarios() {
  return {
      NetworkParams{0.15, 256, 4096, 512},
      NetworkParams{0.15, 512, 4096, 512},
      NetworkParams{0.05, 1024, 4096, 512},
  };
}

std::vector<TableCell> ComputePaperTable(StrategyKind strategy) {
  std::vector<TableCell> cells;
  std::vector<ActionKind> actions;
  if (strategy == StrategyKind::kRecursive) {
    actions = {ActionKind::kMultiLevelExpand};
  } else {
    actions = {ActionKind::kQuery, ActionKind::kSingleLevelExpand,
               ActionKind::kMultiLevelExpand};
  }
  for (const NetworkParams& net : PaperNetworkScenarios()) {
    for (const TreeParams& tree : PaperTreeScenarios()) {
      for (ActionKind action : actions) {
        cells.push_back(
            TableCell{tree, net, action, Predict(strategy, action, tree, net)});
      }
    }
  }
  return cells;
}

}  // namespace pdm::model
