#ifndef PDM_MODEL_COST_MODEL_H_
#define PDM_MODEL_COST_MODEL_H_

#include <string>
#include <string_view>
#include <vector>

namespace pdm::model {

/// WAN parameters as used in the paper's Section 2 (Table 1):
/// `latency_s` = T_Lat, `dtr_kbit` = data transfer rate in kbit/s,
/// `packet_bytes` = size_p, `node_bytes` = avg node size.
/// Units decoded from the paper's own numbers: 1 kbit = 1024 bit,
/// 1 kB = 1024 B.
struct NetworkParams {
  double latency_s = 0.15;
  double dtr_kbit = 256;
  double packet_bytes = 4096;
  double node_bytes = 512;

  /// Seconds to push `bytes` through the link (excluding latency).
  double TransferSeconds(double bytes) const {
    return bytes * 8.0 / (dtr_kbit * 1024.0);
  }
};

/// Product-structure shape: a complete tree of depth `depth` (α) whose
/// internal nodes have `branching` (ω) children; `sigma` (σ) is the
/// probability that a user may see a branch (rule selectivity).
struct TreeParams {
  int depth = 3;       // α
  int branching = 9;   // ω
  double sigma = 0.6;  // σ
};

/// The paper's three user actions (Section 2).
enum class ActionKind {
  kQuery,             // all nodes, no structure information
  kSingleLevelExpand, // direct children of the root
  kMultiLevelExpand,  // the entire (visible) structure
};

/// The paper's three evaluation regimes (Table 2 / Table 3 / Table 4)
/// plus this repo's batched extension: level-wise batching of the
/// navigational queries (same SQL, α + 1 round trips instead of
/// n_v + 1; DESIGN.md 5d).
enum class StrategyKind {
  kNavigationalLate,   // isolated queries, rules evaluated at the client
  kNavigationalEarly,  // isolated queries, rules pushed into WHERE
  kRecursive,          // one recursive query + early rule evaluation
  kBatchedLate,        // level-wise batched navigational, late eval
  kBatchedEarly,       // level-wise batched navigational, early eval
  kPipelinedLate,      // batched + speculative level overlap, late eval
  kPipelinedEarly,     // batched + speculative level overlap, early eval
};

std::string_view ActionKindName(ActionKind kind);
std::string_view StrategyKindName(StrategyKind kind);

/// A predicted response time, split as the paper's tables print it.
/// `overlap_hidden` is the latency a pipelined client hides under
/// still-streaming responses (DESIGN.md 5g); zero for every other
/// strategy, so total() stays the historical latency + transfer sum.
struct ResponseTime {
  double latency_part = 0;    // c * T_Lat
  double transfer_part = 0;   // vol / dtr
  double overlap_hidden = 0;  // latency overlapped with prior transfers
  double total() const {
    return latency_part + transfer_part - overlap_hidden;
  }
};

/// n_v(t) = Σ_{i=1..α} (σω)^i — visible nodes below the root.
double VisibleNodes(const TreeParams& tree);

/// Σ_{i=1..α} ω^i — all nodes below the root.
double TotalNodes(const TreeParams& tree);

/// Number of queries q the strategy issues for the action. For
/// navigational multi-level expands every visible node *including the
/// root* is expanded once (q = n_v + 1, matching the paper's Table 2
/// latency entries); the recursive strategy always issues one query.
/// The batched strategies still *issue* n_v + 1 statements — only their
/// round-trip count drops (see RoundTripCount).
double QueryCount(StrategyKind strategy, ActionKind action,
                  const TreeParams& tree);

/// Number of WAN round trips. Equal to QueryCount except for batched
/// multi-level expands, where all statements of one tree level share a
/// round trip: α + 1 (levels 0..α below and including the root's).
double RoundTripCount(StrategyKind strategy, ActionKind action,
                      const TreeParams& tree);

/// Number of nodes transmitted over the WAN (n_t in eq. (3), n_v in
/// eq. (5)).
double TransmittedNodes(StrategyKind strategy, ActionKind action,
                        const TreeParams& tree);

/// Full prediction per equations (1)-(6). `query_bytes` sizes the
/// request: for the recursive strategy it is the whole statement's size;
/// for the batched strategies it is the *per-statement* size s_q (a
/// level's request ships k_i concatenated statements, padded to whole
/// packets per batch). With 0, every request message is assumed to fit
/// one packet — the paper's own simplification.
///
/// Batched multi-level expand closed form (DESIGN.md 5d):
///   latency  = (α+1) · 2 · T_Lat                  [vs (n_v+1)·2·T_Lat]
///   volume   = Σ_{i=0..α} ⌈k_i·s_q/size_p⌉·size_p  (requests)
///            + n_t · size_n                        (payload, unchanged)
///            + (α+1) · size_p/2                    (one half-filled final
///                                                   packet per *batch*)
///            + (σω)^α · 64                         (empty-result frames of
///                                                   the leaf-level expands)
/// where k_i = (σω)^i is the number of statements in the level-i batch.
///
/// Pipelined multi-level expand (DESIGN.md 5g) adds, on top of the
/// identical batched volume, the latency hidden by speculative issue:
///   hidden = Σ_{i=0..α-1} min(2·T_Lat, X_i)
/// with X_i the level-i batch's transfer time — each level's latency
/// window overlaps the previous response's still-running transfer.
ResponseTime Predict(StrategyKind strategy, ActionKind action,
                     const TreeParams& tree, const NetworkParams& net,
                     double query_bytes = 0);

/// Percentage saving of `t` versus `baseline` (the paper's "saving in %"
/// rows).
double SavingPercent(const ResponseTime& baseline, const ResponseTime& t);

// ---------------------------------------------------------------------------
// Per-component reconciliation (DESIGN.md 5f)
// ---------------------------------------------------------------------------

/// Realized WAN traffic of one action, as the simulator measured it
/// (net::WanStats). Substituting these counts for the closed-form tree
/// terms isolates eqs. (1)-(3) from the stochastic σ realization: the
/// prediction below must then match the traced per-component sums
/// exactly, which is what bench/trace_breakdown asserts.
struct TrafficCounts {
  double round_trips = 0;
  double request_packets = 0;
  double response_payload_bytes = 0;
};

/// Eqs. (1)-(3) evaluated on realized traffic (paper accounting):
///   latency  = 2 · round_trips · T_Lat
///   transfer = (request_packets · size_p + response_payload
///               + round_trips · size_p / 2) / dtr
ResponseTime PredictFromTraffic(const NetworkParams& net,
                                const TrafficCounts& counts);

/// Realized traffic of one exchange of a pipelined action, in
/// completion order (mirrors net::ExchangeRecord without depending on
/// net/ — callers convert).
struct ExchangeTraffic {
  double request_packets = 0;
  double response_payload_bytes = 0;
  /// True if this exchange was issued against the previous response's
  /// stream (speculative issue at its transfer start).
  bool overlapped = false;
};

/// The pipelined closed form evaluated on realized per-exchange traffic
/// (paper accounting). With X_i the level-i transfer time
///   X_i = (req_pkts_i * size_p + payload_i + size_p / 2) / dtr:
///   latency  = 2 * n * T_Lat
///   transfer = Σ X_i
///   hidden   = Σ_{i overlapped} min(2 * T_Lat, X_{i-1})
/// — an exchange issued at the previous transfer's start hides exactly
/// the part of its latency window that coincides with that transfer.
/// Degenerates to PredictFromTraffic when nothing is overlapped;
/// bench/table_pipelined reconciles this against the simulator per cell.
ResponseTime PredictPipelinedFromTraffic(
    const NetworkParams& net, const std::vector<ExchangeTraffic>& exchanges);

// ---------------------------------------------------------------------------
// Replica staleness (DESIGN.md 5l)
// ---------------------------------------------------------------------------

/// Closed-form visible staleness of one replication shipment: commit on
/// the primary to applied-and-readable on the site replica, for a
/// shipment that finds the replication channel idle. The stream is a
/// pull over the site's WAN link — one one-packet pull request out, the
/// batch's DML text back — so the paper's eq. (1)-(3) accounting applies
/// verbatim with one round trip:
///   staleness = 2*T_Lat + (size_p + payload + size_p/2) / dtr + t_apply
/// where `payload_bytes` is the concatenated DML text of the shipped
/// records and `apply_seconds` the replica-side replay cost. A shipment
/// that found the channel busy additionally waits out the previous
/// transfer (net::ReplicationShipment::queued); the simulator reports
/// that queueing on top of this floor.
double ReplicaStalenessSeconds(const NetworkParams& net, double payload_bytes,
                               double apply_seconds);

/// Simulated server-cost model — the t_server term of eq. (1), which
/// the paper neglects ("transmission costs are the dominating
/// limitation factor") but whose attribution the tracer reports. The
/// constants are calibration knobs, not measurements: they charge parse
/// and scan work in simulated seconds so that t_server is deterministic
/// and reconcilable, unlike wall time.
struct ServerCostParams {
  double statement_overhead_s = 5.0e-5;  // dispatch + result framing
  double parse_plan_s = 2.0e-4;          // lex + parse + bind (cache miss)
  double per_row_scan_s = 1.0e-6;        // base-table rows, row engine
  /// Base-table rows swept by the vectorized engine (DESIGN.md 5i).
  /// Calibrated at 1/5 of the row-engine rate — the CI-gated floor of
  /// the measured columnar speedup (bench/micro_engine) — so t_server
  /// attribution tracks which engine actually served the scan.
  double per_row_scan_vec_s = 2.0e-7;
  double per_cte_row_s = 1.0e-6;         // recursive-CTE rows touched
  double per_result_row_s = 5.0e-7;      // rows serialized into the reply
  /// Join-probe and aggregate-input rows, split by the engine that
  /// consumed them like the scan rates above. The vectorized rates sit
  /// at the same 1/5 calibration — the micro_engine join/agg grid's
  /// CI-gated floor — so the recursive expand's per-level semi-join
  /// gets cheaper in t_server exactly when the batch operators serve it.
  double per_row_join_s = 1.0e-6;
  double per_row_join_vec_s = 2.0e-7;
  double per_row_agg_s = 1.0e-6;
  double per_row_agg_vec_s = 2.0e-7;
};

/// Engine work of one statement, as ServerSeconds charges it. The scan
/// pair is subset-style (`vec_rows_scanned` ⊆ `rows_scanned`); the
/// join/agg pairs are disjoint — each probe/input row is counted by
/// exactly one engine (exec/exec_context.h).
struct ServerWork {
  bool parsed = false;  // false when a cached plan skipped parse/bind
  size_t rows_scanned = 0;
  size_t vec_rows_scanned = 0;
  size_t cte_rows_scanned = 0;
  size_t result_rows = 0;
  size_t join_probe_rows = 0;
  size_t vec_join_probe_rows = 0;
  size_t agg_input_rows = 0;
  size_t vec_agg_input_rows = 0;
};

/// Simulated server seconds of one statement's work.
double ServerSeconds(const ServerCostParams& params, const ServerWork& work);

// ---------------------------------------------------------------------------
// Cross-client coalescing (DESIGN.md 5e)
// ---------------------------------------------------------------------------

/// Statements served per engine execution when `clients` identical
/// sessions coalesce a level of `level_statements` statements each under
/// a wave cap of `coalesce_window` statements (0 = unbounded):
///   c_eff = min(clients, max(1, ⌊W / k⌋))
/// A wave never splits one client's level-batch, so a window smaller
/// than the batch still admits one whole batch (factor 1 — coalescing
/// degrades to uncoalesced, never below it). Round trips per client are
/// unchanged by coalescing; only server CPU is divided by this factor.
double WaveDedupFactor(size_t clients, double level_statements,
                       size_t coalesce_window);

/// Server-side parse/plan work per statement for a coalesced multi-level
/// expand, as a fraction of the uncoalesced work:
///   Σ_{i=0..α} k_i / c_eff(i)  /  Σ_{i=0..α} k_i,   k_i = (σω)^i
/// with c_eff(i) = WaveDedupFactor(clients, k_i, coalesce_window).
/// Equals 1 for a single client and approaches 1/clients as the window
/// widens past the deepest level's batch.
double CoalescedParseCostFactor(size_t clients, const TreeParams& tree,
                                size_t coalesce_window);

// ---------------------------------------------------------------------------
// The paper's evaluation grid (Tables 2-4, Figures 4-5)
// ---------------------------------------------------------------------------

/// The three tree shapes of Tables 2-4, in paper order.
std::vector<TreeParams> PaperTreeScenarios();

/// The three network configurations of Tables 2-4, in paper order.
std::vector<NetworkParams> PaperNetworkScenarios();

/// One cell of a paper table: predicted latency/transfer/total plus the
/// value printed in the paper (for EXPERIMENTS.md comparisons).
struct TableCell {
  TreeParams tree;
  NetworkParams net;
  ActionKind action;
  ResponseTime predicted;
};

/// All cells of Table 2 (late), Table 3 (early) or Table 4 (recursive,
/// MLE only), in row-major paper order.
std::vector<TableCell> ComputePaperTable(StrategyKind strategy);

}  // namespace pdm::model

#endif  // PDM_MODEL_COST_MODEL_H_
