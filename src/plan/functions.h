#ifndef PDM_PLAN_FUNCTIONS_H_
#define PDM_PLAN_FUNCTIONS_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace pdm {

/// Aggregate function kinds supported by the engine.
enum class AggKind {
  kCountStar,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
};

std::string_view AggKindName(AggKind kind);

/// Maps an (upper-cased) function name to an aggregate kind, if it is one.
/// `star` distinguishes COUNT(*) from COUNT(expr).
std::optional<AggKind> LookupAggKind(std::string_view upper_name, bool star);

/// Signature of a scalar SQL function. Arguments arrive fully evaluated;
/// NULL handling is up to the function (most builtins return NULL on any
/// NULL input).
using ScalarFn = std::function<Result<Value>(const std::vector<Value>&)>;

/// A registered scalar function with an arity range.
struct ScalarFunction {
  std::string name;  // upper-cased
  size_t min_args;
  size_t max_args;
  ScalarFn fn;
};

/// Registry of scalar SQL functions, shared by binder and evaluator. The
/// engine registers the builtins (ABS, MOD, LENGTH, UPPER, LOWER, SUBSTR,
/// COALESCE, NULLIF, BITAND, BITOR, OVERLAPS_RANGE, GREATEST, LEAST);
/// applications may add domain functions — the paper's "stored functions
/// … provided at the server" for transient attributes (Section 4.1).
class FunctionRegistry {
 public:
  FunctionRegistry() = default;
  FunctionRegistry(const FunctionRegistry&) = delete;
  FunctionRegistry& operator=(const FunctionRegistry&) = delete;

  /// Registers a function; name is case-insensitive. Fails on duplicates.
  Status Register(std::string_view name, size_t min_args, size_t max_args,
                  ScalarFn fn);

  /// Finds a function by name; nullptr if absent.
  const ScalarFunction* Find(std::string_view name) const;

  /// Registers the builtin function set (idempotent per fresh registry).
  Status RegisterBuiltins();

 private:
  std::map<std::string, ScalarFunction> functions_;
};

}  // namespace pdm

#endif  // PDM_PLAN_FUNCTIONS_H_
