#ifndef PDM_PLAN_BINDER_H_
#define PDM_PLAN_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "plan/bound_expr.h"
#include "plan/functions.h"
#include "plan/plan_node.h"
#include "plan/view_registry.h"
#include "sql/ast.h"

namespace pdm {

/// Switches for the binder/optimizer, exposed as engine options so the
/// ablation benches can toggle them.
struct BinderOptions {
  /// Split WHERE conjunctions and evaluate each conjunct at the earliest
  /// join prefix (or inside the leftmost scan) that covers its columns.
  bool predicate_pushdown = true;
  /// Convert nested-loop joins with equi-predicates into hash joins.
  bool use_hash_join = true;
};

/// Name-resolution scope: the tables visible to one SELECT block, flat
/// row layout (tables concatenated in FROM order), chained to the
/// enclosing query's scope for correlated subqueries.
class Scope {
 public:
  explicit Scope(const Scope* parent = nullptr) : parent_(parent) {}

  struct TableBinding {
    std::string name;  // effective (alias or table) name
    Schema schema;
    size_t offset;  // first column's index in the flat row
  };

  struct Resolution {
    size_t level;   // 0 = this scope, 1 = parent, ...
    size_t index;   // flat row index at that level
    ColumnType type;
    std::string debug_name;
  };

  /// Appends a table; returns its offset.
  size_t AddTable(std::string name, Schema schema);

  /// Resolves `qualifier.column` (qualifier may be empty). Errors on
  /// unknown or ambiguous names; searches enclosing scopes.
  Result<Resolution> Resolve(std::string_view qualifier,
                             std::string_view column) const;

  const std::vector<TableBinding>& tables() const { return tables_; }
  size_t num_columns() const { return num_columns_; }
  const Scope* parent() const { return parent_; }

 private:
  const Scope* parent_;
  std::vector<TableBinding> tables_;
  size_t num_columns_ = 0;
};

/// Translates parsed statements into bound, executable plans. One Binder
/// instance per statement; it carries the CTE registry built while
/// binding a SELECT's WITH clause.
class Binder {
 public:
  Binder(const Catalog* catalog, const FunctionRegistry* functions,
         BinderOptions options = BinderOptions(),
         const ViewRegistry* views = nullptr)
      : catalog_(catalog),
        functions_(functions),
        options_(options),
        views_(views) {}

  Result<BoundSelect> BindSelect(const sql::SelectStmt& stmt);
  Result<BoundInsert> BindInsert(const sql::InsertStmt& stmt);
  Result<BoundUpdate> BindUpdate(const sql::UpdateStmt& stmt);
  Result<BoundDelete> BindDelete(const sql::DeleteStmt& stmt);

  /// Binds a constant expression (no table scope): literals, functions,
  /// uncorrelated subqueries. Used for CALL arguments.
  Result<BoundExprPtr> BindConstantExpr(const sql::Expr& expr) {
    return BindExpr(expr, nullptr);
  }

  /// Binds an expression against a caller-provided scope (e.g. a result
  /// row's schema). Used for client-side rule evaluation.
  Result<BoundExprPtr> BindExprInScope(const sql::Expr& expr,
                                       const Scope* scope) {
    return BindExpr(expr, scope);
  }

 private:
  struct CteInfo {
    std::string key;  // lower-cased name
    Schema schema;
  };

  // Query structure.
  Result<PlanPtr> BindQueryExpr(const sql::QueryExpr& query,
                                const Scope* parent_scope);
  Result<PlanPtr> BindSelectCore(const sql::SelectCore& core,
                                 const Scope* parent_scope);
  Result<PlanPtr> BindAggregateSelect(const sql::SelectCore& core,
                                      Scope* scope, PlanPtr input);
  Result<BoundCte> BindCte(const sql::CommonTableExpr& cte, bool recursive);

  /// Resolves a FROM table reference into a leaf plan + the schema it
  /// contributes to the scope.
  Result<PlanPtr> BindTableRef(const sql::TableRef& ref, Schema* schema_out);

  // Expressions.
  Result<BoundExprPtr> BindExpr(const sql::Expr& expr, const Scope* scope);
  Result<BoundExprPtr> BindSubqueryExpr(const sql::Expr& expr,
                                        const Scope* scope);
  Result<PlanPtr> BindSubqueryPlan(const sql::QueryExpr& query,
                                   const Scope* scope, bool* correlated);

  /// Post-aggregation rebinding of select-list / HAVING expressions:
  /// group expressions map to group slots, aggregate calls to aggregate
  /// slots, other level-0 column references are rejected.
  struct AggContext {
    std::vector<std::string> group_sql;          // rendered group exprs
    std::vector<const sql::Expr*> agg_calls;     // in slot order
    size_t num_groups = 0;
  };
  Result<BoundExprPtr> BindPostAggExpr(const sql::Expr& expr,
                                       const Scope* scope,
                                       const AggContext& agg);

  const CteInfo* FindCte(std::string_view name) const;

  const Catalog* catalog_;
  const FunctionRegistry* functions_;
  BinderOptions options_;
  const ViewRegistry* views_;
  std::vector<std::string> view_stack_;  // cycle detection during expansion
  std::vector<CteInfo> ctes_;
};

// --- Bound-tree analysis helpers (shared with the optimizer and tests) ---

/// Max flat-row index referenced at the expression's own level (level ==
/// depth when descending into nested subqueries); nullopt if the
/// expression does not touch its own row at all.
std::optional<size_t> MaxOwnRowIndex(const BoundExpr& expr, size_t depth = 0);

/// True if the plan contains a column reference escaping `depth` levels
/// (i.e. the plan is correlated when used as a subquery at that depth).
bool PlanHasEscapingRefs(const PlanNode& plan, size_t depth);
bool ExprHasEscapingRefs(const BoundExpr& expr, size_t depth);

/// Splits a conjunction into its conjuncts (ownership transferred).
std::vector<BoundExprPtr> SplitConjuncts(BoundExprPtr expr);

/// ANDs bound conjuncts back together; nullptr for an empty vector.
BoundExprPtr CombineConjuncts(std::vector<BoundExprPtr> conjuncts);

/// Rewrites nested-loop joins with equi-key predicates into hash joins
/// (recursively, including subquery plans). No-op on other nodes.
void ConvertEquiJoinsToHashJoins(PlanPtr* plan);

}  // namespace pdm

#endif  // PDM_PLAN_BINDER_H_
