#ifndef PDM_PLAN_VIEW_REGISTRY_H_
#define PDM_PLAN_VIEW_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace pdm {

/// Named views stored as ASTs and macro-expanded by the binder when they
/// appear in FROM clauses. Views are exactly the construct the paper's
/// Section 5.5 warns about: once (part of) a tree query hides behind a
/// view, the query modificator can no longer inject rule predicates —
/// QueryModificator reports this when given the view names.
class ViewRegistry {
 public:
  ViewRegistry() = default;
  ViewRegistry(const ViewRegistry&) = delete;
  ViewRegistry& operator=(const ViewRegistry&) = delete;

  /// Defines (or, with `or_replace`, redefines) a view.
  Status Define(std::string_view name,
                std::unique_ptr<sql::SelectStmt> select, bool or_replace);

  /// Drops a view; NotFound unless `if_exists`.
  Status Drop(std::string_view name, bool if_exists);

  /// The view's definition, or nullptr.
  const sql::SelectStmt* Find(std::string_view name) const;

  /// All view names (sorted), e.g. for the modificator's hidden-
  /// structure check.
  std::vector<std::string> ViewNames() const;

  size_t size() const { return views_.size(); }

 private:
  std::map<std::string, std::unique_ptr<sql::SelectStmt>> views_;
};

}  // namespace pdm

#endif  // PDM_PLAN_VIEW_REGISTRY_H_
