#include "plan/functions.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/string_util.h"

namespace pdm {

std::string_view AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
      return "COUNT(*)";
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
  }
  return "?";
}

std::optional<AggKind> LookupAggKind(std::string_view upper_name, bool star) {
  if (upper_name == "COUNT") return star ? AggKind::kCountStar : AggKind::kCount;
  if (star) return std::nullopt;
  if (upper_name == "SUM") return AggKind::kSum;
  if (upper_name == "AVG") return AggKind::kAvg;
  if (upper_name == "MIN") return AggKind::kMin;
  if (upper_name == "MAX") return AggKind::kMax;
  return std::nullopt;
}

Status FunctionRegistry::Register(std::string_view name, size_t min_args,
                                  size_t max_args, ScalarFn fn) {
  std::string key = ToUpperAscii(name);
  if (functions_.count(key) > 0) {
    return Status::AlreadyExists("function '" + key + "' already registered");
  }
  functions_[key] = ScalarFunction{key, min_args, max_args, std::move(fn)};
  return Status::OK();
}

const ScalarFunction* FunctionRegistry::Find(std::string_view name) const {
  auto it = functions_.find(ToUpperAscii(name));
  return it == functions_.end() ? nullptr : &it->second;
}

namespace {

bool AnyNull(const std::vector<Value>& args) {
  return std::any_of(args.begin(), args.end(),
                     [](const Value& v) { return v.is_null(); });
}

Status NeedNumeric(std::string_view fn, const Value& v) {
  if (!v.is_numeric()) {
    return Status::ExecutionError(std::string(fn) +
                                  " expects a numeric argument");
  }
  return Status::OK();
}

Status NeedInt(std::string_view fn, const Value& v) {
  if (!v.is_int64()) {
    return Status::ExecutionError(std::string(fn) +
                                  " expects an integer argument");
  }
  return Status::OK();
}

Status NeedString(std::string_view fn, const Value& v) {
  if (!v.is_string()) {
    return Status::ExecutionError(std::string(fn) +
                                  " expects a string argument");
  }
  return Status::OK();
}

}  // namespace

Status FunctionRegistry::RegisterBuiltins() {
  PDM_RETURN_NOT_OK(Register(
      "ABS", 1, 1, [](const std::vector<Value>& args) -> Result<Value> {
        if (AnyNull(args)) return Value::Null();
        PDM_RETURN_NOT_OK(NeedNumeric("ABS", args[0]));
        if (args[0].is_int64()) {
          return Value::Int64(std::abs(args[0].int64_value()));
        }
        return Value::Double(std::fabs(args[0].double_value()));
      }));

  PDM_RETURN_NOT_OK(Register(
      "MOD", 2, 2, [](const std::vector<Value>& args) -> Result<Value> {
        if (AnyNull(args)) return Value::Null();
        PDM_RETURN_NOT_OK(NeedInt("MOD", args[0]));
        PDM_RETURN_NOT_OK(NeedInt("MOD", args[1]));
        if (args[1].int64_value() == 0) {
          return Status::ExecutionError("MOD by zero");
        }
        return Value::Int64(args[0].int64_value() % args[1].int64_value());
      }));

  PDM_RETURN_NOT_OK(Register(
      "LENGTH", 1, 1, [](const std::vector<Value>& args) -> Result<Value> {
        if (AnyNull(args)) return Value::Null();
        PDM_RETURN_NOT_OK(NeedString("LENGTH", args[0]));
        return Value::Int64(static_cast<int64_t>(args[0].string_value().size()));
      }));

  PDM_RETURN_NOT_OK(Register(
      "UPPER", 1, 1, [](const std::vector<Value>& args) -> Result<Value> {
        if (AnyNull(args)) return Value::Null();
        PDM_RETURN_NOT_OK(NeedString("UPPER", args[0]));
        return Value::String(ToUpperAscii(args[0].string_value()));
      }));

  PDM_RETURN_NOT_OK(Register(
      "LOWER", 1, 1, [](const std::vector<Value>& args) -> Result<Value> {
        if (AnyNull(args)) return Value::Null();
        PDM_RETURN_NOT_OK(NeedString("LOWER", args[0]));
        return Value::String(ToLowerAscii(args[0].string_value()));
      }));

  // SUBSTR(s, start [, len]) with 1-based start, as in SQL.
  PDM_RETURN_NOT_OK(Register(
      "SUBSTR", 2, 3, [](const std::vector<Value>& args) -> Result<Value> {
        if (AnyNull(args)) return Value::Null();
        PDM_RETURN_NOT_OK(NeedString("SUBSTR", args[0]));
        PDM_RETURN_NOT_OK(NeedInt("SUBSTR", args[1]));
        const std::string& s = args[0].string_value();
        int64_t start = args[1].int64_value();
        if (start < 1) start = 1;
        size_t from = static_cast<size_t>(start - 1);
        if (from >= s.size()) return Value::String(std::string());
        size_t len = s.size() - from;
        if (args.size() == 3) {
          PDM_RETURN_NOT_OK(NeedInt("SUBSTR", args[2]));
          int64_t want = args[2].int64_value();
          if (want < 0) want = 0;
          len = std::min(len, static_cast<size_t>(want));
        }
        return Value::String(s.substr(from, len));
      }));

  // COALESCE: first non-NULL argument.
  PDM_RETURN_NOT_OK(Register(
      "COALESCE", 1, 16, [](const std::vector<Value>& args) -> Result<Value> {
        for (const Value& v : args) {
          if (!v.is_null()) return v;
        }
        return Value::Null();
      }));

  // NULLIF(a, b): NULL if a == b else a.
  PDM_RETURN_NOT_OK(Register(
      "NULLIF", 2, 2, [](const std::vector<Value>& args) -> Result<Value> {
        if (args[0].is_null()) return Value::Null();
        if (!args[1].is_null() && Value::Comparable(args[0], args[1]) &&
            Value::Compare(args[0], args[1]) == 0) {
          return Value::Null();
        }
        return args[0];
      }));

  // BITAND / BITOR: the PDM layer encodes structure-option *sets* as bit
  // masks; "overlaps" from the paper's rule example 3 becomes
  // BITAND(rel.strc_opt, user_opt) <> 0.
  PDM_RETURN_NOT_OK(Register(
      "BITAND", 2, 2, [](const std::vector<Value>& args) -> Result<Value> {
        if (AnyNull(args)) return Value::Null();
        PDM_RETURN_NOT_OK(NeedInt("BITAND", args[0]));
        PDM_RETURN_NOT_OK(NeedInt("BITAND", args[1]));
        return Value::Int64(args[0].int64_value() & args[1].int64_value());
      }));

  PDM_RETURN_NOT_OK(Register(
      "BITOR", 2, 2, [](const std::vector<Value>& args) -> Result<Value> {
        if (AnyNull(args)) return Value::Null();
        PDM_RETURN_NOT_OK(NeedInt("BITOR", args[0]));
        PDM_RETURN_NOT_OK(NeedInt("BITOR", args[1]));
        return Value::Int64(args[0].int64_value() | args[1].int64_value());
      }));

  // OVERLAPS_RANGE(from1, to1, from2, to2): closed-interval overlap test;
  // used for effectivity rules (paper Section 3.1).
  PDM_RETURN_NOT_OK(Register(
      "OVERLAPS_RANGE", 4, 4,
      [](const std::vector<Value>& args) -> Result<Value> {
        if (AnyNull(args)) return Value::Null();
        for (const Value& v : args) {
          PDM_RETURN_NOT_OK(NeedNumeric("OVERLAPS_RANGE", v));
        }
        bool overlaps = args[0].AsDouble() <= args[3].AsDouble() &&
                        args[2].AsDouble() <= args[1].AsDouble();
        return Value::Bool(overlaps);
      }));

  PDM_RETURN_NOT_OK(Register(
      "GREATEST", 2, 16, [](const std::vector<Value>& args) -> Result<Value> {
        if (AnyNull(args)) return Value::Null();
        const Value* best = &args[0];
        for (const Value& v : args) {
          if (!Value::Comparable(*best, v)) {
            return Status::ExecutionError("GREATEST on incomparable values");
          }
          if (Value::Compare(v, *best) > 0) best = &v;
        }
        return *best;
      }));

  PDM_RETURN_NOT_OK(Register(
      "LEAST", 2, 16, [](const std::vector<Value>& args) -> Result<Value> {
        if (AnyNull(args)) return Value::Null();
        const Value* best = &args[0];
        for (const Value& v : args) {
          if (!Value::Comparable(*best, v)) {
            return Status::ExecutionError("LEAST on incomparable values");
          }
          if (Value::Compare(v, *best) < 0) best = &v;
        }
        return *best;
      }));

  return Status::OK();
}

}  // namespace pdm
