#ifndef PDM_PLAN_PLAN_NODE_H_
#define PDM_PLAN_PLAN_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "plan/bound_expr.h"

namespace pdm {

/// Executable plan operators. The tree is produced by the Binder (plus a
/// light optimizer pass) and interpreted by the Volcano-style executors
/// in exec/. One node kind per physical operator.
enum class PlanKind {
  kScan,
  kCteScan,
  kFilter,
  kProject,
  kNestedLoopJoin,
  kHashJoin,
  kAggregate,
  kSort,
  kDistinct,
  kUnion,
  kLimit,
};

std::string_view PlanKindName(PlanKind kind);

struct PlanNode {
  explicit PlanNode(PlanKind k) : kind(k) {}
  virtual ~PlanNode() = default;
  PlanNode(const PlanNode&) = delete;
  PlanNode& operator=(const PlanNode&) = delete;

  /// Renders the plan tree for debugging/EXPLAIN-style tests.
  std::string ToString(int indent = 0) const;

  const PlanKind kind;
  Schema schema;  // output schema
};

using PlanPtr = std::unique_ptr<PlanNode>;

/// Full scan of a base table, with an optional pushed-down filter
/// evaluated against the raw table row.
struct ScanNode : PlanNode {
  ScanNode() : PlanNode(PlanKind::kScan) {}
  std::string table_name;
  BoundExprPtr filter;  // may be null
};

/// Scan of a CTE's materialized rows (or of the recursion delta while
/// inside a recursive term's evaluation).
struct CteScanNode : PlanNode {
  CteScanNode() : PlanNode(PlanKind::kCteScan) {}
  std::string cte_name;  // lower-cased key
};

struct FilterNode : PlanNode {
  FilterNode() : PlanNode(PlanKind::kFilter) {}
  PlanPtr child;
  BoundExprPtr predicate;
};

struct ProjectNode : PlanNode {
  ProjectNode() : PlanNode(PlanKind::kProject) {}
  PlanPtr child;
  std::vector<BoundExprPtr> exprs;
};

/// Inner join, tuple-at-a-time; output row = left row ++ right row.
struct NestedLoopJoinNode : PlanNode {
  NestedLoopJoinNode() : PlanNode(PlanKind::kNestedLoopJoin) {}
  PlanPtr left;
  PlanPtr right;
  BoundExprPtr predicate;  // evaluated on the combined row; may be null
};

/// Equi-join: build a hash table on the right child keyed by
/// `right_keys` (indices into the right row), probe with `left_keys`
/// (indices into the left row). `residual` is any leftover non-equi
/// predicate, evaluated on the combined row.
struct HashJoinNode : PlanNode {
  HashJoinNode() : PlanNode(PlanKind::kHashJoin) {}
  PlanPtr left;
  PlanPtr right;
  std::vector<size_t> left_keys;
  std::vector<size_t> right_keys;
  BoundExprPtr residual;  // may be null
};

/// One aggregate computation within an AggregateNode.
struct BoundAggregate {
  AggKind agg_kind;
  BoundExprPtr arg;  // null for COUNT(*)
  bool distinct = false;
};

/// Hash aggregation. Output row = group values ++ aggregate values.
/// With no group expressions this is a scalar aggregate producing
/// exactly one row.
struct AggregateNode : PlanNode {
  AggregateNode() : PlanNode(PlanKind::kAggregate) {}
  PlanPtr child;
  std::vector<BoundExprPtr> group_exprs;
  std::vector<BoundAggregate> aggregates;
  BoundExprPtr having;  // bound against the output row; may be null
};

struct SortKey {
  size_t column;  // index into the child's output row
  bool descending = false;
};

struct SortNode : PlanNode {
  SortNode() : PlanNode(PlanKind::kSort) {}
  PlanPtr child;
  std::vector<SortKey> keys;
};

struct DistinctNode : PlanNode {
  DistinctNode() : PlanNode(PlanKind::kDistinct) {}
  PlanPtr child;
};

/// Bag concatenation of the children (UNION ALL); wrap in DistinctNode
/// for UNION.
struct UnionNode : PlanNode {
  UnionNode() : PlanNode(PlanKind::kUnion) {}
  std::vector<PlanPtr> children;
};

struct LimitNode : PlanNode {
  LimitNode() : PlanNode(PlanKind::kLimit) {}
  PlanPtr child;
  int64_t limit = 0;
};

// ---------------------------------------------------------------------------
// Bound statements
// ---------------------------------------------------------------------------

/// A bound common table expression. For a recursive CTE, `seed` is the
/// union of the non-self-referencing terms and `recursive_terms` are the
/// self-referencing ones; the executor runs semi-naive iteration over
/// them (exec/recursive_cte.h). For a plain CTE only `seed` is set.
struct BoundCte {
  std::string name;  // lower-cased key
  Schema schema;
  PlanPtr seed;
  std::vector<PlanPtr> recursive_terms;
  bool recursive = false;
  bool union_all = false;  // bag semantics between seed/recursive rows
};

/// A fully bound SELECT statement: CTEs (in definition order) plus the
/// root plan. Subqueries inside expressions carry their own plans.
struct BoundSelect {
  std::vector<BoundCte> ctes;
  PlanPtr root;
};

struct BoundInsert {
  std::string table_name;
  /// One entry per target row, each with one expression per table column
  /// (already reordered to table schema order; missing columns = NULL
  /// literals).
  std::vector<std::vector<BoundExprPtr>> rows;
};

struct BoundUpdate {
  std::string table_name;
  /// (column index in table schema, value expression bound against the
  /// table row at level 0).
  std::vector<std::pair<size_t, BoundExprPtr>> assignments;
  BoundExprPtr predicate;  // may be null
};

struct BoundDelete {
  std::string table_name;
  BoundExprPtr predicate;  // may be null
};

}  // namespace pdm

#endif  // PDM_PLAN_PLAN_NODE_H_
