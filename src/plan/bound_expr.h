#ifndef PDM_PLAN_BOUND_EXPR_H_
#define PDM_PLAN_BOUND_EXPR_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "catalog/schema.h"
#include "common/value.h"
#include "plan/functions.h"
#include "sql/ast.h"

namespace pdm {

struct PlanNode;  // plan/plan_node.h

/// Bound (name-resolved) expression tree, produced by the Binder and
/// consumed by the expression evaluator. Column references carry a
/// correlation level and a flat row index instead of names.
enum class BoundExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kFunctionCall,  // scalar function, resolved to a ScalarFunction
  kCast,
  kIsNull,
  kInList,
  kBetween,
  kLike,
  kCase,
  kSubquery,      // EXISTS / IN / scalar
};

struct BoundExpr {
  explicit BoundExpr(BoundExprKind k) : kind(k) {}
  virtual ~BoundExpr() = default;
  BoundExpr(const BoundExpr&) = delete;
  BoundExpr& operator=(const BoundExpr&) = delete;

  const BoundExprKind kind;
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

struct BoundLiteral : BoundExpr {
  explicit BoundLiteral(Value v)
      : BoundExpr(BoundExprKind::kLiteral), value(std::move(v)) {}
  Value value;
  /// Fingerprint parameter ordinal carried over from sql::LiteralExpr,
  /// or -1. The plan cache (engine/plan_cache.h) rewrites `value` in
  /// place through this slot when re-executing a cached plan with new
  /// parameters. Literals bound inside view expansion never carry a
  /// slot: their ordinals belong to the CREATE VIEW statement, not the
  /// statement being fingerprinted.
  int param_slot = -1;
};

/// Column reference resolved to (level, index): level 0 is the row of the
/// operator evaluating the expression; level k>0 is the k-th enclosing
/// query's row on the correlation stack (innermost outer row = level 1).
struct BoundColumnRef : BoundExpr {
  BoundColumnRef(size_t lvl, size_t idx, ColumnType type, std::string dbg)
      : BoundExpr(BoundExprKind::kColumnRef),
        level(lvl),
        index(idx),
        column_type(type),
        debug_name(std::move(dbg)) {}
  size_t level;
  size_t index;
  ColumnType column_type;  // declared type, used for schema inference
  std::string debug_name;
};

struct BoundUnary : BoundExpr {
  BoundUnary(sql::UnaryOp o, BoundExprPtr e)
      : BoundExpr(BoundExprKind::kUnary), op(o), operand(std::move(e)) {}
  sql::UnaryOp op;
  BoundExprPtr operand;
};

struct BoundBinary : BoundExpr {
  BoundBinary(sql::BinaryOp o, BoundExprPtr l, BoundExprPtr r)
      : BoundExpr(BoundExprKind::kBinary),
        op(o),
        lhs(std::move(l)),
        rhs(std::move(r)) {}
  sql::BinaryOp op;
  BoundExprPtr lhs;
  BoundExprPtr rhs;
};

struct BoundFunctionCall : BoundExpr {
  BoundFunctionCall(const ScalarFunction* f, std::vector<BoundExprPtr> a)
      : BoundExpr(BoundExprKind::kFunctionCall),
        function(f),
        args(std::move(a)) {}
  const ScalarFunction* function;  // owned by the FunctionRegistry
  std::vector<BoundExprPtr> args;
};

struct BoundCast : BoundExpr {
  BoundCast(BoundExprPtr e, ColumnType t)
      : BoundExpr(BoundExprKind::kCast),
        operand(std::move(e)),
        target_type(t) {}
  BoundExprPtr operand;
  ColumnType target_type;
};

struct BoundIsNull : BoundExpr {
  BoundIsNull(BoundExprPtr e, bool neg)
      : BoundExpr(BoundExprKind::kIsNull),
        operand(std::move(e)),
        negated(neg) {}
  BoundExprPtr operand;
  bool negated;
};

struct BoundInList : BoundExpr {
  BoundInList(BoundExprPtr e, std::vector<BoundExprPtr> it, bool neg)
      : BoundExpr(BoundExprKind::kInList),
        operand(std::move(e)),
        items(std::move(it)),
        negated(neg) {}
  BoundExprPtr operand;
  std::vector<BoundExprPtr> items;
  bool negated;

  /// When every item is a literal, the binder precomputes a hash set so
  /// long IN-lists (e.g. batched check-out updates) evaluate in O(1)
  /// per row instead of O(items).
  std::unordered_set<Value, ValueHash, ValueEq> literal_set;
  bool use_literal_set = false;
  bool literal_list_has_null = false;
};

struct BoundBetween : BoundExpr {
  BoundBetween(BoundExprPtr e, BoundExprPtr lo, BoundExprPtr hi, bool neg)
      : BoundExpr(BoundExprKind::kBetween),
        operand(std::move(e)),
        low(std::move(lo)),
        high(std::move(hi)),
        negated(neg) {}
  BoundExprPtr operand;
  BoundExprPtr low;
  BoundExprPtr high;
  bool negated;
};

struct BoundLike : BoundExpr {
  BoundLike(BoundExprPtr e, BoundExprPtr p, bool neg)
      : BoundExpr(BoundExprKind::kLike),
        operand(std::move(e)),
        pattern(std::move(p)),
        negated(neg) {}
  BoundExprPtr operand;
  BoundExprPtr pattern;
  bool negated;
};

struct BoundCase : BoundExpr {
  BoundCase(std::vector<std::pair<BoundExprPtr, BoundExprPtr>> w,
            BoundExprPtr e)
      : BoundExpr(BoundExprKind::kCase),
        whens(std::move(w)),
        else_expr(std::move(e)) {}
  std::vector<std::pair<BoundExprPtr, BoundExprPtr>> whens;
  BoundExprPtr else_expr;  // may be null
};

enum class SubqueryKind {
  kExists,  // [NOT] EXISTS (q)
  kIn,      // operand [NOT] IN (q)
  kScalar,  // (q) used as a value
};

/// A subquery embedded in an expression. The subquery's plan is bound
/// with the enclosing scopes as parents, so its column references may
/// reach outer rows (correlation). `correlated` records whether any do;
/// uncorrelated subqueries are evaluated once per statement and cached
/// (the paper's "intelligent query optimizer will recognize that the
/// inner clause needs to be evaluated only once", Section 5.3.1).
struct BoundSubquery : BoundExpr {
  BoundSubquery(SubqueryKind k, BoundExprPtr op,
                std::unique_ptr<PlanNode> p, bool neg, bool corr);
  ~BoundSubquery() override;

  SubqueryKind subquery_kind;
  BoundExprPtr operand;  // only for kIn
  std::unique_ptr<PlanNode> plan;
  bool negated;
  bool correlated;
};

}  // namespace pdm

#endif  // PDM_PLAN_BOUND_EXPR_H_
