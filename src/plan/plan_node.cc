#include "plan/plan_node.h"

#include "common/string_util.h"

namespace pdm {

BoundSubquery::BoundSubquery(SubqueryKind k, BoundExprPtr op,
                             std::unique_ptr<PlanNode> p, bool neg, bool corr)
    : BoundExpr(BoundExprKind::kSubquery),
      subquery_kind(k),
      operand(std::move(op)),
      plan(std::move(p)),
      negated(neg),
      correlated(corr) {}

BoundSubquery::~BoundSubquery() = default;

std::string_view PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kCteScan:
      return "CteScan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kNestedLoopJoin:
      return "NestedLoopJoin";
    case PlanKind::kHashJoin:
      return "HashJoin";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kDistinct:
      return "Distinct";
    case PlanKind::kUnion:
      return "Union";
    case PlanKind::kLimit:
      return "Limit";
  }
  return "?";
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + std::string(PlanKindName(kind));
  switch (kind) {
    case PlanKind::kScan: {
      const auto& n = static_cast<const ScanNode&>(*this);
      out += "(" + n.table_name + ")";
      if (n.filter != nullptr) out += " [filtered]";
      break;
    }
    case PlanKind::kCteScan: {
      const auto& n = static_cast<const CteScanNode&>(*this);
      out += "(" + n.cte_name + ")";
      break;
    }
    case PlanKind::kHashJoin: {
      const auto& n = static_cast<const HashJoinNode&>(*this);
      out += StrFormat(" [%zu key(s)]", n.left_keys.size());
      break;
    }
    case PlanKind::kAggregate: {
      const auto& n = static_cast<const AggregateNode&>(*this);
      out += StrFormat(" [%zu group(s), %zu agg(s)]", n.group_exprs.size(),
                       n.aggregates.size());
      break;
    }
    case PlanKind::kLimit: {
      const auto& n = static_cast<const LimitNode&>(*this);
      out += StrFormat(" [%lld]", static_cast<long long>(n.limit));
      break;
    }
    default:
      break;
  }
  out += "\n";
  auto child_str = [&](const PlanPtr& c) {
    if (c != nullptr) out += c->ToString(indent + 1);
  };
  switch (kind) {
    case PlanKind::kFilter:
      child_str(static_cast<const FilterNode&>(*this).child);
      break;
    case PlanKind::kProject:
      child_str(static_cast<const ProjectNode&>(*this).child);
      break;
    case PlanKind::kNestedLoopJoin: {
      const auto& n = static_cast<const NestedLoopJoinNode&>(*this);
      child_str(n.left);
      child_str(n.right);
      break;
    }
    case PlanKind::kHashJoin: {
      const auto& n = static_cast<const HashJoinNode&>(*this);
      child_str(n.left);
      child_str(n.right);
      break;
    }
    case PlanKind::kAggregate:
      child_str(static_cast<const AggregateNode&>(*this).child);
      break;
    case PlanKind::kSort:
      child_str(static_cast<const SortNode&>(*this).child);
      break;
    case PlanKind::kDistinct:
      child_str(static_cast<const DistinctNode&>(*this).child);
      break;
    case PlanKind::kUnion:
      for (const PlanPtr& c : static_cast<const UnionNode&>(*this).children) {
        child_str(c);
      }
      break;
    case PlanKind::kLimit:
      child_str(static_cast<const LimitNode&>(*this).child);
      break;
    default:
      break;
  }
  return out;
}

}  // namespace pdm
