#include "plan/binder.h"

#include <algorithm>
#include <optional>

#include "common/string_util.h"

namespace pdm {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;

// --- AST analysis -----------------------------------------------------------

/// Invokes `fn` on every QueryExpr nested inside `expr` (subqueries).
template <typename Fn>
void ForEachSubqueryInExpr(const Expr& expr, const Fn& fn) {
  switch (expr.kind) {
    case ExprKind::kUnary:
      ForEachSubqueryInExpr(*static_cast<const sql::UnaryExpr&>(expr).operand,
                            fn);
      break;
    case ExprKind::kBinary: {
      const auto& e = static_cast<const sql::BinaryExpr&>(expr);
      ForEachSubqueryInExpr(*e.lhs, fn);
      ForEachSubqueryInExpr(*e.rhs, fn);
      break;
    }
    case ExprKind::kFunctionCall:
      for (const ExprPtr& a :
           static_cast<const sql::FunctionCallExpr&>(expr).args) {
        ForEachSubqueryInExpr(*a, fn);
      }
      break;
    case ExprKind::kCast:
      ForEachSubqueryInExpr(*static_cast<const sql::CastExpr&>(expr).operand,
                            fn);
      break;
    case ExprKind::kIsNull:
      ForEachSubqueryInExpr(*static_cast<const sql::IsNullExpr&>(expr).operand,
                            fn);
      break;
    case ExprKind::kInList: {
      const auto& e = static_cast<const sql::InListExpr&>(expr);
      ForEachSubqueryInExpr(*e.operand, fn);
      for (const ExprPtr& i : e.items) ForEachSubqueryInExpr(*i, fn);
      break;
    }
    case ExprKind::kInSubquery: {
      const auto& e = static_cast<const sql::InSubqueryExpr&>(expr);
      ForEachSubqueryInExpr(*e.operand, fn);
      fn(*e.subquery);
      break;
    }
    case ExprKind::kExists:
      fn(*static_cast<const sql::ExistsExpr&>(expr).subquery);
      break;
    case ExprKind::kScalarSubquery:
      fn(*static_cast<const sql::ScalarSubqueryExpr&>(expr).subquery);
      break;
    case ExprKind::kBetween: {
      const auto& e = static_cast<const sql::BetweenExpr&>(expr);
      ForEachSubqueryInExpr(*e.operand, fn);
      ForEachSubqueryInExpr(*e.low, fn);
      ForEachSubqueryInExpr(*e.high, fn);
      break;
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const sql::LikeExpr&>(expr);
      ForEachSubqueryInExpr(*e.operand, fn);
      ForEachSubqueryInExpr(*e.pattern, fn);
      break;
    }
    case ExprKind::kCase: {
      const auto& e = static_cast<const sql::CaseExpr&>(expr);
      for (const auto& [c, v] : e.whens) {
        ForEachSubqueryInExpr(*c, fn);
        ForEachSubqueryInExpr(*v, fn);
      }
      if (e.else_expr != nullptr) ForEachSubqueryInExpr(*e.else_expr, fn);
      break;
    }
    default:
      break;
  }
}

struct CteRefCounts {
  size_t in_from = 0;    // direct FROM references in the top-level terms
  size_t elsewhere = 0;  // references in subqueries / derived tables
};

void CountCteRefsInQuery(const sql::QueryExpr& query, std::string_view name,
                         bool top_level, CteRefCounts* counts);

void CountCteRefsInTableRef(const sql::TableRef& ref, std::string_view name,
                            bool top_level, CteRefCounts* counts) {
  if (ref.kind == sql::TableRef::Kind::kBaseTable) {
    if (EqualsIgnoreCase(ref.table_name, name)) {
      if (top_level) {
        ++counts->in_from;
      } else {
        ++counts->elsewhere;
      }
    }
  } else {
    CountCteRefsInQuery(*ref.subquery, name, /*top_level=*/false, counts);
  }
}

void CountCteRefsInExpr(const Expr& expr, std::string_view name,
                        CteRefCounts* counts) {
  ForEachSubqueryInExpr(expr, [&](const sql::QueryExpr& q) {
    CountCteRefsInQuery(q, name, /*top_level=*/false, counts);
  });
}

void CountCteRefsInCore(const sql::SelectCore& core, std::string_view name,
                        bool top_level, CteRefCounts* counts) {
  for (const sql::FromItem& item : core.from) {
    CountCteRefsInTableRef(item.ref, name, top_level, counts);
    for (const sql::JoinClause& j : item.joins) {
      CountCteRefsInTableRef(j.ref, name, top_level, counts);
      if (j.on != nullptr) CountCteRefsInExpr(*j.on, name, counts);
    }
  }
  for (const sql::SelectItem& item : core.items) {
    if (item.expr != nullptr) CountCteRefsInExpr(*item.expr, name, counts);
  }
  if (core.where != nullptr) CountCteRefsInExpr(*core.where, name, counts);
  for (const ExprPtr& g : core.group_by) CountCteRefsInExpr(*g, name, counts);
  if (core.having != nullptr) CountCteRefsInExpr(*core.having, name, counts);
}

void CountCteRefsInQuery(const sql::QueryExpr& query, std::string_view name,
                         bool top_level, CteRefCounts* counts) {
  for (const sql::SelectCore& term : query.terms) {
    CountCteRefsInCore(term, name, top_level, counts);
  }
}

CteRefCounts CountCteRefs(const sql::SelectCore& core, std::string_view name) {
  CteRefCounts counts;
  CountCteRefsInCore(core, name, /*top_level=*/true, &counts);
  return counts;
}

/// True if `expr` contains an aggregate function call (not descending
/// into subqueries, whose aggregates belong to the subquery).
bool HasAggregateCall(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kFunctionCall: {
      const auto& e = static_cast<const sql::FunctionCallExpr&>(expr);
      bool star = e.args.size() == 1 && e.args[0]->kind == ExprKind::kStar;
      if (LookupAggKind(e.name, star).has_value()) return true;
      for (const ExprPtr& a : e.args) {
        if (HasAggregateCall(*a)) return true;
      }
      return false;
    }
    case ExprKind::kUnary:
      return HasAggregateCall(
          *static_cast<const sql::UnaryExpr&>(expr).operand);
    case ExprKind::kBinary: {
      const auto& e = static_cast<const sql::BinaryExpr&>(expr);
      return HasAggregateCall(*e.lhs) || HasAggregateCall(*e.rhs);
    }
    case ExprKind::kCast:
      return HasAggregateCall(
          *static_cast<const sql::CastExpr&>(expr).operand);
    case ExprKind::kIsNull:
      return HasAggregateCall(
          *static_cast<const sql::IsNullExpr&>(expr).operand);
    case ExprKind::kInList: {
      const auto& e = static_cast<const sql::InListExpr&>(expr);
      if (HasAggregateCall(*e.operand)) return true;
      for (const ExprPtr& i : e.items) {
        if (HasAggregateCall(*i)) return true;
      }
      return false;
    }
    case ExprKind::kInSubquery:
      return HasAggregateCall(
          *static_cast<const sql::InSubqueryExpr&>(expr).operand);
    case ExprKind::kBetween: {
      const auto& e = static_cast<const sql::BetweenExpr&>(expr);
      return HasAggregateCall(*e.operand) || HasAggregateCall(*e.low) ||
             HasAggregateCall(*e.high);
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const sql::LikeExpr&>(expr);
      return HasAggregateCall(*e.operand) || HasAggregateCall(*e.pattern);
    }
    case ExprKind::kCase: {
      const auto& e = static_cast<const sql::CaseExpr&>(expr);
      for (const auto& [c, v] : e.whens) {
        if (HasAggregateCall(*c) || HasAggregateCall(*v)) return true;
      }
      return e.else_expr != nullptr && HasAggregateCall(*e.else_expr);
    }
    default:
      return false;
  }
}

/// Collects aggregate calls in evaluation order (outermost first walk).
void CollectAggCalls(const Expr& expr, std::vector<const Expr*>* out) {
  switch (expr.kind) {
    case ExprKind::kFunctionCall: {
      const auto& e = static_cast<const sql::FunctionCallExpr&>(expr);
      bool star = e.args.size() == 1 && e.args[0]->kind == ExprKind::kStar;
      if (LookupAggKind(e.name, star).has_value()) {
        out->push_back(&expr);
        return;  // nested aggregates rejected later during binding
      }
      for (const ExprPtr& a : e.args) CollectAggCalls(*a, out);
      return;
    }
    case ExprKind::kUnary:
      CollectAggCalls(*static_cast<const sql::UnaryExpr&>(expr).operand, out);
      return;
    case ExprKind::kBinary: {
      const auto& e = static_cast<const sql::BinaryExpr&>(expr);
      CollectAggCalls(*e.lhs, out);
      CollectAggCalls(*e.rhs, out);
      return;
    }
    case ExprKind::kCast:
      CollectAggCalls(*static_cast<const sql::CastExpr&>(expr).operand, out);
      return;
    case ExprKind::kIsNull:
      CollectAggCalls(*static_cast<const sql::IsNullExpr&>(expr).operand, out);
      return;
    case ExprKind::kInList: {
      const auto& e = static_cast<const sql::InListExpr&>(expr);
      CollectAggCalls(*e.operand, out);
      for (const ExprPtr& i : e.items) CollectAggCalls(*i, out);
      return;
    }
    case ExprKind::kInSubquery:
      CollectAggCalls(*static_cast<const sql::InSubqueryExpr&>(expr).operand,
                      out);
      return;
    case ExprKind::kBetween: {
      const auto& e = static_cast<const sql::BetweenExpr&>(expr);
      CollectAggCalls(*e.operand, out);
      CollectAggCalls(*e.low, out);
      CollectAggCalls(*e.high, out);
      return;
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const sql::LikeExpr&>(expr);
      CollectAggCalls(*e.operand, out);
      CollectAggCalls(*e.pattern, out);
      return;
    }
    case ExprKind::kCase: {
      const auto& e = static_cast<const sql::CaseExpr&>(expr);
      for (const auto& [c, v] : e.whens) {
        CollectAggCalls(*c, out);
        CollectAggCalls(*v, out);
      }
      if (e.else_expr != nullptr) CollectAggCalls(*e.else_expr, out);
      return;
    }
    default:
      return;
  }
}

// --- Bound-tree type inference ----------------------------------------------

ColumnType InferType(const BoundExpr& expr);

ColumnType InferLiteralType(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kBool:
      return ColumnType::kBool;
    case ValueKind::kInt64:
      return ColumnType::kInt64;
    case ValueKind::kDouble:
      return ColumnType::kDouble;
    default:
      return ColumnType::kString;
  }
}

ColumnType InferType(const BoundExpr& expr) {
  switch (expr.kind) {
    case BoundExprKind::kLiteral:
      return InferLiteralType(static_cast<const BoundLiteral&>(expr).value);
    case BoundExprKind::kColumnRef:
      return static_cast<const BoundColumnRef&>(expr).column_type;
    case BoundExprKind::kUnary: {
      const auto& e = static_cast<const BoundUnary&>(expr);
      return e.op == sql::UnaryOp::kNot ? ColumnType::kBool
                                        : InferType(*e.operand);
    }
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(expr);
      switch (e.op) {
        case sql::BinaryOp::kAnd:
        case sql::BinaryOp::kOr:
        case sql::BinaryOp::kEq:
        case sql::BinaryOp::kNotEq:
        case sql::BinaryOp::kLess:
        case sql::BinaryOp::kLessEq:
        case sql::BinaryOp::kGreater:
        case sql::BinaryOp::kGreaterEq:
          return ColumnType::kBool;
        case sql::BinaryOp::kConcat:
          return ColumnType::kString;
        default: {
          ColumnType l = InferType(*e.lhs);
          ColumnType r = InferType(*e.rhs);
          return (l == ColumnType::kDouble || r == ColumnType::kDouble)
                     ? ColumnType::kDouble
                     : ColumnType::kInt64;
        }
      }
    }
    case BoundExprKind::kFunctionCall: {
      const auto& e = static_cast<const BoundFunctionCall&>(expr);
      const std::string& n = e.function->name;
      if (n == "LENGTH" || n == "BITAND" || n == "BITOR" || n == "MOD") {
        return ColumnType::kInt64;
      }
      if (n == "OVERLAPS_RANGE") return ColumnType::kBool;
      if (!e.args.empty()) return InferType(*e.args[0]);
      return ColumnType::kString;
    }
    case BoundExprKind::kCast:
      return static_cast<const BoundCast&>(expr).target_type;
    case BoundExprKind::kIsNull:
    case BoundExprKind::kInList:
    case BoundExprKind::kBetween:
    case BoundExprKind::kLike:
      return ColumnType::kBool;
    case BoundExprKind::kCase: {
      const auto& e = static_cast<const BoundCase&>(expr);
      return InferType(*e.whens.front().second);
    }
    case BoundExprKind::kSubquery: {
      const auto& e = static_cast<const BoundSubquery&>(expr);
      if (e.subquery_kind == SubqueryKind::kScalar &&
          e.plan->schema.num_columns() > 0) {
        return e.plan->schema.column(0).type;
      }
      return ColumnType::kBool;
    }
  }
  return ColumnType::kString;
}

/// Column types of UNION branches are merged leniently: numeric widening
/// wins, otherwise the first branch's type stands (the engine is
/// dynamically typed at runtime).
ColumnType MergeColumnTypes(ColumnType a, ColumnType b) {
  if (a == b) return a;
  bool a_num = a == ColumnType::kInt64 || a == ColumnType::kDouble;
  bool b_num = b == ColumnType::kInt64 || b == ColumnType::kDouble;
  if (a_num && b_num) return ColumnType::kDouble;
  return a;
}

std::string OutputColumnName(const sql::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) {
    return static_cast<const sql::ColumnRefExpr&>(*item.expr).column;
  }
  return item.expr->ToSql();
}

}  // namespace

// --- Scope --------------------------------------------------------------------

size_t Scope::AddTable(std::string name, Schema schema) {
  size_t offset = num_columns_;
  num_columns_ += schema.num_columns();
  tables_.push_back(TableBinding{std::move(name), std::move(schema), offset});
  return offset;
}

Result<Scope::Resolution> Scope::Resolve(std::string_view qualifier,
                                         std::string_view column) const {
  std::optional<Resolution> found;
  for (const TableBinding& t : tables_) {
    if (!qualifier.empty() && !EqualsIgnoreCase(t.name, qualifier)) continue;
    std::optional<size_t> idx = t.schema.FindColumn(column);
    if (!idx.has_value()) continue;
    if (found.has_value()) {
      return Status::BindError(StrFormat(
          "ambiguous column reference '%s'", std::string(column).c_str()));
    }
    found = Resolution{0, t.offset + *idx, t.schema.column(*idx).type,
                       t.name + "." + std::string(column)};
  }
  if (found.has_value()) return *found;
  if (parent_ != nullptr) {
    PDM_ASSIGN_OR_RETURN(Resolution r, parent_->Resolve(qualifier, column));
    r.level += 1;
    return r;
  }
  std::string full = qualifier.empty()
                         ? std::string(column)
                         : std::string(qualifier) + "." + std::string(column);
  return Status::BindError("unknown column '" + full + "'");
}

// --- Bound-tree analysis helpers ------------------------------------------------

namespace {

template <typename Fn>
void ForEachExprInPlan(const PlanNode& plan, const Fn& fn);

/// Walks a bound expression tree; `fn(colref, depth)` is called for each
/// column ref, where `depth` is how many subquery scopes the ref is
/// nested below the root expression.
template <typename Fn>
void ForEachColumnRef(const BoundExpr& expr, size_t depth, const Fn& fn) {
  switch (expr.kind) {
    case BoundExprKind::kColumnRef:
      fn(static_cast<const BoundColumnRef&>(expr), depth);
      return;
    case BoundExprKind::kUnary:
      ForEachColumnRef(*static_cast<const BoundUnary&>(expr).operand, depth,
                       fn);
      return;
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(expr);
      ForEachColumnRef(*e.lhs, depth, fn);
      ForEachColumnRef(*e.rhs, depth, fn);
      return;
    }
    case BoundExprKind::kFunctionCall:
      for (const BoundExprPtr& a :
           static_cast<const BoundFunctionCall&>(expr).args) {
        ForEachColumnRef(*a, depth, fn);
      }
      return;
    case BoundExprKind::kCast:
      ForEachColumnRef(*static_cast<const BoundCast&>(expr).operand, depth,
                       fn);
      return;
    case BoundExprKind::kIsNull:
      ForEachColumnRef(*static_cast<const BoundIsNull&>(expr).operand, depth,
                       fn);
      return;
    case BoundExprKind::kInList: {
      const auto& e = static_cast<const BoundInList&>(expr);
      ForEachColumnRef(*e.operand, depth, fn);
      for (const BoundExprPtr& i : e.items) ForEachColumnRef(*i, depth, fn);
      return;
    }
    case BoundExprKind::kBetween: {
      const auto& e = static_cast<const BoundBetween&>(expr);
      ForEachColumnRef(*e.operand, depth, fn);
      ForEachColumnRef(*e.low, depth, fn);
      ForEachColumnRef(*e.high, depth, fn);
      return;
    }
    case BoundExprKind::kLike: {
      const auto& e = static_cast<const BoundLike&>(expr);
      ForEachColumnRef(*e.operand, depth, fn);
      ForEachColumnRef(*e.pattern, depth, fn);
      return;
    }
    case BoundExprKind::kCase: {
      const auto& e = static_cast<const BoundCase&>(expr);
      for (const auto& [c, v] : e.whens) {
        ForEachColumnRef(*c, depth, fn);
        ForEachColumnRef(*v, depth, fn);
      }
      if (e.else_expr != nullptr) ForEachColumnRef(*e.else_expr, depth, fn);
      return;
    }
    case BoundExprKind::kSubquery: {
      const auto& e = static_cast<const BoundSubquery&>(expr);
      if (e.operand != nullptr) ForEachColumnRef(*e.operand, depth, fn);
      ForEachExprInPlan(*e.plan, [&](const BoundExpr& inner) {
        ForEachColumnRef(inner, depth + 1, fn);
      });
      return;
    }
    default:
      return;
  }
}

/// Invokes `fn` on every root expression held by the plan's operators
/// (not recursing into subquery plans; ForEachColumnRef does that with
/// depth tracking).
template <typename Fn>
void ForEachExprInPlan(const PlanNode& plan, const Fn& fn) {
  switch (plan.kind) {
    case PlanKind::kScan: {
      const auto& n = static_cast<const ScanNode&>(plan);
      if (n.filter != nullptr) fn(*n.filter);
      return;
    }
    case PlanKind::kCteScan:
      return;
    case PlanKind::kFilter: {
      const auto& n = static_cast<const FilterNode&>(plan);
      fn(*n.predicate);
      ForEachExprInPlan(*n.child, fn);
      return;
    }
    case PlanKind::kProject: {
      const auto& n = static_cast<const ProjectNode&>(plan);
      for (const BoundExprPtr& e : n.exprs) fn(*e);
      if (n.child != nullptr) ForEachExprInPlan(*n.child, fn);
      return;
    }
    case PlanKind::kNestedLoopJoin: {
      const auto& n = static_cast<const NestedLoopJoinNode&>(plan);
      if (n.predicate != nullptr) fn(*n.predicate);
      ForEachExprInPlan(*n.left, fn);
      ForEachExprInPlan(*n.right, fn);
      return;
    }
    case PlanKind::kHashJoin: {
      const auto& n = static_cast<const HashJoinNode&>(plan);
      if (n.residual != nullptr) fn(*n.residual);
      ForEachExprInPlan(*n.left, fn);
      ForEachExprInPlan(*n.right, fn);
      return;
    }
    case PlanKind::kAggregate: {
      const auto& n = static_cast<const AggregateNode&>(plan);
      for (const BoundExprPtr& g : n.group_exprs) fn(*g);
      for (const BoundAggregate& a : n.aggregates) {
        if (a.arg != nullptr) fn(*a.arg);
      }
      if (n.having != nullptr) fn(*n.having);
      ForEachExprInPlan(*n.child, fn);
      return;
    }
    case PlanKind::kSort:
      ForEachExprInPlan(*static_cast<const SortNode&>(plan).child, fn);
      return;
    case PlanKind::kDistinct:
      ForEachExprInPlan(*static_cast<const DistinctNode&>(plan).child, fn);
      return;
    case PlanKind::kUnion:
      for (const PlanPtr& c : static_cast<const UnionNode&>(plan).children) {
        ForEachExprInPlan(*c, fn);
      }
      return;
    case PlanKind::kLimit:
      ForEachExprInPlan(*static_cast<const LimitNode&>(plan).child, fn);
      return;
  }
}

}  // namespace

std::optional<size_t> MaxOwnRowIndex(const BoundExpr& expr, size_t depth) {
  std::optional<size_t> max_index;
  ForEachColumnRef(expr, depth, [&](const BoundColumnRef& ref, size_t d) {
    if (ref.level == d) {
      if (!max_index.has_value() || ref.index > *max_index) {
        max_index = ref.index;
      }
    }
  });
  return max_index;
}

bool ExprHasEscapingRefs(const BoundExpr& expr, size_t depth) {
  bool escapes = false;
  ForEachColumnRef(expr, depth, [&](const BoundColumnRef& ref, size_t d) {
    if (ref.level > d) escapes = true;
  });
  return escapes;
}

bool PlanHasEscapingRefs(const PlanNode& plan, size_t depth) {
  bool escapes = false;
  ForEachExprInPlan(plan, [&](const BoundExpr& e) {
    if (ExprHasEscapingRefs(e, depth)) escapes = true;
  });
  return escapes;
}

std::vector<BoundExprPtr> SplitConjuncts(BoundExprPtr expr) {
  std::vector<BoundExprPtr> out;
  if (expr == nullptr) return out;
  if (expr->kind == BoundExprKind::kBinary) {
    auto* bin = static_cast<BoundBinary*>(expr.get());
    if (bin->op == sql::BinaryOp::kAnd) {
      std::vector<BoundExprPtr> left = SplitConjuncts(std::move(bin->lhs));
      std::vector<BoundExprPtr> right = SplitConjuncts(std::move(bin->rhs));
      for (BoundExprPtr& e : left) out.push_back(std::move(e));
      for (BoundExprPtr& e : right) out.push_back(std::move(e));
      return out;
    }
  }
  out.push_back(std::move(expr));
  return out;
}

BoundExprPtr CombineConjuncts(std::vector<BoundExprPtr> conjuncts) {
  BoundExprPtr acc;
  for (BoundExprPtr& e : conjuncts) {
    if (acc == nullptr) {
      acc = std::move(e);
    } else {
      acc = std::make_unique<BoundBinary>(sql::BinaryOp::kAnd, std::move(acc),
                                          std::move(e));
    }
  }
  return acc;
}

// --- Hash-join conversion -------------------------------------------------------

namespace {

void ConvertJoinsInExpr(BoundExpr* expr);

void ConvertJoinsInPlanExprs(PlanNode* plan) {
  // Mutating variant of ForEachExprInPlan: recurse into subquery plans.
  switch (plan->kind) {
    case PlanKind::kScan: {
      auto* n = static_cast<ScanNode*>(plan);
      if (n->filter != nullptr) ConvertJoinsInExpr(n->filter.get());
      return;
    }
    case PlanKind::kCteScan:
      return;
    case PlanKind::kFilter: {
      auto* n = static_cast<FilterNode*>(plan);
      ConvertJoinsInExpr(n->predicate.get());
      ConvertEquiJoinsToHashJoins(&n->child);
      return;
    }
    case PlanKind::kProject: {
      auto* n = static_cast<ProjectNode*>(plan);
      for (BoundExprPtr& e : n->exprs) ConvertJoinsInExpr(e.get());
      if (n->child != nullptr) ConvertEquiJoinsToHashJoins(&n->child);
      return;
    }
    case PlanKind::kNestedLoopJoin: {
      auto* n = static_cast<NestedLoopJoinNode*>(plan);
      if (n->predicate != nullptr) ConvertJoinsInExpr(n->predicate.get());
      ConvertEquiJoinsToHashJoins(&n->left);
      ConvertEquiJoinsToHashJoins(&n->right);
      return;
    }
    case PlanKind::kHashJoin: {
      auto* n = static_cast<HashJoinNode*>(plan);
      if (n->residual != nullptr) ConvertJoinsInExpr(n->residual.get());
      ConvertEquiJoinsToHashJoins(&n->left);
      ConvertEquiJoinsToHashJoins(&n->right);
      return;
    }
    case PlanKind::kAggregate: {
      auto* n = static_cast<AggregateNode*>(plan);
      for (BoundExprPtr& g : n->group_exprs) ConvertJoinsInExpr(g.get());
      for (BoundAggregate& a : n->aggregates) {
        if (a.arg != nullptr) ConvertJoinsInExpr(a.arg.get());
      }
      if (n->having != nullptr) ConvertJoinsInExpr(n->having.get());
      ConvertEquiJoinsToHashJoins(&n->child);
      return;
    }
    case PlanKind::kSort:
      ConvertEquiJoinsToHashJoins(&static_cast<SortNode*>(plan)->child);
      return;
    case PlanKind::kDistinct:
      ConvertEquiJoinsToHashJoins(&static_cast<DistinctNode*>(plan)->child);
      return;
    case PlanKind::kUnion:
      for (PlanPtr& c : static_cast<UnionNode*>(plan)->children) {
        ConvertEquiJoinsToHashJoins(&c);
      }
      return;
    case PlanKind::kLimit:
      ConvertEquiJoinsToHashJoins(&static_cast<LimitNode*>(plan)->child);
      return;
  }
}

void ConvertJoinsInExpr(BoundExpr* expr) {
  switch (expr->kind) {
    case BoundExprKind::kUnary:
      ConvertJoinsInExpr(static_cast<BoundUnary*>(expr)->operand.get());
      return;
    case BoundExprKind::kBinary: {
      auto* e = static_cast<BoundBinary*>(expr);
      ConvertJoinsInExpr(e->lhs.get());
      ConvertJoinsInExpr(e->rhs.get());
      return;
    }
    case BoundExprKind::kFunctionCall:
      for (BoundExprPtr& a : static_cast<BoundFunctionCall*>(expr)->args) {
        ConvertJoinsInExpr(a.get());
      }
      return;
    case BoundExprKind::kCast:
      ConvertJoinsInExpr(static_cast<BoundCast*>(expr)->operand.get());
      return;
    case BoundExprKind::kIsNull:
      ConvertJoinsInExpr(static_cast<BoundIsNull*>(expr)->operand.get());
      return;
    case BoundExprKind::kInList: {
      auto* e = static_cast<BoundInList*>(expr);
      ConvertJoinsInExpr(e->operand.get());
      for (BoundExprPtr& i : e->items) ConvertJoinsInExpr(i.get());
      return;
    }
    case BoundExprKind::kBetween: {
      auto* e = static_cast<BoundBetween*>(expr);
      ConvertJoinsInExpr(e->operand.get());
      ConvertJoinsInExpr(e->low.get());
      ConvertJoinsInExpr(e->high.get());
      return;
    }
    case BoundExprKind::kLike: {
      auto* e = static_cast<BoundLike*>(expr);
      ConvertJoinsInExpr(e->operand.get());
      ConvertJoinsInExpr(e->pattern.get());
      return;
    }
    case BoundExprKind::kCase: {
      auto* e = static_cast<BoundCase*>(expr);
      for (auto& [c, v] : e->whens) {
        ConvertJoinsInExpr(c.get());
        ConvertJoinsInExpr(v.get());
      }
      if (e->else_expr != nullptr) ConvertJoinsInExpr(e->else_expr.get());
      return;
    }
    case BoundExprKind::kSubquery: {
      auto* e = static_cast<BoundSubquery*>(expr);
      if (e->operand != nullptr) ConvertJoinsInExpr(e->operand.get());
      ConvertEquiJoinsToHashJoins(&e->plan);
      return;
    }
    default:
      return;
  }
}

}  // namespace

void ConvertEquiJoinsToHashJoins(PlanPtr* plan) {
  if (*plan == nullptr) return;
  ConvertJoinsInPlanExprs(plan->get());
  if ((*plan)->kind != PlanKind::kNestedLoopJoin) return;

  auto* nlj = static_cast<NestedLoopJoinNode*>(plan->get());
  if (nlj->predicate == nullptr) return;
  size_t left_cols = nlj->left->schema.num_columns();

  std::vector<BoundExprPtr> conjuncts = SplitConjuncts(std::move(nlj->predicate));
  std::vector<size_t> left_keys;
  std::vector<size_t> right_keys;
  std::vector<BoundExprPtr> residual;
  for (BoundExprPtr& c : conjuncts) {
    bool is_key = false;
    if (c->kind == BoundExprKind::kBinary) {
      auto* bin = static_cast<BoundBinary*>(c.get());
      if (bin->op == sql::BinaryOp::kEq &&
          bin->lhs->kind == BoundExprKind::kColumnRef &&
          bin->rhs->kind == BoundExprKind::kColumnRef) {
        auto* l = static_cast<BoundColumnRef*>(bin->lhs.get());
        auto* r = static_cast<BoundColumnRef*>(bin->rhs.get());
        if (l->level == 0 && r->level == 0) {
          if (l->index < left_cols && r->index >= left_cols) {
            left_keys.push_back(l->index);
            right_keys.push_back(r->index - left_cols);
            is_key = true;
          } else if (r->index < left_cols && l->index >= left_cols) {
            left_keys.push_back(r->index);
            right_keys.push_back(l->index - left_cols);
            is_key = true;
          }
        }
      }
    }
    if (!is_key) residual.push_back(std::move(c));
  }

  if (left_keys.empty()) {
    nlj->predicate = CombineConjuncts(std::move(residual));
    return;
  }

  auto hash_join = std::make_unique<HashJoinNode>();
  hash_join->schema = nlj->schema;
  hash_join->left = std::move(nlj->left);
  hash_join->right = std::move(nlj->right);
  hash_join->left_keys = std::move(left_keys);
  hash_join->right_keys = std::move(right_keys);
  hash_join->residual = CombineConjuncts(std::move(residual));
  *plan = std::move(hash_join);
}

// --- Binder: expressions ----------------------------------------------------------

Result<BoundExprPtr> Binder::BindExpr(const sql::Expr& expr,
                                      const Scope* scope) {
  switch (expr.kind) {
    case ExprKind::kLiteral: {
      const auto& e = static_cast<const sql::LiteralExpr&>(expr);
      auto lit = std::make_unique<BoundLiteral>(e.value);
      if (view_stack_.empty()) lit->param_slot = e.param_slot;
      return BoundExprPtr(std::move(lit));
    }
    case ExprKind::kColumnRef: {
      const auto& e = static_cast<const sql::ColumnRefExpr&>(expr);
      if (scope == nullptr) {
        return Status::BindError("column reference '" + e.ToSql() +
                                 "' is not allowed here");
      }
      PDM_ASSIGN_OR_RETURN(Scope::Resolution r,
                           scope->Resolve(e.table, e.column));
      return BoundExprPtr(std::make_unique<BoundColumnRef>(
          r.level, r.index, r.type, r.debug_name));
    }
    case ExprKind::kStar:
      return Status::BindError("'*' is only allowed in COUNT(*)");
    case ExprKind::kUnary: {
      const auto& e = static_cast<const sql::UnaryExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(BoundExprPtr operand, BindExpr(*e.operand, scope));
      return BoundExprPtr(
          std::make_unique<BoundUnary>(e.op, std::move(operand)));
    }
    case ExprKind::kBinary: {
      const auto& e = static_cast<const sql::BinaryExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(BoundExprPtr lhs, BindExpr(*e.lhs, scope));
      PDM_ASSIGN_OR_RETURN(BoundExprPtr rhs, BindExpr(*e.rhs, scope));
      return BoundExprPtr(std::make_unique<BoundBinary>(e.op, std::move(lhs),
                                                        std::move(rhs)));
    }
    case ExprKind::kFunctionCall: {
      const auto& e = static_cast<const sql::FunctionCallExpr&>(expr);
      bool star = e.args.size() == 1 && e.args[0]->kind == ExprKind::kStar;
      if (LookupAggKind(e.name, star).has_value()) {
        return Status::BindError(
            "aggregate function " + e.name +
            " is not allowed here (only in SELECT list or HAVING)");
      }
      const ScalarFunction* fn = functions_->Find(e.name);
      if (fn == nullptr) {
        return Status::BindError("unknown function '" + e.name + "'");
      }
      if (e.args.size() < fn->min_args || e.args.size() > fn->max_args) {
        return Status::BindError(
            StrFormat("function %s called with %zu argument(s)",
                      fn->name.c_str(), e.args.size()));
      }
      std::vector<BoundExprPtr> args;
      args.reserve(e.args.size());
      for (const ExprPtr& a : e.args) {
        PDM_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*a, scope));
        args.push_back(std::move(b));
      }
      return BoundExprPtr(
          std::make_unique<BoundFunctionCall>(fn, std::move(args)));
    }
    case ExprKind::kCast: {
      const auto& e = static_cast<const sql::CastExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(BoundExprPtr operand, BindExpr(*e.operand, scope));
      return BoundExprPtr(
          std::make_unique<BoundCast>(std::move(operand), e.target_type));
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const sql::IsNullExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(BoundExprPtr operand, BindExpr(*e.operand, scope));
      return BoundExprPtr(
          std::make_unique<BoundIsNull>(std::move(operand), e.negated));
    }
    case ExprKind::kInList: {
      const auto& e = static_cast<const sql::InListExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(BoundExprPtr operand, BindExpr(*e.operand, scope));
      std::vector<BoundExprPtr> items;
      items.reserve(e.items.size());
      for (const ExprPtr& i : e.items) {
        PDM_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*i, scope));
        items.push_back(std::move(b));
      }
      auto bound = std::make_unique<BoundInList>(std::move(operand),
                                                 std::move(items), e.negated);
      bool all_literals = true;
      for (const BoundExprPtr& item : bound->items) {
        if (item->kind != BoundExprKind::kLiteral) {
          all_literals = false;
          break;
        }
      }
      if (all_literals) {
        bound->use_literal_set = true;
        for (const BoundExprPtr& item : bound->items) {
          const Value& v = static_cast<const BoundLiteral&>(*item).value;
          if (v.is_null()) {
            bound->literal_list_has_null = true;
          } else {
            bound->literal_set.insert(v);
          }
        }
      }
      return BoundExprPtr(std::move(bound));
    }
    case ExprKind::kBetween: {
      const auto& e = static_cast<const sql::BetweenExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(BoundExprPtr operand, BindExpr(*e.operand, scope));
      PDM_ASSIGN_OR_RETURN(BoundExprPtr low, BindExpr(*e.low, scope));
      PDM_ASSIGN_OR_RETURN(BoundExprPtr high, BindExpr(*e.high, scope));
      return BoundExprPtr(std::make_unique<BoundBetween>(
          std::move(operand), std::move(low), std::move(high), e.negated));
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const sql::LikeExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(BoundExprPtr operand, BindExpr(*e.operand, scope));
      PDM_ASSIGN_OR_RETURN(BoundExprPtr pattern, BindExpr(*e.pattern, scope));
      return BoundExprPtr(std::make_unique<BoundLike>(
          std::move(operand), std::move(pattern), e.negated));
    }
    case ExprKind::kCase: {
      const auto& e = static_cast<const sql::CaseExpr&>(expr);
      std::vector<std::pair<BoundExprPtr, BoundExprPtr>> whens;
      whens.reserve(e.whens.size());
      for (const auto& [c, v] : e.whens) {
        PDM_ASSIGN_OR_RETURN(BoundExprPtr bc, BindExpr(*c, scope));
        PDM_ASSIGN_OR_RETURN(BoundExprPtr bv, BindExpr(*v, scope));
        whens.emplace_back(std::move(bc), std::move(bv));
      }
      BoundExprPtr else_expr;
      if (e.else_expr != nullptr) {
        PDM_ASSIGN_OR_RETURN(else_expr, BindExpr(*e.else_expr, scope));
      }
      return BoundExprPtr(
          std::make_unique<BoundCase>(std::move(whens), std::move(else_expr)));
    }
    case ExprKind::kInSubquery:
    case ExprKind::kExists:
    case ExprKind::kScalarSubquery:
      return BindSubqueryExpr(expr, scope);
  }
  return Status::Internal("unhandled expression kind in binder");
}

Result<PlanPtr> Binder::BindSubqueryPlan(const sql::QueryExpr& query,
                                         const Scope* scope,
                                         bool* correlated) {
  PDM_ASSIGN_OR_RETURN(PlanPtr plan, BindQueryExpr(query, scope));
  *correlated = PlanHasEscapingRefs(*plan, 0);
  return plan;
}

Result<BoundExprPtr> Binder::BindSubqueryExpr(const sql::Expr& expr,
                                              const Scope* scope) {
  switch (expr.kind) {
    case ExprKind::kExists: {
      const auto& e = static_cast<const sql::ExistsExpr&>(expr);
      bool correlated = false;
      PDM_ASSIGN_OR_RETURN(PlanPtr plan,
                           BindSubqueryPlan(*e.subquery, scope, &correlated));
      return BoundExprPtr(std::make_unique<BoundSubquery>(
          SubqueryKind::kExists, nullptr, std::move(plan), e.negated,
          correlated));
    }
    case ExprKind::kInSubquery: {
      const auto& e = static_cast<const sql::InSubqueryExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(BoundExprPtr operand, BindExpr(*e.operand, scope));
      bool correlated = false;
      PDM_ASSIGN_OR_RETURN(PlanPtr plan,
                           BindSubqueryPlan(*e.subquery, scope, &correlated));
      if (plan->schema.num_columns() != 1) {
        return Status::BindError(
            "IN subquery must return exactly one column");
      }
      return BoundExprPtr(std::make_unique<BoundSubquery>(
          SubqueryKind::kIn, std::move(operand), std::move(plan), e.negated,
          correlated));
    }
    case ExprKind::kScalarSubquery: {
      const auto& e = static_cast<const sql::ScalarSubqueryExpr&>(expr);
      bool correlated = false;
      PDM_ASSIGN_OR_RETURN(PlanPtr plan,
                           BindSubqueryPlan(*e.subquery, scope, &correlated));
      if (plan->schema.num_columns() != 1) {
        return Status::BindError(
            "scalar subquery must return exactly one column");
      }
      return BoundExprPtr(std::make_unique<BoundSubquery>(
          SubqueryKind::kScalar, nullptr, std::move(plan), false, correlated));
    }
    default:
      return Status::Internal("not a subquery expression");
  }
}

// --- Binder: SELECT core ----------------------------------------------------------

const Binder::CteInfo* Binder::FindCte(std::string_view name) const {
  std::string key = ToLowerAscii(name);
  // Later CTEs shadow earlier ones of the same name.
  for (auto it = ctes_.rbegin(); it != ctes_.rend(); ++it) {
    if (it->key == key) return &*it;
  }
  return nullptr;
}

Result<PlanPtr> Binder::BindTableRef(const sql::TableRef& ref,
                                     Schema* schema_out) {
  if (ref.kind == sql::TableRef::Kind::kSubquery) {
    // Derived tables bind without outer visibility (no LATERAL).
    PDM_ASSIGN_OR_RETURN(PlanPtr plan, BindQueryExpr(*ref.subquery, nullptr));
    *schema_out = plan->schema;
    return plan;
  }
  if (const CteInfo* cte = FindCte(ref.table_name)) {
    auto node = std::make_unique<CteScanNode>();
    node->cte_name = cte->key;
    node->schema = cte->schema;
    *schema_out = cte->schema;
    return PlanPtr(std::move(node));
  }
  if (views_ != nullptr) {
    if (const sql::SelectStmt* view = views_->Find(ref.table_name)) {
      std::string key = ToLowerAscii(ref.table_name);
      for (const std::string& open : view_stack_) {
        if (open == key) {
          return Status::BindError("circular view definition involving '" +
                                   key + "'");
        }
      }
      if (!view->ctes.empty()) {
        return Status::NotImplemented(
            "views with WITH clauses are not supported");
      }
      view_stack_.push_back(key);
      Result<PlanPtr> plan = BindQueryExpr(view->query, nullptr);
      view_stack_.pop_back();
      if (!plan.ok()) {
        return plan.status().WithContext("while expanding view '" + key +
                                         "'");
      }
      *schema_out = (*plan)->schema;
      return plan;
    }
  }
  const Table* table = catalog_->FindTable(ref.table_name);
  if (table == nullptr) {
    return Status::BindError("unknown table '" + ref.table_name + "'");
  }
  auto node = std::make_unique<ScanNode>();
  node->table_name = table->name();
  node->schema = table->schema();
  *schema_out = table->schema();
  return PlanPtr(std::move(node));
}

Result<PlanPtr> Binder::BindSelectCore(const sql::SelectCore& core,
                                       const Scope* parent_scope) {
  Scope scope(parent_scope);

  // 1. Leaves: FROM tables in order (comma items and their JOIN chains).
  struct Leaf {
    PlanPtr plan;
    const sql::Expr* on_ast;  // nullptr for comma-joined leaves
    size_t prefix_cols;       // total columns once this leaf is joined
  };
  std::vector<Leaf> leaves;
  for (const sql::FromItem& item : core.from) {
    Schema schema;
    PDM_ASSIGN_OR_RETURN(PlanPtr plan, BindTableRef(item.ref, &schema));
    if (item.ref.kind == sql::TableRef::Kind::kSubquery &&
        item.ref.alias.empty()) {
      return Status::BindError("derived table requires an alias");
    }
    scope.AddTable(item.ref.EffectiveName(), schema);
    leaves.push_back(Leaf{std::move(plan), nullptr, scope.num_columns()});
    for (const sql::JoinClause& join : item.joins) {
      Schema join_schema;
      PDM_ASSIGN_OR_RETURN(PlanPtr jplan, BindTableRef(join.ref, &join_schema));
      scope.AddTable(join.ref.EffectiveName(), join_schema);
      leaves.push_back(
          Leaf{std::move(jplan), join.on.get(), scope.num_columns()});
    }
  }

  // 2. Bind ON predicates (against the full scope; validated to only
  //    touch columns available at their join prefix) and WHERE.
  std::vector<BoundExprPtr> on_preds(leaves.size());
  for (size_t k = 0; k < leaves.size(); ++k) {
    if (leaves[k].on_ast == nullptr) continue;
    PDM_ASSIGN_OR_RETURN(BoundExprPtr pred,
                         BindExpr(*leaves[k].on_ast, &scope));
    std::optional<size_t> max_index = MaxOwnRowIndex(*pred);
    if (max_index.has_value() && *max_index >= leaves[k].prefix_cols) {
      return Status::BindError(
          "ON clause references a table joined later in the FROM clause");
    }
    on_preds[k] = std::move(pred);
  }

  BoundExprPtr where;
  if (core.where != nullptr) {
    PDM_ASSIGN_OR_RETURN(where, BindExpr(*core.where, &scope));
  }

  // 3. Distribute WHERE conjuncts to the earliest join prefix covering
  //    their own-row columns (predicate pushdown), or keep them on top.
  std::vector<std::vector<BoundExprPtr>> prefix_preds(leaves.size());
  std::vector<BoundExprPtr> top_preds;
  if (where != nullptr) {
    if (options_.predicate_pushdown && !leaves.empty()) {
      for (BoundExprPtr& conjunct : SplitConjuncts(std::move(where))) {
        std::optional<size_t> max_index = MaxOwnRowIndex(*conjunct);
        if (!max_index.has_value()) {
          top_preds.push_back(std::move(conjunct));
          continue;
        }
        size_t target = leaves.size() - 1;
        for (size_t k = 0; k < leaves.size(); ++k) {
          if (*max_index < leaves[k].prefix_cols) {
            target = k;
            break;
          }
        }
        prefix_preds[target].push_back(std::move(conjunct));
      }
    } else {
      top_preds.push_back(std::move(where));
    }
  }

  // 4. Assemble the left-deep join tree.
  PlanPtr plan;
  if (!leaves.empty()) {
    plan = std::move(leaves[0].plan);
    BoundExprPtr first_filter = CombineConjuncts(std::move(prefix_preds[0]));
    if (first_filter != nullptr) {
      if (plan->kind == PlanKind::kScan) {
        auto* scan = static_cast<ScanNode*>(plan.get());
        scan->filter = scan->filter == nullptr
                           ? std::move(first_filter)
                           : std::make_unique<BoundBinary>(
                                 sql::BinaryOp::kAnd, std::move(scan->filter),
                                 std::move(first_filter));
      } else {
        auto filter = std::make_unique<FilterNode>();
        filter->schema = plan->schema;
        filter->predicate = std::move(first_filter);
        filter->child = std::move(plan);
        plan = std::move(filter);
      }
    }
    for (size_t k = 1; k < leaves.size(); ++k) {
      auto join = std::make_unique<NestedLoopJoinNode>();
      for (const Column& c : plan->schema.columns()) join->schema.AddColumn(c);
      for (const Column& c : leaves[k].plan->schema.columns()) {
        join->schema.AddColumn(c);
      }
      join->left = std::move(plan);
      join->right = std::move(leaves[k].plan);
      std::vector<BoundExprPtr> preds;
      if (on_preds[k] != nullptr) preds.push_back(std::move(on_preds[k]));
      for (BoundExprPtr& p : prefix_preds[k]) preds.push_back(std::move(p));
      join->predicate = CombineConjuncts(std::move(preds));
      plan = std::move(join);
    }
  }

  if (!top_preds.empty()) {
    if (plan == nullptr) {
      // SELECT without FROM: constant predicate over the single empty row.
      auto project = std::make_unique<ProjectNode>();
      project->schema = Schema();
      plan = std::move(project);
    }
    auto filter = std::make_unique<FilterNode>();
    filter->schema = plan->schema;
    filter->predicate = CombineConjuncts(std::move(top_preds));
    filter->child = std::move(plan);
    plan = std::move(filter);
  }

  // 5. Aggregation or plain projection.
  bool has_aggregates = !core.group_by.empty();
  for (const sql::SelectItem& item : core.items) {
    if (item.expr != nullptr && HasAggregateCall(*item.expr)) {
      has_aggregates = true;
    }
  }
  if (core.having != nullptr) has_aggregates = true;

  if (has_aggregates) {
    PDM_ASSIGN_OR_RETURN(plan,
                         BindAggregateSelect(core, &scope, std::move(plan)));
  } else {
    auto project = std::make_unique<ProjectNode>();
    for (const sql::SelectItem& item : core.items) {
      if (item.is_star) {
        if (scope.tables().empty()) {
          return Status::BindError("'SELECT *' requires a FROM clause");
        }
        for (const Scope::TableBinding& t : scope.tables()) {
          if (!item.star_qualifier.empty() &&
              !EqualsIgnoreCase(t.name, item.star_qualifier)) {
            continue;
          }
          for (size_t i = 0; i < t.schema.num_columns(); ++i) {
            const Column& col = t.schema.column(i);
            project->exprs.push_back(std::make_unique<BoundColumnRef>(
                0, t.offset + i, col.type, t.name + "." + col.name));
            project->schema.AddColumn(col);
          }
        }
        if (!item.star_qualifier.empty() && project->exprs.empty()) {
          return Status::BindError("unknown table '" + item.star_qualifier +
                                   "' in '" + item.star_qualifier + ".*'");
        }
        continue;
      }
      PDM_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*item.expr, &scope));
      project->schema.AddColumn(
          Column{OutputColumnName(item), InferType(*bound)});
      project->exprs.push_back(std::move(bound));
    }
    project->child = std::move(plan);  // may be null: SELECT <constants>
    plan = std::move(project);
  }

  if (core.distinct) {
    auto distinct = std::make_unique<DistinctNode>();
    distinct->schema = plan->schema;
    distinct->child = std::move(plan);
    plan = std::move(distinct);
  }
  return plan;
}

Result<PlanPtr> Binder::BindAggregateSelect(const sql::SelectCore& core,
                                            Scope* scope, PlanPtr input) {
  if (input == nullptr) {
    return Status::BindError("aggregates require a FROM clause");
  }
  for (const sql::SelectItem& item : core.items) {
    if (item.is_star) {
      return Status::BindError("'*' cannot be combined with aggregation");
    }
  }

  auto agg_node = std::make_unique<AggregateNode>();
  AggContext ctx;

  // Group expressions.
  for (const ExprPtr& g : core.group_by) {
    PDM_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*g, scope));
    agg_node->schema.AddColumn(Column{g->ToSql(), InferType(*bound)});
    agg_node->group_exprs.push_back(std::move(bound));
    ctx.group_sql.push_back(g->ToSql());
  }
  ctx.num_groups = agg_node->group_exprs.size();

  // Aggregate calls from SELECT list and HAVING, in slot order.
  for (const sql::SelectItem& item : core.items) {
    CollectAggCalls(*item.expr, &ctx.agg_calls);
  }
  if (core.having != nullptr) CollectAggCalls(*core.having, &ctx.agg_calls);

  for (const Expr* call_expr : ctx.agg_calls) {
    const auto& call = static_cast<const sql::FunctionCallExpr&>(*call_expr);
    bool star = call.args.size() == 1 && call.args[0]->kind == ExprKind::kStar;
    AggKind kind = *LookupAggKind(call.name, star);
    BoundAggregate agg;
    agg.agg_kind = kind;
    agg.distinct = call.distinct;
    if (!star) {
      if (call.args.size() != 1) {
        return Status::BindError("aggregate " + call.name +
                                 " takes exactly one argument");
      }
      if (HasAggregateCall(*call.args[0])) {
        return Status::BindError("nested aggregate functions are not allowed");
      }
      PDM_ASSIGN_OR_RETURN(agg.arg, BindExpr(*call.args[0], scope));
    }
    ColumnType out_type;
    switch (kind) {
      case AggKind::kCountStar:
      case AggKind::kCount:
        out_type = ColumnType::kInt64;
        break;
      case AggKind::kAvg:
        out_type = ColumnType::kDouble;
        break;
      default:
        out_type = agg.arg != nullptr ? InferType(*agg.arg)
                                      : ColumnType::kInt64;
        break;
    }
    agg_node->schema.AddColumn(Column{call.ToSql(), out_type});
    agg_node->aggregates.push_back(std::move(agg));
  }

  agg_node->child = std::move(input);

  // HAVING binds against the aggregate output.
  if (core.having != nullptr) {
    PDM_ASSIGN_OR_RETURN(agg_node->having,
                         BindPostAggExpr(*core.having, scope, ctx));
  }

  // Projection over the aggregate output.
  auto project = std::make_unique<ProjectNode>();
  for (const sql::SelectItem& item : core.items) {
    PDM_ASSIGN_OR_RETURN(BoundExprPtr bound,
                         BindPostAggExpr(*item.expr, scope, ctx));
    project->schema.AddColumn(Column{OutputColumnName(item), InferType(*bound)});
    project->exprs.push_back(std::move(bound));
  }
  project->child = std::move(agg_node);
  return PlanPtr(std::move(project));
}

Result<BoundExprPtr> Binder::BindPostAggExpr(const sql::Expr& expr,
                                             const Scope* scope,
                                             const AggContext& agg) {
  // A group expression used verbatim maps to its group slot.
  std::string sql_text = expr.ToSql();
  for (size_t i = 0; i < agg.group_sql.size(); ++i) {
    if (agg.group_sql[i] == sql_text) {
      // Type: group slots precede aggregate slots in the output row; the
      // caller tracks types via the AggregateNode schema, but for
      // inference here the bound group expression type is reproduced by
      // rebinding. Use kString as a safe fallback via the ref type below.
      return BoundExprPtr(std::make_unique<BoundColumnRef>(
          0, i, ColumnType::kString, "group:" + sql_text));
    }
  }

  // An aggregate call maps to its slot (match by pointer identity).
  if (expr.kind == ExprKind::kFunctionCall) {
    for (size_t j = 0; j < agg.agg_calls.size(); ++j) {
      if (agg.agg_calls[j] == &expr) {
        return BoundExprPtr(std::make_unique<BoundColumnRef>(
            0, agg.num_groups + j, ColumnType::kDouble, "agg:" + sql_text));
      }
    }
  }

  switch (expr.kind) {
    case ExprKind::kLiteral: {
      const auto& e = static_cast<const sql::LiteralExpr&>(expr);
      auto lit = std::make_unique<BoundLiteral>(e.value);
      if (view_stack_.empty()) lit->param_slot = e.param_slot;
      return BoundExprPtr(std::move(lit));
    }
    case ExprKind::kColumnRef: {
      const auto& e = static_cast<const sql::ColumnRefExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(Scope::Resolution r,
                           scope->Resolve(e.table, e.column));
      if (r.level == 0) {
        return Status::BindError("column '" + e.ToSql() +
                                 "' must appear in GROUP BY or inside an "
                                 "aggregate function");
      }
      return BoundExprPtr(std::make_unique<BoundColumnRef>(
          r.level, r.index, r.type, r.debug_name));
    }
    case ExprKind::kUnary: {
      const auto& e = static_cast<const sql::UnaryExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(BoundExprPtr operand,
                           BindPostAggExpr(*e.operand, scope, agg));
      return BoundExprPtr(
          std::make_unique<BoundUnary>(e.op, std::move(operand)));
    }
    case ExprKind::kBinary: {
      const auto& e = static_cast<const sql::BinaryExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(BoundExprPtr lhs,
                           BindPostAggExpr(*e.lhs, scope, agg));
      PDM_ASSIGN_OR_RETURN(BoundExprPtr rhs,
                           BindPostAggExpr(*e.rhs, scope, agg));
      return BoundExprPtr(std::make_unique<BoundBinary>(e.op, std::move(lhs),
                                                        std::move(rhs)));
    }
    case ExprKind::kFunctionCall: {
      const auto& e = static_cast<const sql::FunctionCallExpr&>(expr);
      const ScalarFunction* fn = functions_->Find(e.name);
      if (fn == nullptr) {
        return Status::BindError("unknown function '" + e.name + "'");
      }
      std::vector<BoundExprPtr> args;
      args.reserve(e.args.size());
      for (const ExprPtr& a : e.args) {
        PDM_ASSIGN_OR_RETURN(BoundExprPtr b, BindPostAggExpr(*a, scope, agg));
        args.push_back(std::move(b));
      }
      return BoundExprPtr(
          std::make_unique<BoundFunctionCall>(fn, std::move(args)));
    }
    case ExprKind::kCast: {
      const auto& e = static_cast<const sql::CastExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(BoundExprPtr operand,
                           BindPostAggExpr(*e.operand, scope, agg));
      return BoundExprPtr(
          std::make_unique<BoundCast>(std::move(operand), e.target_type));
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const sql::IsNullExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(BoundExprPtr operand,
                           BindPostAggExpr(*e.operand, scope, agg));
      return BoundExprPtr(
          std::make_unique<BoundIsNull>(std::move(operand), e.negated));
    }
    case ExprKind::kInSubquery:
    case ExprKind::kExists:
    case ExprKind::kScalarSubquery: {
      PDM_ASSIGN_OR_RETURN(BoundExprPtr bound, BindSubqueryExpr(expr, scope));
      if (static_cast<const BoundSubquery&>(*bound).correlated) {
        return Status::NotImplemented(
            "correlated subquery in aggregated select list");
      }
      return bound;
    }
    default:
      return Status::NotImplemented(
          "expression kind not supported after aggregation: " + sql_text);
  }
}

// --- Binder: query expressions / CTEs -----------------------------------------------

Result<PlanPtr> Binder::BindQueryExpr(const sql::QueryExpr& query,
                                      const Scope* parent_scope) {
  if (query.terms.empty()) {
    return Status::Internal("query expression with no terms");
  }

  PDM_ASSIGN_OR_RETURN(PlanPtr plan,
                       BindSelectCore(query.terms[0], parent_scope));
  for (size_t i = 1; i < query.terms.size(); ++i) {
    PDM_ASSIGN_OR_RETURN(PlanPtr term,
                         BindSelectCore(query.terms[i], parent_scope));
    if (term->schema.num_columns() != plan->schema.num_columns()) {
      return Status::BindError(
          StrFormat("UNION branches have different column counts (%zu vs %zu)",
                    plan->schema.num_columns(), term->schema.num_columns()));
    }
    Schema merged;
    for (size_t c = 0; c < plan->schema.num_columns(); ++c) {
      merged.AddColumn(Column{
          plan->schema.column(c).name,
          MergeColumnTypes(plan->schema.column(c).type,
                           term->schema.column(c).type)});
    }
    auto union_node = std::make_unique<UnionNode>();
    union_node->schema = merged;
    union_node->children.push_back(std::move(plan));
    union_node->children.push_back(std::move(term));
    plan = std::move(union_node);
    if (!query.union_all[i - 1]) {
      auto distinct = std::make_unique<DistinctNode>();
      distinct->schema = plan->schema;
      distinct->child = std::move(plan);
      plan = std::move(distinct);
    }
  }

  if (!query.order_by.empty()) {
    auto sort = std::make_unique<SortNode>();
    sort->schema = plan->schema;
    for (const sql::OrderByItem& item : query.order_by) {
      SortKey key;
      key.descending = item.descending;
      if (item.position.has_value()) {
        int64_t pos = *item.position;
        if (pos < 1 || static_cast<size_t>(pos) > plan->schema.num_columns()) {
          return Status::BindError(
              StrFormat("ORDER BY position %lld out of range",
                        static_cast<long long>(pos)));
        }
        key.column = static_cast<size_t>(pos - 1);
      } else if (item.expr->kind == ExprKind::kColumnRef) {
        const auto& ref = static_cast<const sql::ColumnRefExpr&>(*item.expr);
        std::optional<size_t> idx = plan->schema.FindColumn(ref.column);
        if (!idx.has_value()) {
          return Status::BindError("ORDER BY column '" + ref.column +
                                   "' is not in the select list");
        }
        key.column = *idx;
      } else {
        return Status::NotImplemented(
            "ORDER BY supports output positions and column names only");
      }
      sort->keys.push_back(key);
    }
    sort->child = std::move(plan);
    plan = std::move(sort);
  }

  if (query.limit.has_value()) {
    auto limit = std::make_unique<LimitNode>();
    limit->schema = plan->schema;
    limit->limit = *query.limit;
    limit->child = std::move(plan);
    plan = std::move(limit);
  }
  return plan;
}

Result<BoundCte> Binder::BindCte(const sql::CommonTableExpr& cte,
                                 bool recursive_allowed) {
  BoundCte bound;
  bound.name = ToLowerAscii(cte.name);

  const sql::QueryExpr& query = *cte.query;
  if (!query.order_by.empty() || query.limit.has_value()) {
    return Status::NotImplemented(
        "ORDER BY / LIMIT inside a common table expression");
  }

  // Partition the UNION terms into seed and recursive terms.
  std::vector<const sql::SelectCore*> seed_terms;
  std::vector<const sql::SelectCore*> recursive_terms;
  bool any_union_distinct = false;
  for (size_t i = 0; i < query.terms.size(); ++i) {
    CteRefCounts counts = CountCteRefs(query.terms[i], cte.name);
    if (counts.in_from + counts.elsewhere == 0) {
      seed_terms.push_back(&query.terms[i]);
    } else {
      if (!recursive_allowed) {
        return Status::BindError("table '" + cte.name +
                                 "' referenced inside its own definition "
                                 "requires WITH RECURSIVE");
      }
      if (counts.in_from != 1 || counts.elsewhere != 0) {
        return Status::NotImplemented(
            "a recursive term must reference the CTE exactly once, in its "
            "top-level FROM clause");
      }
      recursive_terms.push_back(&query.terms[i]);
    }
    if (i > 0 && !query.union_all[i - 1]) any_union_distinct = true;
  }
  if (seed_terms.empty()) {
    return Status::BindError("recursive CTE '" + cte.name +
                             "' has no non-recursive seed term");
  }
  bound.recursive = !recursive_terms.empty();
  bound.union_all = !any_union_distinct && query.terms.size() > 1;
  if (query.terms.size() == 1) bound.union_all = false;

  // Bind the seed (union of seed terms; dedup handled by the executor).
  PDM_ASSIGN_OR_RETURN(PlanPtr seed, BindSelectCore(*seed_terms[0], nullptr));
  for (size_t i = 1; i < seed_terms.size(); ++i) {
    PDM_ASSIGN_OR_RETURN(PlanPtr term, BindSelectCore(*seed_terms[i], nullptr));
    if (term->schema.num_columns() != seed->schema.num_columns()) {
      return Status::BindError("CTE seed terms have different column counts");
    }
    auto union_node = std::make_unique<UnionNode>();
    union_node->schema = seed->schema;
    union_node->children.push_back(std::move(seed));
    union_node->children.push_back(std::move(term));
    seed = std::move(union_node);
  }

  // The CTE schema: seed columns renamed by the declared column list.
  Schema schema = seed->schema;
  if (!cte.column_names.empty()) {
    if (cte.column_names.size() != schema.num_columns()) {
      return Status::BindError(StrFormat(
          "CTE '%s' declares %zu column(s) but its query produces %zu",
          cte.name.c_str(), cte.column_names.size(), schema.num_columns()));
    }
    Schema renamed;
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      renamed.AddColumn(Column{cte.column_names[i], schema.column(i).type});
    }
    schema = renamed;
  }
  bound.schema = schema;
  bound.seed = std::move(seed);

  // Bind recursive terms with the CTE itself registered.
  if (bound.recursive) {
    ctes_.push_back(CteInfo{bound.name, bound.schema});
    for (const sql::SelectCore* term : recursive_terms) {
      PDM_ASSIGN_OR_RETURN(PlanPtr plan, BindSelectCore(*term, nullptr));
      if (plan->schema.num_columns() != bound.schema.num_columns()) {
        return Status::BindError(
            "recursive term column count does not match the CTE");
      }
      bound.recursive_terms.push_back(std::move(plan));
    }
    ctes_.pop_back();  // re-registered by the caller with final schema
  }
  return bound;
}

// --- Binder: statements ----------------------------------------------------------

Result<BoundSelect> Binder::BindSelect(const sql::SelectStmt& stmt) {
  BoundSelect bound;
  for (const sql::CommonTableExpr& cte : stmt.ctes) {
    PDM_ASSIGN_OR_RETURN(BoundCte bcte, BindCte(cte, stmt.recursive));
    ctes_.push_back(CteInfo{bcte.name, bcte.schema});
    bound.ctes.push_back(std::move(bcte));
  }
  PDM_ASSIGN_OR_RETURN(bound.root, BindQueryExpr(stmt.query, nullptr));

  if (options_.use_hash_join) {
    for (BoundCte& cte : bound.ctes) {
      ConvertEquiJoinsToHashJoins(&cte.seed);
      for (PlanPtr& term : cte.recursive_terms) {
        ConvertEquiJoinsToHashJoins(&term);
      }
    }
    ConvertEquiJoinsToHashJoins(&bound.root);
  }
  return bound;
}

Result<BoundInsert> Binder::BindInsert(const sql::InsertStmt& stmt) {
  const Table* table = catalog_->FindTable(stmt.table_name);
  if (table == nullptr) {
    return Status::BindError("unknown table '" + stmt.table_name + "'");
  }
  const Schema& schema = table->schema();

  // Map provided column order to schema order.
  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) positions.push_back(i);
  } else {
    for (const std::string& name : stmt.columns) {
      std::optional<size_t> idx = schema.FindColumn(name);
      if (!idx.has_value()) {
        return Status::BindError("unknown column '" + name + "' in table '" +
                                 table->name() + "'");
      }
      positions.push_back(*idx);
    }
  }

  BoundInsert bound;
  bound.table_name = table->name();
  for (const std::vector<ExprPtr>& row : stmt.rows) {
    if (row.size() != positions.size()) {
      return Status::BindError(
          StrFormat("INSERT row has %zu value(s), expected %zu", row.size(),
                    positions.size()));
    }
    std::vector<BoundExprPtr> bound_row(schema.num_columns());
    for (size_t i = 0; i < row.size(); ++i) {
      PDM_ASSIGN_OR_RETURN(BoundExprPtr e, BindExpr(*row[i], nullptr));
      bound_row[positions[i]] = std::move(e);
    }
    for (BoundExprPtr& e : bound_row) {
      if (e == nullptr) e = std::make_unique<BoundLiteral>(Value::Null());
    }
    bound.rows.push_back(std::move(bound_row));
  }
  return bound;
}

Result<BoundUpdate> Binder::BindUpdate(const sql::UpdateStmt& stmt) {
  const Table* table = catalog_->FindTable(stmt.table_name);
  if (table == nullptr) {
    return Status::BindError("unknown table '" + stmt.table_name + "'");
  }
  Scope scope;
  scope.AddTable(table->name(), table->schema());

  BoundUpdate bound;
  bound.table_name = table->name();
  for (const auto& [col, expr] : stmt.assignments) {
    std::optional<size_t> idx = table->schema().FindColumn(col);
    if (!idx.has_value()) {
      return Status::BindError("unknown column '" + col + "' in table '" +
                               table->name() + "'");
    }
    PDM_ASSIGN_OR_RETURN(BoundExprPtr e, BindExpr(*expr, &scope));
    bound.assignments.emplace_back(*idx, std::move(e));
  }
  if (stmt.where != nullptr) {
    PDM_ASSIGN_OR_RETURN(bound.predicate, BindExpr(*stmt.where, &scope));
  }
  return bound;
}

Result<BoundDelete> Binder::BindDelete(const sql::DeleteStmt& stmt) {
  const Table* table = catalog_->FindTable(stmt.table_name);
  if (table == nullptr) {
    return Status::BindError("unknown table '" + stmt.table_name + "'");
  }
  Scope scope;
  scope.AddTable(table->name(), table->schema());

  BoundDelete bound;
  bound.table_name = table->name();
  if (stmt.where != nullptr) {
    PDM_ASSIGN_OR_RETURN(bound.predicate, BindExpr(*stmt.where, &scope));
  }
  return bound;
}

}  // namespace pdm
