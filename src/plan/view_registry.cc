#include "plan/view_registry.h"

#include "common/string_util.h"

namespace pdm {

Status ViewRegistry::Define(std::string_view name,
                            std::unique_ptr<sql::SelectStmt> select,
                            bool or_replace) {
  std::string key = ToLowerAscii(name);
  if (!or_replace && views_.count(key) > 0) {
    return Status::AlreadyExists("view '" + key + "' already exists");
  }
  views_[key] = std::move(select);
  return Status::OK();
}

Status ViewRegistry::Drop(std::string_view name, bool if_exists) {
  std::string key = ToLowerAscii(name);
  if (views_.erase(key) == 0 && !if_exists) {
    return Status::NotFound("view '" + key + "' does not exist");
  }
  return Status::OK();
}

const sql::SelectStmt* ViewRegistry::Find(std::string_view name) const {
  auto it = views_.find(ToLowerAscii(name));
  return it == views_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ViewRegistry::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, select] : views_) names.push_back(name);
  return names;
}

}  // namespace pdm
