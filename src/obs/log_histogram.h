#ifndef PDM_OBS_LOG_HISTOGRAM_H_
#define PDM_OBS_LOG_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace pdm::obs {

/// HDR-style log-linear histogram over [0, ~73 minutes] of seconds with
/// bounded relative error — the quantile-accurate replacement for the
/// fixed-bucket latency histograms (DESIGN.md 5k).
///
/// Layout: observations are converted to integer nanoseconds and binned
/// into octaves of 2^kSubBits = 128 linear sub-buckets each. Values
/// below 128 ns get one exact bucket per nanosecond; above, a bucket
/// spans value/128, so any recorded value is reproduced by its bucket's
/// midpoint within a relative error of 1/256 (< 0.4%); Quantile() is
/// therefore accurate to kMaxRelativeError = 1/128 (< 1%) for every
/// value >= 1 ns, documented loosely as "1% over ns..minutes". Values
/// past the last octave (~2^42 ns) clamp into the final bucket.
///
/// Concurrency: Observe() is lock-free — one relaxed fetch_add on the
/// bucket, a double-bits CAS on the sum and CAS min/max updates — so it
/// is safe on the engine's hot paths and under TSan. Readers
/// (Quantile/total_count/sum) take relaxed snapshots; they are exact
/// whenever no writer is concurrent, and self-consistent enough for
/// monitoring otherwise. Reset() zeroes in place: references stay valid
/// (the MetricsRegistry stability contract).
class LogHistogram {
 public:
  static constexpr int kSubBits = 7;           // 128 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr int kMaxShift = 34;         // top octave ~2^42 ns (~73 min)
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kMaxShift + 2) * kSubBuckets;  // 4608
  /// Documented quantile accuracy: |Quantile(q) - exact| <= bound *
  /// exact for every recorded value (bucket width over bucket floor).
  static constexpr double kMaxRelativeError = 1.0 / kSubBuckets;

  LogHistogram();

  /// Records `value_seconds` (negative values clamp to 0).
  void Observe(double value_seconds);

  uint64_t total_count() const;
  double sum() const;  // exact double accumulation (no nanounit overflow)
  /// Smallest / largest recorded value in nanosecond resolution,
  /// clamped to the trackable range like the buckets. 0 when empty.
  double min() const;
  double max() const;

  /// The q-quantile (q in [0, 1]) by nearest rank: the representative
  /// value of the bucket holding element ceil(q * count) of the sorted
  /// observations. 0 when empty. Accuracy: kMaxRelativeError.
  double Quantile(double q) const;

  /// Adds `other`'s buckets, sum and min/max into this histogram.
  void Merge(const LogHistogram& other);

  void Reset();

  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Bucket index for a value in nanoseconds (exposed for tests).
  static size_t BucketIndex(uint64_t nanos);
  /// Representative (midpoint) value of bucket `index`, in nanoseconds.
  static double BucketRepresentativeNanos(size_t index);

 private:
  // unique_ptr keeps the 36 KB bucket array off the stack of
  // by-value-constructed registries and makes the object movable-free.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> sum_bits_;  // bit_cast of the double sum
  std::atomic<uint64_t> min_nanos_;
  std::atomic<uint64_t> max_nanos_;
};

}  // namespace pdm::obs

#endif  // PDM_OBS_LOG_HISTOGRAM_H_
