#ifndef PDM_OBS_SNAPSHOT_H_
#define PDM_OBS_SNAPSHOT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"

namespace pdm::obs {

/// Point-in-time capture of every instrument in the metrics registry —
/// the comparable artifact the benches publish and tools/metrics_diff
/// consumes (DESIGN.md 5k). The JSON form is versioned; readers reject
/// versions they do not understand instead of misparsing them.
struct MetricsSnapshot {
  static constexpr int kVersion = 1;

  int version = kVersion;
  std::string label;  // freeform provenance (bench name, CI run, ...)
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<LabeledCounterSnapshot> labeled_counters;
  std::vector<HistogramSnapshot> histograms;
  std::vector<LogHistogramSnapshot> log_histograms;
};

/// Captures the global registry. Instruments appear in registry
/// (lexicographic) order, so two captures of the same process state are
/// byte-identical.
MetricsSnapshot CaptureMetricsSnapshot(std::string label = {});

/// Versioned JSON encoding (the exact inverse of ParseSnapshotJson).
std::string SnapshotToJson(const MetricsSnapshot& snapshot);

/// Prometheus text exposition: counters/gauges with label sets,
/// fixed-bucket histograms as cumulative `_bucket{le=...}` series, log
/// histograms as quantile summaries. Metric names have '.' mapped to
/// '_' per Prometheus naming rules.
std::string SnapshotToPrometheusText(const MetricsSnapshot& snapshot);

Status WriteSnapshotJsonFile(const std::string& path,
                             const MetricsSnapshot& snapshot);

/// Parses SnapshotToJson output (tolerates unknown keys; rejects
/// malformed JSON and unsupported versions).
Result<MetricsSnapshot> ParseSnapshotJson(std::string_view json);

Result<MetricsSnapshot> ReadSnapshotJsonFile(const std::string& path);

}  // namespace pdm::obs

#endif  // PDM_OBS_SNAPSHOT_H_
