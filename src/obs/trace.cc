#include "obs/trace.h"

namespace pdm::obs {

namespace {

thread_local TraceContext t_current;

}  // namespace

std::string_view ModelTermName(ModelTerm term) {
  switch (term) {
    case ModelTerm::kNone:      return "";
    case ModelTerm::kLat:       return "t_lat";
    case ModelTerm::kTransfer:  return "t_transfer";
    case ModelTerm::kServer:    return "t_server";
    case ModelTerm::kQueueWait: return "t_queue_wait";
    case ModelTerm::kParsePlan: return "t_parse_plan";
    case ModelTerm::kExec:      return "t_exec";
    case ModelTerm::kOverlapHidden: return "t_overlap_hidden";
  }
  return "?";
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  sim_clock_.clear();
  dropped_ = 0;
}

size_t Tracer::open_spans() const {
  return open_spans_.load(std::memory_order_relaxed);
}

size_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Tracer::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<SpanRecord>(spans_.begin(), spans_.end());
}

uint64_t Tracer::NextTraceId() {
  return next_trace_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Tracer::NextSpanId() {
  return next_span_.fetch_add(1, std::memory_order_relaxed);
}

double Tracer::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::PushLocked(SpanRecord span) {
  while (spans_.size() >= capacity_) {
    spans_.pop_front();
    ++dropped_;
  }
  spans_.push_back(std::move(span));
}

double Tracer::AdvanceSimClockLocked(uint64_t trace_id, double seconds) {
  double& clock = sim_clock_[trace_id];
  double start = clock;
  clock += seconds;
  return start;
}

void Tracer::RecordSim(const TraceContext& parent, std::string name,
                       ModelTerm term, double sim_seconds,
                       std::string detail) {
  if (!enabled() || !parent.active()) return;
  SpanRecord span;
  span.trace_id = parent.trace_id;
  span.span_id = NextSpanId();
  span.parent_id = parent.span_id;
  span.name = std::move(name);
  span.term = term;
  span.wall_start_us = NowMicros();
  span.wall_dur_us = 0;
  span.sim_dur_s = sim_seconds;
  span.thread = ThreadIndex();
  span.detail = std::move(detail);
  std::lock_guard<std::mutex> lock(mutex_);
  span.sim_start_s = AdvanceSimClockLocked(span.trace_id, sim_seconds);
  PushLocked(std::move(span));
}

void Tracer::RecordSimOverlay(const TraceContext& parent, std::string name,
                              ModelTerm term, double sim_seconds,
                              std::string detail) {
  if (!enabled() || !parent.active()) return;
  SpanRecord span;
  span.trace_id = parent.trace_id;
  span.span_id = NextSpanId();
  span.parent_id = parent.span_id;
  span.name = std::move(name);
  span.term = term;
  span.wall_start_us = NowMicros();
  span.wall_dur_us = 0;
  span.sim_dur_s = sim_seconds;
  span.thread = ThreadIndex();
  span.detail = std::move(detail);
  std::lock_guard<std::mutex> lock(mutex_);
  // Read the clock without advancing it: the overlay coincides with
  // time that other spans already account for.
  span.sim_start_s = sim_clock_[span.trace_id];
  PushLocked(std::move(span));
}

void Tracer::RecordWallRange(const TraceContext& parent, std::string name,
                             ModelTerm term,
                             std::chrono::steady_clock::time_point start,
                             std::chrono::steady_clock::time_point end,
                             std::string detail) {
  if (!enabled() || !parent.active()) return;
  SpanRecord span;
  span.trace_id = parent.trace_id;
  span.span_id = NextSpanId();
  span.parent_id = parent.span_id;
  span.name = std::move(name);
  span.term = term;
  span.wall_start_us =
      std::chrono::duration<double, std::micro>(start - epoch_).count();
  span.wall_dur_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  span.thread = ThreadIndex();
  span.detail = std::move(detail);
  std::lock_guard<std::mutex> lock(mutex_);
  PushLocked(std::move(span));
}

void Tracer::Record(SpanRecord span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (span.sim_dur_s > 0 && span.sim_start_s < 0) {
    span.sim_start_s = AdvanceSimClockLocked(span.trace_id, span.sim_dur_s);
  }
  PushLocked(std::move(span));
}

TraceContext CurrentContext() { return t_current; }

ContextScope::ContextScope(const TraceContext& ctx) : prev_(t_current) {
  t_current = ctx;
}

ContextScope::~ContextScope() { t_current = prev_; }

ScopedSpan::ScopedSpan(std::string_view name, ModelTerm term) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  active_ = true;
  prev_ = t_current;
  ctx_.trace_id =
      prev_.active() ? prev_.trace_id : tracer.NextTraceId();
  ctx_.span_id = tracer.NextSpanId();
  t_current = ctx_;
  name_ = std::string(name);
  term_ = term;
  wall_start_us_ = tracer.NowMicros();
  tracer.open_spans_.fetch_add(1, std::memory_order_relaxed);
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tracer& tracer = Tracer::Global();
  SpanRecord span;
  span.trace_id = ctx_.trace_id;
  span.span_id = ctx_.span_id;
  span.parent_id = prev_.active() ? prev_.span_id : 0;
  span.name = std::move(name_);
  span.term = term_;
  span.wall_start_us = wall_start_us_;
  span.wall_dur_us = tracer.NowMicros() - wall_start_us_;
  if (sim_seconds_ > 0) span.sim_dur_s = sim_seconds_;
  span.thread = ThreadIndex();
  span.detail = std::move(detail_);
  tracer.Record(std::move(span));
  tracer.open_spans_.fetch_sub(1, std::memory_order_relaxed);
  t_current = prev_;
}

uint64_t ThreadIndex() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace pdm::obs
