#ifndef PDM_OBS_METRICS_H_
#define PDM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pdm::obs {

/// Monotonic named counter. Increments are single relaxed atomic adds,
/// so counters are safe (and cheap) on the engine's hot paths. Reset
/// zeroes the value without invalidating references: registry lookups
/// return stable pointers for the life of the process.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper bounds of
/// the first N buckets, plus an implicit overflow bucket. Observations
/// are relaxed atomic adds per bucket; sum is accumulated in integer
/// nanounits to stay atomic without a lock.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  size_t num_buckets() const { return counts_.size(); }  // includes overflow
  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t total_count() const;
  double sum() const;  // sum of observed values
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<int64_t> sum_nano_{0};
};

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1 (overflow last)
  uint64_t total_count = 0;
  double sum = 0;
};

/// Process-wide registry of named counters and histograms — the home of
/// every free-floating observability global (the fingerprint call
/// counter migrated here; sql/fingerprint.h keeps a shim). Lookup takes
/// a mutex once; call sites cache the returned reference. ResetAll
/// zeroes every instrument, which is what makes a full observability
/// reset auditable: iterate the snapshots and assert all-zero.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// The counter named `name`, created on first use.
  Counter& counter(std::string_view name);

  /// The histogram named `name`, created on first use with `bounds`
  /// (ignored afterwards — first registration wins).
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  void ResetAll();

  std::vector<CounterSnapshot> CounterSnapshots() const;
  std::vector<HistogramSnapshot> HistogramSnapshots() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Exponential bucket bounds `start, start*factor, ...` (count bounds).
std::vector<double> ExponentialBounds(double start, double factor,
                                      size_t count);

}  // namespace pdm::obs

#endif  // PDM_OBS_METRICS_H_
