#ifndef PDM_OBS_METRICS_H_
#define PDM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/log_histogram.h"

namespace pdm::obs {

/// Monotonic named counter. Increments are single relaxed atomic adds,
/// so counters are safe (and cheap) on the engine's hot paths. Reset
/// zeroes the value without invalidating references: registry lookups
/// return stable pointers for the life of the process.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Up/down instantaneous value (queue depth, active workers). Relaxed
/// atomics like Counter; Set is for absolute readings.
class Gauge {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Sub(int64_t delta) { Add(-delta); }
  void Increment() { Add(1); }
  void Decrement() { Add(-1); }
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper bounds of
/// the first N buckets, plus an implicit overflow bucket. Observations
/// are relaxed atomic adds per bucket; the sum is accumulated as a
/// double via compare-exchange on its bit pattern, so large values
/// (byte counts) neither overflow nor lose their magnitude the way the
/// old int64 nanounit accumulator did.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  size_t num_buckets() const { return counts_.size(); }  // includes overflow
  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t total_count() const;
  double sum() const;  // sum of observed values
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> sum_bits_;  // bit_cast of the double sum
};

/// A small set of metric dimensions: key/value pairs, canonically
/// sorted by key (EncodeLabels sorts; registry lookups accept any
/// order). Keep label VALUES low-cardinality — site names, statement
/// classes, engine names — never SQL text or ids from an unbounded
/// space: each distinct label set is its own instrument, bounded per
/// family by the registry's cardinality guard.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Canonical encoding of a label set (sorted by key, unit separators),
/// used as the registry's map key suffix.
std::string EncodeLabels(LabelSet labels);

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  int64_t value = 0;
};

struct LabeledCounterSnapshot {
  std::string name;
  LabelSet labels;
  uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1 (overflow last)
  uint64_t total_count = 0;
  double sum = 0;
};

/// Pre-evaluated quantile summary of one LogHistogram (the snapshot
/// layer never ships the 4608-bucket array).
struct LogHistogramSnapshot {
  std::string name;
  LabelSet labels;  // empty for unlabeled instruments
  uint64_t total_count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double p999 = 0;
};

/// Process-wide registry of named instruments — the home of every
/// free-floating observability global (the fingerprint call counter
/// migrated here; sql/fingerprint.h keeps a shim). Lookup takes a mutex
/// once; call sites cache the returned reference: instruments are never
/// evicted and ResetAll zeroes every one IN PLACE, which is what makes
/// a full observability reset auditable — iterate the snapshots and
/// assert all-zero.
///
/// Labeled families (DESIGN.md 5k): counter(name, labels) and
/// log_histogram(name, labels) key one instrument per distinct label
/// set within the family `name`. A family is bounded to
/// kMaxLabelSetsPerFamily distinct sets; past that, lookups return the
/// family's shared overflow instrument (labels {overflow="true"}) and
/// the "obs.label_sets_dropped" counter counts the rejections — tails
/// blur under overflow rather than memory growing without bound.
class MetricsRegistry {
 public:
  static constexpr size_t kMaxLabelSetsPerFamily = 64;

  static MetricsRegistry& Global();

  /// The counter named `name`, created on first use.
  Counter& counter(std::string_view name);

  /// The counter of family `name` with dimensions `labels`.
  Counter& counter(std::string_view name, LabelSet labels);

  /// The gauge named `name`, created on first use.
  Gauge& gauge(std::string_view name);

  /// The histogram named `name`, created on first use with `bounds`
  /// (ignored afterwards — first registration wins).
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// The quantile-accurate log histogram of family `name` with
  /// dimensions `labels` (empty set = the unlabeled instrument).
  LogHistogram& log_histogram(std::string_view name, LabelSet labels = {});

  void ResetAll();

  std::vector<CounterSnapshot> CounterSnapshots() const;
  std::vector<GaugeSnapshot> GaugeSnapshots() const;
  std::vector<LabeledCounterSnapshot> LabeledCounterSnapshots() const;
  std::vector<HistogramSnapshot> HistogramSnapshots() const;
  std::vector<LogHistogramSnapshot> LogHistogramSnapshots() const;

 private:
  MetricsRegistry() = default;

  /// Family admission check under mutex_: true admits `encoded_key`,
  /// false redirects to the overflow instrument.
  bool AdmitLabelSetLocked(const std::string& family,
                           const std::string& encoded_key);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  /// Labeled instruments, keyed "family\x1e<encoded labels>". The
  /// decoded label set rides along for snapshotting.
  struct LabeledCounter {
    LabelSet labels;
    Counter counter;
  };
  struct LabeledLogHistogram {
    LabelSet labels;
    LogHistogram histogram;
  };
  std::map<std::string, std::unique_ptr<LabeledCounter>, std::less<>>
      labeled_counters_;
  std::map<std::string, std::unique_ptr<LabeledLogHistogram>, std::less<>>
      log_histograms_;
  /// Distinct admitted label sets per family (overflow excluded).
  std::map<std::string, size_t, std::less<>> family_sizes_;
};

/// Exponential bucket bounds `start, start*factor, ...` (count bounds).
std::vector<double> ExponentialBounds(double start, double factor,
                                      size_t count);

}  // namespace pdm::obs

#endif  // PDM_OBS_METRICS_H_
