#ifndef PDM_OBS_EXPORT_H_
#define PDM_OBS_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace pdm::obs {

/// Per-model-term aggregation of a span set: the measured side of the
/// eqs. (1)-(6) reconciliation. Simulated seconds come from the cost
/// model's clock (WAN + server cost model); wall seconds are what this
/// machine actually spent.
struct TermBreakdown {
  struct Term {
    double sim_seconds = 0;
    double wall_seconds = 0;
    size_t spans = 0;
  };
  /// Indexed by static_cast<size_t>(ModelTerm).
  Term terms[kNumModelTerms];

  const Term& of(ModelTerm term) const {
    return terms[static_cast<size_t>(term)];
  }
  double sim(ModelTerm term) const { return of(term).sim_seconds; }
  double wall(ModelTerm term) const { return of(term).wall_seconds; }
};

/// Aggregates spans by model term. `trace_id` = 0 aggregates every
/// trace; nonzero restricts to one action.
TermBreakdown BreakdownByTerm(const std::vector<SpanRecord>& spans,
                              uint64_t trace_id = 0);

/// Renders a fixed-width per-term table (one row per model term with at
/// least one span) for bench output.
std::string RenderBreakdownTable(const TermBreakdown& breakdown);

/// Appends `text` to `out` with JSON string escaping (shared by the
/// trace, snapshot and slow-query JSON writers).
void AppendJsonEscaped(std::string* out, std::string_view text);

/// Serializes spans as Chrome trace-event JSON ("traceEvents" array of
/// "ph":"X" complete events), loadable in chrome://tracing and Perfetto.
/// Two process tracks: pid 1 carries the simulated timeline (each trace
/// is one tid lane, timestamps from the per-trace simulated clock), pid
/// 2 the wall-clock timeline (tid = recording thread).
std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans);

/// Writes ToChromeTraceJson(spans) to `path`.
Status WriteChromeTraceFile(const std::string& path,
                            const std::vector<SpanRecord>& spans);

}  // namespace pdm::obs

#endif  // PDM_OBS_EXPORT_H_
