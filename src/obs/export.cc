#include "obs/export.h"

#include <cstdio>

#include "common/string_util.h"

namespace pdm::obs {

TermBreakdown BreakdownByTerm(const std::vector<SpanRecord>& spans,
                              uint64_t trace_id) {
  TermBreakdown breakdown;
  for (const SpanRecord& span : spans) {
    if (trace_id != 0 && span.trace_id != trace_id) continue;
    TermBreakdown::Term& term = breakdown.terms[static_cast<size_t>(span.term)];
    term.sim_seconds += span.sim_dur_s;
    term.wall_seconds += span.wall_dur_us / 1e6;
    term.spans += 1;
  }
  return breakdown;
}

std::string RenderBreakdownTable(const TermBreakdown& breakdown) {
  std::string out = StrFormat("%-14s %10s %12s %12s\n", "term", "spans",
                              "sim-s", "wall-ms");
  static const ModelTerm kTerms[] = {
      ModelTerm::kLat,       ModelTerm::kTransfer,  ModelTerm::kServer,
      ModelTerm::kQueueWait, ModelTerm::kParsePlan, ModelTerm::kExec,
      ModelTerm::kOverlapHidden,
  };
  for (ModelTerm term : kTerms) {
    const TermBreakdown::Term& t = breakdown.of(term);
    if (t.spans == 0) continue;
    out += StrFormat("%-14s %10zu %12.4f %12.3f\n",
                     std::string(ModelTermName(term)).c_str(), t.spans,
                     t.sim_seconds, t.wall_seconds * 1000.0);
  }
  return out;
}

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':  *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", static_cast<unsigned>(c));
        } else {
          *out += c;
        }
    }
  }
}

namespace {

void AppendEvent(std::string* out, const SpanRecord& span, int pid,
                 uint64_t tid, double ts_us, double dur_us, bool* first) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += "  {\"name\":\"";
  AppendJsonEscaped(out, span.name);
  *out += "\",\"cat\":\"";
  std::string_view term = ModelTermName(span.term);
  AppendJsonEscaped(out, term.empty() ? "span" : term);
  *out += StrFormat(
      "\",\"ph\":\"X\",\"pid\":%d,\"tid\":%llu,\"ts\":%.3f,\"dur\":%.3f,",
      pid, static_cast<unsigned long long>(tid), ts_us, dur_us);
  *out += StrFormat(
      "\"args\":{\"trace\":%llu,\"span\":%llu,\"parent\":%llu,"
      "\"sim_s\":%.9f,\"detail\":\"",
      static_cast<unsigned long long>(span.trace_id),
      static_cast<unsigned long long>(span.span_id),
      static_cast<unsigned long long>(span.parent_id), span.sim_dur_s);
  AppendJsonEscaped(out, span.detail);
  *out += "\"}}";
}

void AppendMetadata(std::string* out, int pid, uint64_t tid,
                    const char* what, const std::string& name, bool* first) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += StrFormat("  {\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,", what, pid);
  if (tid != 0) {
    *out += StrFormat("\"tid\":%llu,", static_cast<unsigned long long>(tid));
  }
  *out += "\"args\":{\"name\":\"";
  AppendJsonEscaped(out, name);
  *out += "\"}}";
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  AppendMetadata(&out, 1, 0, "process_name", "simulated time (cost model)",
                 &first);
  AppendMetadata(&out, 2, 0, "process_name", "wall clock (engine)", &first);

  std::vector<uint64_t> sim_lanes;  // trace ids seen on the sim timeline
  for (const SpanRecord& span : spans) {
    // Simulated timeline: one lane per trace, positions from the
    // per-trace simulated clock. Zero-duration markers still render as
    // slivers, so only spans with a simulated interval appear.
    if (span.sim_start_s >= 0 && span.sim_dur_s > 0) {
      AppendEvent(&out, span, /*pid=*/1, /*tid=*/span.trace_id,
                  span.sim_start_s * 1e6, span.sim_dur_s * 1e6, &first);
      bool seen = false;
      for (uint64_t id : sim_lanes) seen = seen || id == span.trace_id;
      if (!seen) sim_lanes.push_back(span.trace_id);
    }
    // Wall timeline: real thread lanes, real durations.
    AppendEvent(&out, span, /*pid=*/2, /*tid=*/span.thread,
                span.wall_start_us, span.wall_dur_us, &first);
  }
  for (uint64_t trace_id : sim_lanes) {
    AppendMetadata(&out, 1, trace_id, "thread_name",
                   StrFormat("trace %llu",
                             static_cast<unsigned long long>(trace_id)),
                   &first);
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTraceFile(const std::string& path,
                            const std::vector<SpanRecord>& spans) {
  std::string json = ToChromeTraceJson(spans);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace pdm::obs
