#include "obs/log_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace pdm::obs {

namespace {

constexpr uint64_t kEmptyMin = ~uint64_t{0};

/// Largest nanosecond value the top bucket represents exactly; anything
/// beyond clamps into it — for the buckets and for min/max, which track
/// clamped nanos. Only the double sum keeps the true magnitude.
constexpr uint64_t kMaxTrackableNanos =
    ((uint64_t{LogHistogram::kSubBuckets} * 2 - 1)
     << LogHistogram::kMaxShift);

uint64_t ToNanos(double value_seconds) {
  if (!(value_seconds > 0)) return 0;  // negatives and NaN clamp to 0
  double nanos = value_seconds * 1e9;
  if (nanos >= static_cast<double>(kMaxTrackableNanos)) {
    return kMaxTrackableNanos;
  }
  return static_cast<uint64_t>(std::llround(nanos));
}

/// Relaxed double accumulation via compare-exchange on the bit pattern
/// (the satellite fix for the old int64 nanounit sum, reused here).
void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t observed = bits->load(std::memory_order_relaxed);
  for (;;) {
    double current = std::bit_cast<double>(observed);
    uint64_t desired = std::bit_cast<uint64_t>(current + delta);
    if (bits->compare_exchange_weak(observed, desired,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

void AtomicMinU64(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t observed = slot->load(std::memory_order_relaxed);
  while (value < observed &&
         !slot->compare_exchange_weak(observed, value,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMaxU64(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t observed = slot->load(std::memory_order_relaxed);
  while (value > observed &&
         !slot->compare_exchange_weak(observed, value,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

LogHistogram::LogHistogram()
    : buckets_(new std::atomic<uint64_t>[kNumBuckets]),
      sum_bits_(std::bit_cast<uint64_t>(0.0)),
      min_nanos_(kEmptyMin),
      max_nanos_(0) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

size_t LogHistogram::BucketIndex(uint64_t nanos) {
  if (nanos < kSubBuckets) return static_cast<size_t>(nanos);  // exact region
  // Octave = position of the most significant bit; within the octave the
  // top kSubBits bits after the msb select the linear sub-bucket.
  int msb = 63 - std::countl_zero(nanos);
  int shift = msb - kSubBits;
  if (shift > kMaxShift) shift = kMaxShift;  // clamp into the top octave
  uint64_t sub = nanos >> shift;             // in [kSubBuckets, 2*kSubBuckets)
  if (sub >= 2 * kSubBuckets) sub = 2 * kSubBuckets - 1;
  return static_cast<size_t>(shift + 1) * kSubBuckets +
         static_cast<size_t>(sub - kSubBuckets);
}

double LogHistogram::BucketRepresentativeNanos(size_t index) {
  if (index < kSubBuckets) return static_cast<double>(index);  // exact
  int shift = static_cast<int>(index / kSubBuckets) - 1;
  uint64_t sub = kSubBuckets + (index % kSubBuckets);
  double low = static_cast<double>(sub << shift);
  double width = static_cast<double>(uint64_t{1} << shift);
  return low + width / 2.0;
}

void LogHistogram::Observe(double value_seconds) {
  uint64_t nanos = ToNanos(value_seconds);
  buckets_[BucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_bits_, value_seconds < 0 ? 0.0 : value_seconds);
  AtomicMinU64(&min_nanos_, nanos);
  AtomicMaxU64(&max_nanos_, nanos);
}

uint64_t LogHistogram::total_count() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double LogHistogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double LogHistogram::min() const {
  uint64_t nanos = min_nanos_.load(std::memory_order_relaxed);
  return nanos == kEmptyMin ? 0.0 : static_cast<double>(nanos) / 1e9;
}

double LogHistogram::max() const {
  return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) / 1e9;
}

double LogHistogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  uint64_t total = total_count();
  if (total == 0) return 0.0;
  // Nearest rank: element ceil(q * total) of the sorted observations
  // (1-based); q = 0 degenerates to the first element.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  rank = std::clamp<uint64_t>(rank, 1, total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return BucketRepresentativeNanos(i) / 1e9;
  }
  return max();  // unreachable unless racing writers; max is safe
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n > 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  AtomicAddDouble(&sum_bits_, other.sum());
  uint64_t other_min = other.min_nanos_.load(std::memory_order_relaxed);
  if (other_min != kEmptyMin) AtomicMinU64(&min_nanos_, other_min);
  AtomicMaxU64(&max_nanos_,
               other.max_nanos_.load(std::memory_order_relaxed));
}

void LogHistogram::Reset() {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_bits_.store(std::bit_cast<uint64_t>(0.0), std::memory_order_relaxed);
  min_nanos_.store(kEmptyMin, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
}

}  // namespace pdm::obs
