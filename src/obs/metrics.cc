#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace pdm::obs {

namespace {

/// The family/labels separator in labeled map keys and the overflow
/// label set every over-budget family shares.
constexpr char kFamilySep = '\x1e';

LabelSet OverflowLabels() { return {{"overflow", "true"}}; }

/// Inverse of EncodeLabels on a labeled map key's suffix.
LabelSet DecodeLabels(std::string_view encoded) {
  LabelSet decoded;
  while (!encoded.empty()) {
    size_t k = encoded.find('\x1f');
    size_t v = encoded.find('\x1f', k + 1);
    decoded.emplace_back(std::string(encoded.substr(0, k)),
                         std::string(encoded.substr(k + 1, v - k - 1)));
    encoded.remove_prefix(v + 1);
  }
  return decoded;
}

void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t observed = bits->load(std::memory_order_relaxed);
  for (;;) {
    double current = std::bit_cast<double>(observed);
    uint64_t desired = std::bit_cast<uint64_t>(current + delta);
    if (bits->compare_exchange_weak(observed, desired,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

std::string EncodeLabels(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  std::string encoded;
  for (const auto& [key, value] : labels) {
    encoded += key;
    encoded += '\x1f';
    encoded += value;
    encoded += '\x1f';
  }
  return encoded;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1),
      sum_bits_(std::bit_cast<uint64_t>(0.0)) {}

void Histogram::Observe(double value) {
  size_t bucket = std::upper_bound(bounds_.begin(), bounds_.end(), value) -
                  bounds_.begin();
  // upper_bound gives the first bound strictly greater; bounds are
  // inclusive upper limits, so land in the previous bucket on equality.
  if (bucket > 0 && value == bounds_[bucket - 1]) bucket -= 1;
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_bits_, value);
}

uint64_t Histogram::total_count() const {
  uint64_t total = 0;
  for (const std::atomic<uint64_t>& c : counts_) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  sum_bits_.store(std::bit_cast<uint64_t>(0.0), std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    // Eager-register the guard counter so exported snapshots always
    // carry it (a zero reading is the signal that nothing was dropped).
    r->counter("obs.label_sets_dropped");
    return r;
  }();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

bool MetricsRegistry::AdmitLabelSetLocked(const std::string& family,
                                          const std::string& encoded_key) {
  // Existing instruments (checked by the callers) never reach here, so
  // this is a genuinely new label set for the family.
  size_t& size = family_sizes_[family];
  if (size >= kMaxLabelSetsPerFamily) {
    // Count the rejection on the guard counter directly: we already
    // hold mutex_, and counter() would deadlock re-locking it.
    auto it = counters_.find("obs.label_sets_dropped");
    if (it == counters_.end()) {
      it = counters_
               .emplace("obs.label_sets_dropped", std::make_unique<Counter>())
               .first;
    }
    it->second->Increment();
    (void)encoded_key;
    return false;
  }
  ++size;
  return true;
}

Counter& MetricsRegistry::counter(std::string_view name, LabelSet labels) {
  std::string family(name);
  std::string key = family + kFamilySep + EncodeLabels(std::move(labels));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = labeled_counters_.find(key);
  if (it == labeled_counters_.end()) {
    if (!AdmitLabelSetLocked(family, key)) {
      // Redirect to the family's shared overflow instrument.
      key = family + kFamilySep + EncodeLabels(OverflowLabels());
      it = labeled_counters_.find(key);
      if (it != labeled_counters_.end()) return it->second->counter;
      auto overflow = std::make_unique<LabeledCounter>();
      overflow->labels = OverflowLabels();
      it = labeled_counters_.emplace(std::move(key), std::move(overflow))
               .first;
      return it->second->counter;
    }
    auto instrument = std::make_unique<LabeledCounter>();
    // EncodeLabels consumed the caller's set; rebuild it from the key's
    // canonical encoding.
    instrument->labels =
        DecodeLabels(std::string_view(key).substr(family.size() + 1));
    it = labeled_counters_.emplace(std::move(key), std::move(instrument))
             .first;
  }
  return it->second->counter;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

LogHistogram& MetricsRegistry::log_histogram(std::string_view name,
                                             LabelSet labels) {
  std::string family(name);
  std::string key = family + kFamilySep + EncodeLabels(std::move(labels));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = log_histograms_.find(key);
  if (it == log_histograms_.end()) {
    if (!AdmitLabelSetLocked(family, key)) {
      key = family + kFamilySep + EncodeLabels(OverflowLabels());
      it = log_histograms_.find(key);
      if (it != log_histograms_.end()) return it->second->histogram;
      auto overflow = std::make_unique<LabeledLogHistogram>();
      overflow->labels = OverflowLabels();
      it = log_histograms_.emplace(std::move(key), std::move(overflow)).first;
      return it->second->histogram;
    }
    auto instrument = std::make_unique<LabeledLogHistogram>();
    instrument->labels =
        DecodeLabels(std::string_view(key).substr(family.size() + 1));
    it = log_histograms_.emplace(std::move(key), std::move(instrument)).first;
  }
  return it->second->histogram;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, counter] : labeled_counters_) counter->counter.Reset();
  for (auto& [name, histogram] : log_histograms_) {
    histogram->histogram.Reset();
  }
}

std::vector<CounterSnapshot> MetricsRegistry::CounterSnapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back(CounterSnapshot{name, counter->value()});
  }
  return out;
}

std::vector<GaugeSnapshot> MetricsRegistry::GaugeSnapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GaugeSnapshot> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.push_back(GaugeSnapshot{name, gauge->value()});
  }
  return out;
}

std::vector<LabeledCounterSnapshot> MetricsRegistry::LabeledCounterSnapshots()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<LabeledCounterSnapshot> out;
  out.reserve(labeled_counters_.size());
  for (const auto& [key, instrument] : labeled_counters_) {
    LabeledCounterSnapshot snap;
    snap.name = key.substr(0, key.find(kFamilySep));
    snap.labels = instrument->labels;
    snap.value = instrument->counter.value();
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<HistogramSnapshot> MetricsRegistry::HistogramSnapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.bounds = histogram->bounds();
    snap.counts.reserve(histogram->num_buckets());
    for (size_t i = 0; i < histogram->num_buckets(); ++i) {
      snap.counts.push_back(histogram->bucket_count(i));
    }
    snap.total_count = histogram->total_count();
    snap.sum = histogram->sum();
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<LogHistogramSnapshot> MetricsRegistry::LogHistogramSnapshots()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<LogHistogramSnapshot> out;
  out.reserve(log_histograms_.size());
  for (const auto& [key, instrument] : log_histograms_) {
    LogHistogramSnapshot snap;
    snap.name = key.substr(0, key.find(kFamilySep));
    snap.labels = instrument->labels;
    const LogHistogram& h = instrument->histogram;
    snap.total_count = h.total_count();
    snap.sum = h.sum();
    snap.min = h.min();
    snap.max = h.max();
    snap.p50 = h.Quantile(0.5);
    snap.p90 = h.Quantile(0.9);
    snap.p99 = h.Quantile(0.99);
    snap.p999 = h.Quantile(0.999);
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<double> ExponentialBounds(double start, double factor,
                                      size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

}  // namespace pdm::obs
