#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace pdm::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  size_t bucket = std::upper_bound(bounds_.begin(), bounds_.end(), value) -
                  bounds_.begin();
  // upper_bound gives the first bound strictly greater; bounds are
  // inclusive upper limits, so land in the previous bucket on equality.
  if (bucket > 0 && value == bounds_[bucket - 1]) bucket -= 1;
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_nano_.fetch_add(static_cast<int64_t>(std::llround(value * 1e9)),
                      std::memory_order_relaxed);
}

uint64_t Histogram::total_count() const {
  uint64_t total = 0;
  for (const std::atomic<uint64_t>& c : counts_) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  return static_cast<double>(sum_nano_.load(std::memory_order_relaxed)) / 1e9;
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  sum_nano_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::vector<CounterSnapshot> MetricsRegistry::CounterSnapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back(CounterSnapshot{name, counter->value()});
  }
  return out;
}

std::vector<HistogramSnapshot> MetricsRegistry::HistogramSnapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.bounds = histogram->bounds();
    snap.counts.reserve(histogram->num_buckets());
    for (size_t i = 0; i < histogram->num_buckets(); ++i) {
      snap.counts.push_back(histogram->bucket_count(i));
    }
    snap.total_count = histogram->total_count();
    snap.sum = histogram->sum();
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<double> ExponentialBounds(double start, double factor,
                                      size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

}  // namespace pdm::obs
