#include "obs/snapshot.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "obs/export.h"

namespace pdm::obs {

namespace {

void AppendQuoted(std::string* out, std::string_view text) {
  *out += '"';
  AppendJsonEscaped(out, text);
  *out += '"';
}

/// %.17g round-trips every double exactly; inf/NaN never occur here
/// (instrument values are finite by construction).
void AppendNumber(std::string* out, double value) {
  *out += StrFormat("%.17g", value);
}

void AppendLabelsJson(std::string* out, const LabelSet& labels) {
  *out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) *out += ',';
    first = false;
    AppendQuoted(out, key);
    *out += ':';
    AppendQuoted(out, value);
  }
  *out += '}';
}

/// Prometheus metric name: '.' and other non-[a-zA-Z0-9_:] become '_'.
std::string PromName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string PromLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += PromName(key);
    out += "=\"";
    for (char c : value) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

/// One extra quantile label appended to an existing label set.
std::string PromLabelsWith(const LabelSet& labels, std::string_view key,
                           std::string_view value) {
  LabelSet extended = labels;
  extended.emplace_back(std::string(key), std::string(value));
  return PromLabels(extended);
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for SnapshotToJson's output shape
// (objects, arrays, strings, finite numbers, true/false/null). Unknown
// object keys are skipped, so the format can grow fields compatibly.

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  bool error() const { return error_; }
  const std::string& message() const { return message_; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void Expect(char c) {
    if (!Consume(c)) Fail(StrFormat("expected '%c' at offset %zu", c, pos_));
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  std::string ParseString() {
    SkipWs();
    std::string out;
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      Fail(StrFormat("expected string at offset %zu", pos_));
      return out;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return out;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else { Fail("bad \\u escape"); return out; }
          }
          // The writer only emits \u for control characters; decode the
          // low byte and keep anything else as '?' (never produced).
          out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          Fail(StrFormat("bad escape '\\%c'", esc));
          return out;
      }
    }
    if (pos_ >= text_.size()) {
      Fail("unterminated string");
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  double ParseNumber() {
    SkipWs();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      Fail(StrFormat("expected number at offset %zu", pos_));
      return 0;
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      Fail(StrFormat("bad number '%s'", token.c_str()));
      return 0;
    }
    return value;
  }

  /// Skips one complete value of any type (for unknown keys).
  void SkipValue() {
    SkipWs();
    if (error_ || pos_ >= text_.size()) return;
    char c = text_[pos_];
    if (c == '"') {
      ParseString();
    } else if (c == '{') {
      ++pos_;
      if (Consume('}')) return;
      for (;;) {
        ParseString();
        Expect(':');
        SkipValue();
        if (error_) return;
        if (Consume('}')) return;
        Expect(',');
        if (error_) return;
      }
    } else if (c == '[') {
      ++pos_;
      if (Consume(']')) return;
      for (;;) {
        SkipValue();
        if (error_) return;
        if (Consume(']')) return;
        Expect(',');
        if (error_) return;
      }
    } else if (c == 't' || c == 'f' || c == 'n') {
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    } else {
      ParseNumber();
    }
  }

  /// Iterates the members of one object: calls fn(key) positioned at the
  /// value; fn must consume it (or the reader errors out).
  template <typename Fn>
  void ParseObject(Fn&& fn) {
    Expect('{');
    if (error_) return;
    if (Consume('}')) return;
    for (;;) {
      std::string key = ParseString();
      Expect(':');
      if (error_) return;
      fn(key);
      if (error_) return;
      if (Consume('}')) return;
      Expect(',');
      if (error_) return;
    }
  }

  template <typename Fn>
  void ParseArray(Fn&& fn) {
    Expect('[');
    if (error_) return;
    if (Consume(']')) return;
    for (;;) {
      fn();
      if (error_) return;
      if (Consume(']')) return;
      Expect(',');
      if (error_) return;
    }
  }

  void Fail(std::string message) {
    if (!error_) {
      error_ = true;
      message_ = std::move(message);
    }
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  bool error_ = false;
  std::string message_;
};

LabelSet ParseLabelsObject(JsonReader* reader) {
  LabelSet labels;
  reader->ParseObject([&](const std::string& key) {
    labels.emplace_back(key, reader->ParseString());
  });
  return labels;
}

}  // namespace

MetricsSnapshot CaptureMetricsSnapshot(std::string label) {
  const MetricsRegistry& registry = MetricsRegistry::Global();
  MetricsSnapshot snapshot;
  snapshot.label = std::move(label);
  snapshot.counters = registry.CounterSnapshots();
  snapshot.gauges = registry.GaugeSnapshots();
  snapshot.labeled_counters = registry.LabeledCounterSnapshots();
  snapshot.histograms = registry.HistogramSnapshots();
  snapshot.log_histograms = registry.LogHistogramSnapshots();
  return snapshot;
}

std::string SnapshotToJson(const MetricsSnapshot& snapshot) {
  std::string out;
  out += StrFormat("{\n\"version\":%d,\n\"label\":", snapshot.version);
  AppendQuoted(&out, snapshot.label);
  out += ",\n\"counters\":[";
  bool first = true;
  for (const CounterSnapshot& c : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += "\n {\"name\":";
    AppendQuoted(&out, c.name);
    out += StrFormat(",\"value\":%llu}",
                     static_cast<unsigned long long>(c.value));
  }
  out += "],\n\"gauges\":[";
  first = true;
  for (const GaugeSnapshot& g : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += "\n {\"name\":";
    AppendQuoted(&out, g.name);
    out += StrFormat(",\"value\":%lld}", static_cast<long long>(g.value));
  }
  out += "],\n\"labeled_counters\":[";
  first = true;
  for (const LabeledCounterSnapshot& c : snapshot.labeled_counters) {
    if (!first) out += ',';
    first = false;
    out += "\n {\"name\":";
    AppendQuoted(&out, c.name);
    out += ",\"labels\":";
    AppendLabelsJson(&out, c.labels);
    out += StrFormat(",\"value\":%llu}",
                     static_cast<unsigned long long>(c.value));
  }
  out += "],\n\"histograms\":[";
  first = true;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += "\n {\"name\":";
    AppendQuoted(&out, h.name);
    out += ",\"bounds\":[";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ',';
      AppendNumber(&out, h.bounds[i]);
    }
    out += "],\"counts\":[";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ',';
      out += StrFormat("%llu", static_cast<unsigned long long>(h.counts[i]));
    }
    out += StrFormat("],\"count\":%llu,\"sum\":",
                     static_cast<unsigned long long>(h.total_count));
    AppendNumber(&out, h.sum);
    out += '}';
  }
  out += "],\n\"log_histograms\":[";
  first = true;
  for (const LogHistogramSnapshot& h : snapshot.log_histograms) {
    if (!first) out += ',';
    first = false;
    out += "\n {\"name\":";
    AppendQuoted(&out, h.name);
    out += ",\"labels\":";
    AppendLabelsJson(&out, h.labels);
    out += StrFormat(",\"count\":%llu",
                     static_cast<unsigned long long>(h.total_count));
    const struct { const char* key; double value; } fields[] = {
        {"sum", h.sum}, {"min", h.min}, {"max", h.max},   {"p50", h.p50},
        {"p90", h.p90}, {"p99", h.p99}, {"p999", h.p999},
    };
    for (const auto& field : fields) {
      out += StrFormat(",\"%s\":", field.key);
      AppendNumber(&out, field.value);
    }
    out += '}';
  }
  out += "]\n}\n";
  return out;
}

std::string SnapshotToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSnapshot& c : snapshot.counters) {
    std::string name = PromName(c.name);
    out += StrFormat("# TYPE %s counter\n%s %llu\n", name.c_str(),
                     name.c_str(), static_cast<unsigned long long>(c.value));
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    std::string name = PromName(g.name);
    out += StrFormat("# TYPE %s gauge\n%s %lld\n", name.c_str(), name.c_str(),
                     static_cast<long long>(g.value));
  }
  // Labeled counters of one family share one TYPE line.
  std::string last_family;
  for (const LabeledCounterSnapshot& c : snapshot.labeled_counters) {
    std::string name = PromName(c.name);
    if (name != last_family) {
      out += StrFormat("# TYPE %s counter\n", name.c_str());
      last_family = name;
    }
    out += StrFormat("%s%s %llu\n", name.c_str(), PromLabels(c.labels).c_str(),
                     static_cast<unsigned long long>(c.value));
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    std::string name = PromName(h.name);
    out += StrFormat("# TYPE %s histogram\n", name.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      std::string le = i < h.bounds.size()
                           ? StrFormat("%.17g", h.bounds[i])
                           : std::string("+Inf");
      out += StrFormat("%s_bucket{le=\"%s\"} %llu\n", name.c_str(),
                       le.c_str(), static_cast<unsigned long long>(cumulative));
    }
    out += StrFormat("%s_sum %.17g\n%s_count %llu\n", name.c_str(), h.sum,
                     name.c_str(),
                     static_cast<unsigned long long>(h.total_count));
  }
  last_family.clear();
  for (const LogHistogramSnapshot& h : snapshot.log_histograms) {
    std::string name = PromName(h.name);
    if (name != last_family) {
      out += StrFormat("# TYPE %s summary\n", name.c_str());
      last_family = name;
    }
    const struct { const char* q; double value; } quantiles[] = {
        {"0.5", h.p50}, {"0.9", h.p90}, {"0.99", h.p99}, {"0.999", h.p999},
    };
    for (const auto& quantile : quantiles) {
      out += StrFormat("%s%s %.17g\n", name.c_str(),
                       PromLabelsWith(h.labels, "quantile", quantile.q).c_str(),
                       quantile.value);
    }
    out += StrFormat("%s_sum%s %.17g\n", name.c_str(),
                     PromLabels(h.labels).c_str(), h.sum);
    out += StrFormat("%s_count%s %llu\n", name.c_str(),
                     PromLabels(h.labels).c_str(),
                     static_cast<unsigned long long>(h.total_count));
  }
  return out;
}

Status WriteSnapshotJsonFile(const std::string& path,
                             const MetricsSnapshot& snapshot) {
  std::string json = SnapshotToJson(snapshot);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int closed = std::fclose(f);
  if (written != json.size() || closed != 0) {
    return Status::Internal(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

Result<MetricsSnapshot> ParseSnapshotJson(std::string_view json) {
  JsonReader reader(json);
  MetricsSnapshot snapshot;
  snapshot.version = 0;
  reader.ParseObject([&](const std::string& key) {
    if (key == "version") {
      snapshot.version = static_cast<int>(reader.ParseNumber());
    } else if (key == "label") {
      snapshot.label = reader.ParseString();
    } else if (key == "counters") {
      reader.ParseArray([&] {
        CounterSnapshot c;
        reader.ParseObject([&](const std::string& field) {
          if (field == "name") c.name = reader.ParseString();
          else if (field == "value") c.value = static_cast<uint64_t>(reader.ParseNumber());
          else reader.SkipValue();
        });
        snapshot.counters.push_back(std::move(c));
      });
    } else if (key == "gauges") {
      reader.ParseArray([&] {
        GaugeSnapshot g;
        reader.ParseObject([&](const std::string& field) {
          if (field == "name") g.name = reader.ParseString();
          else if (field == "value") g.value = static_cast<int64_t>(reader.ParseNumber());
          else reader.SkipValue();
        });
        snapshot.gauges.push_back(std::move(g));
      });
    } else if (key == "labeled_counters") {
      reader.ParseArray([&] {
        LabeledCounterSnapshot c;
        reader.ParseObject([&](const std::string& field) {
          if (field == "name") c.name = reader.ParseString();
          else if (field == "labels") c.labels = ParseLabelsObject(&reader);
          else if (field == "value") c.value = static_cast<uint64_t>(reader.ParseNumber());
          else reader.SkipValue();
        });
        snapshot.labeled_counters.push_back(std::move(c));
      });
    } else if (key == "histograms") {
      reader.ParseArray([&] {
        HistogramSnapshot h;
        reader.ParseObject([&](const std::string& field) {
          if (field == "name") h.name = reader.ParseString();
          else if (field == "bounds") {
            reader.ParseArray([&] { h.bounds.push_back(reader.ParseNumber()); });
          } else if (field == "counts") {
            reader.ParseArray([&] {
              h.counts.push_back(static_cast<uint64_t>(reader.ParseNumber()));
            });
          } else if (field == "count") {
            h.total_count = static_cast<uint64_t>(reader.ParseNumber());
          } else if (field == "sum") {
            h.sum = reader.ParseNumber();
          } else {
            reader.SkipValue();
          }
        });
        snapshot.histograms.push_back(std::move(h));
      });
    } else if (key == "log_histograms") {
      reader.ParseArray([&] {
        LogHistogramSnapshot h;
        reader.ParseObject([&](const std::string& field) {
          if (field == "name") h.name = reader.ParseString();
          else if (field == "labels") h.labels = ParseLabelsObject(&reader);
          else if (field == "count") h.total_count = static_cast<uint64_t>(reader.ParseNumber());
          else if (field == "sum") h.sum = reader.ParseNumber();
          else if (field == "min") h.min = reader.ParseNumber();
          else if (field == "max") h.max = reader.ParseNumber();
          else if (field == "p50") h.p50 = reader.ParseNumber();
          else if (field == "p90") h.p90 = reader.ParseNumber();
          else if (field == "p99") h.p99 = reader.ParseNumber();
          else if (field == "p999") h.p999 = reader.ParseNumber();
          else reader.SkipValue();
        });
        snapshot.log_histograms.push_back(std::move(h));
      });
    } else {
      reader.SkipValue();
    }
  });
  if (reader.error()) {
    return Status::InvalidArgument(
        StrFormat("snapshot JSON: %s", reader.message().c_str()));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("snapshot JSON: trailing content");
  }
  if (snapshot.version != MetricsSnapshot::kVersion) {
    return Status::InvalidArgument(
        StrFormat("snapshot version %d unsupported (want %d)",
                  snapshot.version, MetricsSnapshot::kVersion));
  }
  return snapshot;
}

Result<MetricsSnapshot> ReadSnapshotJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::InvalidArgument(
        StrFormat("cannot open '%s'", path.c_str()));
  }
  std::string content;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(f);
  return ParseSnapshotJson(content);
}

}  // namespace pdm::obs
