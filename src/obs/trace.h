#ifndef PDM_OBS_TRACE_H_
#define PDM_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pdm::obs {

/// Which term of the paper's response-time decomposition (Section 2,
/// eqs. (1)-(6)) a span belongs to. The tracer is what turns every
/// experiment into a per-component validation of the model: summing the
/// simulated seconds of all spans carrying one term must reproduce that
/// term's closed-form prediction (bench/trace_breakdown asserts it).
enum class ModelTerm {
  kNone,           // structural span (action roots, batches)
  kLat,            // t_lat: 2 * T_Lat per WAN exchange
  kTransfer,       // t_transfer: charged volume / data transfer rate
  kServer,         // t_server: engine work of one statement
  kQueueWait,      // time a submission waited in the admission queue
  kParsePlan,      // parse + bind inside t_server (wall clock only)
  kExec,           // plan execution inside t_server (wall clock only)
  kOverlapHidden,  // t_overlap_hidden: latency hidden by pipelining (5g)
};

/// Number of ModelTerm values (fixed-size per-term aggregation arrays).
inline constexpr size_t kNumModelTerms =
    static_cast<size_t>(ModelTerm::kOverlapHidden) + 1;

std::string_view ModelTermName(ModelTerm term);

/// Identity of a span within a trace. A trace covers one navigational
/// action end to end; the context travels with the work — across the
/// connection, the admission queue and the worker pool — so that spans
/// recorded on any thread attach to the action that caused them.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool active() const { return trace_id != 0; }
};

/// One finished span. Spans carry two timelines:
///   * wall clock (`wall_start_us`/`wall_dur_us`, microseconds since the
///     tracer's epoch) — what the engine actually cost on this machine;
///   * simulated seconds (`sim_start_s`/`sim_dur_s`, per-trace clock) —
///     what the WAN/cost model charges. `sim_start_s < 0` means the span
///     has no simulated interval.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root span of its trace
  std::string name;
  ModelTerm term = ModelTerm::kNone;
  double wall_start_us = 0;
  double wall_dur_us = 0;
  double sim_start_s = -1;
  double sim_dur_s = 0;
  uint64_t thread = 0;  // small per-thread index, stable per process
  std::string detail;   // freeform annotation (exported as an arg)
};

/// Process-wide span sink. Disabled by default: a disabled tracer makes
/// ScopedSpan construction a single relaxed atomic load and records
/// nothing. Finished spans land in a bounded ring (oldest dropped
/// first); every mutation is mutex-guarded, so concurrent clients,
/// admission waves and pool workers may record freely.
class Tracer {
 public:
  static Tracer& Global();

  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all finished spans, per-trace simulated clocks and the
  /// dropped-span count. Open spans (live ScopedSpans on some stack) are
  /// unaffected and will still record on destruction.
  void Clear();

  /// Spans started but not yet finished. Zero whenever no traced action
  /// is in flight — the reset test pins this.
  size_t open_spans() const;

  /// Spans evicted from the ring since the last Clear().
  size_t dropped_spans() const;

  /// Ring capacity (finished spans kept). Applies on the next record.
  void set_capacity(size_t capacity);

  std::vector<SpanRecord> Snapshot() const;

  /// Fresh trace id (with no root span yet). ScopedSpan allocates one
  /// automatically when constructed with no active context.
  uint64_t NextTraceId();
  uint64_t NextSpanId();

  /// Records a span that lives purely on the simulated timeline (WAN
  /// latency/transfer): its interval starts at the trace's current
  /// simulated clock and advances the clock by `sim_seconds`. Wall
  /// timestamps record the instant of the call with zero duration.
  void RecordSim(const TraceContext& parent, std::string name,
                 ModelTerm term, double sim_seconds, std::string detail = {});

  /// Records an *overlay* span on the simulated timeline: it starts at
  /// the trace's current clock but does NOT advance it. Used for
  /// annotations that coincide with elapsed time rather than adding to
  /// it — the pipelined WAN model's t_overlap_hidden spans mark latency
  /// that was hidden under a concurrent transfer (DESIGN.md 5g), so
  /// charging them to the clock would double-count.
  void RecordSimOverlay(const TraceContext& parent, std::string name,
                        ModelTerm term, double sim_seconds,
                        std::string detail = {});

  /// Records a wall-clock interval measured externally (the admission
  /// queue uses it for enqueue -> wave-start wait times).
  void RecordWallRange(const TraceContext& parent, std::string name,
                       ModelTerm term,
                       std::chrono::steady_clock::time_point start,
                       std::chrono::steady_clock::time_point end,
                       std::string detail = {});

  /// Appends one finished span (ScopedSpan's destructor path). If the
  /// span carries `sim_dur_s > 0` with `sim_start_s < 0`, its simulated
  /// interval is allocated from the trace's clock here.
  void Record(SpanRecord span);

  /// Microseconds since the tracer's epoch (process start).
  double NowMicros() const;

 private:
  Tracer() = default;

  void PushLocked(SpanRecord span);
  double AdvanceSimClockLocked(uint64_t trace_id, double seconds);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_trace_{1};
  std::atomic<uint64_t> next_span_{1};
  std::atomic<size_t> open_spans_{0};

  mutable std::mutex mutex_;
  std::deque<SpanRecord> spans_;
  std::unordered_map<uint64_t, double> sim_clock_;
  size_t capacity_ = 1 << 16;
  size_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();

  friend class ScopedSpan;
};

/// The calling thread's current trace context (inactive when no traced
/// span is open on this thread).
TraceContext CurrentContext();

/// Establishes `ctx` as the thread's current context for the scope.
/// Used to carry a client's context onto pool workers and wave leaders;
/// same-thread nesting needs no scope — ScopedSpan chains contexts
/// automatically.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx);
  ~ContextScope();

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext prev_;
};

/// RAII wall-clock span. Construction with no active context starts a
/// new trace (the span becomes its root); otherwise the span becomes a
/// child of the current context. While alive, the span IS the thread's
/// current context. Inert (no allocation, no context change) when the
/// tracer is disabled.
class ScopedSpan {
 public:
  ScopedSpan(std::string_view name, ModelTerm term);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  const TraceContext& context() const { return ctx_; }

  /// Attaches a simulated duration: the tracer will allocate the span's
  /// simulated interval from its trace's clock when the span finishes.
  void set_sim_seconds(double seconds) { sim_seconds_ = seconds; }
  void set_detail(std::string detail) { detail_ = std::move(detail); }

 private:
  bool active_ = false;
  TraceContext ctx_;
  TraceContext prev_;
  std::string name_;
  std::string detail_;
  ModelTerm term_ = ModelTerm::kNone;
  double sim_seconds_ = 0;
  double wall_start_us_ = 0;
};

/// Small dense per-thread index for span records (1, 2, ... in first-use
/// order; stable for the life of the thread).
uint64_t ThreadIndex();

}  // namespace pdm::obs

#endif  // PDM_OBS_TRACE_H_
