#include "rules/condition.h"

#include "common/string_util.h"
#include "sql/parser.h"

namespace pdm::rules {

using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;

std::string_view ConditionClassName(ConditionClass cls) {
  switch (cls) {
    case ConditionClass::kRow:
      return "row";
    case ConditionClass::kForAllRows:
      return "forall-rows";
    case ConditionClass::kExistsStructure:
      return "exists-structure";
    case ConditionClass::kTreeAggregate:
      return "tree-aggregate";
  }
  return "?";
}

namespace {

/// In-place column-reference rewriting over an expression tree,
/// descending into subqueries with `in_subquery` = true so callers can
/// scope qualification to the outermost level only.
template <typename Fn>
Status MutateColumnRefs(Expr* expr, bool in_subquery, const Fn& fn);

template <typename Fn>
Status MutateQueryColumnRefs(sql::QueryExpr* query, const Fn& fn) {
  for (sql::SelectCore& term : query->terms) {
    for (sql::SelectItem& item : term.items) {
      if (item.expr != nullptr) {
        PDM_RETURN_NOT_OK(MutateColumnRefs(item.expr.get(), true, fn));
      }
    }
    for (sql::FromItem& from : term.from) {
      for (sql::JoinClause& join : from.joins) {
        if (join.on != nullptr) {
          PDM_RETURN_NOT_OK(MutateColumnRefs(join.on.get(), true, fn));
        }
      }
    }
    if (term.where != nullptr) {
      PDM_RETURN_NOT_OK(MutateColumnRefs(term.where.get(), true, fn));
    }
    for (ExprPtr& g : term.group_by) {
      PDM_RETURN_NOT_OK(MutateColumnRefs(g.get(), true, fn));
    }
    if (term.having != nullptr) {
      PDM_RETURN_NOT_OK(MutateColumnRefs(term.having.get(), true, fn));
    }
  }
  return Status::OK();
}

template <typename Fn>
Status MutateColumnRefs(Expr* expr, bool in_subquery, const Fn& fn) {
  switch (expr->kind) {
    case ExprKind::kColumnRef:
      return fn(static_cast<sql::ColumnRefExpr*>(expr), in_subquery);
    case ExprKind::kUnary:
      return MutateColumnRefs(
          static_cast<sql::UnaryExpr*>(expr)->operand.get(), in_subquery, fn);
    case ExprKind::kBinary: {
      auto* e = static_cast<sql::BinaryExpr*>(expr);
      PDM_RETURN_NOT_OK(MutateColumnRefs(e->lhs.get(), in_subquery, fn));
      return MutateColumnRefs(e->rhs.get(), in_subquery, fn);
    }
    case ExprKind::kFunctionCall:
      for (ExprPtr& a : static_cast<sql::FunctionCallExpr*>(expr)->args) {
        if (a->kind == ExprKind::kStar) continue;
        PDM_RETURN_NOT_OK(MutateColumnRefs(a.get(), in_subquery, fn));
      }
      return Status::OK();
    case ExprKind::kCast:
      return MutateColumnRefs(static_cast<sql::CastExpr*>(expr)->operand.get(),
                              in_subquery, fn);
    case ExprKind::kIsNull:
      return MutateColumnRefs(
          static_cast<sql::IsNullExpr*>(expr)->operand.get(), in_subquery, fn);
    case ExprKind::kInList: {
      auto* e = static_cast<sql::InListExpr*>(expr);
      PDM_RETURN_NOT_OK(MutateColumnRefs(e->operand.get(), in_subquery, fn));
      for (ExprPtr& i : e->items) {
        PDM_RETURN_NOT_OK(MutateColumnRefs(i.get(), in_subquery, fn));
      }
      return Status::OK();
    }
    case ExprKind::kInSubquery: {
      auto* e = static_cast<sql::InSubqueryExpr*>(expr);
      PDM_RETURN_NOT_OK(MutateColumnRefs(e->operand.get(), in_subquery, fn));
      return MutateQueryColumnRefs(e->subquery.get(), fn);
    }
    case ExprKind::kExists:
      return MutateQueryColumnRefs(
          static_cast<sql::ExistsExpr*>(expr)->subquery.get(), fn);
    case ExprKind::kScalarSubquery:
      return MutateQueryColumnRefs(
          static_cast<sql::ScalarSubqueryExpr*>(expr)->subquery.get(), fn);
    case ExprKind::kBetween: {
      auto* e = static_cast<sql::BetweenExpr*>(expr);
      PDM_RETURN_NOT_OK(MutateColumnRefs(e->operand.get(), in_subquery, fn));
      PDM_RETURN_NOT_OK(MutateColumnRefs(e->low.get(), in_subquery, fn));
      return MutateColumnRefs(e->high.get(), in_subquery, fn);
    }
    case ExprKind::kLike: {
      auto* e = static_cast<sql::LikeExpr*>(expr);
      PDM_RETURN_NOT_OK(MutateColumnRefs(e->operand.get(), in_subquery, fn));
      return MutateColumnRefs(e->pattern.get(), in_subquery, fn);
    }
    case ExprKind::kCase: {
      auto* e = static_cast<sql::CaseExpr*>(expr);
      for (auto& [c, v] : e->whens) {
        PDM_RETURN_NOT_OK(MutateColumnRefs(c.get(), in_subquery, fn));
        PDM_RETURN_NOT_OK(MutateColumnRefs(v.get(), in_subquery, fn));
      }
      if (e->else_expr != nullptr) {
        return MutateColumnRefs(e->else_expr.get(), in_subquery, fn);
      }
      return Status::OK();
    }
    default:
      return Status::OK();
  }
}

Result<Value> UserVariable(const pdmsys::UserContext& user,
                           const std::string& column) {
  std::string key = ToLowerAscii(column);
  if (key == "strc_opt") return Value::Int64(user.strc_opt);
  if (key == "eff_from") return Value::Int64(user.eff_from);
  if (key == "eff_to") return Value::Int64(user.eff_to);
  if (key == "name") return Value::String(user.name);
  return Status::InvalidArgument("unknown user variable '$user." + column +
                                 "'");
}

bool IsWildcardType(const std::string& type) {
  return type.empty() || type == "*";
}

}  // namespace

namespace {

/// Structural rewriting: returns a fresh tree in which `$user.x` refs
/// become literals and (outside subqueries) unqualified refs gain the
/// qualifier. Expressions that cannot contain column refs are cloned.
Result<ExprPtr> RewriteExpr(const Expr& expr, const pdmsys::UserContext& user,
                            const std::string& qualifier, bool in_subquery);

Result<std::unique_ptr<sql::QueryExpr>> RewriteQuery(
    const sql::QueryExpr& query, const pdmsys::UserContext& user) {
  // Inside a subquery only $user substitution applies; unqualified refs
  // belong to the subquery's own FROM tables.
  (void)user;
  std::unique_ptr<sql::QueryExpr> clone = query.Clone();
  Status status = MutateQueryColumnRefs(
      clone.get(), [&](sql::ColumnRefExpr* ref, bool) -> Status {
        if (EqualsIgnoreCase(ref->table, "$user")) {
          return Status::NotImplemented(
              "$user references inside nested subqueries of rule "
              "predicates are not supported; hoist them to the outer "
              "predicate");
        }
        return Status::OK();
      });
  PDM_RETURN_NOT_OK(status);
  return clone;
}

Result<ExprPtr> RewriteExpr(const Expr& expr, const pdmsys::UserContext& user,
                            const std::string& qualifier, bool in_subquery) {
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const sql::ColumnRefExpr&>(expr);
      if (EqualsIgnoreCase(ref.table, "$user")) {
        PDM_ASSIGN_OR_RETURN(Value v, UserVariable(user, ref.column));
        return sql::MakeLiteral(std::move(v));
      }
      if (!in_subquery && ref.table.empty() && !qualifier.empty()) {
        return sql::MakeColumnRef(qualifier, ref.column);
      }
      return ref.Clone();
    }
    case ExprKind::kUnary: {
      const auto& e = static_cast<const sql::UnaryExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(ExprPtr operand,
                           RewriteExpr(*e.operand, user, qualifier,
                                       in_subquery));
      return ExprPtr(std::make_unique<sql::UnaryExpr>(e.op,
                                                      std::move(operand)));
    }
    case ExprKind::kBinary: {
      const auto& e = static_cast<const sql::BinaryExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(ExprPtr lhs,
                           RewriteExpr(*e.lhs, user, qualifier, in_subquery));
      PDM_ASSIGN_OR_RETURN(ExprPtr rhs,
                           RewriteExpr(*e.rhs, user, qualifier, in_subquery));
      return sql::MakeBinary(e.op, std::move(lhs), std::move(rhs));
    }
    case ExprKind::kFunctionCall: {
      const auto& e = static_cast<const sql::FunctionCallExpr&>(expr);
      std::vector<ExprPtr> args;
      args.reserve(e.args.size());
      for (const ExprPtr& a : e.args) {
        if (a->kind == ExprKind::kStar) {
          args.push_back(a->Clone());
          continue;
        }
        PDM_ASSIGN_OR_RETURN(ExprPtr arg,
                             RewriteExpr(*a, user, qualifier, in_subquery));
        args.push_back(std::move(arg));
      }
      return ExprPtr(std::make_unique<sql::FunctionCallExpr>(
          e.name, std::move(args), e.distinct));
    }
    case ExprKind::kCast: {
      const auto& e = static_cast<const sql::CastExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(ExprPtr operand,
                           RewriteExpr(*e.operand, user, qualifier,
                                       in_subquery));
      return ExprPtr(std::make_unique<sql::CastExpr>(std::move(operand),
                                                     e.target_type));
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const sql::IsNullExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(ExprPtr operand,
                           RewriteExpr(*e.operand, user, qualifier,
                                       in_subquery));
      return ExprPtr(std::make_unique<sql::IsNullExpr>(std::move(operand),
                                                       e.negated));
    }
    case ExprKind::kInList: {
      const auto& e = static_cast<const sql::InListExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(ExprPtr operand,
                           RewriteExpr(*e.operand, user, qualifier,
                                       in_subquery));
      std::vector<ExprPtr> items;
      items.reserve(e.items.size());
      for (const ExprPtr& i : e.items) {
        PDM_ASSIGN_OR_RETURN(ExprPtr item,
                             RewriteExpr(*i, user, qualifier, in_subquery));
        items.push_back(std::move(item));
      }
      return ExprPtr(std::make_unique<sql::InListExpr>(
          std::move(operand), std::move(items), e.negated));
    }
    case ExprKind::kInSubquery: {
      const auto& e = static_cast<const sql::InSubqueryExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(ExprPtr operand,
                           RewriteExpr(*e.operand, user, qualifier,
                                       in_subquery));
      PDM_ASSIGN_OR_RETURN(std::unique_ptr<sql::QueryExpr> sub,
                           RewriteQuery(*e.subquery, user));
      return ExprPtr(std::make_unique<sql::InSubqueryExpr>(
          std::move(operand), std::move(sub), e.negated));
    }
    case ExprKind::kExists: {
      const auto& e = static_cast<const sql::ExistsExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(std::unique_ptr<sql::QueryExpr> sub,
                           RewriteQuery(*e.subquery, user));
      return ExprPtr(std::make_unique<sql::ExistsExpr>(std::move(sub),
                                                       e.negated));
    }
    case ExprKind::kScalarSubquery: {
      const auto& e = static_cast<const sql::ScalarSubqueryExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(std::unique_ptr<sql::QueryExpr> sub,
                           RewriteQuery(*e.subquery, user));
      return ExprPtr(std::make_unique<sql::ScalarSubqueryExpr>(std::move(sub)));
    }
    case ExprKind::kBetween: {
      const auto& e = static_cast<const sql::BetweenExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(ExprPtr operand,
                           RewriteExpr(*e.operand, user, qualifier,
                                       in_subquery));
      PDM_ASSIGN_OR_RETURN(ExprPtr low,
                           RewriteExpr(*e.low, user, qualifier, in_subquery));
      PDM_ASSIGN_OR_RETURN(ExprPtr high,
                           RewriteExpr(*e.high, user, qualifier, in_subquery));
      return ExprPtr(std::make_unique<sql::BetweenExpr>(
          std::move(operand), std::move(low), std::move(high), e.negated));
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const sql::LikeExpr&>(expr);
      PDM_ASSIGN_OR_RETURN(ExprPtr operand,
                           RewriteExpr(*e.operand, user, qualifier,
                                       in_subquery));
      PDM_ASSIGN_OR_RETURN(ExprPtr pattern,
                           RewriteExpr(*e.pattern, user, qualifier,
                                       in_subquery));
      return ExprPtr(std::make_unique<sql::LikeExpr>(
          std::move(operand), std::move(pattern), e.negated));
    }
    case ExprKind::kCase: {
      const auto& e = static_cast<const sql::CaseExpr&>(expr);
      std::vector<std::pair<ExprPtr, ExprPtr>> whens;
      whens.reserve(e.whens.size());
      for (const auto& [c, v] : e.whens) {
        PDM_ASSIGN_OR_RETURN(ExprPtr cond,
                             RewriteExpr(*c, user, qualifier, in_subquery));
        PDM_ASSIGN_OR_RETURN(ExprPtr val,
                             RewriteExpr(*v, user, qualifier, in_subquery));
        whens.emplace_back(std::move(cond), std::move(val));
      }
      ExprPtr else_expr;
      if (e.else_expr != nullptr) {
        PDM_ASSIGN_OR_RETURN(else_expr, RewriteExpr(*e.else_expr, user,
                                                    qualifier, in_subquery));
      }
      return ExprPtr(std::make_unique<sql::CaseExpr>(std::move(whens),
                                                     std::move(else_expr)));
    }
    default:
      return expr.Clone();
  }
}

}  // namespace

Result<ExprPtr> InstantiatePredicate(const Expr& predicate,
                                     const pdmsys::UserContext& user,
                                     const std::string& qualifier) {
  return RewriteExpr(predicate, user, qualifier, /*in_subquery=*/false);
}

// --- RowCondition ---------------------------------------------------------------

Result<std::unique_ptr<RowCondition>> RowCondition::Parse(
    std::string target_type, std::string_view predicate_sql) {
  PDM_ASSIGN_OR_RETURN(ExprPtr predicate,
                       sql::ParseSqlExpression(predicate_sql));
  return std::make_unique<RowCondition>(std::move(target_type),
                                        std::move(predicate));
}

ConditionPtr RowCondition::Clone() const {
  return std::make_unique<RowCondition>(target_type_, predicate_->Clone());
}

std::string RowCondition::Describe() const {
  return "row[" + target_type_ + "]: " + predicate_->ToSql();
}

// --- ExistsStructureCondition ------------------------------------------------------

ConditionPtr ExistsStructureCondition::Clone() const {
  return std::make_unique<ExistsStructureCondition>(
      target_type_, rel_table_, other_table_,
      other_predicate_ ? other_predicate_->Clone() : nullptr);
}

std::string ExistsStructureCondition::Describe() const {
  return "exists-structure[" + target_type_ + "]: via " + rel_table_ +
         " to " + other_table_;
}

Result<ExprPtr> ExistsStructureCondition::Instantiate(
    const pdmsys::UserContext& user, const std::string& qualifier) const {
  // EXISTS (SELECT * FROM rel JOIN other ON rel.right = other.obid
  //         WHERE rel.left = <qualifier>.obid [AND other_pred])
  auto subquery = std::make_unique<sql::QueryExpr>();
  sql::SelectCore core;
  sql::SelectItem star;
  star.is_star = true;
  core.items.push_back(std::move(star));

  sql::FromItem from;
  from.ref.kind = sql::TableRef::Kind::kBaseTable;
  from.ref.table_name = rel_table_;
  sql::JoinClause join;
  join.ref.kind = sql::TableRef::Kind::kBaseTable;
  join.ref.table_name = other_table_;
  join.on = sql::MakeBinary(sql::BinaryOp::kEq,
                            sql::MakeColumnRef(rel_table_, "right"),
                            sql::MakeColumnRef(other_table_, "obid"));
  from.joins.push_back(std::move(join));
  core.from.push_back(std::move(from));

  core.where = sql::MakeBinary(
      sql::BinaryOp::kEq, sql::MakeColumnRef(rel_table_, "left"),
      sql::MakeColumnRef(qualifier, "obid"));
  if (other_predicate_ != nullptr) {
    PDM_ASSIGN_OR_RETURN(ExprPtr extra, InstantiatePredicate(
                                            *other_predicate_, user,
                                            other_table_));
    core.AddWherePredicate(std::move(extra));
  }
  subquery->terms.push_back(std::move(core));
  return ExprPtr(std::make_unique<sql::ExistsExpr>(std::move(subquery),
                                                   /*neg=*/false));
}

// --- ForAllRowsCondition -----------------------------------------------------------

ConditionPtr ForAllRowsCondition::Clone() const {
  if (structure_predicate_ != nullptr) {
    auto structure = std::unique_ptr<ExistsStructureCondition>(
        static_cast<ExistsStructureCondition*>(
            structure_predicate_->Clone().release()));
    return std::make_unique<ForAllRowsCondition>(node_type_filter_,
                                                 std::move(structure));
  }
  return std::make_unique<ForAllRowsCondition>(node_type_filter_,
                                               row_predicate_->Clone());
}

std::string ForAllRowsCondition::Describe() const {
  std::string inner = structure_predicate_ != nullptr
                          ? structure_predicate_->Describe()
                          : row_predicate_->ToSql();
  return "forall-rows[" + node_type_filter_ + "]: " + inner;
}

Result<ExprPtr> ForAllRowsCondition::InstantiateRowPredicate(
    const pdmsys::UserContext& user, const std::string& qualifier) const {
  if (structure_predicate_ != nullptr) {
    return structure_predicate_->Instantiate(user, qualifier);
  }
  return InstantiatePredicate(*row_predicate_, user, qualifier);
}

Result<ExprPtr> ForAllRowsCondition::TranslateForRecursiveTable(
    const pdmsys::UserContext& user, const std::string& rtbl_name) const {
  // NOT EXISTS (SELECT * FROM rtbl WHERE [type = 'f' AND] NOT (row_cond))
  PDM_ASSIGN_OR_RETURN(ExprPtr row_cond,
                       InstantiateRowPredicate(user, rtbl_name));

  auto subquery = std::make_unique<sql::QueryExpr>();
  sql::SelectCore core;
  sql::SelectItem star;
  star.is_star = true;
  core.items.push_back(std::move(star));
  sql::FromItem from;
  from.ref.kind = sql::TableRef::Kind::kBaseTable;
  from.ref.table_name = rtbl_name;
  core.from.push_back(std::move(from));

  ExprPtr violation = sql::MakeNot(std::move(row_cond));
  if (!IsWildcardType(node_type_filter_)) {
    ExprPtr type_eq = sql::MakeBinary(
        sql::BinaryOp::kEq, sql::MakeColumnRef(rtbl_name, "type"),
        sql::MakeLiteral(Value::String(node_type_filter_)));
    violation = sql::MakeBinary(sql::BinaryOp::kAnd, std::move(type_eq),
                                std::move(violation));
  }
  core.where = std::move(violation);
  subquery->terms.push_back(std::move(core));
  return ExprPtr(
      std::make_unique<sql::ExistsExpr>(std::move(subquery), /*neg=*/true));
}

// --- TreeAggregateCondition ----------------------------------------------------------

ConditionPtr TreeAggregateCondition::Clone() const {
  return std::make_unique<TreeAggregateCondition>(
      agg_, attribute_, node_type_filter_, cmp_, threshold_);
}

std::string TreeAggregateCondition::Describe() const {
  std::string call = attribute_.empty()
                         ? "COUNT(*)"
                         : std::string(AggKindName(agg_)) + "(" + attribute_ +
                               ")";
  return StrFormat("tree-aggregate[%s]: %s %s %s", node_type_filter_.c_str(),
                   call.c_str(),
                   std::string(sql::BinaryOpSymbol(cmp_)).c_str(),
                   threshold_.ToSqlLiteral().c_str());
}

Result<ExprPtr> TreeAggregateCondition::TranslateForRecursiveTable(
    const std::string& rtbl_name) const {
  auto subquery = std::make_unique<sql::QueryExpr>();
  sql::SelectCore core;

  std::string fn_name;
  std::vector<ExprPtr> args;
  switch (agg_) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      fn_name = "COUNT";
      break;
    case AggKind::kSum:
      fn_name = "SUM";
      break;
    case AggKind::kAvg:
      fn_name = "AVG";
      break;
    case AggKind::kMin:
      fn_name = "MIN";
      break;
    case AggKind::kMax:
      fn_name = "MAX";
      break;
  }
  if (attribute_.empty()) {
    if (agg_ != AggKind::kCountStar && agg_ != AggKind::kCount) {
      return Status::InvalidArgument(
          "tree-aggregate without attribute requires COUNT");
    }
    args.push_back(std::make_unique<sql::StarExpr>());
  } else {
    args.push_back(sql::MakeColumnRef(rtbl_name, attribute_));
  }
  sql::SelectItem item;
  item.expr = std::make_unique<sql::FunctionCallExpr>(fn_name,
                                                      std::move(args));
  core.items.push_back(std::move(item));

  sql::FromItem from;
  from.ref.kind = sql::TableRef::Kind::kBaseTable;
  from.ref.table_name = rtbl_name;
  core.from.push_back(std::move(from));

  if (!IsWildcardType(node_type_filter_)) {
    core.where = sql::MakeBinary(
        sql::BinaryOp::kEq, sql::MakeColumnRef(rtbl_name, "type"),
        sql::MakeLiteral(Value::String(node_type_filter_)));
  }
  subquery->terms.push_back(std::move(core));

  ExprPtr scalar =
      std::make_unique<sql::ScalarSubqueryExpr>(std::move(subquery));
  return sql::MakeBinary(cmp_, std::move(scalar),
                         sql::MakeLiteral(threshold_));
}

}  // namespace pdm::rules
