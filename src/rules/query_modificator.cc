#include "rules/query_modificator.h"

#include "common/string_util.h"
#include "pdm/pdm_schema.h"
#include "rules/query_builder.h"

namespace pdm::rules {

namespace {

using sql::ExprPtr;

/// Tables row conditions may target in generated queries.
std::vector<std::string> RowConditionTables() {
  std::vector<std::string> tables = pdmsys::ObjectTables();
  tables.push_back(pdmsys::kLinkTable);
  return tables;
}

}  // namespace

Status QueryModificator::RejectHiddenViews(
    const sql::QueryExpr& query) const {
  if (known_views_.empty()) return Status::OK();
  for (const sql::SelectCore& term : query.terms) {
    for (const std::string& view : known_views_) {
      if (term.ReferencesTable(view)) {
        return Status::NotImplemented(
            "the query references view '" + view +
            "': its structure is not visible to the query modificator, so "
            "rules cannot be evaluated early (paper Section 5.5); inline "
            "the view definition instead");
      }
    }
    // Derived tables may hide views one level down.
    for (const sql::FromItem& item : term.from) {
      if (item.ref.kind == sql::TableRef::Kind::kSubquery) {
        PDM_RETURN_NOT_OK(RejectHiddenViews(*item.ref.subquery));
      }
      for (const sql::JoinClause& join : item.joins) {
        if (join.ref.kind == sql::TableRef::Kind::kSubquery) {
          PDM_RETURN_NOT_OK(RejectHiddenViews(*join.ref.subquery));
        }
      }
    }
  }
  return Status::OK();
}

Status QueryModificator::InjectRowConditions(
    sql::QueryExpr* query, RuleAction action,
    ModificationSummary* summary) const {
  for (const std::string& table : RowConditionTables()) {
    std::vector<const Rule*> relevant =
        rules_->FetchRelevant(user_.name, action, ConditionClass::kRow, table);
    // A "*" object type means "every object type"; relation tables only
    // match rules that name them explicitly.
    if (table == pdmsys::kLinkTable) {
      std::erase_if(relevant,
                    [](const Rule* r) { return r->object_type == "*"; });
    }
    if (relevant.empty()) continue;

    // Step D.13: disjunction of all conditions within the same group.
    std::vector<ExprPtr> translated;
    translated.reserve(relevant.size());
    for (const Rule* rule : relevant) {
      const auto& cond = static_cast<const RowCondition&>(*rule->condition);
      PDM_ASSIGN_OR_RETURN(ExprPtr pred, cond.Instantiate(user_, table));
      translated.push_back(std::move(pred));
    }
    size_t group_size = translated.size();
    ExprPtr group = sql::MakeDisjunction(std::move(translated));

    // Step D.14: append to every SELECT referencing the type.
    bool used = false;
    for (sql::SelectCore& term : query->terms) {
      if (!term.ReferencesTable(table)) continue;
      term.AddWherePredicate(group->Clone());
      used = true;
    }
    if (used) summary->row_conditions += group_size;
  }
  return Status::OK();
}

Result<ModificationSummary> QueryModificator::ApplyToRecursiveQuery(
    sql::SelectStmt* stmt, RuleAction action) const {
  if (stmt->ctes.empty()) {
    return Status::InvalidArgument(
        "recursive query modification requires a WITH clause");
  }
  for (const sql::CommonTableExpr& cte : stmt->ctes) {
    PDM_RETURN_NOT_OK(RejectHiddenViews(*cte.query));
  }
  PDM_RETURN_NOT_OK(RejectHiddenViews(stmt->query));
  ModificationSummary summary;
  const std::string& rtbl = stmt->ctes[0].name;

  // --- Step A: ∀rows conditions -> outside the recursive part. -------------
  {
    std::vector<const Rule*> relevant = rules_->FetchRelevant(
        user_.name, action, ConditionClass::kForAllRows);
    std::vector<ExprPtr> translated;
    for (const Rule* rule : relevant) {
      const auto& cond =
          static_cast<const ForAllRowsCondition&>(*rule->condition);
      PDM_ASSIGN_OR_RETURN(ExprPtr pred,
                           cond.TranslateForRecursiveTable(user_, rtbl));
      translated.push_back(std::move(pred));
    }
    if (!translated.empty()) {
      summary.forall_rows = translated.size();
      ExprPtr group = sql::MakeDisjunction(std::move(translated));
      for (sql::SelectCore& term : stmt->query.terms) {
        term.AddWherePredicate(group->Clone());
      }
    }
  }

  // --- Step B: tree-aggregate conditions -> outside. ------------------------
  {
    std::vector<const Rule*> relevant = rules_->FetchRelevant(
        user_.name, action, ConditionClass::kTreeAggregate);
    std::vector<ExprPtr> translated;
    for (const Rule* rule : relevant) {
      const auto& cond =
          static_cast<const TreeAggregateCondition&>(*rule->condition);
      PDM_ASSIGN_OR_RETURN(ExprPtr pred,
                           cond.TranslateForRecursiveTable(rtbl));
      translated.push_back(std::move(pred));
    }
    if (!translated.empty()) {
      summary.tree_aggregates = translated.size();
      ExprPtr group = sql::MakeDisjunction(std::move(translated));
      for (sql::SelectCore& term : stmt->query.terms) {
        term.AddWherePredicate(group->Clone());
      }
    }
  }

  // --- Step C: ∃structure conditions -> inside, grouped by type O. ----------
  for (const std::string& table : pdmsys::ObjectTables()) {
    std::vector<const Rule*> relevant = rules_->FetchRelevant(
        user_.name, action, ConditionClass::kExistsStructure, table);
    if (relevant.empty()) continue;
    std::vector<ExprPtr> translated;
    for (const Rule* rule : relevant) {
      const auto& cond =
          static_cast<const ExistsStructureCondition&>(*rule->condition);
      PDM_ASSIGN_OR_RETURN(ExprPtr pred, cond.Instantiate(user_, table));
      translated.push_back(std::move(pred));
    }
    size_t group_size = translated.size();
    ExprPtr group = sql::MakeDisjunction(std::move(translated));
    bool used = false;
    for (sql::SelectCore& term : stmt->ctes[0].query->terms) {
      if (!term.ReferencesTable(table)) continue;
      term.AddWherePredicate(group->Clone());
      used = true;
    }
    if (used) summary.exists_structure += group_size;
  }

  // --- Step D: row conditions -> inside and outside. -------------------------
  PDM_RETURN_NOT_OK(
      InjectRowConditions(stmt->ctes[0].query.get(), action, &summary));
  PDM_RETURN_NOT_OK(InjectRowConditions(&stmt->query, action, &summary));
  return summary;
}

Result<ModificationSummary> QueryModificator::ApplyToNavigationalQuery(
    sql::QueryExpr* query, RuleAction action) const {
  PDM_RETURN_NOT_OK(RejectHiddenViews(*query));
  ModificationSummary summary;
  PDM_RETURN_NOT_OK(InjectRowConditions(query, action, &summary));
  return summary;
}

}  // namespace pdm::rules
