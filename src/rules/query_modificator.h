#ifndef PDM_RULES_QUERY_MODIFICATOR_H_
#define PDM_RULES_QUERY_MODIFICATOR_H_

#include <string>

#include "common/result.h"
#include "pdm/user_context.h"
#include "rules/rule.h"
#include "sql/ast.h"

namespace pdm::rules {

/// How many predicates a modification pass injected, by rule class
/// (asserted on by tests; printed by the rule-admin example).
struct ModificationSummary {
  size_t forall_rows = 0;
  size_t tree_aggregates = 0;
  size_t exists_structure = 0;
  size_t row_conditions = 0;

  size_t total() const {
    return forall_rows + tree_aggregates + exists_structure + row_conditions;
  }
};

/// Implements the paper's Section 5.5 procedure: given the client's rule
/// table and the user's environment, rewrites generated queries so that
/// rules are evaluated early, at the server.
///
/// Steps A-D for recursive tree queries:
///   A. ∀rows conditions      -> WHERE of all SELECTs *outside* the
///                               recursive part (all-or-nothing),
///   B. tree-aggregate conds  -> likewise outside,
///   C. ∃structure conditions -> WHERE of the SELECTs *inside* the
///                               recursive part that join the target
///                               object type,
///   D. row conditions        -> WHERE of every SELECT (inside and
///                               outside) whose FROM references the
///                               condition's object type.
/// Within a step, conditions of the same group are OR-ed; groups are
/// AND-ed onto existing WHERE clauses.
class QueryModificator {
 public:
  QueryModificator(const RuleTable* rules, pdmsys::UserContext user)
      : rules_(rules), user_(std::move(user)) {}

  /// Names of database views. Section 5.5's closing remark: "if the
  /// recursive query (or a part of it) is hidden in a view ... the
  /// proposed modifications cannot be performed" — when any given view
  /// appears in a query's FROM clause, modification fails with
  /// NotImplemented instead of silently producing an under-constrained
  /// query.
  void SetKnownViews(std::vector<std::string> view_names) {
    known_views_ = std::move(view_names);
  }

  /// Applies steps A-D to a recursive tree query (first CTE = the
  /// recursive table). The statement must have been produced by
  /// BuildRecursiveTreeQuery or be shaped like the paper's Section 5.2
  /// query.
  Result<ModificationSummary> ApplyToRecursiveQuery(sql::SelectStmt* stmt,
                                                    RuleAction action) const;

  /// Applies early *row*-condition evaluation (Section 4.1) to a
  /// navigational query (expand / flat query): per-type predicates into
  /// the WHERE clause of each SELECT term referencing that type. Tree
  /// conditions cannot be evaluated navigationally (Section 4.1) and are
  /// ignored here.
  Result<ModificationSummary> ApplyToNavigationalQuery(sql::QueryExpr* query,
                                                       RuleAction action) const;

 private:
  /// Injects grouped row conditions into every term of `query`
  /// referencing the rules' object types.
  Status InjectRowConditions(sql::QueryExpr* query, RuleAction action,
                             ModificationSummary* summary) const;

  /// Fails if any FROM clause of `query` references a known view.
  Status RejectHiddenViews(const sql::QueryExpr& query) const;

  const RuleTable* rules_;
  pdmsys::UserContext user_;
  std::vector<std::string> known_views_;
};

}  // namespace pdm::rules

#endif  // PDM_RULES_QUERY_MODIFICATOR_H_
