#include "rules/rule.h"

#include "common/string_util.h"

namespace pdm::rules {

std::string_view RuleActionName(RuleAction action) {
  switch (action) {
    case RuleAction::kAccess:
      return "access";
    case RuleAction::kQuery:
      return "query";
    case RuleAction::kExpand:
      return "expand";
    case RuleAction::kMultiLevelExpand:
      return "multi-level-expand";
    case RuleAction::kCheckOut:
      return "check-out";
    case RuleAction::kCheckIn:
      return "check-in";
  }
  return "?";
}

std::vector<const Rule*> RuleTable::FetchRelevant(
    std::string_view user, RuleAction action,
    std::optional<ConditionClass> cls,
    std::optional<std::string_view> object_type) const {
  std::vector<const Rule*> out;
  for (const Rule& rule : rules_) {
    if (rule.user != "*" && !EqualsIgnoreCase(rule.user, user)) continue;
    if (rule.action != action && rule.action != RuleAction::kAccess) continue;
    if (cls.has_value() && rule.condition->condition_class() != *cls) continue;
    if (object_type.has_value() && rule.object_type != "*" &&
        !EqualsIgnoreCase(rule.object_type, *object_type)) {
      continue;
    }
    out.push_back(&rule);
  }
  return out;
}

}  // namespace pdm::rules
