#ifndef PDM_RULES_CONDITION_H_
#define PDM_RULES_CONDITION_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/value.h"
#include "pdm/user_context.h"
#include "plan/functions.h"
#include "sql/ast.h"

namespace pdm::rules {

/// The paper's condition classification (Figure 1): row conditions test
/// one object; tree conditions involve the whole object tree and come in
/// three flavors (∀rows, ∃structure, tree-aggregate).
enum class ConditionClass {
  kRow,
  kForAllRows,
  kExistsStructure,
  kTreeAggregate,
};

std::string_view ConditionClassName(ConditionClass cls);

/// Base class for rule conditions. Conditions are *templates*: their
/// predicates may reference the user's environment through the pseudo
/// qualifier `$user` (columns: strc_opt, eff_from, eff_to, name), which
/// instantiation replaces with literals — the paper's "variables of the
/// user's environment" (Section 4.1). Unqualified column references mean
/// attributes of the tested object and get qualified with the target
/// table (or the recursive table) at injection time.
class RuleCondition {
 public:
  virtual ~RuleCondition() = default;
  RuleCondition(const RuleCondition&) = delete;
  RuleCondition& operator=(const RuleCondition&) = delete;

  virtual ConditionClass condition_class() const = 0;
  virtual std::unique_ptr<RuleCondition> Clone() const = 0;

  /// Human-readable form, for admin tooling and error messages.
  virtual std::string Describe() const = 0;

 protected:
  RuleCondition() = default;
};

using ConditionPtr = std::unique_ptr<RuleCondition>;

/// Substitutes `$user.<attr>` references with literals from `user` and
/// qualifies unqualified column references with `qualifier` (no-op when
/// `qualifier` is empty). Shared by all condition translations.
Result<sql::ExprPtr> InstantiatePredicate(const sql::Expr& predicate,
                                          const pdmsys::UserContext& user,
                                          const std::string& qualifier);

// ---------------------------------------------------------------------------

/// A row condition on one object type, e.g. the paper's example 1:
/// assembly.make_or_buy <> 'buy'.
class RowCondition : public RuleCondition {
 public:
  RowCondition(std::string target_type, sql::ExprPtr predicate)
      : target_type_(std::move(target_type)),
        predicate_(std::move(predicate)) {}

  /// Parses the predicate from SQL text (stored rules are SQL, per
  /// Section 4.1's translate-once design).
  static Result<std::unique_ptr<RowCondition>> Parse(
      std::string target_type, std::string_view predicate_sql);

  ConditionClass condition_class() const override {
    return ConditionClass::kRow;
  }
  ConditionPtr Clone() const override;
  std::string Describe() const override;

  const std::string& target_type() const { return target_type_; }

  /// The predicate with user variables bound and object attributes
  /// qualified by `qualifier` — ready to AND into a WHERE clause.
  Result<sql::ExprPtr> Instantiate(const pdmsys::UserContext& user,
                                   const std::string& qualifier) const {
    return InstantiatePredicate(*predicate_, user, qualifier);
  }

 private:
  std::string target_type_;  // object table, or "link" for relation rules
  sql::ExprPtr predicate_;
};

/// ∃structure condition (paper 5.3.2): an object of type O is admitted
/// only if related via `rel_table` to at least one row of `other_table`
/// (optionally constrained by `other_predicate`).
class ExistsStructureCondition : public RuleCondition {
 public:
  ExistsStructureCondition(std::string target_type, std::string rel_table,
                           std::string other_table,
                           sql::ExprPtr other_predicate = nullptr)
      : target_type_(std::move(target_type)),
        rel_table_(std::move(rel_table)),
        other_table_(std::move(other_table)),
        other_predicate_(std::move(other_predicate)) {}

  ConditionClass condition_class() const override {
    return ConditionClass::kExistsStructure;
  }
  ConditionPtr Clone() const override;
  std::string Describe() const override;

  const std::string& target_type() const { return target_type_; }

  /// EXISTS (SELECT * FROM rel JOIN other ON rel.right = other.obid
  ///         WHERE rel.left = <qualifier>.obid [AND other_pred])
  Result<sql::ExprPtr> Instantiate(const pdmsys::UserContext& user,
                                   const std::string& qualifier) const;

 private:
  std::string target_type_;
  std::string rel_table_;
  std::string other_table_;
  sql::ExprPtr other_predicate_;  // over other_table rows; may be null
};

/// ∀rows condition (paper 5.3.1): every node (optionally of one type)
/// in the tree must satisfy a row condition, else the result is empty —
/// e.g. the paper's example 2 (check-out requires no node checked out).
/// The inner condition may itself be an ∃structure condition — the
/// non-trivial combination Section 5.5's remark points out.
class ForAllRowsCondition : public RuleCondition {
 public:
  /// Plain form: row predicate over node attributes.
  ForAllRowsCondition(std::string node_type_filter, sql::ExprPtr row_predicate)
      : node_type_filter_(std::move(node_type_filter)),
        row_predicate_(std::move(row_predicate)) {}

  /// Combined form: every node of the filtered type must satisfy an
  /// ∃structure condition.
  ForAllRowsCondition(std::string node_type_filter,
                      std::unique_ptr<ExistsStructureCondition> structure)
      : node_type_filter_(std::move(node_type_filter)),
        structure_predicate_(std::move(structure)) {}

  ConditionClass condition_class() const override {
    return ConditionClass::kForAllRows;
  }
  ConditionPtr Clone() const override;
  std::string Describe() const override;

  /// NOT EXISTS (SELECT * FROM <rtbl>
  ///             WHERE [type = 'filter' AND] NOT (row_cond))
  /// with the row condition's object references qualified by the
  /// recursive table (the homogenized result carries the type column).
  Result<sql::ExprPtr> TranslateForRecursiveTable(
      const pdmsys::UserContext& user, const std::string& rtbl_name) const;

  /// Evaluated client-side in the late-eval baseline: the row predicate
  /// against one (homogenized) node row; the type filter is checked by
  /// the caller.
  const std::string& node_type_filter() const { return node_type_filter_; }
  Result<sql::ExprPtr> InstantiateRowPredicate(
      const pdmsys::UserContext& user, const std::string& qualifier) const;

 private:
  std::string node_type_filter_;  // "" or "*" = all nodes
  sql::ExprPtr row_predicate_;    // exactly one of these two is set
  std::unique_ptr<ExistsStructureCondition> structure_predicate_;
};

/// Tree-aggregate condition (paper 5.3.3):
/// agg(attr over the tree['s filtered rows]) <op> threshold, e.g.
/// count(tree(assy)) <= 10 or average(tree(assy.weight)) <= 12.
class TreeAggregateCondition : public RuleCondition {
 public:
  TreeAggregateCondition(AggKind agg, std::string attribute,
                         std::string node_type_filter, sql::BinaryOp cmp,
                         Value threshold)
      : agg_(agg),
        attribute_(std::move(attribute)),
        node_type_filter_(std::move(node_type_filter)),
        cmp_(cmp),
        threshold_(std::move(threshold)) {}

  ConditionClass condition_class() const override {
    return ConditionClass::kTreeAggregate;
  }
  ConditionPtr Clone() const override;
  std::string Describe() const override;

  AggKind agg() const { return agg_; }
  const std::string& attribute() const { return attribute_; }
  const std::string& node_type_filter() const { return node_type_filter_; }
  sql::BinaryOp cmp() const { return cmp_; }
  const Value& threshold() const { return threshold_; }

  /// (SELECT AGG(attr) FROM <rtbl> [WHERE type = 'filter']) <op> threshold
  Result<sql::ExprPtr> TranslateForRecursiveTable(
      const std::string& rtbl_name) const;

 private:
  AggKind agg_;
  std::string attribute_;  // empty for COUNT(*)
  std::string node_type_filter_;
  sql::BinaryOp cmp_;
  Value threshold_;
};

}  // namespace pdm::rules

#endif  // PDM_RULES_CONDITION_H_
