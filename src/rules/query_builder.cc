#include "rules/query_builder.h"

#include "common/string_util.h"
#include "pdm/pdm_schema.h"

namespace pdm::rules {

namespace {

using sql::ExprPtr;

const std::vector<std::string>& kLinkExtras() {
  static const std::vector<std::string>* kCols = new std::vector<std::string>{
      "left", "right", "eff_from", "eff_to", "strc_opt", "hier"};
  return *kCols;
}

sql::ExprPtr HierarchyPredicate(const std::string& hierarchy) {
  return sql::MakeBinary(sql::BinaryOp::kEq,
                         sql::MakeColumnRef(pdmsys::kLinkTable, "hier"),
                         sql::MakeLiteral(Value::String(hierarchy)));
}

sql::FromItem BaseFrom(const std::string& table) {
  sql::FromItem item;
  item.ref.kind = sql::TableRef::Kind::kBaseTable;
  item.ref.table_name = table;
  return item;
}

void AddJoin(sql::FromItem* item, const std::string& table, ExprPtr on) {
  sql::JoinClause join;
  join.ref.kind = sql::TableRef::Kind::kBaseTable;
  join.ref.table_name = table;
  join.on = std::move(on);
  item->joins.push_back(std::move(join));
}

bool TableHasColumn(const std::string& table, const std::string& column) {
  const std::vector<std::string>& cols = table == pdmsys::kAssyTable
                                             ? pdmsys::AssyColumns()
                                             : pdmsys::CompColumns();
  for (const std::string& c : cols) {
    if (c == column) return true;
  }
  return false;
}

/// Value of homogenized column `column` when selecting from object table
/// `table`: the column itself, or a neutral filler (paper Section 5.2:
/// "the remaining attributes are filled with NULL values").
ExprPtr HomogenizedExpr(const std::string& table, const std::string& column) {
  if (TableHasColumn(table, column)) {
    return sql::MakeColumnRef(table, column);
  }
  if (column == "weight") {
    return std::make_unique<sql::CastExpr>(sql::MakeLiteral(Value::Null()),
                                           ColumnType::kDouble);
  }
  if (column == "checkedout" || column == "frozen") {
    return std::make_unique<sql::CastExpr>(sql::MakeLiteral(Value::Null()),
                                           ColumnType::kBool);
  }
  return sql::MakeLiteral(Value::String(""));
}

sql::SelectItem Item(ExprPtr expr, std::string alias = "") {
  sql::SelectItem item;
  item.expr = std::move(expr);
  item.alias = std::move(alias);
  return item;
}

ExprPtr NullAs(ColumnType type) {
  return std::make_unique<sql::CastExpr>(sql::MakeLiteral(Value::Null()),
                                         type);
}

/// SELECT items casting an object table into the homogenized type.
std::vector<sql::SelectItem> HomogenizedItems(const std::string& table) {
  std::vector<sql::SelectItem> items;
  for (const std::string& col : pdmsys::HomogenizedObjectColumns()) {
    items.push_back(Item(HomogenizedExpr(table, col), col));
  }
  return items;
}

/// The recursive step for one object type (paper Section 5.2):
/// SELECT <homogenized T>, rtbl.lvl + 1 FROM rtbl
///   JOIN link ON rtbl.obid = link.left JOIN T ON link.right = T.obid
/// [WHERE rtbl.lvl < max_depth]
sql::SelectCore RecursiveMember(const std::string& object_table,
                                int max_depth,
                                const std::string& hierarchy) {
  sql::SelectCore core;
  core.items = HomogenizedItems(object_table);
  core.items.push_back(Item(
      sql::MakeBinary(sql::BinaryOp::kAdd,
                      sql::MakeColumnRef(kRecursiveTableName, "lvl"),
                      sql::MakeLiteral(Value::Int64(1))),
      "lvl"));
  core.where = HierarchyPredicate(hierarchy);
  if (max_depth > 0) {
    core.AddWherePredicate(sql::MakeBinary(
        sql::BinaryOp::kLess, sql::MakeColumnRef(kRecursiveTableName, "lvl"),
        sql::MakeLiteral(Value::Int64(max_depth))));
  }
  sql::FromItem from = BaseFrom(kRecursiveTableName);
  AddJoin(&from, pdmsys::kLinkTable,
          sql::MakeBinary(sql::BinaryOp::kEq,
                          sql::MakeColumnRef(kRecursiveTableName, "obid"),
                          sql::MakeColumnRef(pdmsys::kLinkTable, "left")));
  AddJoin(&from, object_table,
          sql::MakeBinary(sql::BinaryOp::kEq,
                          sql::MakeColumnRef(pdmsys::kLinkTable, "right"),
                          sql::MakeColumnRef(object_table, "obid")));
  core.from.push_back(std::move(from));
  return core;
}

/// `obid IN (SELECT obid FROM rtbl)` for a link endpoint column.
ExprPtr EndpointInRtbl(const std::string& endpoint_column) {
  auto subquery = std::make_unique<sql::QueryExpr>();
  sql::SelectCore inner;
  inner.items.push_back(Item(sql::MakeColumnRef("obid")));
  inner.from.push_back(BaseFrom(kRecursiveTableName));
  subquery->terms.push_back(std::move(inner));
  return std::make_unique<sql::InSubqueryExpr>(
      sql::MakeColumnRef(endpoint_column), std::move(subquery),
      /*neg=*/false);
}

}  // namespace

std::unique_ptr<sql::SelectStmt> BuildRecursiveTreeQuery(
    int64_t root_obid, int max_depth, const std::string& hierarchy) {
  auto stmt = std::make_unique<sql::SelectStmt>();
  stmt->recursive = true;

  // WITH RECURSIVE rtbl (homogenized columns, lvl) AS (seed UNION steps).
  sql::CommonTableExpr cte;
  cte.name = kRecursiveTableName;
  cte.column_names = pdmsys::HomogenizedObjectColumns();
  cte.column_names.push_back("lvl");
  cte.query = std::make_unique<sql::QueryExpr>();

  sql::SelectCore seed;
  seed.items = HomogenizedItems(pdmsys::kAssyTable);
  seed.items.push_back(Item(sql::MakeLiteral(Value::Int64(0)), "lvl"));
  seed.from.push_back(BaseFrom(pdmsys::kAssyTable));
  seed.where = sql::MakeBinary(
      sql::BinaryOp::kEq, sql::MakeColumnRef(pdmsys::kAssyTable, "obid"),
      sql::MakeLiteral(Value::Int64(root_obid)));
  cte.query->terms.push_back(std::move(seed));
  for (const std::string& table : pdmsys::ObjectTables()) {
    cte.query->terms.push_back(RecursiveMember(table, max_depth, hierarchy));
    cte.query->union_all.push_back(false);  // UNION (distinct), as in paper
  }
  stmt->ctes.push_back(std::move(cte));

  // Outer homogenizing query: object rows, then link rows.
  sql::SelectCore objects;
  for (const std::string& col : pdmsys::HomogenizedObjectColumns()) {
    objects.items.push_back(Item(sql::MakeColumnRef(col), col));
  }
  for (const std::string& col : kLinkExtras()) {
    objects.items.push_back(
        Item(NullAs(ColumnType::kInt64), ToUpperAscii(col)));
  }
  objects.from.push_back(BaseFrom(kRecursiveTableName));
  stmt->query.terms.push_back(std::move(objects));

  sql::SelectCore links;
  links.items.push_back(Item(sql::MakeColumnRef("type"), "type"));
  links.items.push_back(Item(sql::MakeColumnRef("obid"), "obid"));
  for (const std::string& col : pdmsys::HomogenizedObjectColumns()) {
    if (col == "type" || col == "obid") continue;
    if (col == "weight") {
      links.items.push_back(Item(NullAs(ColumnType::kDouble), col));
    } else if (col == "checkedout" || col == "frozen") {
      links.items.push_back(Item(NullAs(ColumnType::kBool), col));
    } else {
      links.items.push_back(Item(sql::MakeLiteral(Value::String("")), col));
    }
  }
  for (const std::string& col : kLinkExtras()) {
    links.items.push_back(Item(sql::MakeColumnRef(col), ToUpperAscii(col)));
  }
  links.from.push_back(BaseFrom(pdmsys::kLinkTable));
  links.where = sql::MakeBinary(sql::BinaryOp::kAnd, EndpointInRtbl("left"),
                                EndpointInRtbl("right"));
  links.AddWherePredicate(HierarchyPredicate(hierarchy));
  stmt->query.terms.push_back(std::move(links));
  stmt->query.union_all.push_back(false);

  sql::OrderByItem by_type;
  by_type.position = 1;
  sql::OrderByItem by_obid;
  by_obid.position = 2;
  stmt->query.order_by.push_back(std::move(by_type));
  stmt->query.order_by.push_back(std::move(by_obid));
  return stmt;
}

std::unique_ptr<sql::SelectStmt> BuildExpandQuery(
    int64_t parent_obid, const std::string& hierarchy) {
  auto stmt = std::make_unique<sql::SelectStmt>();
  bool first = true;
  for (const std::string& table : pdmsys::ObjectTables()) {
    sql::SelectCore core;
    core.items = HomogenizedItems(table);
    for (const std::string& col : kLinkExtras()) {
      core.items.push_back(Item(sql::MakeColumnRef(pdmsys::kLinkTable, col),
                                ToUpperAscii(col)));
    }
    sql::FromItem from = BaseFrom(pdmsys::kLinkTable);
    AddJoin(&from, table,
            sql::MakeBinary(sql::BinaryOp::kEq,
                            sql::MakeColumnRef(pdmsys::kLinkTable, "right"),
                            sql::MakeColumnRef(table, "obid")));
    core.from.push_back(std::move(from));
    core.where = sql::MakeBinary(
        sql::BinaryOp::kEq, sql::MakeColumnRef(pdmsys::kLinkTable, "left"),
        sql::MakeLiteral(Value::Int64(parent_obid)));
    core.AddWherePredicate(HierarchyPredicate(hierarchy));
    stmt->query.terms.push_back(std::move(core));
    if (!first) stmt->query.union_all.push_back(true);
    first = false;
  }
  return stmt;
}

std::unique_ptr<sql::SelectStmt> BuildFlatQuery() {
  auto stmt = std::make_unique<sql::SelectStmt>();
  bool first = true;
  for (const std::string& table : pdmsys::ObjectTables()) {
    sql::SelectCore core;
    core.items = HomogenizedItems(table);
    core.from.push_back(BaseFrom(table));
    stmt->query.terms.push_back(std::move(core));
    if (!first) stmt->query.union_all.push_back(true);
    first = false;
  }
  return stmt;
}

std::unique_ptr<sql::Statement> BuildCheckOutUpdate(
    const std::string& object_table, const std::vector<int64_t>& obids,
    bool checked_out) {
  auto stmt = std::make_unique<sql::UpdateStmt>();
  stmt->table_name = object_table;
  stmt->assignments.emplace_back(
      "checkedout", sql::MakeLiteral(Value::Bool(checked_out)));
  std::vector<ExprPtr> items;
  items.reserve(obids.size());
  for (int64_t obid : obids) {
    items.push_back(sql::MakeLiteral(Value::Int64(obid)));
  }
  stmt->where = std::make_unique<sql::InListExpr>(
      sql::MakeColumnRef("obid"), std::move(items), /*neg=*/false);
  return stmt;
}

}  // namespace pdm::rules
