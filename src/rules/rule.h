#ifndef PDM_RULES_RULE_H_
#define PDM_RULES_RULE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rules/condition.h"

namespace pdm::rules {

/// PDM user actions constrained by message access rules (Section 3.1).
/// kAccess is the generic "may traverse/see this object" message that
/// structure options and effectivities translate into (rule example 3);
/// it is consulted by every retrieval action.
enum class RuleAction {
  kAccess,
  kQuery,
  kExpand,
  kMultiLevelExpand,
  kCheckOut,
  kCheckIn,
};

std::string_view RuleActionName(RuleAction action);

/// The paper's rule 4-tuple: a `user` is permitted to perform `action`
/// on instances of `object_type` if `condition` is met. "*" wildcards
/// match any user/type.
struct Rule {
  std::string user = "*";
  RuleAction action = RuleAction::kAccess;
  std::string object_type = "*";
  ConditionPtr condition;

  Rule Clone() const {
    Rule out;
    out.user = user;
    out.action = action;
    out.object_type = object_type;
    out.condition = condition->Clone();
    return out;
  }
};

/// The client-resident store of translated rules (Section 5.5: rules are
/// translated into their SQL-conformal representation once, when defined,
/// and kept "in an appropriate data structure ... at each client").
class RuleTable {
 public:
  RuleTable() = default;
  RuleTable(const RuleTable&) = delete;
  RuleTable& operator=(const RuleTable&) = delete;

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }
  size_t size() const { return rules_.size(); }
  const std::vector<Rule>& rules() const { return rules_; }

  /// "Relevant" rules per the paper's footnote 9: matching user, action
  /// and (if given) object type / condition class. kAccess rules are
  /// relevant to every retrieval action.
  std::vector<const Rule*> FetchRelevant(
      std::string_view user, RuleAction action,
      std::optional<ConditionClass> cls = std::nullopt,
      std::optional<std::string_view> object_type = std::nullopt) const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace pdm::rules

#endif  // PDM_RULES_RULE_H_
