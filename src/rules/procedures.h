#ifndef PDM_RULES_PROCEDURES_H_
#define PDM_RULES_PROCEDURES_H_

#include "common/status.h"
#include "engine/database.h"
#include "rules/rule.h"

namespace pdm::rules {

/// Installs the server-side PDM procedures (the paper's Section 6
/// outlook: "application-specific functionality performing the desired
/// user action has to be installed at the database server" to avoid
/// additional WAN communications for check-out/check-in).
///
/// Registered procedures:
///   CALL pdm_checkout(root, user, strc_opt, eff_from, eff_to)
///     Computes the user's visible subtree (rules evaluated server-side
///     via the recursive query + modificator, including the ∀rows
///     "nothing already checked out" rule for the check-out action),
///     sets the checkedout flags, and returns one row
///     [checked_out_count] — 0 when the check-out was denied.
///   CALL pdm_checkin(root, user, strc_opt, eff_from, eff_to)
///     The reverse flag update; returns [checked_in_count].
///
/// `rule_table` is the *server's* copy of the rule table and must
/// outlive the database.
Status RegisterPdmProcedures(Database* db, const RuleTable* rule_table);

}  // namespace pdm::rules

#endif  // PDM_RULES_PROCEDURES_H_
