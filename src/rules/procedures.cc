#include "rules/procedures.h"

#include <map>
#include <vector>

#include "common/string_util.h"
#include "pdm/pdm_schema.h"
#include "pdm/user_context.h"
#include "rules/query_builder.h"
#include "rules/query_modificator.h"

namespace pdm::rules {

namespace {

Status ExpectArgs(const std::vector<Value>& args) {
  if (args.size() != 5 || !args[0].is_int64() || !args[1].is_string() ||
      !args[2].is_int64() || !args[3].is_int64() || !args[4].is_int64()) {
    return Status::InvalidArgument(
        "expected (root INTEGER, user VARCHAR, strc_opt INTEGER, "
        "eff_from INTEGER, eff_to INTEGER)");
  }
  return Status::OK();
}

/// Shared body of check-out / check-in: resolve the visible subtree
/// server-side, flip the checkedout flags, return the object count.
Status RunCheckFlow(Database& db, const RuleTable* rule_table,
                    const std::vector<Value>& args, bool checking_out,
                    ResultSet* out) {
  PDM_RETURN_NOT_OK(ExpectArgs(args));
  int64_t root = args[0].int64_value();
  pdmsys::UserContext user;
  user.name = args[1].string_value();
  user.strc_opt = args[2].int64_value();
  user.eff_from = args[3].int64_value();
  user.eff_to = args[4].int64_value();

  std::unique_ptr<sql::SelectStmt> stmt = BuildRecursiveTreeQuery(root);
  QueryModificator modificator(rule_table, user);
  RuleAction action =
      checking_out ? RuleAction::kCheckOut : RuleAction::kCheckIn;
  PDM_RETURN_NOT_OK(
      modificator.ApplyToRecursiveQuery(stmt.get(), action).status());

  ResultSet tree;
  PDM_RETURN_NOT_OK(db.ExecuteStatement(*stmt, &tree));

  // Collect object obids grouped by type (object rows have NULL LEFT).
  std::optional<size_t> type_col = tree.schema.FindColumn("type");
  std::optional<size_t> obid_col = tree.schema.FindColumn("obid");
  std::optional<size_t> left_col = tree.schema.FindColumn("LEFT");
  if (!type_col || !obid_col || !left_col) {
    return Status::Internal("homogenized result misses expected columns");
  }
  std::map<std::string, std::vector<int64_t>> by_type;
  for (const Row& row : tree.rows) {
    if (!row[*left_col].is_null()) continue;  // link row
    by_type[row[*type_col].ToString()].push_back(
        row[*obid_col].int64_value());
  }

  size_t flipped = 0;
  for (const auto& [type, obids] : by_type) {
    if (obids.empty()) continue;
    std::unique_ptr<sql::Statement> update =
        BuildCheckOutUpdate(type, obids, checking_out);
    ResultSet ack;
    PDM_RETURN_NOT_OK(db.ExecuteStatement(*update, &ack));
    flipped += ack.affected_rows;
  }

  out->schema = Schema({Column{
      checking_out ? "checked_out" : "checked_in", ColumnType::kInt64}});
  out->rows = {Row{Value::Int64(static_cast<int64_t>(flipped))}};
  return Status::OK();
}

}  // namespace

Status RegisterPdmProcedures(Database* db, const RuleTable* rule_table) {
  PDM_RETURN_NOT_OK(db->RegisterProcedure(
      "pdm_checkout",
      [rule_table](Database& inner, const std::vector<Value>& args,
                   ResultSet* out) {
        return RunCheckFlow(inner, rule_table, args, /*checking_out=*/true,
                            out);
      }));
  return db->RegisterProcedure(
      "pdm_checkin",
      [rule_table](Database& inner, const std::vector<Value>& args,
                   ResultSet* out) {
        return RunCheckFlow(inner, rule_table, args, /*checking_out=*/false,
                            out);
      });
}

}  // namespace pdm::rules
