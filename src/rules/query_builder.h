#ifndef PDM_RULES_QUERY_BUILDER_H_
#define PDM_RULES_QUERY_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "sql/ast.h"

namespace pdm::rules {

/// Name of the recursive table in generated tree queries (the paper's
/// `rtbl`).
inline constexpr char kRecursiveTableName[] = "rtbl";

/// Generates the SQL statements the PDM client ships to the server —
/// the "query generation" component Section 7 lists among the parts a
/// real PDM system would have to change. All builders work over the
/// schema in pdm/pdm_schema.h and produce homogenized results (one
/// result type enfolding all object attributes, Section 5.2).

/// The full recursive tree query of Section 5.2, generalized to the PDM
/// schema: WITH RECURSIVE rtbl AS (seed ∪ assy-step ∪ comp-step)
/// followed by the homogenizing outer query (object rows + link rows),
/// ORDER BY 1,2. Rules are injected afterwards by the QueryModificator.
///
/// `max_depth` > 0 limits the recursion to that many levels below the
/// root (a partial multi-level expand — the user stops "until they find
/// what they look for"); 0 retrieves the entire structure. `hierarchy`
/// selects which of the parallel structures the traversal follows
/// (physical by default; see pdm/pdm_schema.h).
std::unique_ptr<sql::SelectStmt> BuildRecursiveTreeQuery(
    int64_t root_obid, int max_depth = 0,
    const std::string& hierarchy = "phys");

/// One navigational single-level expand: the children of `parent_obid`
/// of all object types, each child row carrying its link attributes
/// (one statement, hence one round trip per expanded node).
std::unique_ptr<sql::SelectStmt> BuildExpandQuery(
    int64_t parent_obid, const std::string& hierarchy = "phys");

/// The "query" action of Section 2: all object nodes, no structure
/// information (one statement over assy ∪ comp).
std::unique_ptr<sql::SelectStmt> BuildFlatQuery();

/// UPDATE setting the checkedout flag of every visible object in
/// `obids`; used by the check-out flows.
std::unique_ptr<sql::Statement> BuildCheckOutUpdate(
    const std::string& object_table, const std::vector<int64_t>& obids,
    bool checked_out);

}  // namespace pdm::rules

#endif  // PDM_RULES_QUERY_BUILDER_H_
