#ifndef PDM_EXEC_RECURSIVE_CTE_H_
#define PDM_EXEC_RECURSIVE_CTE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/exec_context.h"
#include "plan/plan_node.h"

namespace pdm {

/// Materializes all CTEs of a statement, in definition order, into
/// `storage` and binds each name in the context so later plans (the main
/// query and subqueries) can scan them.
///
/// Recursive CTEs are evaluated iteratively:
///   * semi-naive (default): each round evaluates the recursive terms
///     with the CTE bound to the *delta* of the previous round only, and
///     (under UNION-distinct semantics) keeps just the rows not seen
///     before. This is the efficient strategy the paper's reference [10]
///     alludes to.
///   * naive (ExecOptions::semi_naive_recursion = false, ablation): each
///     round re-evaluates the recursive terms against the full
///     accumulated result and stops at fixpoint. Quadratic work on
///     trees; only available for UNION-distinct recursion.
Status MaterializeCtes(const std::vector<BoundCte>& ctes, ExecContext* ctx,
                       std::map<std::string, std::vector<Row>>* storage);

/// Evaluates one recursive CTE (exposed for unit tests); `out` receives
/// the fixpoint rows.
Status EvaluateRecursiveCte(const BoundCte& cte, ExecContext* ctx,
                            std::vector<Row>* out);

}  // namespace pdm

#endif  // PDM_EXEC_RECURSIVE_CTE_H_
