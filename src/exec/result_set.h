#ifndef PDM_EXEC_RESULT_SET_H_
#define PDM_EXEC_RESULT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/value.h"

namespace pdm {

/// The materialized outcome of one statement: rows for queries, an
/// affected-row count for DML. Also knows its approximate size on the
/// simulated wire (used by the network layer).
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;
  size_t affected_rows = 0;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return schema.num_columns(); }

  /// Cell accessor with bounds checking in debug builds.
  const Value& At(size_t row, size_t col) const { return rows[row][col]; }

  /// Realistic serialized size: per-row value encodings plus a small
  /// per-row header. The network layer may instead account a fixed
  /// per-node size to match the paper's model (see net/wan_model.h).
  size_t WireSize() const;

  /// ASCII table rendering (for examples and debugging).
  std::string ToString(size_t max_rows = 50) const;
};

}  // namespace pdm

#endif  // PDM_EXEC_RESULT_SET_H_
