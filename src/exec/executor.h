#ifndef PDM_EXEC_EXECUTOR_H_
#define PDM_EXEC_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "exec/exec_context.h"
#include "plan/plan_node.h"

namespace pdm {

/// Volcano-style pull iterator over a plan operator. Blocking operators
/// (sort, aggregate, distinct, hash-join build) materialize in Open().
class Executor {
 public:
  virtual ~Executor() = default;

  /// Prepares the operator tree; must be called once before Next().
  virtual Status Open() = 0;

  /// Produces the next row into *row; returns false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;
};

/// Builds the executor tree for a plan. CTE scans resolve through the
/// context's CTE bindings, which must be in place before Open().
Result<std::unique_ptr<Executor>> CreateExecutor(const PlanNode& plan,
                                                 ExecContext* ctx);

/// Convenience: open and drain a plan into a row vector.
Result<std::vector<Row>> ExecutePlan(const PlanNode& plan, ExecContext* ctx);

}  // namespace pdm

#endif  // PDM_EXEC_EXECUTOR_H_
