#ifndef PDM_EXEC_EXEC_CONTEXT_H_
#define PDM_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/value.h"

namespace pdm {

/// Execution-layer switches, toggled by the ablation benches.
struct ExecOptions {
  /// Evaluate recursive CTEs semi-naively (join only against the delta of
  /// the previous iteration) instead of naively re-deriving from the full
  /// result set each round.
  bool semi_naive_recursion = true;
  /// Evaluate uncorrelated subqueries once per statement and reuse the
  /// materialized result — the paper's "intelligent query optimizer"
  /// assumption in Section 5.3.1.
  bool cache_uncorrelated_subqueries = true;
  /// Hard bound on recursion rounds (defense against cyclic data under
  /// UNION ALL semantics).
  size_t max_recursion_iterations = 100000;
  /// Run scan/filter/project/limit plans batch-at-a-time over the
  /// columnar fragments (exec/vectorized.h) instead of pulling rows
  /// through the Volcano operators. Plans the vectorized engine cannot
  /// prove equivalent fall back to the row path automatically.
  bool vectorized_execution = true;
};

/// Counters accumulated while executing one statement. Exposed through
/// Database::last_stats() and asserted on by ablation tests/benches.
struct ExecStats {
  size_t rows_scanned = 0;           // base-table rows touched by scans
  size_t cte_rows_scanned = 0;       // CTE rows touched by CTE scans
  size_t rows_emitted = 0;           // rows leaving the root operator
  size_t recursion_iterations = 0;   // semi-naive / naive rounds
  size_t subquery_evaluations = 0;   // subplan executions
  size_t subquery_cache_hits = 0;    // reused uncorrelated results
  size_t hash_join_builds = 0;       // hash tables built
  size_t nl_join_probes = 0;         // nested-loop predicate evaluations
  size_t index_scans = 0;            // scans answered from a column index
  size_t index_join_probes = 0;      // hash-join probes against an index
  size_t plan_cache_hits = 0;        // statement served from a cached plan
  size_t plan_cache_misses = 0;      // statement freshly parsed and bound
  size_t vec_rows_scanned = 0;       // subset of rows_scanned done batchwise
  size_t vec_batches = 0;            // fragment batches the vec engine ran
  // Join/aggregate work split by engine. Unlike the scan pair above
  // these are DISJOINT counters, not subset-style: a probe row is
  // counted by exactly one of the two, depending on which join
  // implementation consumed it.
  size_t join_probe_rows = 0;        // left rows probed by row-engine joins
  size_t vec_join_probe_rows = 0;    // left rows probed by vectorized joins
  size_t agg_input_rows = 0;         // rows folded by the row-engine aggregator
  size_t vec_agg_input_rows = 0;     // rows folded by vectorized aggregation
  // Normalized fingerprint key of the statement, when it went through
  // the fingerprinting front door (empty for non-cacheable statements).
  // Consumed by the slow-query log, which must not re-lex the SQL.
  std::string fingerprint_key;

  void Reset() { *this = ExecStats{}; }
};

/// A materialized vectorized hash-join build (exec/vectorized.cc):
/// build-side rows in scan order plus the key -> row-index multimap.
/// When every build key is a single int64 cell with |x| < 2^53 the
/// probe goes through `int64_table` instead — int64 keys compare
/// exactly, and the magnitude guard keeps double probes sound (above
/// 2^53 several int64 keys can collapse onto one double).
struct VecJoinBuild {
  std::vector<Row> rows;
  std::unordered_map<Row, std::vector<uint32_t>, RowHash, RowEq> table;
  bool int64_keys = false;
  std::unordered_map<int64_t, std::vector<uint32_t>> int64_table;
};

/// A materialized uncorrelated subquery result, with a lazily built hash
/// set over its first column for fast IN evaluation.
struct SubqueryResult {
  std::vector<Row> rows;

  using ValueSet = std::unordered_set<Value, ValueHash, ValueEq>;
  /// Set of non-NULL first-column values (lazily built).
  const ValueSet& FirstColumnSet() const {
    if (first_col_set_ == nullptr) {
      first_col_set_ = std::make_unique<ValueSet>();
      first_col_set_->reserve(rows.size());
      for (const Row& row : rows) {
        if (row[0].is_null()) {
          first_col_has_null_ = true;
        } else {
          first_col_set_->insert(row[0]);
        }
      }
    }
    return *first_col_set_;
  }
  /// Whether any first-column value was NULL (three-valued IN).
  bool FirstColumnHasNull() const {
    FirstColumnSet();
    return first_col_has_null_;
  }

 private:
  mutable std::unique_ptr<ValueSet> first_col_set_;
  mutable bool first_col_has_null_ = false;
};

/// Per-statement execution state: catalog access, materialized CTE
/// bindings, the correlation stack for subqueries, and the uncorrelated
/// subquery cache.
class ExecContext {
 public:
  /// `snapshot_ts` is the MVCC read snapshot (DESIGN.md 5h): scans see
  /// exactly the versions visible at it. The default — one below the
  /// open-version sentinel — reads all committed-or-open data, which is
  /// correct for contexts without a commit clock (client-side scratch
  /// catalogs); the engine always passes a resolved clock value.
  ExecContext(Catalog* catalog, const ExecOptions* options, ExecStats* stats,
              uint64_t snapshot_ts = kMaxCommitTs - 1)
      : catalog_(catalog),
        options_(options),
        stats_(stats),
        snapshot_ts_(snapshot_ts) {}

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  Catalog* catalog() { return catalog_; }
  const ExecOptions& options() const { return *options_; }
  ExecStats& stats() { return *stats_; }
  uint64_t snapshot_ts() const { return snapshot_ts_; }

  /// Binds (or rebinds) the rows a CTE name resolves to. Used both for
  /// final materialized CTEs and for the rotating delta during recursive
  /// iteration. Rebinding invalidates the subquery cache.
  void BindCteRows(const std::string& key, const std::vector<Row>* rows) {
    cte_rows_[key] = rows;
    subquery_cache_.clear();
  }

  /// Rows bound to a CTE key, or nullptr.
  const std::vector<Row>* FindCteRows(const std::string& key) const {
    auto it = cte_rows_.find(key);
    return it == cte_rows_.end() ? nullptr : it->second;
  }

  // Correlation stack: subquery evaluation pushes the current outer row;
  // BoundColumnRef{level=k>0} reads the k-th row from the top.
  void PushOuterRow(const Row* row) { outer_rows_.push_back(row); }
  void PopOuterRow() { outer_rows_.pop_back(); }
  size_t outer_depth() const { return outer_rows_.size(); }

  /// Outer row for correlation `level` (1-based: 1 = innermost outer).
  const Row* OuterRow(size_t level) const {
    if (level == 0 || level > outer_rows_.size()) return nullptr;
    return outer_rows_[outer_rows_.size() - level];
  }

  /// Cached result of an uncorrelated subquery, keyed by the
  /// BoundSubquery node's address.
  const SubqueryResult* FindCachedSubquery(const void* key) const {
    auto it = subquery_cache_.find(key);
    return it == subquery_cache_.end() ? nullptr : &it->second;
  }
  const SubqueryResult* CacheSubquery(const void* key,
                                      std::vector<Row> rows) {
    SubqueryResult& entry = subquery_cache_[key];
    entry = SubqueryResult();
    entry.rows = std::move(rows);
    return &entry;
  }

  /// Per-statement cache of vectorized hash-join builds, keyed by the
  /// HashJoinNode's address. Builds are over base tables at this
  /// statement's fixed snapshot, so — unlike the subquery cache — CTE
  /// rebinding during recursive iteration never invalidates them:
  /// that is exactly what lets the recursive expand's per-level join
  /// reuse one build across all levels.
  const VecJoinBuild* FindJoinBuild(const void* key) const {
    auto it = join_builds_.find(key);
    return it == join_builds_.end() ? nullptr : it->second.get();
  }
  VecJoinBuild* EmplaceJoinBuild(const void* key) {
    std::unique_ptr<VecJoinBuild>& slot = join_builds_[key];
    slot = std::make_unique<VecJoinBuild>();
    return slot.get();
  }

 private:
  Catalog* catalog_;
  const ExecOptions* options_;
  ExecStats* stats_;
  uint64_t snapshot_ts_;
  std::map<std::string, const std::vector<Row>*> cte_rows_;
  std::vector<const Row*> outer_rows_;
  std::unordered_map<const void*, SubqueryResult> subquery_cache_;
  // unique_ptr values: build pointers stay stable while the map grows.
  std::unordered_map<const void*, std::unique_ptr<VecJoinBuild>> join_builds_;
};

}  // namespace pdm

#endif  // PDM_EXEC_EXEC_CONTEXT_H_
