#include "exec/recursive_cte.h"

#include <unordered_set>

#include "common/string_util.h"
#include "exec/executor.h"

namespace pdm {

namespace {

Status EvaluateSemiNaive(const BoundCte& cte, ExecContext* ctx,
                         std::vector<Row> seed_rows, std::vector<Row>* out) {
  std::vector<Row> result;
  std::unordered_set<Row, RowHash, RowEq> seen;
  std::vector<Row> delta;

  auto admit = [&](Row row, std::vector<Row>* next_delta) {
    if (!cte.union_all) {
      if (!seen.insert(row).second) return;
    }
    result.push_back(row);
    next_delta->push_back(std::move(row));
  };

  result.reserve(seed_rows.size());
  delta.reserve(seed_rows.size());
  for (Row& row : seed_rows) admit(std::move(row), &delta);

  const size_t max_iters = ctx->options().max_recursion_iterations;
  size_t iterations = 0;
  while (!delta.empty()) {
    if (++iterations > max_iters) {
      return Status::ExecutionError(
          StrFormat("recursive CTE '%s' exceeded %zu iterations "
                    "(cyclic data?)",
                    cte.name.c_str(), max_iters));
    }
    ctx->stats().recursion_iterations++;
    // The recursive terms see only the previous round's delta.
    ctx->BindCteRows(cte.name, &delta);
    std::vector<Row> next_delta;
    for (const PlanPtr& term : cte.recursive_terms) {
      PDM_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecutePlan(*term, ctx));
      next_delta.reserve(next_delta.size() + rows.size());
      result.reserve(result.size() + rows.size());
      for (Row& row : rows) admit(std::move(row), &next_delta);
    }
    delta = std::move(next_delta);
  }
  *out = std::move(result);
  return Status::OK();
}

Status EvaluateNaive(const BoundCte& cte, ExecContext* ctx,
                     std::vector<Row> seed_rows, std::vector<Row>* out) {
  if (cte.union_all) {
    // Bag-semantics recursion has no stable fixpoint test under naive
    // evaluation; fall back to semi-naive, which is exact for it.
    return EvaluateSemiNaive(cte, ctx, std::move(seed_rows), out);
  }
  std::vector<Row> result;
  std::unordered_set<Row, RowHash, RowEq> seen;
  for (Row& row : seed_rows) {
    if (seen.insert(row).second) result.push_back(std::move(row));
  }

  const size_t max_iters = ctx->options().max_recursion_iterations;
  size_t iterations = 0;
  while (true) {
    if (++iterations > max_iters) {
      return Status::ExecutionError(
          StrFormat("recursive CTE '%s' exceeded %zu iterations "
                    "(cyclic data?)",
                    cte.name.c_str(), max_iters));
    }
    ctx->stats().recursion_iterations++;
    ctx->BindCteRows(cte.name, &result);
    std::vector<Row> fresh;
    for (const PlanPtr& term : cte.recursive_terms) {
      PDM_ASSIGN_OR_RETURN(std::vector<Row> rows, ExecutePlan(*term, ctx));
      for (Row& row : rows) {
        if (seen.insert(row).second) fresh.push_back(std::move(row));
      }
    }
    if (fresh.empty()) break;
    result.reserve(result.size() + fresh.size());
    for (Row& row : fresh) result.push_back(std::move(row));
  }
  *out = std::move(result);
  return Status::OK();
}

}  // namespace

Status EvaluateRecursiveCte(const BoundCte& cte, ExecContext* ctx,
                            std::vector<Row>* out) {
  PDM_ASSIGN_OR_RETURN(std::vector<Row> seed_rows,
                       ExecutePlan(*cte.seed, ctx));
  Status status =
      ctx->options().semi_naive_recursion
          ? EvaluateSemiNaive(cte, ctx, std::move(seed_rows), out)
          : EvaluateNaive(cte, ctx, std::move(seed_rows), out);
  return status;
}

Status MaterializeCtes(const std::vector<BoundCte>& ctes, ExecContext* ctx,
                       std::map<std::string, std::vector<Row>>* storage) {
  for (const BoundCte& cte : ctes) {
    std::vector<Row> rows;
    if (cte.recursive) {
      PDM_RETURN_NOT_OK(EvaluateRecursiveCte(cte, ctx, &rows));
    } else {
      PDM_ASSIGN_OR_RETURN(rows, ExecutePlan(*cte.seed, ctx));
      if (!cte.union_all && cte.seed->kind == PlanKind::kUnion) {
        // UNION-distinct semantics across seed branches.
        std::unordered_set<Row, RowHash, RowEq> seen;
        std::vector<Row> deduped;
        for (Row& row : rows) {
          if (seen.insert(row).second) deduped.push_back(std::move(row));
        }
        rows = std::move(deduped);
      }
    }
    (*storage)[cte.name] = std::move(rows);
    ctx->BindCteRows(cte.name, &(*storage)[cte.name]);
  }
  return Status::OK();
}

}  // namespace pdm
