#ifndef PDM_EXEC_VEC_BATCH_H_
#define PDM_EXEC_VEC_BATCH_H_

#include <cstdint>
#include <vector>

#include "catalog/column_store.h"

namespace pdm {

/// One unit of vectorized work (DESIGN.md 5i): a borrowed column-major
/// fragment view plus a selection vector of the slots still alive.
/// Nothing in the batch owns data — the span points straight into the
/// table's fragment arrays — so producing a batch costs no copies. The
/// batch starts with the MVCC visibility pass filling `sel`; every
/// filter afterwards only shrinks it, and rows are materialized (late)
/// only from the survivors.
struct VecBatch {
  FragmentSpan span;
  std::vector<uint32_t> sel;  // ascending slot indices within the span

  /// MVCC visibility as a vectorized pass: resets `sel` to the slots
  /// whose version is visible to snapshot `ts` (begin <= ts < end), in
  /// position order so scan output order matches the row engine's.
  void FillVisible(uint64_t ts) {
    sel.clear();
    sel.reserve(span.rows);
    for (uint32_t i = 0; i < span.rows; ++i) {
      if (MetaVisibleAt(span.meta[i], ts)) sel.push_back(i);
    }
  }
};

}  // namespace pdm

#endif  // PDM_EXEC_VEC_BATCH_H_
