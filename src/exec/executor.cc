#include "exec/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "exec/aggregate_state.h"
#include "exec/expr_eval.h"
#include "exec/vectorized.h"

namespace pdm {

namespace {

/// Collects every `column = non-NULL-literal` conjunct of the top-level
/// AND chain of `filter`, in source order. Each hit is usable with a
/// column index.
void CollectIndexableEqualities(
    const BoundExpr& filter,
    std::vector<std::pair<size_t, const Value*>>* out) {
  if (filter.kind != BoundExprKind::kBinary) return;
  const auto& bin = static_cast<const BoundBinary&>(filter);
  if (bin.op == sql::BinaryOp::kAnd) {
    CollectIndexableEqualities(*bin.lhs, out);
    CollectIndexableEqualities(*bin.rhs, out);
    return;
  }
  if (bin.op == sql::BinaryOp::kEq) {
    const BoundExpr* col = bin.lhs.get();
    const BoundExpr* lit = bin.rhs.get();
    if (col->kind != BoundExprKind::kColumnRef) std::swap(col, lit);
    if (col->kind == BoundExprKind::kColumnRef &&
        lit->kind == BoundExprKind::kLiteral) {
      const auto& ref = static_cast<const BoundColumnRef&>(*col);
      const auto& value = static_cast<const BoundLiteral&>(*lit);
      if (ref.level == 0 && !value.value.is_null()) {
        out->emplace_back(ref.index, &value.value);
      }
    }
  }
}

// --- Leaf operators -----------------------------------------------------------

class ScanExecutor : public Executor {
 public:
  ScanExecutor(const ScanNode& node, ExecContext* ctx)
      : node_(node), ctx_(ctx) {}

  Status Open() override {
    PDM_ASSIGN_OR_RETURN(table_, ctx_->catalog()->GetTable(node_.table_name));
    bound_ = table_->num_versions();
    pos_ = 0;
    use_index_ = false;
    // Point lookups (e.g. the navigational `link.left = <obid>`) go
    // through the table's lazily built column index. Among the usable
    // equality conjuncts, prefer one whose index is already built and
    // in sync — building an index costs a full table pass. IndexLookup
    // copies matching positions under the table's index lock, so a
    // concurrent writer growing the index cannot race this scan; the
    // visibility filter in Next() hides versions outside our snapshot.
    if (node_.filter != nullptr) {
      std::vector<std::pair<size_t, const Value*>> hits;
      CollectIndexableEqualities(*node_.filter, &hits);
      const std::pair<size_t, const Value*>* chosen = nullptr;
      for (const auto& hit : hits) {
        if (table_->HasFreshIndex(hit.first)) {
          chosen = &hit;
          break;
        }
      }
      if (chosen == nullptr && !hits.empty()) chosen = &hits.front();
      if (chosen != nullptr) {
        table_->IndexLookup(chosen->first, *chosen->second, &candidates_);
        use_index_ = true;
        ctx_->stats().index_scans++;
      }
    }
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    // Candidates materialize into a recycled scratch row (string cells
    // reuse its capacity); only a row that passes the filter is handed
    // out, by swap — no per-row Value copies on untouched columns.
    const uint64_t snapshot = ctx_->snapshot_ts();
    if (use_index_) {
      while (pos_ < candidates_.size()) {
        const size_t version_pos = candidates_[pos_++];
        if (!table_->VisibleAt(version_pos, snapshot)) continue;
        table_->MaterializeRow(version_pos, &scratch_);
        ctx_->stats().rows_scanned++;
        PDM_ASSIGN_OR_RETURN(bool pass,
                             EvaluatePredicate(*node_.filter, scratch_, ctx_));
        if (!pass) continue;
        row->swap(scratch_);
        return true;
      }
      return false;
    }
    while (pos_ < bound_) {
      const size_t version_pos = pos_++;
      if (!table_->VisibleAt(version_pos, snapshot)) continue;
      table_->MaterializeRow(version_pos, &scratch_);
      ctx_->stats().rows_scanned++;
      if (node_.filter != nullptr) {
        PDM_ASSIGN_OR_RETURN(bool pass,
                             EvaluatePredicate(*node_.filter, scratch_, ctx_));
        if (!pass) continue;
      }
      row->swap(scratch_);
      return true;
    }
    return false;
  }

 private:
  const ScanNode& node_;
  ExecContext* ctx_;
  const Table* table_ = nullptr;
  size_t bound_ = 0;                  // published-version scan bound
  bool use_index_ = false;
  std::vector<size_t> candidates_;    // index hits (owned copy), if any
  size_t pos_ = 0;
  Row scratch_;                       // recycled materialization buffer
};

class CteScanExecutor : public Executor {
 public:
  CteScanExecutor(const CteScanNode& node, ExecContext* ctx)
      : node_(node), ctx_(ctx) {}

  Status Open() override {
    rows_ = ctx_->FindCteRows(node_.cte_name);
    if (rows_ == nullptr) {
      return Status::Internal("CTE '" + node_.cte_name +
                              "' is not materialized");
    }
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    if (pos_ >= rows_->size()) return false;
    ctx_->stats().cte_rows_scanned++;
    *row = (*rows_)[pos_++];
    return true;
  }

 private:
  const CteScanNode& node_;
  ExecContext* ctx_;
  const std::vector<Row>* rows_ = nullptr;
  size_t pos_ = 0;
};

// --- Row-at-a-time operators ------------------------------------------------------

class FilterExecutor : public Executor {
 public:
  FilterExecutor(const FilterNode& node, std::unique_ptr<Executor> child,
                 ExecContext* ctx)
      : node_(node), child_(std::move(child)), ctx_(ctx) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Row* row) override {
    while (true) {
      PDM_ASSIGN_OR_RETURN(bool has, child_->Next(row));
      if (!has) return false;
      PDM_ASSIGN_OR_RETURN(bool pass,
                           EvaluatePredicate(*node_.predicate, *row, ctx_));
      if (pass) return true;
    }
  }

 private:
  const FilterNode& node_;
  std::unique_ptr<Executor> child_;
  ExecContext* ctx_;
};

class ProjectExecutor : public Executor {
 public:
  ProjectExecutor(const ProjectNode& node, std::unique_ptr<Executor> child,
                  ExecContext* ctx)
      : node_(node), child_(std::move(child)), ctx_(ctx) {}

  Status Open() override {
    done_ = false;
    return child_ != nullptr ? child_->Open() : Status::OK();
  }

  Result<bool> Next(Row* row) override {
    Row input;
    if (child_ != nullptr) {
      PDM_ASSIGN_OR_RETURN(bool has, child_->Next(&input));
      if (!has) return false;
    } else {
      // FROM-less SELECT: exactly one empty input row.
      if (done_) return false;
      done_ = true;
    }
    row->clear();
    row->reserve(node_.exprs.size());
    for (const BoundExprPtr& e : node_.exprs) {
      PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e, input, ctx_));
      row->push_back(std::move(v));
    }
    return true;
  }

 private:
  const ProjectNode& node_;
  std::unique_ptr<Executor> child_;
  ExecContext* ctx_;
  bool done_ = false;
};

class LimitExecutor : public Executor {
 public:
  LimitExecutor(const LimitNode& node, std::unique_ptr<Executor> child)
      : node_(node), child_(std::move(child)) {}

  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }

  Result<bool> Next(Row* row) override {
    if (emitted_ >= node_.limit) return false;
    PDM_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    ++emitted_;
    return true;
  }

 private:
  const LimitNode& node_;
  std::unique_ptr<Executor> child_;
  int64_t emitted_ = 0;
};

// --- Joins ------------------------------------------------------------------------

/// Nested-loop inner join: the right side is materialized once in Open()
/// and re-scanned per left row.
class NestedLoopJoinExecutor : public Executor {
 public:
  NestedLoopJoinExecutor(const NestedLoopJoinNode& node,
                         std::unique_ptr<Executor> left,
                         std::unique_ptr<Executor> right, ExecContext* ctx)
      : node_(node),
        left_(std::move(left)),
        right_(std::move(right)),
        ctx_(ctx) {}

  Status Open() override {
    PDM_RETURN_NOT_OK(left_->Open());
    PDM_RETURN_NOT_OK(right_->Open());
    right_rows_.clear();
    Row row;
    while (true) {
      PDM_ASSIGN_OR_RETURN(bool has, right_->Next(&row));
      if (!has) break;
      right_rows_.push_back(row);
    }
    have_left_ = false;
    right_pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    while (true) {
      if (!have_left_) {
        PDM_ASSIGN_OR_RETURN(bool has, left_->Next(&left_row_));
        if (!has) return false;
        ctx_->stats().join_probe_rows++;
        have_left_ = true;
        right_pos_ = 0;
      }
      while (right_pos_ < right_rows_.size()) {
        const Row& right_row = right_rows_[right_pos_++];
        Row combined;
        combined.reserve(left_row_.size() + right_row.size());
        combined.insert(combined.end(), left_row_.begin(), left_row_.end());
        combined.insert(combined.end(), right_row.begin(), right_row.end());
        if (node_.predicate != nullptr) {
          ctx_->stats().nl_join_probes++;
          PDM_ASSIGN_OR_RETURN(
              bool pass, EvaluatePredicate(*node_.predicate, combined, ctx_));
          if (!pass) continue;
        }
        *row = std::move(combined);
        return true;
      }
      have_left_ = false;
    }
  }

 private:
  const NestedLoopJoinNode& node_;
  std::unique_ptr<Executor> left_;
  std::unique_ptr<Executor> right_;
  ExecContext* ctx_;
  std::vector<Row> right_rows_;
  Row left_row_;
  bool have_left_ = false;
  size_t right_pos_ = 0;
};

/// Hash inner join: build on the right child, probe with left rows.
/// When the right child is a bare base-table scan and the join has a
/// single key, the table's shared column index substitutes for the
/// per-query build (an "index join" — this is what makes the hundreds
/// of navigational point queries cheap, like a B-tree would in a real
/// RDBMS).
class HashJoinExecutor : public Executor {
 public:
  HashJoinExecutor(const HashJoinNode& node, std::unique_ptr<Executor> left,
                   std::unique_ptr<Executor> right, ExecContext* ctx)
      : node_(node),
        left_(std::move(left)),
        right_(std::move(right)),
        ctx_(ctx) {}

  Status Open() override {
    PDM_RETURN_NOT_OK(left_->Open());
    table_.clear();
    right_rows_.clear();
    index_table_ = nullptr;

    if (node_.right_keys.size() == 1 &&
        node_.right->kind == PlanKind::kScan) {
      const auto& scan = static_cast<const ScanNode&>(*node_.right);
      if (scan.filter == nullptr) {
        PDM_ASSIGN_OR_RETURN(index_table_,
                             ctx_->catalog()->GetTable(scan.table_name));
      }
    }
    if (index_table_ == nullptr) {
      PDM_RETURN_NOT_OK(right_->Open());
      ctx_->stats().hash_join_builds++;
      Row row;
      while (true) {
        PDM_ASSIGN_OR_RETURN(bool has, right_->Next(&row));
        if (!has) break;
        Row key = KeyOf(row, node_.right_keys);
        // Rows with NULL key columns can never match an equi-join.
        if (std::any_of(key.begin(), key.end(),
                        [](const Value& v) { return v.is_null(); })) {
          continue;
        }
        right_rows_.push_back(row);
        table_[std::move(key)].push_back(right_rows_.size() - 1);
      }
    }
    have_left_ = false;
    matches_ = nullptr;
    match_pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    while (true) {
      if (!have_left_) {
        PDM_ASSIGN_OR_RETURN(bool has, left_->Next(&left_row_));
        if (!has) return false;
        ctx_->stats().join_probe_rows++;
        have_left_ = true;
        match_pos_ = 0;
        if (index_table_ != nullptr) {
          // Index-join probe: positions are copied out under the index
          // lock, then visibility-filtered against our snapshot below —
          // safe next to a concurrent writer appending versions.
          ctx_->stats().index_join_probes++;
          index_matches_.clear();
          const Value& key = left_row_[node_.left_keys[0]];
          if (!key.is_null()) {
            index_table_->IndexLookup(node_.right_keys[0], key,
                                      &index_matches_);
          }
          matches_ = &index_matches_;
        } else {
          Row key = KeyOf(left_row_, node_.left_keys);
          if (std::any_of(key.begin(), key.end(),
                          [](const Value& v) { return v.is_null(); })) {
            matches_ = nullptr;
          } else {
            auto it = table_.find(key);
            matches_ = it == table_.end() ? nullptr : &it->second;
          }
        }
      }
      if (matches_ != nullptr) {
        while (match_pos_ < matches_->size()) {
          const size_t match = (*matches_)[match_pos_++];
          if (index_table_ != nullptr &&
              !index_table_->VisibleAt(match, ctx_->snapshot_ts())) {
            continue;
          }
          const Row* right_row;
          if (index_table_ != nullptr) {
            index_table_->MaterializeRow(match, &right_scratch_);
            right_row = &right_scratch_;
          } else {
            right_row = &right_rows_[match];
          }
          Row combined;
          combined.reserve(left_row_.size() + right_row->size());
          combined.insert(combined.end(), left_row_.begin(), left_row_.end());
          combined.insert(combined.end(), right_row->begin(),
                          right_row->end());
          if (node_.residual != nullptr) {
            PDM_ASSIGN_OR_RETURN(
                bool pass, EvaluatePredicate(*node_.residual, combined, ctx_));
            if (!pass) continue;
          }
          *row = std::move(combined);
          return true;
        }
      }
      have_left_ = false;
    }
  }

 private:
  static Row KeyOf(const Row& row, const std::vector<size_t>& keys) {
    Row key;
    key.reserve(keys.size());
    for (size_t k : keys) key.push_back(row[k]);
    return key;
  }

  const HashJoinNode& node_;
  std::unique_ptr<Executor> left_;
  std::unique_ptr<Executor> right_;
  ExecContext* ctx_;
  std::unordered_map<Row, std::vector<size_t>, RowHash, RowEq> table_;
  std::vector<Row> right_rows_;
  const Table* index_table_ = nullptr;   // non-null = index-join mode
  std::vector<size_t> index_matches_;    // probe hits (owned copy)
  Row right_scratch_;                    // index-join materialization buffer
  Row left_row_;
  bool have_left_ = false;
  const std::vector<size_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

// --- Blocking operators --------------------------------------------------------------

/// Hash aggregation; with no group expressions it degenerates to a scalar
/// aggregate that emits exactly one row (even over empty input).
class AggregateExecutor : public Executor {
 public:
  AggregateExecutor(const AggregateNode& node, std::unique_ptr<Executor> child,
                    ExecContext* ctx)
      : node_(node), child_(std::move(child)), ctx_(ctx) {}

  Status Open() override {
    PDM_RETURN_NOT_OK(child_->Open());
    groups_.clear();
    group_index_.clear();
    pos_ = 0;

    const size_t nagg = node_.aggregates.size();
    Row row;
    while (true) {
      PDM_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
      if (!has) break;
      ctx_->stats().agg_input_rows++;
      Row key;
      key.reserve(node_.group_exprs.size());
      for (const BoundExprPtr& g : node_.group_exprs) {
        PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*g, row, ctx_));
        key.push_back(std::move(v));
      }
      GroupState* state;
      auto it = group_index_.find(key);
      if (it == group_index_.end()) {
        group_index_[key] = groups_.size();
        groups_.push_back(GroupState{key, std::vector<AggState>(nagg)});
        state = &groups_.back();
      } else {
        state = &groups_[it->second];
      }
      for (size_t i = 0; i < nagg; ++i) {
        PDM_RETURN_NOT_OK(Accumulate(node_.aggregates[i], row,
                                     &state->aggs[i]));
      }
    }

    // Scalar aggregate over empty input: one all-default group.
    if (node_.group_exprs.empty() && groups_.empty()) {
      groups_.push_back(GroupState{Row{}, std::vector<AggState>(nagg)});
    }
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    while (pos_ < groups_.size()) {
      GroupState& g = groups_[pos_++];
      // The group is finished: move its key cells out (group_index_
      // holds its own copy) and size the output row once.
      Row out = std::move(g.key);
      out.reserve(out.size() + node_.aggregates.size());
      for (size_t i = 0; i < node_.aggregates.size(); ++i) {
        PDM_ASSIGN_OR_RETURN(Value v,
                             FinalizeAgg(node_.aggregates[i], g.aggs[i]));
        out.push_back(std::move(v));
      }
      if (node_.having != nullptr) {
        PDM_ASSIGN_OR_RETURN(bool pass,
                             EvaluatePredicate(*node_.having, out, ctx_));
        if (!pass) continue;
      }
      *row = std::move(out);
      return true;
    }
    return false;
  }

 private:
  struct GroupState {
    Row key;
    std::vector<AggState> aggs;
  };

  /// Folds one input row into the group's accumulator. The value-level
  /// semantics live in exec/aggregate_state.h, shared with the
  /// vectorized aggregation.
  Status Accumulate(const BoundAggregate& agg, const Row& row,
                    AggState* state) {
    if (agg.agg_kind == AggKind::kCountStar) {
      state->count++;
      return Status::OK();
    }
    Result<Value> v = EvaluateExpr(*agg.arg, row, ctx_);
    if (!v.ok()) return v.status();
    return AccumulateAggValue(agg, v.value(), state);
  }

  const AggregateNode& node_;
  std::unique_ptr<Executor> child_;
  ExecContext* ctx_;
  std::vector<GroupState> groups_;
  std::unordered_map<Row, size_t, RowHash, RowEq> group_index_;
  size_t pos_ = 0;
};

class SortExecutor : public Executor {
 public:
  SortExecutor(const SortNode& node, std::unique_ptr<Executor> child)
      : node_(node), child_(std::move(child)) {}

  Status Open() override {
    PDM_RETURN_NOT_OK(child_->Open());
    rows_.clear();
    pos_ = 0;
    Row row;
    while (true) {
      PDM_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
      if (!has) break;
      rows_.push_back(std::move(row));
    }
    // stable_sort, not sort: rows with equal keys keep child order, so
    // ORDER BY output is deterministic and byte-identical whether the
    // child ran on the row path or through the batch->row bridge
    // (both produce rows in version order).
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Row& a, const Row& b) {
                       for (const SortKey& key : node_.keys) {
                         int c = Value::Compare(a[key.column], b[key.column]);
                         if (c != 0) return key.descending ? c > 0 : c < 0;
                       }
                       return false;
                     });
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    if (pos_ >= rows_.size()) return false;
    *row = std::move(rows_[pos_++]);
    return true;
  }

 private:
  const SortNode& node_;
  std::unique_ptr<Executor> child_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class DistinctExecutor : public Executor {
 public:
  explicit DistinctExecutor(std::unique_ptr<Executor> child)
      : child_(std::move(child)) {}

  Status Open() override {
    seen_.clear();
    return child_->Open();
  }

  Result<bool> Next(Row* row) override {
    while (true) {
      PDM_ASSIGN_OR_RETURN(bool has, child_->Next(row));
      if (!has) return false;
      if (seen_.insert(*row).second) return true;
    }
  }

 private:
  std::unique_ptr<Executor> child_;
  std::unordered_set<Row, RowHash, RowEq> seen_;
};

class UnionExecutor : public Executor {
 public:
  explicit UnionExecutor(std::vector<std::unique_ptr<Executor>> children)
      : children_(std::move(children)) {}

  Status Open() override {
    for (std::unique_ptr<Executor>& c : children_) {
      PDM_RETURN_NOT_OK(c->Open());
    }
    current_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    while (current_ < children_.size()) {
      PDM_ASSIGN_OR_RETURN(bool has, children_[current_]->Next(row));
      if (has) return true;
      ++current_;
    }
    return false;
  }

 private:
  std::vector<std::unique_ptr<Executor>> children_;
  size_t current_ = 0;
};

}  // namespace

Result<std::unique_ptr<Executor>> CreateExecutor(const PlanNode& plan,
                                                 ExecContext* ctx) {
  // Batch->row bridge (DESIGN.md 5j): vec-coverable subtrees — scans,
  // hash joins, aggregates — run batch-at-a-time even when the plan
  // above them (Sort, CASE projections, ...) stays on the row path.
  if (ctx->options().vectorized_execution) {
    PDM_ASSIGN_OR_RETURN(std::unique_ptr<Executor> vec,
                         MaybeVecExecutor(plan, ctx));
    if (vec != nullptr) return vec;
  }
  switch (plan.kind) {
    case PlanKind::kScan:
      return std::unique_ptr<Executor>(std::make_unique<ScanExecutor>(
          static_cast<const ScanNode&>(plan), ctx));
    case PlanKind::kCteScan:
      return std::unique_ptr<Executor>(std::make_unique<CteScanExecutor>(
          static_cast<const CteScanNode&>(plan), ctx));
    case PlanKind::kFilter: {
      const auto& node = static_cast<const FilterNode&>(plan);
      PDM_ASSIGN_OR_RETURN(std::unique_ptr<Executor> child,
                           CreateExecutor(*node.child, ctx));
      return std::unique_ptr<Executor>(
          std::make_unique<FilterExecutor>(node, std::move(child), ctx));
    }
    case PlanKind::kProject: {
      const auto& node = static_cast<const ProjectNode&>(plan);
      std::unique_ptr<Executor> child;
      if (node.child != nullptr) {
        PDM_ASSIGN_OR_RETURN(child, CreateExecutor(*node.child, ctx));
      }
      return std::unique_ptr<Executor>(
          std::make_unique<ProjectExecutor>(node, std::move(child), ctx));
    }
    case PlanKind::kNestedLoopJoin: {
      const auto& node = static_cast<const NestedLoopJoinNode&>(plan);
      PDM_ASSIGN_OR_RETURN(std::unique_ptr<Executor> left,
                           CreateExecutor(*node.left, ctx));
      PDM_ASSIGN_OR_RETURN(std::unique_ptr<Executor> right,
                           CreateExecutor(*node.right, ctx));
      return std::unique_ptr<Executor>(std::make_unique<NestedLoopJoinExecutor>(
          node, std::move(left), std::move(right), ctx));
    }
    case PlanKind::kHashJoin: {
      const auto& node = static_cast<const HashJoinNode&>(plan);
      PDM_ASSIGN_OR_RETURN(std::unique_ptr<Executor> left,
                           CreateExecutor(*node.left, ctx));
      PDM_ASSIGN_OR_RETURN(std::unique_ptr<Executor> right,
                           CreateExecutor(*node.right, ctx));
      return std::unique_ptr<Executor>(std::make_unique<HashJoinExecutor>(
          node, std::move(left), std::move(right), ctx));
    }
    case PlanKind::kAggregate: {
      const auto& node = static_cast<const AggregateNode&>(plan);
      PDM_ASSIGN_OR_RETURN(std::unique_ptr<Executor> child,
                           CreateExecutor(*node.child, ctx));
      return std::unique_ptr<Executor>(
          std::make_unique<AggregateExecutor>(node, std::move(child), ctx));
    }
    case PlanKind::kSort: {
      const auto& node = static_cast<const SortNode&>(plan);
      PDM_ASSIGN_OR_RETURN(std::unique_ptr<Executor> child,
                           CreateExecutor(*node.child, ctx));
      return std::unique_ptr<Executor>(
          std::make_unique<SortExecutor>(node, std::move(child)));
    }
    case PlanKind::kDistinct: {
      const auto& node = static_cast<const DistinctNode&>(plan);
      PDM_ASSIGN_OR_RETURN(std::unique_ptr<Executor> child,
                           CreateExecutor(*node.child, ctx));
      return std::unique_ptr<Executor>(
          std::make_unique<DistinctExecutor>(std::move(child)));
    }
    case PlanKind::kUnion: {
      const auto& node = static_cast<const UnionNode&>(plan);
      std::vector<std::unique_ptr<Executor>> children;
      children.reserve(node.children.size());
      for (const PlanPtr& c : node.children) {
        PDM_ASSIGN_OR_RETURN(std::unique_ptr<Executor> child,
                             CreateExecutor(*c, ctx));
        children.push_back(std::move(child));
      }
      return std::unique_ptr<Executor>(
          std::make_unique<UnionExecutor>(std::move(children)));
    }
    case PlanKind::kLimit: {
      const auto& node = static_cast<const LimitNode&>(plan);
      PDM_ASSIGN_OR_RETURN(std::unique_ptr<Executor> child,
                           CreateExecutor(*node.child, ctx));
      return std::unique_ptr<Executor>(
          std::make_unique<LimitExecutor>(node, std::move(child)));
    }
  }
  return Status::Internal("unhandled plan kind");
}

Result<std::vector<Row>> ExecutePlan(const PlanNode& plan, ExecContext* ctx) {
  // Scan/filter/project/limit plans run batch-at-a-time over the column
  // fragments; anything the vectorized engine cannot prove equivalent
  // (and any index-answerable scan) drops through to the row operators.
  if (ctx->options().vectorized_execution) {
    std::vector<Row> rows;
    PDM_ASSIGN_OR_RETURN(bool handled, TryExecuteVectorized(plan, ctx, &rows));
    if (handled) return rows;
  }
  PDM_ASSIGN_OR_RETURN(std::unique_ptr<Executor> executor,
                       CreateExecutor(plan, ctx));
  PDM_RETURN_NOT_OK(executor->Open());
  std::vector<Row> rows;
  Row row;
  while (true) {
    PDM_ASSIGN_OR_RETURN(bool has, executor->Next(&row));
    if (!has) break;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace pdm
