#ifndef PDM_EXEC_VECTORIZED_H_
#define PDM_EXEC_VECTORIZED_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "exec/exec_context.h"
#include "exec/executor.h"
#include "plan/plan_node.h"

namespace pdm {

/// Batch-at-a-time executor for the hot scan shape (DESIGN.md 5i):
///
///   Limit? -> Project? -> Filter* -> Scan
///
/// over a base table, with every expression in the vectorizable subset
/// (literals, level-0 column refs, unary/binary operators, CAST,
/// IS NULL, BETWEEN, LIKE, literal-set IN). Execution walks the table's
/// 1024-row column fragments directly: a vectorized MVCC pass fills the
/// initial selection vector from the snapshot, filters refine it
/// column-at-a-time with row-engine short-circuit semantics, and only
/// the surviving slots are materialized into Rows (late
/// materialization — a filtered-out version never touches a Value).
///
/// Returns false — without touching *out or any stats — when the plan
/// is outside that subset or the row engine would answer the scan from
/// a column index; the caller must then run the Volcano path. On true,
/// *out holds rows value-identical to the row engine's output (same
/// order, same cells). Execution errors propagate as on the row path;
/// the only divergence is error *timing* under LIMIT, where the row
/// engine stops mid-fragment and this engine finishes the batch.
Result<bool> TryExecuteVectorized(const PlanNode& plan, ExecContext* ctx,
                                  std::vector<Row>* out);

/// Batch->row bridge (DESIGN.md 5j): a Volcano executor that runs
/// `plan`'s subtree batch-at-a-time when it is vec-coverable —
///
///   - a `Filter* -> Scan` chain over a base table (the VecSource
///     shape), streamed fragment-wise to the row-path parent;
///   - a hash join whose build side is a VecSource (batch build with
///     late materialization, int64 fast-path probe table, per-statement
///     build cache) or whose right side is index-join eligible (probes
///     batched against the table's shared lazy index);
///   - an aggregate whose input is a VecSource and whose group/argument
///     expressions are vectorizable (column-kernel COUNT/SUM/AVG,
///     shared AggState semantics for the rest).
///
/// Returns nullptr when the subtree is outside that coverage (or an
/// equality scan is routed to the row engine's index path); the caller
/// then builds the ordinary row operator. CreateExecutor calls this for
/// every node, so a partially-covered plan (vectorized scan under a
/// row-path Sort or CASE projection) consumes batches below the
/// frontier instead of falling back wholesale. Output rows are
/// byte-identical to the row path's; as with TryExecuteVectorized the
/// only divergence is error timing at batch granularity.
Result<std::unique_ptr<Executor>> MaybeVecExecutor(const PlanNode& plan,
                                                   ExecContext* ctx);

}  // namespace pdm

#endif  // PDM_EXEC_VECTORIZED_H_
