#include "exec/result_set.h"

#include <algorithm>

#include "common/string_util.h"

namespace pdm {

size_t ResultSet::WireSize() const {
  size_t size = 0;
  for (const Row& row : rows) {
    size += 4;  // row header
    for (const Value& v : row) size += v.WireSize();
  }
  return size;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::vector<size_t> widths(schema.num_columns());
  std::vector<std::vector<std::string>> cells;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    widths[c] = schema.column(c).name.size();
  }
  size_t shown = std::min(max_rows, rows.size());
  cells.reserve(shown);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> line;
    line.reserve(schema.num_columns());
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      std::string text = rows[r][c].ToString();
      widths[c] = std::max(widths[c], text.size());
      line.push_back(std::move(text));
    }
    cells.push_back(std::move(line));
  }

  std::string out;
  auto append_row = [&](const std::vector<std::string>& line) {
    for (size_t c = 0; c < line.size(); ++c) {
      out += line[c];
      out.append(widths[c] - line[c].size() + 2, ' ');
    }
    out += "\n";
  };
  std::vector<std::string> header;
  header.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    header.push_back(schema.column(c).name);
  }
  append_row(header);
  std::vector<std::string> rule;
  rule.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    rule.push_back(std::string(widths[c], '-'));
  }
  append_row(rule);
  for (const std::vector<std::string>& line : cells) append_row(line);
  if (rows.size() > shown) {
    out += StrFormat("... (%zu more row(s))\n", rows.size() - shown);
  }
  return out;
}

}  // namespace pdm
