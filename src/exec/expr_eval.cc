#include "exec/expr_eval.h"

#include <cmath>
#include <cstdlib>

#include "common/string_util.h"
#include "exec/executor.h"

namespace pdm {

Result<Value> SqlCompareValues(sql::BinaryOp op, const Value& a,
                               const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!Value::Comparable(a, b)) {
    return Status::ExecutionError(
        StrFormat("cannot compare %s with %s",
                  std::string(ValueKindName(a.kind())).c_str(),
                  std::string(ValueKindName(b.kind())).c_str()));
  }
  int c = Value::Compare(a, b);
  switch (op) {
    case sql::BinaryOp::kEq:
      return Value::Bool(c == 0);
    case sql::BinaryOp::kNotEq:
      return Value::Bool(c != 0);
    case sql::BinaryOp::kLess:
      return Value::Bool(c < 0);
    case sql::BinaryOp::kLessEq:
      return Value::Bool(c <= 0);
    case sql::BinaryOp::kGreater:
      return Value::Bool(c > 0);
    case sql::BinaryOp::kGreaterEq:
      return Value::Bool(c >= 0);
    default:
      return Status::Internal("not a comparison operator");
  }
}

Result<Value> SqlArithmeticValues(sql::BinaryOp op, const Value& a,
                                  const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (op == sql::BinaryOp::kConcat) {
    // Lenient concatenation: non-string operands are stringified.
    return Value::String(a.ToString() + b.ToString());
  }
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::ExecutionError("arithmetic on non-numeric values");
  }
  bool both_int = a.is_int64() && b.is_int64();
  if (both_int) {
    int64_t x = a.int64_value();
    int64_t y = b.int64_value();
    switch (op) {
      case sql::BinaryOp::kAdd:
        return Value::Int64(x + y);
      case sql::BinaryOp::kSub:
        return Value::Int64(x - y);
      case sql::BinaryOp::kMul:
        return Value::Int64(x * y);
      case sql::BinaryOp::kDiv:
        if (y == 0) return Status::ExecutionError("division by zero");
        return Value::Int64(x / y);  // integer division, as in DB2
      case sql::BinaryOp::kMod:
        if (y == 0) return Status::ExecutionError("division by zero");
        return Value::Int64(x % y);
      default:
        return Status::Internal("not an arithmetic operator");
    }
  }
  double x = a.AsDouble();
  double y = b.AsDouble();
  switch (op) {
    case sql::BinaryOp::kAdd:
      return Value::Double(x + y);
    case sql::BinaryOp::kSub:
      return Value::Double(x - y);
    case sql::BinaryOp::kMul:
      return Value::Double(x * y);
    case sql::BinaryOp::kDiv:
      if (y == 0) return Status::ExecutionError("division by zero");
      return Value::Double(x / y);
    case sql::BinaryOp::kMod:
      if (y == 0) return Status::ExecutionError("division by zero");
      return Value::Double(std::fmod(x, y));
    default:
      return Status::Internal("not an arithmetic operator");
  }
}

Result<Value> SqlLogicValues(sql::BinaryOp op, const Value& a,
                             const Value& b) {
  auto truth = [](const Value& v) -> Result<int> {  // 1 / 0 / -1 = unknown
    if (v.is_null()) return -1;
    if (v.is_bool()) return v.bool_value() ? 1 : 0;
    return Status::ExecutionError("boolean operator on non-boolean value");
  };
  PDM_ASSIGN_OR_RETURN(int x, truth(a));
  PDM_ASSIGN_OR_RETURN(int y, truth(b));
  if (op == sql::BinaryOp::kAnd) {
    if (x == 0 || y == 0) return Value::Bool(false);
    if (x == 1 && y == 1) return Value::Bool(true);
    return Value::Null();
  }
  if (x == 1 || y == 1) return Value::Bool(true);
  if (x == 0 && y == 0) return Value::Bool(false);
  return Value::Null();
}

namespace {

/// Resolves the row a column reference reads from: the current row for
/// level 0, otherwise the correlation stack.
Result<const Row*> ResolveRow(const BoundColumnRef& ref, const Row& row,
                              ExecContext* ctx) {
  if (ref.level == 0) return &row;
  const Row* outer = ctx->OuterRow(ref.level);
  if (outer == nullptr) {
    return Status::Internal("correlation level " +
                            std::to_string(ref.level) +
                            " exceeds the outer-row stack");
  }
  return outer;
}

/// Runs a subquery's plan, honoring the uncorrelated-result cache.
Result<const SubqueryResult*> RunSubquery(const BoundSubquery& sub,
                                          const Row& row, ExecContext* ctx,
                                          SubqueryResult* storage) {
  bool cacheable =
      !sub.correlated && ctx->options().cache_uncorrelated_subqueries;
  if (cacheable) {
    if (const SubqueryResult* cached = ctx->FindCachedSubquery(&sub)) {
      ctx->stats().subquery_cache_hits++;
      return cached;
    }
  }
  ctx->stats().subquery_evaluations++;
  ctx->PushOuterRow(&row);
  Result<std::vector<Row>> rows = ExecutePlan(*sub.plan, ctx);
  ctx->PopOuterRow();
  if (!rows.ok()) return rows.status();
  if (cacheable) {
    return ctx->CacheSubquery(&sub, std::move(rows).value());
  }
  storage->rows = std::move(rows).value();
  return storage;
}

Result<Value> EvaluateSubquery(const BoundSubquery& sub, const Row& row,
                               ExecContext* ctx) {
  SubqueryResult storage;
  PDM_ASSIGN_OR_RETURN(const SubqueryResult* result,
                       RunSubquery(sub, row, ctx, &storage));
  const std::vector<Row>& rows = result->rows;
  switch (sub.subquery_kind) {
    case SubqueryKind::kExists: {
      bool exists = !rows.empty();
      return Value::Bool(sub.negated ? !exists : exists);
    }
    case SubqueryKind::kScalar: {
      if (rows.empty()) return Value::Null();
      if (rows.size() > 1) {
        return Status::ExecutionError(
            "scalar subquery returned more than one row");
      }
      return rows[0][0];
    }
    case SubqueryKind::kIn: {
      PDM_ASSIGN_OR_RETURN(Value needle,
                           EvaluateExpr(*sub.operand, row, ctx));
      if (needle.is_null()) return Value::Null();
      // Membership through the hashed first column; the functor pair is
      // consistent with Value::Compare (numerics match across kinds).
      if (result->FirstColumnSet().count(needle) > 0) {
        return Value::Bool(!sub.negated);
      }
      if (result->FirstColumnHasNull()) return Value::Null();
      return Value::Bool(sub.negated);
    }
  }
  return Status::Internal("unhandled subquery kind");
}

}  // namespace

Result<Value> CastValue(const Value& value, ColumnType target) {
  if (value.is_null()) return Value::Null();
  switch (target) {
    case ColumnType::kInt64:
      switch (value.kind()) {
        case ValueKind::kInt64:
          return value;
        case ValueKind::kDouble:
          return Value::Int64(static_cast<int64_t>(value.double_value()));
        case ValueKind::kBool:
          return Value::Int64(value.bool_value() ? 1 : 0);
        case ValueKind::kString: {
          const std::string& s = value.string_value();
          char* end = nullptr;
          long long v = std::strtoll(s.c_str(), &end, 10);
          if (end == s.c_str() || *end != '\0') {
            return Status::ExecutionError("cannot cast '" + s +
                                          "' to INTEGER");
          }
          return Value::Int64(v);
        }
        default:
          break;
      }
      break;
    case ColumnType::kDouble:
      switch (value.kind()) {
        case ValueKind::kInt64:
          return Value::Double(static_cast<double>(value.int64_value()));
        case ValueKind::kDouble:
          return value;
        case ValueKind::kBool:
          return Value::Double(value.bool_value() ? 1.0 : 0.0);
        case ValueKind::kString: {
          const std::string& s = value.string_value();
          char* end = nullptr;
          double v = std::strtod(s.c_str(), &end);
          if (end == s.c_str() || *end != '\0') {
            return Status::ExecutionError("cannot cast '" + s +
                                          "' to DOUBLE");
          }
          return Value::Double(v);
        }
        default:
          break;
      }
      break;
    case ColumnType::kString:
      return Value::String(value.ToString());
    case ColumnType::kBool:
      switch (value.kind()) {
        case ValueKind::kBool:
          return value;
        case ValueKind::kInt64:
          return Value::Bool(value.int64_value() != 0);
        default:
          break;
      }
      break;
  }
  return Status::ExecutionError(
      StrFormat("cannot cast %s to %s",
                std::string(ValueKindName(value.kind())).c_str(),
                std::string(ColumnTypeName(target)).c_str()));
}

Result<Value> EvaluateExpr(const BoundExpr& expr, const Row& row,
                           ExecContext* ctx) {
  switch (expr.kind) {
    case BoundExprKind::kLiteral:
      return static_cast<const BoundLiteral&>(expr).value;
    case BoundExprKind::kColumnRef: {
      const auto& ref = static_cast<const BoundColumnRef&>(expr);
      PDM_ASSIGN_OR_RETURN(const Row* src, ResolveRow(ref, row, ctx));
      if (ref.index >= src->size()) {
        return Status::Internal("column index out of range for '" +
                                ref.debug_name + "'");
      }
      return (*src)[ref.index];
    }
    case BoundExprKind::kUnary: {
      const auto& e = static_cast<const BoundUnary&>(expr);
      PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e.operand, row, ctx));
      if (e.op == sql::UnaryOp::kNot) {
        if (v.is_null()) return Value::Null();
        if (!v.is_bool()) {
          return Status::ExecutionError("NOT on non-boolean value");
        }
        return Value::Bool(!v.bool_value());
      }
      if (v.is_null()) return Value::Null();
      if (v.is_int64()) return Value::Int64(-v.int64_value());
      if (v.is_double()) return Value::Double(-v.double_value());
      return Status::ExecutionError("unary minus on non-numeric value");
    }
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(expr);
      switch (e.op) {
        case sql::BinaryOp::kAnd:
        case sql::BinaryOp::kOr: {
          PDM_ASSIGN_OR_RETURN(Value a, EvaluateExpr(*e.lhs, row, ctx));
          // Short-circuit where three-valued logic allows it.
          if (a.is_bool()) {
            if (e.op == sql::BinaryOp::kAnd && !a.bool_value()) {
              return Value::Bool(false);
            }
            if (e.op == sql::BinaryOp::kOr && a.bool_value()) {
              return Value::Bool(true);
            }
          }
          PDM_ASSIGN_OR_RETURN(Value b, EvaluateExpr(*e.rhs, row, ctx));
          return SqlLogicValues(e.op, a, b);
        }
        case sql::BinaryOp::kEq:
        case sql::BinaryOp::kNotEq:
        case sql::BinaryOp::kLess:
        case sql::BinaryOp::kLessEq:
        case sql::BinaryOp::kGreater:
        case sql::BinaryOp::kGreaterEq: {
          PDM_ASSIGN_OR_RETURN(Value a, EvaluateExpr(*e.lhs, row, ctx));
          PDM_ASSIGN_OR_RETURN(Value b, EvaluateExpr(*e.rhs, row, ctx));
          return SqlCompareValues(e.op, a, b);
        }
        default: {
          PDM_ASSIGN_OR_RETURN(Value a, EvaluateExpr(*e.lhs, row, ctx));
          PDM_ASSIGN_OR_RETURN(Value b, EvaluateExpr(*e.rhs, row, ctx));
          return SqlArithmeticValues(e.op, a, b);
        }
      }
    }
    case BoundExprKind::kFunctionCall: {
      const auto& e = static_cast<const BoundFunctionCall&>(expr);
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const BoundExprPtr& a : e.args) {
        PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*a, row, ctx));
        args.push_back(std::move(v));
      }
      return e.function->fn(args);
    }
    case BoundExprKind::kCast: {
      const auto& e = static_cast<const BoundCast&>(expr);
      PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e.operand, row, ctx));
      return CastValue(v, e.target_type);
    }
    case BoundExprKind::kIsNull: {
      const auto& e = static_cast<const BoundIsNull&>(expr);
      PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e.operand, row, ctx));
      return Value::Bool(e.negated ? !v.is_null() : v.is_null());
    }
    case BoundExprKind::kInList: {
      const auto& e = static_cast<const BoundInList&>(expr);
      PDM_ASSIGN_OR_RETURN(Value needle, EvaluateExpr(*e.operand, row, ctx));
      if (needle.is_null()) return Value::Null();
      if (e.use_literal_set) {
        if (e.literal_set.count(needle) > 0) return Value::Bool(!e.negated);
        if (e.literal_list_has_null) return Value::Null();
        return Value::Bool(e.negated);
      }
      bool saw_null = false;
      for (const BoundExprPtr& item : e.items) {
        PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*item, row, ctx));
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        if (Value::Comparable(needle, v) &&
            Value::Compare(needle, v) == 0) {
          return Value::Bool(!e.negated);
        }
      }
      if (saw_null) return Value::Null();
      return Value::Bool(e.negated);
    }
    case BoundExprKind::kBetween: {
      const auto& e = static_cast<const BoundBetween&>(expr);
      PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e.operand, row, ctx));
      PDM_ASSIGN_OR_RETURN(Value lo, EvaluateExpr(*e.low, row, ctx));
      PDM_ASSIGN_OR_RETURN(Value hi, EvaluateExpr(*e.high, row, ctx));
      PDM_ASSIGN_OR_RETURN(
          Value ge, SqlCompareValues(sql::BinaryOp::kGreaterEq, v, lo));
      PDM_ASSIGN_OR_RETURN(
          Value le, SqlCompareValues(sql::BinaryOp::kLessEq, v, hi));
      PDM_ASSIGN_OR_RETURN(Value both,
                           SqlLogicValues(sql::BinaryOp::kAnd, ge, le));
      if (!e.negated) return both;
      if (both.is_null()) return Value::Null();
      return Value::Bool(!both.bool_value());
    }
    case BoundExprKind::kLike: {
      const auto& e = static_cast<const BoundLike&>(expr);
      PDM_ASSIGN_OR_RETURN(Value text, EvaluateExpr(*e.operand, row, ctx));
      PDM_ASSIGN_OR_RETURN(Value pattern, EvaluateExpr(*e.pattern, row, ctx));
      if (text.is_null() || pattern.is_null()) return Value::Null();
      if (!text.is_string() || !pattern.is_string()) {
        return Status::ExecutionError("LIKE requires string operands");
      }
      bool match = SqlLikeMatch(text.string_value(), pattern.string_value());
      return Value::Bool(e.negated ? !match : match);
    }
    case BoundExprKind::kCase: {
      const auto& e = static_cast<const BoundCase&>(expr);
      for (const auto& [cond, val] : e.whens) {
        PDM_ASSIGN_OR_RETURN(Value c, EvaluateExpr(*cond, row, ctx));
        if (c.is_bool() && c.bool_value()) {
          return EvaluateExpr(*val, row, ctx);
        }
      }
      if (e.else_expr != nullptr) return EvaluateExpr(*e.else_expr, row, ctx);
      return Value::Null();
    }
    case BoundExprKind::kSubquery:
      return EvaluateSubquery(static_cast<const BoundSubquery&>(expr), row,
                              ctx);
  }
  return Status::Internal("unhandled bound expression kind");
}

Result<bool> EvaluatePredicate(const BoundExpr& expr, const Row& row,
                               ExecContext* ctx) {
  PDM_ASSIGN_OR_RETURN(Value v, EvaluateExpr(expr, row, ctx));
  if (v.is_null()) return false;
  if (!v.is_bool()) {
    return Status::ExecutionError("predicate did not evaluate to a boolean");
  }
  return v.bool_value();
}

}  // namespace pdm
