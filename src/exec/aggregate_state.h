#ifndef PDM_EXEC_AGGREGATE_STATE_H_
#define PDM_EXEC_AGGREGATE_STATE_H_

#include <string>
#include <unordered_set>

#include "common/result.h"
#include "common/value.h"
#include "plan/plan_node.h"

namespace pdm {

/// Accumulator of one aggregate within one group, shared between the
/// row-engine AggregateExecutor and the vectorized aggregation
/// (exec/vectorized.cc) so NULL, overflow and DISTINCT behaviour are
/// identical by construction. SUM/AVG accumulate `sum_double` for ALL
/// numeric inputs in row order — both engines must feed values in the
/// same order for bit-identical float results.
struct AggState {
  int64_t count = 0;
  double sum_double = 0;
  int64_t sum_int = 0;
  bool saw_double = false;
  Value extreme;  // MIN/MAX accumulator; starts NULL
  std::unordered_set<Row, RowHash, RowEq> distinct_seen;
};

/// Folds one already-evaluated argument value into `state`. NULLs are
/// skipped here (SQL aggregate semantics); COUNT(*) never calls this —
/// it bumps `count` directly.
inline Status AccumulateAggValue(const BoundAggregate& agg, const Value& value,
                                 AggState* state) {
  if (value.is_null()) return Status::OK();  // aggregates skip NULLs
  if (agg.distinct) {
    Row key{value};
    if (!state->distinct_seen.insert(std::move(key)).second) {
      return Status::OK();
    }
  }
  switch (agg.agg_kind) {
    case AggKind::kCount:
      state->count++;
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      if (!value.is_numeric()) {
        return Status::ExecutionError(std::string(AggKindName(agg.agg_kind)) +
                                      " over non-numeric values");
      }
      state->count++;
      if (value.is_double()) state->saw_double = true;
      state->sum_double += value.AsDouble();
      if (value.is_int64()) state->sum_int += value.int64_value();
      break;
    case AggKind::kMin:
    case AggKind::kMax: {
      if (state->extreme.is_null()) {
        state->extreme = value;
        break;
      }
      if (!Value::Comparable(state->extreme, value)) {
        return Status::ExecutionError(std::string(AggKindName(agg.agg_kind)) +
                                      " over incomparable values");
      }
      int c = Value::Compare(value, state->extreme);
      if ((agg.agg_kind == AggKind::kMin && c < 0) ||
          (agg.agg_kind == AggKind::kMax && c > 0)) {
        state->extreme = value;
      }
      break;
    }
    default:
      return Status::Internal("unexpected aggregate kind");
  }
  return Status::OK();
}

/// The aggregate's output value for a finished group.
inline Result<Value> FinalizeAgg(const BoundAggregate& agg,
                                 const AggState& state) {
  switch (agg.agg_kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return Value::Int64(state.count);
    case AggKind::kSum:
      if (state.count == 0) return Value::Null();
      return state.saw_double ? Value::Double(state.sum_double)
                              : Value::Int64(state.sum_int);
    case AggKind::kAvg:
      if (state.count == 0) return Value::Null();
      return Value::Double(state.sum_double /
                           static_cast<double>(state.count));
    case AggKind::kMin:
    case AggKind::kMax:
      return state.extreme;
  }
  return Status::Internal("unexpected aggregate kind");
}

}  // namespace pdm

#endif  // PDM_EXEC_AGGREGATE_STATE_H_
