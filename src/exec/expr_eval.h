#ifndef PDM_EXEC_EXPR_EVAL_H_
#define PDM_EXEC_EXPR_EVAL_H_

#include "common/result.h"
#include "common/value.h"
#include "exec/exec_context.h"
#include "plan/bound_expr.h"

namespace pdm {

/// Evaluates a bound expression against `row` (level 0) with SQL
/// three-valued logic: NULL is represented by Value::Null(), AND/OR use
/// Kleene semantics, comparisons with NULL yield NULL. Subqueries are
/// executed through `ctx` (which also supplies the correlation stack and
/// the uncorrelated-subquery cache).
Result<Value> EvaluateExpr(const BoundExpr& expr, const Row& row,
                           ExecContext* ctx);

/// Evaluates a predicate: true only if the expression evaluates to
/// boolean TRUE (NULL and FALSE both reject, as in SQL WHERE).
Result<bool> EvaluatePredicate(const BoundExpr& expr, const Row& row,
                               ExecContext* ctx);

/// SQL CAST between value kinds; NULL casts to NULL.
Result<Value> CastValue(const Value& value, ColumnType target);

}  // namespace pdm

#endif  // PDM_EXEC_EXPR_EVAL_H_
