#ifndef PDM_EXEC_EXPR_EVAL_H_
#define PDM_EXEC_EXPR_EVAL_H_

#include "common/result.h"
#include "common/value.h"
#include "exec/exec_context.h"
#include "plan/bound_expr.h"

namespace pdm {

/// Evaluates a bound expression against `row` (level 0) with SQL
/// three-valued logic: NULL is represented by Value::Null(), AND/OR use
/// Kleene semantics, comparisons with NULL yield NULL. Subqueries are
/// executed through `ctx` (which also supplies the correlation stack and
/// the uncorrelated-subquery cache).
Result<Value> EvaluateExpr(const BoundExpr& expr, const Row& row,
                           ExecContext* ctx);

/// Evaluates a predicate: true only if the expression evaluates to
/// boolean TRUE (NULL and FALSE both reject, as in SQL WHERE).
Result<bool> EvaluatePredicate(const BoundExpr& expr, const Row& row,
                               ExecContext* ctx);

/// SQL CAST between value kinds; NULL casts to NULL.
Result<Value> CastValue(const Value& value, ColumnType target);

// Shared SQL value semantics, used by both the row-at-a-time evaluator
// above and the vectorized evaluator (exec/vectorized.cc) so the two
// engines cannot drift apart.

/// SQL comparison producing NULL on NULL inputs; error on incomparable
/// non-NULL kinds.
Result<Value> SqlCompareValues(sql::BinaryOp op, const Value& a,
                               const Value& b);

/// SQL arithmetic (+ - * / % ||): NULL-propagating, integer division on
/// int/int, division-by-zero error, lenient string concatenation.
Result<Value> SqlArithmeticValues(sql::BinaryOp op, const Value& a,
                                  const Value& b);

/// Kleene three-valued AND/OR over {TRUE, FALSE, NULL}; error on
/// non-boolean operands.
Result<Value> SqlLogicValues(sql::BinaryOp op, const Value& a,
                             const Value& b);

}  // namespace pdm

#endif  // PDM_EXEC_EXPR_EVAL_H_
