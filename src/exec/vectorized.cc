#include "exec/vectorized.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/table.h"
#include "common/string_util.h"
#include "exec/aggregate_state.h"
#include "exec/expr_eval.h"
#include "exec/vec_batch.h"

namespace pdm {

namespace {

// The row engine's non-boolean error message depends on the operator
// consuming the value; the tri-state evaluator threads the right one
// through so both engines fail identically.
constexpr const char* kNonBoolLogic = "boolean operator on non-boolean value";
constexpr const char* kNonBoolNot = "NOT on non-boolean value";
constexpr const char* kNonBoolPredicate =
    "predicate did not evaluate to a boolean";

// ---------------------------------------------------------------------------
// Plan gate
// ---------------------------------------------------------------------------

/// Decomposed vectorizable plan. `filters` are in application order:
/// the scan's pushed-down filter first, then FilterNodes innermost-out —
/// the same per-row order the Volcano operators evaluate them in.
struct VecPlan {
  const ScanNode* scan = nullptr;
  std::vector<const BoundExpr*> filters;
  const std::vector<BoundExprPtr>* project = nullptr;  // null = SELECT *
  bool has_limit = false;
  int64_t limit = 0;
};

/// Collects the column of every `column = non-NULL-literal` conjunct of
/// the top-level AND chain — the conjuncts the row engine's
/// ScanExecutor can answer through a column index.
void CollectEqualityColumns(const BoundExpr& filter,
                            std::vector<size_t>* out) {
  if (filter.kind != BoundExprKind::kBinary) return;
  const auto& bin = static_cast<const BoundBinary&>(filter);
  if (bin.op == sql::BinaryOp::kAnd) {
    CollectEqualityColumns(*bin.lhs, out);
    CollectEqualityColumns(*bin.rhs, out);
    return;
  }
  if (bin.op != sql::BinaryOp::kEq) return;
  const BoundExpr* col = bin.lhs.get();
  const BoundExpr* lit = bin.rhs.get();
  if (col->kind != BoundExprKind::kColumnRef) std::swap(col, lit);
  if (col->kind == BoundExprKind::kColumnRef &&
      lit->kind == BoundExprKind::kLiteral &&
      static_cast<const BoundColumnRef&>(*col).level == 0 &&
      !static_cast<const BoundLiteral&>(*lit).value.is_null()) {
    out->push_back(static_cast<const BoundColumnRef&>(*col).index);
  }
}

/// True when an equality scan belongs to the row engine's index path:
/// some equality column already has a fresh index, or its demand
/// history says the lazy build is about to amortize (second sighting
/// onward). A first-touch point filter on a never-indexed column sweeps
/// batchwise instead — the vectorized full pass costs no more than the
/// full pass the lazy index build would do, and an index nobody asks
/// for twice is never built.
bool RouteScanToRowIndexPath(const ScanNode& scan, const Table& table) {
  if (scan.filter == nullptr) return false;
  std::vector<size_t> cols;
  CollectEqualityColumns(*scan.filter, &cols);
  if (cols.empty()) return false;
  const size_t num_columns = table.schema().num_columns();
  for (size_t c : cols) {
    if (c < num_columns && table.HasFreshIndex(c)) return true;
  }
  bool repeat = false;
  for (size_t c : cols) {
    if (c < num_columns && table.NoteIndexDemand(c) > 0) repeat = true;
  }
  return repeat;
}

/// Whitelist of expressions the batch evaluator reproduces exactly.
/// Tracks the widest level-0 column index so the caller can bounds-check
/// against the table schema before committing to the vectorized path.
bool CanVectorizeExpr(const BoundExpr& expr, size_t* max_col) {
  switch (expr.kind) {
    case BoundExprKind::kLiteral:
      return true;
    case BoundExprKind::kColumnRef: {
      const auto& ref = static_cast<const BoundColumnRef&>(expr);
      if (ref.level != 0) return false;  // correlated: row path only
      *max_col = std::max(*max_col, ref.index);
      return true;
    }
    case BoundExprKind::kUnary:
      return CanVectorizeExpr(*static_cast<const BoundUnary&>(expr).operand,
                              max_col);
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(expr);
      return CanVectorizeExpr(*e.lhs, max_col) &&
             CanVectorizeExpr(*e.rhs, max_col);
    }
    case BoundExprKind::kCast:
      return CanVectorizeExpr(*static_cast<const BoundCast&>(expr).operand,
                              max_col);
    case BoundExprKind::kIsNull:
      return CanVectorizeExpr(*static_cast<const BoundIsNull&>(expr).operand,
                              max_col);
    case BoundExprKind::kInList: {
      const auto& e = static_cast<const BoundInList&>(expr);
      // Expression items have per-row, per-item short-circuit order;
      // only the binder's precomputed literal-set form maps onto a
      // batch without re-deriving that order.
      return e.use_literal_set && CanVectorizeExpr(*e.operand, max_col);
    }
    case BoundExprKind::kBetween: {
      const auto& e = static_cast<const BoundBetween&>(expr);
      return CanVectorizeExpr(*e.operand, max_col) &&
             CanVectorizeExpr(*e.low, max_col) &&
             CanVectorizeExpr(*e.high, max_col);
    }
    case BoundExprKind::kLike: {
      const auto& e = static_cast<const BoundLike&>(expr);
      return CanVectorizeExpr(*e.operand, max_col) &&
             CanVectorizeExpr(*e.pattern, max_col);
    }
    case BoundExprKind::kFunctionCall:  // opaque scalar function
    case BoundExprKind::kCase:          // per-row WHEN short-circuit
    case BoundExprKind::kSubquery:      // needs the row-path machinery
      return false;
  }
  return false;
}

/// Peels Limit? -> Project? -> Filter* -> Scan; false on any other shape.
bool Decompose(const PlanNode& plan, VecPlan* out) {
  const PlanNode* node = &plan;
  if (node->kind == PlanKind::kLimit) {
    const auto& limit = static_cast<const LimitNode&>(*node);
    out->has_limit = true;
    out->limit = limit.limit;
    node = limit.child.get();
    if (node == nullptr) return false;
  }
  if (node->kind == PlanKind::kProject) {
    const auto& project = static_cast<const ProjectNode&>(*node);
    out->project = &project.exprs;
    node = project.child.get();
    if (node == nullptr) return false;  // SELECT without FROM
  }
  std::vector<const BoundExpr*> outer_first;
  while (node->kind == PlanKind::kFilter) {
    const auto& filter = static_cast<const FilterNode&>(*node);
    outer_first.push_back(filter.predicate.get());
    node = filter.child.get();
  }
  if (node->kind != PlanKind::kScan) return false;
  out->scan = static_cast<const ScanNode*>(node);
  if (out->scan->filter != nullptr) {
    out->filters.push_back(out->scan->filter.get());
  }
  out->filters.insert(out->filters.end(), outer_first.rbegin(),
                      outer_first.rend());
  return true;
}

// ---------------------------------------------------------------------------
// Dense tier: expression -> one Value per selected slot
// ---------------------------------------------------------------------------

Status EvalDense(const BoundExpr& expr, const FragmentSpan& span,
                 const uint32_t* rows, size_t n, std::vector<Value>* out);

/// AND/OR with the row engine's short-circuit: the rhs is evaluated only
/// for slots the lhs did not already decide (bool FALSE for AND, bool
/// TRUE for OR) — so an rhs that would error on a short-circuited slot
/// stays silent, exactly as on the row path.
Status EvalDenseLogic(const BoundBinary& e, const FragmentSpan& span,
                      const uint32_t* rows, size_t n,
                      std::vector<Value>* out) {
  const bool is_and = e.op == sql::BinaryOp::kAnd;
  std::vector<Value> lhs;
  PDM_RETURN_NOT_OK(EvalDense(*e.lhs, span, rows, n, &lhs));
  std::vector<uint32_t> rest_rows;
  std::vector<size_t> rest_idx;
  for (size_t i = 0; i < n; ++i) {
    if (lhs[i].is_bool() && lhs[i].bool_value() != is_and) continue;
    rest_rows.push_back(rows[i]);
    rest_idx.push_back(i);
  }
  std::vector<Value> rhs;
  if (!rest_rows.empty()) {
    PDM_RETURN_NOT_OK(
        EvalDense(*e.rhs, span, rest_rows.data(), rest_rows.size(), &rhs));
  }
  out->resize(n);
  for (size_t i = 0; i < n; ++i) (*out)[i] = Value::Bool(!is_and);
  for (size_t j = 0; j < rest_idx.size(); ++j) {
    Result<Value> v = SqlLogicValues(e.op, lhs[rest_idx[j]], rhs[j]);
    if (!v.ok()) return v.status();
    (*out)[rest_idx[j]] = std::move(v).value();
  }
  return Status::OK();
}

Status EvalDense(const BoundExpr& expr, const FragmentSpan& span,
                 const uint32_t* rows, size_t n, std::vector<Value>* out) {
  switch (expr.kind) {
    case BoundExprKind::kLiteral: {
      const Value& v = static_cast<const BoundLiteral&>(expr).value;
      out->resize(n);
      for (size_t i = 0; i < n; ++i) (*out)[i] = v;
      return Status::OK();
    }
    case BoundExprKind::kColumnRef: {
      const auto& ref = static_cast<const BoundColumnRef&>(expr);
      const ColumnFragment& col = span.fragment->cols[ref.index];
      out->resize(n);  // no clear: LoadInto recycles string capacity
      for (size_t i = 0; i < n; ++i) col.LoadInto(rows[i], &(*out)[i]);
      return Status::OK();
    }
    case BoundExprKind::kUnary: {
      const auto& e = static_cast<const BoundUnary&>(expr);
      std::vector<Value> v;
      PDM_RETURN_NOT_OK(EvalDense(*e.operand, span, rows, n, &v));
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        if (v[i].is_null()) {
          (*out)[i] = Value::Null();
        } else if (e.op == sql::UnaryOp::kNot) {
          if (!v[i].is_bool()) return Status::ExecutionError(kNonBoolNot);
          (*out)[i] = Value::Bool(!v[i].bool_value());
        } else if (v[i].is_int64()) {
          (*out)[i] = Value::Int64(-v[i].int64_value());
        } else if (v[i].is_double()) {
          (*out)[i] = Value::Double(-v[i].double_value());
        } else {
          return Status::ExecutionError("unary minus on non-numeric value");
        }
      }
      return Status::OK();
    }
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(expr);
      if (e.op == sql::BinaryOp::kAnd || e.op == sql::BinaryOp::kOr) {
        return EvalDenseLogic(e, span, rows, n, out);
      }
      std::vector<Value> a;
      std::vector<Value> b;
      PDM_RETURN_NOT_OK(EvalDense(*e.lhs, span, rows, n, &a));
      PDM_RETURN_NOT_OK(EvalDense(*e.rhs, span, rows, n, &b));
      const bool compare = e.op == sql::BinaryOp::kEq ||
                           e.op == sql::BinaryOp::kNotEq ||
                           e.op == sql::BinaryOp::kLess ||
                           e.op == sql::BinaryOp::kLessEq ||
                           e.op == sql::BinaryOp::kGreater ||
                           e.op == sql::BinaryOp::kGreaterEq;
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        Result<Value> v = compare ? SqlCompareValues(e.op, a[i], b[i])
                                  : SqlArithmeticValues(e.op, a[i], b[i]);
        if (!v.ok()) return v.status();
        (*out)[i] = std::move(v).value();
      }
      return Status::OK();
    }
    case BoundExprKind::kCast: {
      const auto& e = static_cast<const BoundCast&>(expr);
      std::vector<Value> v;
      PDM_RETURN_NOT_OK(EvalDense(*e.operand, span, rows, n, &v));
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        Result<Value> c = CastValue(v[i], e.target_type);
        if (!c.ok()) return c.status();
        (*out)[i] = std::move(c).value();
      }
      return Status::OK();
    }
    case BoundExprKind::kIsNull: {
      const auto& e = static_cast<const BoundIsNull&>(expr);
      std::vector<Value> v;
      PDM_RETURN_NOT_OK(EvalDense(*e.operand, span, rows, n, &v));
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        (*out)[i] = Value::Bool(e.negated ? !v[i].is_null() : v[i].is_null());
      }
      return Status::OK();
    }
    case BoundExprKind::kInList: {
      const auto& e = static_cast<const BoundInList&>(expr);
      std::vector<Value> needle;
      PDM_RETURN_NOT_OK(EvalDense(*e.operand, span, rows, n, &needle));
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        if (needle[i].is_null()) {
          (*out)[i] = Value::Null();
        } else if (e.literal_set.count(needle[i]) > 0) {
          (*out)[i] = Value::Bool(!e.negated);
        } else if (e.literal_list_has_null) {
          (*out)[i] = Value::Null();
        } else {
          (*out)[i] = Value::Bool(e.negated);
        }
      }
      return Status::OK();
    }
    case BoundExprKind::kBetween: {
      const auto& e = static_cast<const BoundBetween&>(expr);
      std::vector<Value> v;
      std::vector<Value> lo;
      std::vector<Value> hi;
      PDM_RETURN_NOT_OK(EvalDense(*e.operand, span, rows, n, &v));
      PDM_RETURN_NOT_OK(EvalDense(*e.low, span, rows, n, &lo));
      PDM_RETURN_NOT_OK(EvalDense(*e.high, span, rows, n, &hi));
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        Result<Value> ge =
            SqlCompareValues(sql::BinaryOp::kGreaterEq, v[i], lo[i]);
        if (!ge.ok()) return ge.status();
        Result<Value> le =
            SqlCompareValues(sql::BinaryOp::kLessEq, v[i], hi[i]);
        if (!le.ok()) return le.status();
        Result<Value> both =
            SqlLogicValues(sql::BinaryOp::kAnd, ge.value(), le.value());
        if (!both.ok()) return both.status();
        Value b = std::move(both).value();
        if (e.negated && !b.is_null()) b = Value::Bool(!b.bool_value());
        (*out)[i] = std::move(b);
      }
      return Status::OK();
    }
    case BoundExprKind::kLike: {
      const auto& e = static_cast<const BoundLike&>(expr);
      std::vector<Value> text;
      std::vector<Value> pattern;
      PDM_RETURN_NOT_OK(EvalDense(*e.operand, span, rows, n, &text));
      PDM_RETURN_NOT_OK(EvalDense(*e.pattern, span, rows, n, &pattern));
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        if (text[i].is_null() || pattern[i].is_null()) {
          (*out)[i] = Value::Null();
          continue;
        }
        if (!text[i].is_string() || !pattern[i].is_string()) {
          return Status::ExecutionError("LIKE requires string operands");
        }
        const bool match =
            SqlLikeMatch(text[i].string_value(), pattern[i].string_value());
        (*out)[i] = Value::Bool(e.negated ? !match : match);
      }
      return Status::OK();
    }
    case BoundExprKind::kFunctionCall:
    case BoundExprKind::kCase:
    case BoundExprKind::kSubquery:
      break;  // rejected by CanVectorizeExpr
  }
  return Status::Internal("expression kind not vectorizable");
}

// ---------------------------------------------------------------------------
// Tri tier: predicate -> {TRUE=1, FALSE=0, NULL=-1} per selected slot
// ---------------------------------------------------------------------------

using TriVec = std::vector<int8_t>;

Status EvalTri(const BoundExpr& expr, const FragmentSpan& span,
               const uint32_t* rows, size_t n, const char* nonbool_error,
               TriVec* out);

/// tri := cell <op> literal (or flipped), straight off the column
/// arrays: no Value is constructed for any cell. Mirrors
/// SqlCompareValues exactly — NULL on a NULL side, error on incomparable
/// non-NULL kinds, exact int64 compare, mixed numerics via double.
Status CompareColumnLiteral(sql::BinaryOp op, const ColumnSpan& col,
                            const Value& lit, bool lit_on_left,
                            const uint32_t* rows, size_t n, TriVec* out) {
  out->resize(n);
  if (lit.is_null()) {
    std::fill(out->begin(), out->end(), int8_t{-1});
    return Status::OK();
  }
  const ValueKind lk = lit.kind();
  const bool lit_numeric = lit.is_numeric();
  const int64_t li = lit.is_int64() ? lit.int64_value() : 0;
  const double ld = lit_numeric ? lit.AsDouble() : 0.0;
  const std::string* ls = lit.is_string() ? &lit.string_value() : nullptr;
  const int lb = lit.is_bool() ? (lit.bool_value() ? 1 : 0) : 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t slot = rows[i];
    const ValueKind ck = static_cast<ValueKind>(col.kinds[slot]);
    if (ck == ValueKind::kNull) {
      (*out)[i] = -1;
      continue;
    }
    int c;  // sign of (cell - literal)
    if (ck == ValueKind::kInt64 && lk == ValueKind::kInt64) {
      const int64_t x = static_cast<int64_t>(col.fixed[slot]);
      c = x < li ? -1 : (x > li ? 1 : 0);
    } else if ((ck == ValueKind::kInt64 || ck == ValueKind::kDouble) &&
               lit_numeric) {
      const double x =
          ck == ValueKind::kInt64
              ? static_cast<double>(static_cast<int64_t>(col.fixed[slot]))
              : BitsToDouble(col.fixed[slot]);
      c = x < ld ? -1 : (x > ld ? 1 : 0);
    } else if (ck == ValueKind::kString && lk == ValueKind::kString) {
      const int r = col.strs[slot].compare(*ls);
      c = r < 0 ? -1 : (r > 0 ? 1 : 0);
    } else if (ck == ValueKind::kBool && lk == ValueKind::kBool) {
      c = (col.fixed[slot] != 0 ? 1 : 0) - lb;
    } else {
      const std::string cn(ValueKindName(ck));
      const std::string ln(ValueKindName(lk));
      return Status::ExecutionError(StrFormat(
          "cannot compare %s with %s", lit_on_left ? ln.c_str() : cn.c_str(),
          lit_on_left ? cn.c_str() : ln.c_str()));
    }
    if (lit_on_left) c = -c;
    bool t;
    switch (op) {
      case sql::BinaryOp::kEq:
        t = c == 0;
        break;
      case sql::BinaryOp::kNotEq:
        t = c != 0;
        break;
      case sql::BinaryOp::kLess:
        t = c < 0;
        break;
      case sql::BinaryOp::kLessEq:
        t = c <= 0;
        break;
      case sql::BinaryOp::kGreater:
        t = c > 0;
        break;
      case sql::BinaryOp::kGreaterEq:
        t = c >= 0;
        break;
      default:
        return Status::Internal("not a comparison operator");
    }
    (*out)[i] = t ? 1 : 0;
  }
  return Status::OK();
}

/// Kleene AND/OR with row-engine short-circuit at batch granularity: the
/// rhs runs only over slots the lhs left undecided.
Status EvalTriLogic(const BoundBinary& e, const FragmentSpan& span,
                    const uint32_t* rows, size_t n, TriVec* out) {
  const bool is_and = e.op == sql::BinaryOp::kAnd;
  const int8_t decided = is_and ? 0 : 1;
  TriVec lhs;
  PDM_RETURN_NOT_OK(EvalTri(*e.lhs, span, rows, n, kNonBoolLogic, &lhs));
  std::vector<uint32_t> rest_rows;
  std::vector<size_t> rest_idx;
  for (size_t i = 0; i < n; ++i) {
    if (lhs[i] == decided) continue;
    rest_rows.push_back(rows[i]);
    rest_idx.push_back(i);
  }
  TriVec rhs;
  if (!rest_rows.empty()) {
    PDM_RETURN_NOT_OK(EvalTri(*e.rhs, span, rest_rows.data(),
                              rest_rows.size(), kNonBoolLogic, &rhs));
  }
  out->resize(n);
  std::fill(out->begin(), out->end(), decided);
  for (size_t j = 0; j < rest_idx.size(); ++j) {
    const int8_t l = lhs[rest_idx[j]];
    const int8_t r = rhs[j];
    int8_t v;
    if (is_and) {
      v = r == 0 ? 0 : ((l == 1 && r == 1) ? 1 : int8_t{-1});
    } else {
      v = r == 1 ? 1 : ((l == 0 && r == 0) ? 0 : int8_t{-1});
    }
    (*out)[rest_idx[j]] = v;
  }
  return Status::OK();
}

Status EvalTri(const BoundExpr& expr, const FragmentSpan& span,
               const uint32_t* rows, size_t n, const char* nonbool_error,
               TriVec* out) {
  switch (expr.kind) {
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(expr);
      if (e.op == sql::BinaryOp::kAnd || e.op == sql::BinaryOp::kOr) {
        return EvalTriLogic(e, span, rows, n, out);
      }
      const bool compare = e.op == sql::BinaryOp::kEq ||
                           e.op == sql::BinaryOp::kNotEq ||
                           e.op == sql::BinaryOp::kLess ||
                           e.op == sql::BinaryOp::kLessEq ||
                           e.op == sql::BinaryOp::kGreater ||
                           e.op == sql::BinaryOp::kGreaterEq;
      if (compare) {
        const BoundExpr* l = e.lhs.get();
        const BoundExpr* r = e.rhs.get();
        if (l->kind == BoundExprKind::kColumnRef &&
            r->kind == BoundExprKind::kLiteral) {
          const auto& ref = static_cast<const BoundColumnRef&>(*l);
          return CompareColumnLiteral(
              e.op, span.column(ref.index),
              static_cast<const BoundLiteral&>(*r).value,
              /*lit_on_left=*/false, rows, n, out);
        }
        if (l->kind == BoundExprKind::kLiteral &&
            r->kind == BoundExprKind::kColumnRef) {
          const auto& ref = static_cast<const BoundColumnRef&>(*r);
          return CompareColumnLiteral(
              e.op, span.column(ref.index),
              static_cast<const BoundLiteral&>(*l).value,
              /*lit_on_left=*/true, rows, n, out);
        }
        std::vector<Value> a;
        std::vector<Value> b;
        PDM_RETURN_NOT_OK(EvalDense(*e.lhs, span, rows, n, &a));
        PDM_RETURN_NOT_OK(EvalDense(*e.rhs, span, rows, n, &b));
        out->resize(n);
        for (size_t i = 0; i < n; ++i) {
          Result<Value> v = SqlCompareValues(e.op, a[i], b[i]);
          if (!v.ok()) return v.status();
          const Value& c = v.value();
          (*out)[i] = c.is_null() ? int8_t{-1} : (c.bool_value() ? 1 : 0);
        }
        return Status::OK();
      }
      break;  // arithmetic result as a predicate: generic conversion
    }
    case BoundExprKind::kUnary: {
      const auto& e = static_cast<const BoundUnary&>(expr);
      if (e.op == sql::UnaryOp::kNot) {
        PDM_RETURN_NOT_OK(
            EvalTri(*e.operand, span, rows, n, kNonBoolNot, out));
        for (int8_t& t : *out) {
          if (t != -1) t = t == 1 ? 0 : 1;
        }
        return Status::OK();
      }
      break;
    }
    case BoundExprKind::kIsNull: {
      const auto& e = static_cast<const BoundIsNull&>(expr);
      out->resize(n);
      if (e.operand->kind == BoundExprKind::kColumnRef) {
        // Null-ness straight from the kind tags; never NULL-valued.
        const auto& ref = static_cast<const BoundColumnRef&>(*e.operand);
        const ColumnSpan col = span.column(ref.index);
        for (size_t i = 0; i < n; ++i) {
          const bool isnull = static_cast<ValueKind>(col.kinds[rows[i]]) ==
                              ValueKind::kNull;
          (*out)[i] = (e.negated ? !isnull : isnull) ? 1 : 0;
        }
        return Status::OK();
      }
      std::vector<Value> v;
      PDM_RETURN_NOT_OK(EvalDense(*e.operand, span, rows, n, &v));
      for (size_t i = 0; i < n; ++i) {
        (*out)[i] = (e.negated ? !v[i].is_null() : v[i].is_null()) ? 1 : 0;
      }
      return Status::OK();
    }
    default:
      break;
  }
  // Generic tier: dense-evaluate, then convert with the consuming
  // operator's non-boolean error so failures match the row engine.
  std::vector<Value> vals;
  PDM_RETURN_NOT_OK(EvalDense(expr, span, rows, n, &vals));
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Value& v = vals[i];
    if (v.is_null()) {
      (*out)[i] = -1;
    } else if (v.is_bool()) {
      (*out)[i] = v.bool_value() ? 1 : 0;
    } else {
      return Status::ExecutionError(nonbool_error);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// VecSource: the shared batch producer under the bridge operators
// ---------------------------------------------------------------------------

/// A vec-coverable `Project? -> Filter* -> Scan` chain: the shape every
/// bridge operator consumes batches from. `filters` are in the row
/// engine's application order and reference table columns (they sit
/// below the projection); `max_col` is the widest level-0 column any
/// filter references (bounds-checked against the table schema on
/// resolve). A non-empty `out_cols` is a trivial projection — output
/// column c reads table column out_cols[c]; empty means identity.
struct VecSourceSpec {
  const ScanNode* scan = nullptr;
  std::vector<const BoundExpr*> filters;
  size_t max_col = 0;
  std::vector<size_t> out_cols;

  size_t TableCol(size_t c) const { return out_cols.empty() ? c : out_cols[c]; }
  size_t Width(const Table& table) const {
    return out_cols.empty() ? table.schema().num_columns() : out_cols.size();
  }
};

/// Peels `Project? -> Filter* -> Scan` — the Project only when every
/// expression is a bare level-0 column ref (the shape derived tables
/// leave on a hash join's build side) — and gates the filters through
/// the vectorizable-expression whitelist; false on any other shape.
bool MatchVecSource(const PlanNode& plan, VecSourceSpec* out) {
  const PlanNode* node = &plan;
  if (node->kind == PlanKind::kProject) {
    const auto& project = static_cast<const ProjectNode&>(*node);
    if (project.child == nullptr || project.exprs.empty()) return false;
    for (const BoundExprPtr& e : project.exprs) {
      if (e->kind != BoundExprKind::kColumnRef) return false;
      const auto& ref = static_cast<const BoundColumnRef&>(*e);
      if (ref.level != 0) return false;
      out->out_cols.push_back(ref.index);
    }
    node = project.child.get();
  }
  std::vector<const BoundExpr*> outer_first;
  while (node->kind == PlanKind::kFilter) {
    const auto& filter = static_cast<const FilterNode&>(*node);
    outer_first.push_back(filter.predicate.get());
    node = filter.child.get();
  }
  if (node->kind != PlanKind::kScan) return false;
  out->scan = static_cast<const ScanNode*>(node);
  if (out->scan->filter != nullptr) {
    out->filters.push_back(out->scan->filter.get());
  }
  out->filters.insert(out->filters.end(), outer_first.rbegin(),
                      outer_first.rend());
  for (const BoundExpr* f : out->filters) {
    if (!CanVectorizeExpr(*f, &out->max_col)) return false;
  }
  return true;
}

/// Resolves the source's base table, applying the bounds check and the
/// row-index routing rule. nullptr = run this source (and whatever sits
/// on top of it) on the row path.
const Table* ResolveVecSource(const VecSourceSpec& spec, ExecContext* ctx) {
  Result<Table*> table_or = ctx->catalog()->GetTable(spec.scan->table_name);
  if (!table_or.ok()) return nullptr;  // row path reports the same error
  const Table* table = table_or.value();
  const size_t num_columns = table->schema().num_columns();
  if (!spec.filters.empty() && spec.max_col >= num_columns) {
    return nullptr;  // defensive: let the row path surface the binder bug
  }
  for (size_t c : spec.out_cols) {
    if (c >= num_columns) return nullptr;
  }
  if (RouteScanToRowIndexPath(*spec.scan, *table)) return nullptr;
  return table;
}

/// Streams the filtered batches of a resolved VecSource: per fragment a
/// vectorized MVCC pass fills the selection vector, the filters shrink
/// it, and only non-empty survivors come back. Charges the same stats
/// the whole-plan vectorized scan does.
class VecSourceCursor {
 public:
  VecSourceCursor(const VecSourceSpec* spec, const Table* table,
                  ExecContext* ctx)
      : spec_(spec), table_(table), ctx_(ctx) {
    bound_ = table_->num_versions();
    frags_ = (bound_ + kFragmentRows - 1) >> kFragmentShift;
  }

  Result<bool> NextBatch(VecBatch* batch) {
    ExecStats& stats = ctx_->stats();
    while (frag_ < frags_) {
      batch->span = table_->FragmentAt(frag_++, bound_);
      batch->FillVisible(ctx_->snapshot_ts());
      stats.vec_batches++;
      stats.rows_scanned += batch->sel.size();
      stats.vec_rows_scanned += batch->sel.size();
      for (const BoundExpr* f : spec_->filters) {
        if (batch->sel.empty()) break;
        PDM_RETURN_NOT_OK(EvalTri(*f, batch->span, batch->sel.data(),
                                  batch->sel.size(), kNonBoolPredicate,
                                  &tri_));
        survivors_.clear();
        for (size_t i = 0; i < batch->sel.size(); ++i) {
          if (tri_[i] == 1) survivors_.push_back(batch->sel[i]);
        }
        batch->sel.swap(survivors_);
      }
      if (!batch->sel.empty()) return true;
    }
    return false;
  }

 private:
  const VecSourceSpec* spec_;
  const Table* table_;
  ExecContext* ctx_;
  size_t bound_ = 0;
  size_t frags_ = 0;
  size_t frag_ = 0;
  TriVec tri_;
  std::vector<uint32_t> survivors_;
};

// ---------------------------------------------------------------------------
// Bridge operators (DESIGN.md 5j)
// ---------------------------------------------------------------------------

/// Batch->row bridge leaf: runs a `Filter* -> Scan` chain batchwise and
/// streams the surviving rows to a row-path parent (Sort, CASE
/// projection, NLJ, ...). Output rows and order are identical to the
/// ScanExecutor/FilterExecutor chain's.
class VecScanExecutor : public Executor {
 public:
  VecScanExecutor(VecSourceSpec spec, const Table* table, ExecContext* ctx)
      : spec_(std::move(spec)), table_(table), ctx_(ctx) {}

  Status Open() override {
    cursor_ = std::make_unique<VecSourceCursor>(&spec_, table_, ctx_);
    width_ = spec_.Width(*table_);
    batch_.sel.clear();
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    while (pos_ >= batch_.sel.size()) {
      pos_ = 0;
      PDM_ASSIGN_OR_RETURN(bool has, cursor_->NextBatch(&batch_));
      if (!has) return false;
    }
    // Late materialization of the fragment's survivors: whole rows, or
    // just the projected columns when a Project was peeled. Filled
    // straight into the caller's row so its capacity is reused across
    // calls — no intermediate row buffer to churn.
    const uint32_t slot = batch_.sel[pos_++];
    row->clear();
    row->reserve(width_);
    for (size_t c = 0; c < width_; ++c) {
      row->push_back(batch_.span.fragment->cols[spec_.TableCol(c)].Load(slot));
    }
    return true;
  }

 private:
  VecSourceSpec spec_;
  const Table* table_;
  ExecContext* ctx_;
  std::unique_ptr<VecSourceCursor> cursor_;
  size_t width_ = 0;
  VecBatch batch_;
  size_t pos_ = 0;
};

// int64<->double conversion is exact below 2^53; the int64 probe-table
// fast path is only engaged while every build key stays inside.
constexpr int64_t kExactDoubleBound = int64_t{1} << 53;

/// Moves an int64 fast-path build into generic Row-keyed form; called
/// when a build key turns out non-int64 or beyond the exact range.
void DemoteToGenericKeys(VecJoinBuild* b) {
  b->table.reserve(b->int64_table.size());
  for (auto& entry : b->int64_table) {
    Row key;
    key.push_back(Value::Int64(entry.first));
    b->table.emplace(std::move(key), std::move(entry.second));
  }
  b->int64_table.clear();
  b->int64_keys = false;
}

/// Builds the hash table of a vectorized build-mode join: batches off
/// the VecSource, key cells read straight from the column arrays,
/// NULL-key rows skipped (they can never match an equi-join — same as
/// the row build), surviving rows late-materialized in scan order.
Status BuildVecJoin(const HashJoinNode& node, const VecSourceSpec& spec,
                    const Table& table, ExecContext* ctx, VecJoinBuild* b) {
  ctx->stats().hash_join_builds++;
  b->int64_keys = node.right_keys.size() == 1;
  const size_t width = spec.Width(table);
  VecSourceCursor cursor(&spec, &table, ctx);
  VecBatch batch;
  while (true) {
    PDM_ASSIGN_OR_RETURN(bool has, cursor.NextBatch(&batch));
    if (!has) break;
    for (uint32_t slot : batch.sel) {
      bool null_key = false;
      for (size_t k : node.right_keys) {
        if (static_cast<ValueKind>(
                batch.span.column(spec.TableCol(k)).kinds[slot]) ==
            ValueKind::kNull) {
          null_key = true;
          break;
        }
      }
      if (null_key) continue;
      const uint32_t idx = static_cast<uint32_t>(b->rows.size());
      bool inserted = false;
      if (b->int64_keys) {
        const ColumnSpan kc =
            batch.span.column(spec.TableCol(node.right_keys[0]));
        if (static_cast<ValueKind>(kc.kinds[slot]) == ValueKind::kInt64) {
          const int64_t x = static_cast<int64_t>(kc.fixed[slot]);
          if (x > -kExactDoubleBound && x < kExactDoubleBound) {
            b->int64_table[x].push_back(idx);
            inserted = true;
          }
        }
        if (!inserted) DemoteToGenericKeys(b);
      }
      if (!inserted) {
        Row key;
        key.reserve(node.right_keys.size());
        for (size_t k : node.right_keys) {
          key.push_back(
              batch.span.fragment->cols[spec.TableCol(k)].Load(slot));
        }
        b->table[std::move(key)].push_back(idx);
      }
      Row row;
      row.reserve(width);
      for (size_t c = 0; c < width; ++c) {
        row.push_back(
            batch.span.fragment->cols[spec.TableCol(c)].Load(slot));
      }
      b->rows.push_back(std::move(row));
    }
  }
  return Status::OK();
}

/// Maps an int64 probe key candidate from whatever kind the probe side
/// holds. Every build key has |x| < 2^53 where the int64<->double
/// conversion is exact, so an integral double in range is the only
/// possible match — the same value-equality SqlCompareValues/RowEq
/// would compute. Returns false for NULL / bool / string / inexact.
bool ExactInt64Probe(ValueKind kind, uint64_t payload, int64_t* probe) {
  if (kind == ValueKind::kInt64) {
    *probe = static_cast<int64_t>(payload);
    return true;
  }
  if (kind == ValueKind::kDouble) {
    const double d = BitsToDouble(payload);
    if (d > -static_cast<double>(kExactDoubleBound) &&
        d < static_cast<double>(kExactDoubleBound) &&
        static_cast<double>(static_cast<int64_t>(d)) == d) {
      *probe = static_cast<int64_t>(d);
      return true;
    }
  }
  return false;
}

/// Vectorized build-mode hash join: the build side is a VecSource built
/// batch-at-a-time (once per statement — the ExecContext caches the
/// build keyed by plan node, so the recursive expand's per-level
/// re-execution probes one shared build); probes go through the int64
/// fast table when every build key allows it.
///
/// When the probe side is itself a VecSource the join runs in cursor
/// mode: probe keys are read straight off the left column spans (no
/// per-row virtual Next, no Value/Row key allocation on the int64
/// path), and the left row is materialized only for probes that
/// actually match. Emission order — per left row, matches in build
/// order — is byte-identical to the row join either way.
class VecHashJoinExecutor : public Executor {
 public:
  // Executor-probe mode: the left side streams rows (bridged or row
  // path); used when the probe side is not a VecSource.
  VecHashJoinExecutor(const HashJoinNode& node, std::unique_ptr<Executor> left,
                      VecSourceSpec spec, const Table* table, ExecContext* ctx)
      : node_(node),
        left_(std::move(left)),
        spec_(std::move(spec)),
        table_(table),
        ctx_(ctx) {}

  // Cursor-probe mode: the left side is a VecSource consumed batchwise.
  VecHashJoinExecutor(const HashJoinNode& node, VecSourceSpec left_spec,
                      const Table* left_table, VecSourceSpec spec,
                      const Table* table, ExecContext* ctx)
      : node_(node),
        lspec_(std::move(left_spec)),
        ltable_(left_table),
        spec_(std::move(spec)),
        table_(table),
        ctx_(ctx) {}

  Status Open() override {
    if (ltable_ != nullptr) {
      cursor_ = std::make_unique<VecSourceCursor>(&lspec_, ltable_, ctx_);
      lwidth_ = lspec_.Width(*ltable_);
      batch_.sel.clear();
      probe_i_ = 0;
    } else {
      PDM_RETURN_NOT_OK(left_->Open());
    }
    build_ = ctx_->FindJoinBuild(&node_);
    if (build_ == nullptr) {
      VecJoinBuild* b = ctx_->EmplaceJoinBuild(&node_);
      PDM_RETURN_NOT_OK(BuildVecJoin(node_, spec_, *table_, ctx_, b));
      build_ = b;
    }
    left_ready_ = false;
    matches_ = nullptr;
    match_pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    while (true) {
      if (matches_ != nullptr) {
        while (match_pos_ < matches_->size()) {
          const Row& right_row = build_->rows[(*matches_)[match_pos_++]];
          if (!left_ready_) MaterializeLeft();
          Row combined;
          combined.reserve(left_row_.size() + right_row.size());
          combined.insert(combined.end(), left_row_.begin(), left_row_.end());
          combined.insert(combined.end(), right_row.begin(), right_row.end());
          if (node_.residual != nullptr) {
            PDM_ASSIGN_OR_RETURN(
                bool pass, EvaluatePredicate(*node_.residual, combined, ctx_));
            if (!pass) continue;
          }
          *row = std::move(combined);
          return true;
        }
        matches_ = nullptr;
      }
      if (ltable_ != nullptr) {
        while (probe_i_ >= batch_.sel.size()) {
          PDM_ASSIGN_OR_RETURN(bool has, cursor_->NextBatch(&batch_));
          if (!has) return false;
          probe_i_ = 0;
          if (build_->int64_keys) {
            key_span_ =
                batch_.span.column(lspec_.TableCol(node_.left_keys[0]));
          }
        }
        slot_ = batch_.sel[probe_i_++];
        ctx_->stats().vec_join_probe_rows++;
        left_ready_ = false;
        match_pos_ = 0;
        matches_ = ProbeSlot(slot_);
      } else {
        PDM_ASSIGN_OR_RETURN(bool has, left_->Next(&left_row_));
        if (!has) return false;
        ctx_->stats().vec_join_probe_rows++;
        left_ready_ = true;
        match_pos_ = 0;
        matches_ = ProbeRow();
      }
    }
  }

 private:
  // Cursor mode defers left materialization until the first emitted
  // pair for this probe slot — non-matching probes never become Rows.
  void MaterializeLeft() {
    left_row_.clear();
    left_row_.reserve(lwidth_);
    for (size_t c = 0; c < lwidth_; ++c) {
      left_row_.push_back(
          batch_.span.fragment->cols[lspec_.TableCol(c)].Load(slot_));
    }
    left_ready_ = true;
  }

  /// Cursor-mode probe: key cells read straight off the column arrays
  /// (key_span_ is re-derived once per batch, not per probe).
  const std::vector<uint32_t>* ProbeSlot(uint32_t slot) const {
    if (build_->int64_keys) {
      int64_t probe = 0;
      if (!ExactInt64Probe(static_cast<ValueKind>(key_span_.kinds[slot]),
                           key_span_.fixed[slot], &probe)) {
        return nullptr;
      }
      auto it = build_->int64_table.find(probe);
      return it == build_->int64_table.end() ? nullptr : &it->second;
    }
    Row key;
    key.reserve(node_.left_keys.size());
    for (size_t k : node_.left_keys) {
      const size_t col = lspec_.TableCol(k);
      if (static_cast<ValueKind>(batch_.span.column(col).kinds[slot]) ==
          ValueKind::kNull) {
        return nullptr;
      }
      key.push_back(batch_.span.fragment->cols[col].Load(slot));
    }
    auto it = build_->table.find(key);
    return it == build_->table.end() ? nullptr : &it->second;
  }

  /// Executor-probe mode: key cells come from the streamed left row.
  const std::vector<uint32_t>* ProbeRow() const {
    if (build_->int64_keys) {
      const Value& key = left_row_[node_.left_keys[0]];
      int64_t probe = 0;
      bool exact = false;
      if (key.is_int64()) {
        probe = key.int64_value();
        exact = true;
      } else if (key.is_double()) {
        const double d = key.double_value();
        if (d > -static_cast<double>(kExactDoubleBound) &&
            d < static_cast<double>(kExactDoubleBound) &&
            static_cast<double>(static_cast<int64_t>(d)) == d) {
          probe = static_cast<int64_t>(d);
          exact = true;
        }
      }
      if (!exact) return nullptr;  // NULL / bool / string / inexact double
      auto it = build_->int64_table.find(probe);
      return it == build_->int64_table.end() ? nullptr : &it->second;
    }
    Row key;
    key.reserve(node_.left_keys.size());
    for (size_t k : node_.left_keys) {
      const Value& v = left_row_[k];
      if (v.is_null()) return nullptr;
      key.push_back(v);
    }
    auto it = build_->table.find(key);
    return it == build_->table.end() ? nullptr : &it->second;
  }

  const HashJoinNode& node_;
  std::unique_ptr<Executor> left_;  // executor-probe mode only
  VecSourceSpec lspec_;             // cursor-probe mode only
  const Table* ltable_ = nullptr;   // non-null selects cursor mode
  VecSourceSpec spec_;
  const Table* table_;
  ExecContext* ctx_;
  const VecJoinBuild* build_ = nullptr;
  std::unique_ptr<VecSourceCursor> cursor_;
  VecBatch batch_;
  ColumnSpan key_span_{};
  size_t lwidth_ = 0;
  size_t probe_i_ = 0;
  uint32_t slot_ = 0;
  Row left_row_;
  bool left_ready_ = false;
  const std::vector<uint32_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

/// Vectorized index join: same eligibility and probe pattern as the row
/// executor's index-join mode (single key, bare base-table scan on the
/// right, probes against the table's shared lazy index — preserving its
/// cross-statement amortization), but matched right rows load straight
/// from the column fragments into the combined row, skipping the
/// MaterializeRow scratch copy the row path pays per pair.
class VecIndexJoinExecutor : public Executor {
 public:
  VecIndexJoinExecutor(const HashJoinNode& node, std::unique_ptr<Executor> left,
                       const Table* table, ExecContext* ctx)
      : node_(node), left_(std::move(left)), table_(table), ctx_(ctx) {}

  Status Open() override {
    PDM_RETURN_NOT_OK(left_->Open());
    bound_ = table_->num_versions();
    have_left_ = false;
    match_pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    const size_t rcols = table_->schema().num_columns();
    while (true) {
      if (!have_left_) {
        PDM_ASSIGN_OR_RETURN(bool has, left_->Next(&left_row_));
        if (!has) return false;
        ctx_->stats().vec_join_probe_rows++;
        ctx_->stats().index_join_probes++;
        have_left_ = true;
        match_pos_ = 0;
        positions_.clear();
        const Value& key = left_row_[node_.left_keys[0]];
        if (!key.is_null()) {
          table_->IndexLookup(node_.right_keys[0], key, &positions_);
        }
      }
      while (match_pos_ < positions_.size()) {
        const size_t pos = positions_[match_pos_++];
        if (!table_->VisibleAt(pos, ctx_->snapshot_ts())) continue;
        const FragmentSpan span =
            table_->FragmentAt(pos >> kFragmentShift, bound_);
        const uint32_t slot = static_cast<uint32_t>(pos & kFragmentMask);
        Row combined;
        combined.reserve(left_row_.size() + rcols);
        combined.insert(combined.end(), left_row_.begin(), left_row_.end());
        for (size_t c = 0; c < rcols; ++c) {
          combined.push_back(span.fragment->cols[c].Load(slot));
        }
        if (node_.residual != nullptr) {
          PDM_ASSIGN_OR_RETURN(
              bool pass, EvaluatePredicate(*node_.residual, combined, ctx_));
          if (!pass) continue;
        }
        *row = std::move(combined);
        return true;
      }
      have_left_ = false;
    }
  }

 private:
  const HashJoinNode& node_;
  std::unique_ptr<Executor> left_;
  const Table* table_;
  ExecContext* ctx_;
  size_t bound_ = 0;
  Row left_row_;
  bool have_left_ = false;
  std::vector<size_t> positions_;
  size_t match_pos_ = 0;
};

/// Vectorized hash aggregation over a VecSource: group keys evaluate
/// dense per batch, COUNT/SUM/AVG on bare columns fold straight off the
/// kind/payload arrays, everything else goes through the shared
/// AggState value semantics. Group order (first seen) and float
/// accumulation order (row order within each group) match the row
/// aggregator exactly.
class VecAggregateExecutor : public Executor {
 public:
  VecAggregateExecutor(const AggregateNode& node, VecSourceSpec spec,
                       const Table* table, ExecContext* ctx)
      : node_(node), spec_(std::move(spec)), table_(table), ctx_(ctx) {}

  Status Open() override {
    groups_.clear();
    group_index_.clear();
    int64_groups_.clear();
    int64_active_ = true;
    pos_ = 0;
    const size_t nagg = node_.aggregates.size();
    // A single bare-column group key gets an int64-keyed group index
    // while every key value stays kInt64 (exact equality, no Row/Value
    // churn per input row); the first non-int64 key demotes to the
    // generic Row-keyed index, whose RowEq numeric equality matches the
    // row aggregator's, preserving already-assigned group ids.
    size_t fast_gcol = kNoFastGroup;
    if (node_.group_exprs.size() == 1 &&
        node_.group_exprs[0]->kind == BoundExprKind::kColumnRef) {
      const auto& ref =
          static_cast<const BoundColumnRef&>(*node_.group_exprs[0]);
      if (ref.level == 0) fast_gcol = ref.index;
    }
    VecSourceCursor cursor(&spec_, table_, ctx_);
    VecBatch batch;
    std::vector<std::vector<Value>> gcols;
    std::vector<uint32_t> gids;
    std::vector<Value> vals;
    while (true) {
      PDM_ASSIGN_OR_RETURN(bool has, cursor.NextBatch(&batch));
      if (!has) break;
      const size_t n = batch.sel.size();
      ctx_->stats().vec_agg_input_rows += n;
      gids.resize(n);
      if (node_.group_exprs.empty()) {
        if (groups_.empty()) {
          groups_.push_back(GroupState{Row{}, std::vector<AggState>(nagg)});
        }
        std::fill(gids.begin(), gids.end(), 0u);
      } else if (fast_gcol != kNoFastGroup) {
        const ColumnSpan gc = batch.span.column(fast_gcol);
        for (size_t i = 0; i < n; ++i) {
          const uint32_t slot = batch.sel[i];
          if (int64_active_ &&
              static_cast<ValueKind>(gc.kinds[slot]) == ValueKind::kInt64) {
            const int64_t k = static_cast<int64_t>(gc.fixed[slot]);
            auto it = int64_groups_.find(k);
            if (it == int64_groups_.end()) {
              gids[i] = static_cast<uint32_t>(groups_.size());
              int64_groups_.emplace(k, groups_.size());
              Row key;
              key.push_back(Value::Int64(k));
              groups_.push_back(
                  GroupState{std::move(key), std::vector<AggState>(nagg)});
            } else {
              gids[i] = static_cast<uint32_t>(it->second);
            }
            continue;
          }
          if (int64_active_) DemoteGroups();
          Row key;
          key.push_back(batch.span.fragment->cols[fast_gcol].Load(slot));
          auto it = group_index_.find(key);
          if (it == group_index_.end()) {
            gids[i] = static_cast<uint32_t>(groups_.size());
            group_index_.emplace(key, groups_.size());
            groups_.push_back(
                GroupState{std::move(key), std::vector<AggState>(nagg)});
          } else {
            gids[i] = static_cast<uint32_t>(it->second);
          }
        }
      } else {
        gcols.resize(node_.group_exprs.size());
        for (size_t g = 0; g < node_.group_exprs.size(); ++g) {
          PDM_RETURN_NOT_OK(EvalDense(*node_.group_exprs[g], batch.span,
                                      batch.sel.data(), n, &gcols[g]));
        }
        for (size_t i = 0; i < n; ++i) {
          Row key;
          key.reserve(gcols.size());
          for (const std::vector<Value>& col : gcols) key.push_back(col[i]);
          auto it = group_index_.find(key);
          if (it == group_index_.end()) {
            gids[i] = static_cast<uint32_t>(groups_.size());
            group_index_.emplace(key, groups_.size());
            groups_.push_back(
                GroupState{std::move(key), std::vector<AggState>(nagg)});
          } else {
            gids[i] = static_cast<uint32_t>(it->second);
          }
        }
      }
      for (size_t a = 0; a < nagg; ++a) {
        const BoundAggregate& agg = node_.aggregates[a];
        if (agg.agg_kind == AggKind::kCountStar) {
          for (size_t i = 0; i < n; ++i) groups_[gids[i]].aggs[a].count++;
          continue;
        }
        if (!agg.distinct && agg.arg->kind == BoundExprKind::kColumnRef) {
          const auto& ref = static_cast<const BoundColumnRef&>(*agg.arg);
          if (ref.level == 0 &&
              (agg.agg_kind == AggKind::kCount ||
               agg.agg_kind == AggKind::kSum ||
               agg.agg_kind == AggKind::kAvg)) {
            PDM_RETURN_NOT_OK(
                AccumulateColumnKernel(agg, batch, ref.index, gids, a));
            continue;
          }
        }
        PDM_RETURN_NOT_OK(
            EvalDense(*agg.arg, batch.span, batch.sel.data(), n, &vals));
        for (size_t i = 0; i < n; ++i) {
          PDM_RETURN_NOT_OK(
              AccumulateAggValue(agg, vals[i], &groups_[gids[i]].aggs[a]));
        }
      }
    }
    // Scalar aggregate over empty input: one all-default group.
    if (node_.group_exprs.empty() && groups_.empty()) {
      groups_.push_back(GroupState{Row{}, std::vector<AggState>(nagg)});
    }
    return Status::OK();
  }

  Result<bool> Next(Row* row) override {
    while (pos_ < groups_.size()) {
      GroupState& g = groups_[pos_++];
      Row out = std::move(g.key);
      out.reserve(out.size() + node_.aggregates.size());
      for (size_t i = 0; i < node_.aggregates.size(); ++i) {
        PDM_ASSIGN_OR_RETURN(Value v,
                             FinalizeAgg(node_.aggregates[i], g.aggs[i]));
        out.push_back(std::move(v));
      }
      if (node_.having != nullptr) {
        PDM_ASSIGN_OR_RETURN(bool pass,
                             EvaluatePredicate(*node_.having, out, ctx_));
        if (!pass) continue;
      }
      *row = std::move(out);
      return true;
    }
    return false;
  }

 private:
  struct GroupState {
    Row key;
    std::vector<AggState> aggs;
  };

  static constexpr size_t kNoFastGroup = std::numeric_limits<size_t>::max();

  /// Folds the int64 group index into the generic Row-keyed one; group
  /// ids are preserved, so accumulation state never moves.
  void DemoteGroups() {
    group_index_.reserve(int64_groups_.size());
    for (const auto& entry : int64_groups_) {
      Row key;
      key.push_back(Value::Int64(entry.first));
      group_index_.emplace(std::move(key), entry.second);
    }
    int64_groups_.clear();
    int64_active_ = false;
  }

  /// COUNT/SUM/AVG over a bare column: fold straight off the fragment's
  /// kind/payload arrays in sel (= row) order — the exact accumulation
  /// AccumulateAggValue would perform per loaded Value, minus the Value.
  Status AccumulateColumnKernel(const BoundAggregate& agg,
                                const VecBatch& batch, size_t col,
                                const std::vector<uint32_t>& gids, size_t a) {
    const ColumnSpan c = batch.span.column(col);
    const size_t n = batch.sel.size();
    if (agg.agg_kind == AggKind::kCount) {
      for (size_t i = 0; i < n; ++i) {
        if (static_cast<ValueKind>(c.kinds[batch.sel[i]]) !=
            ValueKind::kNull) {
          groups_[gids[i]].aggs[a].count++;
        }
      }
      return Status::OK();
    }
    for (size_t i = 0; i < n; ++i) {
      const uint32_t slot = batch.sel[i];
      AggState& st = groups_[gids[i]].aggs[a];
      switch (static_cast<ValueKind>(c.kinds[slot])) {
        case ValueKind::kNull:
          break;
        case ValueKind::kInt64: {
          const int64_t x = static_cast<int64_t>(c.fixed[slot]);
          st.count++;
          st.sum_double += static_cast<double>(x);
          st.sum_int += x;
          break;
        }
        case ValueKind::kDouble:
          st.count++;
          st.saw_double = true;
          st.sum_double += BitsToDouble(c.fixed[slot]);
          break;
        default:
          return Status::ExecutionError(
              std::string(AggKindName(agg.agg_kind)) +
              " over non-numeric values");
      }
    }
    return Status::OK();
  }

  const AggregateNode& node_;
  VecSourceSpec spec_;
  const Table* table_;
  ExecContext* ctx_;
  std::vector<GroupState> groups_;
  std::unordered_map<Row, size_t, RowHash, RowEq> group_index_;
  std::unordered_map<int64_t, size_t> int64_groups_;
  bool int64_active_ = true;
  size_t pos_ = 0;
};

}  // namespace

Result<bool> TryExecuteVectorized(const PlanNode& plan, ExecContext* ctx,
                                  std::vector<Row>* out) {
  VecPlan vp;
  if (!Decompose(plan, &vp)) return false;
  size_t max_col = 0;
  for (const BoundExpr* f : vp.filters) {
    if (!CanVectorizeExpr(*f, &max_col)) return false;
  }
  if (vp.project != nullptr) {
    for (const BoundExprPtr& e : *vp.project) {
      if (!CanVectorizeExpr(*e, &max_col)) return false;
    }
  }
  Result<Table*> table_or = ctx->catalog()->GetTable(vp.scan->table_name);
  if (!table_or.ok()) return false;  // row path reports the same error
  const Table& table = *table_or.value();
  // Point lookups whose index is (or is about to be) worth it belong to
  // the row engine's index scan.
  if (RouteScanToRowIndexPath(*vp.scan, table)) return false;
  const size_t num_columns = table.schema().num_columns();
  if ((!vp.filters.empty() || vp.project != nullptr) &&
      max_col >= num_columns) {
    return false;  // defensive: let the row path surface the binder bug
  }

  const uint64_t snapshot = ctx->snapshot_ts();
  const size_t bound = table.num_versions();
  const size_t frags = (bound + kFragmentRows - 1) >> kFragmentShift;
  const size_t limit =
      vp.has_limit
          ? (vp.limit > 0 ? static_cast<size_t>(vp.limit) : 0)
          : std::numeric_limits<size_t>::max();

  out->clear();
  ExecStats& stats = ctx->stats();
  VecBatch batch;
  TriVec tri;
  std::vector<uint32_t> survivors;
  std::vector<std::vector<Value>> proj_cols;
  for (size_t frag = 0; frag < frags && out->size() < limit; ++frag) {
    batch.span = table.FragmentAt(frag, bound);
    batch.FillVisible(snapshot);
    stats.vec_batches++;
    stats.rows_scanned += batch.sel.size();
    stats.vec_rows_scanned += batch.sel.size();
    for (const BoundExpr* f : vp.filters) {
      if (batch.sel.empty()) break;
      PDM_RETURN_NOT_OK(EvalTri(*f, batch.span, batch.sel.data(),
                                batch.sel.size(), kNonBoolPredicate, &tri));
      survivors.clear();
      for (size_t i = 0; i < batch.sel.size(); ++i) {
        if (tri[i] == 1) survivors.push_back(batch.sel[i]);
      }
      batch.sel.swap(survivors);
    }
    if (batch.sel.empty()) continue;
    const size_t take = std::min(batch.sel.size(), limit - out->size());
    // Late materialization: only now do surviving slots become Values.
    if (vp.project != nullptr) {
      proj_cols.resize(vp.project->size());
      for (size_t e = 0; e < vp.project->size(); ++e) {
        PDM_RETURN_NOT_OK(EvalDense(*(*vp.project)[e], batch.span,
                                    batch.sel.data(), take, &proj_cols[e]));
      }
      for (size_t i = 0; i < take; ++i) {
        Row row;
        row.reserve(proj_cols.size());
        for (std::vector<Value>& col : proj_cols) {
          row.push_back(std::move(col[i]));
        }
        out->push_back(std::move(row));
      }
    } else {
      for (size_t i = 0; i < take; ++i) {
        const uint32_t slot = batch.sel[i];
        Row row;
        row.reserve(num_columns);
        for (size_t c = 0; c < num_columns; ++c) {
          row.push_back(batch.span.fragment->cols[c].Load(slot));
        }
        out->push_back(std::move(row));
      }
    }
  }
  return true;
}

Result<std::unique_ptr<Executor>> MaybeVecExecutor(const PlanNode& plan,
                                                   ExecContext* ctx) {
  std::unique_ptr<Executor> none;
  if (!ctx->options().vectorized_execution) return none;
  switch (plan.kind) {
    case PlanKind::kScan:
    case PlanKind::kFilter:
    case PlanKind::kProject: {
      VecSourceSpec spec;
      if (!MatchVecSource(plan, &spec)) return none;
      // A bare unfiltered, unprojected scan materializes every row at
      // full width either way — batching it under a row parent is pure
      // sel-vector overhead, so leave that shape to ScanExecutor.
      if (spec.filters.empty() && spec.out_cols.empty()) return none;
      const Table* table = ResolveVecSource(spec, ctx);
      if (table == nullptr) return none;
      return std::unique_ptr<Executor>(
          new VecScanExecutor(std::move(spec), table, ctx));
    }
    case PlanKind::kHashJoin: {
      const auto& node = static_cast<const HashJoinNode&>(plan);
      // Same eligibility split as HashJoinExecutor: single-key joins
      // against a bare base-table scan probe the shared lazy index;
      // everything else builds a hash table over the right side.
      if (node.right_keys.size() == 1 &&
          node.right->kind == PlanKind::kScan) {
        const auto& scan = static_cast<const ScanNode&>(*node.right);
        if (scan.filter == nullptr) {
          Result<Table*> table_or = ctx->catalog()->GetTable(scan.table_name);
          if (!table_or.ok()) return none;  // row path reports the error
          if (node.right_keys[0] >=
              table_or.value()->schema().num_columns()) {
            return none;
          }
          PDM_ASSIGN_OR_RETURN(std::unique_ptr<Executor> left,
                               CreateExecutor(*node.left, ctx));
          return std::unique_ptr<Executor>(new VecIndexJoinExecutor(
              node, std::move(left), table_or.value(), ctx));
        }
      }
      VecSourceSpec spec;
      if (!MatchVecSource(*node.right, &spec)) return none;
      const Table* table = ResolveVecSource(spec, ctx);
      if (table == nullptr) return none;
      for (size_t k : node.right_keys) {
        if (k >= spec.Width(*table)) return none;
      }
      // Prefer cursor mode: probe keys come straight off the left
      // column spans, and left rows materialize only on match.
      VecSourceSpec lspec;
      if (MatchVecSource(*node.left, &lspec)) {
        const Table* ltable = ResolveVecSource(lspec, ctx);
        if (ltable != nullptr) {
          bool keys_ok = true;
          for (size_t k : node.left_keys) {
            if (k >= lspec.Width(*ltable)) {
              keys_ok = false;
              break;
            }
          }
          if (keys_ok) {
            return std::unique_ptr<Executor>(
                new VecHashJoinExecutor(node, std::move(lspec), ltable,
                                        std::move(spec), table, ctx));
          }
        }
      }
      PDM_ASSIGN_OR_RETURN(std::unique_ptr<Executor> left,
                           CreateExecutor(*node.left, ctx));
      return std::unique_ptr<Executor>(new VecHashJoinExecutor(
          node, std::move(left), std::move(spec), table, ctx));
    }
    case PlanKind::kAggregate: {
      const auto& node = static_cast<const AggregateNode&>(plan);
      VecSourceSpec spec;
      if (!MatchVecSource(*node.child, &spec)) return none;
      // Group/argument expressions index the child's schema; a peeled
      // projection would shift them, so require the identity shape.
      if (!spec.out_cols.empty()) return none;
      size_t max_col = spec.max_col;
      for (const BoundExprPtr& g : node.group_exprs) {
        if (!CanVectorizeExpr(*g, &max_col)) return none;
      }
      for (const BoundAggregate& agg : node.aggregates) {
        if (agg.arg != nullptr && !CanVectorizeExpr(*agg.arg, &max_col)) {
          return none;
        }
      }
      const Table* table = ResolveVecSource(spec, ctx);
      if (table == nullptr) return none;
      if (max_col >= table->schema().num_columns()) return none;
      return std::unique_ptr<Executor>(
          new VecAggregateExecutor(node, std::move(spec), table, ctx));
    }
    default:
      return none;
  }
}

}  // namespace pdm
