#include "exec/vectorized.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/string_util.h"
#include "exec/expr_eval.h"
#include "exec/vec_batch.h"

namespace pdm {

namespace {

// The row engine's non-boolean error message depends on the operator
// consuming the value; the tri-state evaluator threads the right one
// through so both engines fail identically.
constexpr const char* kNonBoolLogic = "boolean operator on non-boolean value";
constexpr const char* kNonBoolNot = "NOT on non-boolean value";
constexpr const char* kNonBoolPredicate =
    "predicate did not evaluate to a boolean";

// ---------------------------------------------------------------------------
// Plan gate
// ---------------------------------------------------------------------------

/// Decomposed vectorizable plan. `filters` are in application order:
/// the scan's pushed-down filter first, then FilterNodes innermost-out —
/// the same per-row order the Volcano operators evaluate them in.
struct VecPlan {
  const ScanNode* scan = nullptr;
  std::vector<const BoundExpr*> filters;
  const std::vector<BoundExprPtr>* project = nullptr;  // null = SELECT *
  bool has_limit = false;
  int64_t limit = 0;
};

/// True if the row engine's ScanExecutor would answer `filter` through a
/// column index (some `column = non-NULL-literal` conjunct in the
/// top-level AND chain). Such scans stay on the row path: a hash probe
/// on the point value beats any full-fragment sweep.
bool HasIndexableEquality(const BoundExpr& filter) {
  if (filter.kind != BoundExprKind::kBinary) return false;
  const auto& bin = static_cast<const BoundBinary&>(filter);
  if (bin.op == sql::BinaryOp::kAnd) {
    return HasIndexableEquality(*bin.lhs) || HasIndexableEquality(*bin.rhs);
  }
  if (bin.op != sql::BinaryOp::kEq) return false;
  const BoundExpr* col = bin.lhs.get();
  const BoundExpr* lit = bin.rhs.get();
  if (col->kind != BoundExprKind::kColumnRef) std::swap(col, lit);
  return col->kind == BoundExprKind::kColumnRef &&
         lit->kind == BoundExprKind::kLiteral &&
         static_cast<const BoundColumnRef&>(*col).level == 0 &&
         !static_cast<const BoundLiteral&>(*lit).value.is_null();
}

/// Whitelist of expressions the batch evaluator reproduces exactly.
/// Tracks the widest level-0 column index so the caller can bounds-check
/// against the table schema before committing to the vectorized path.
bool CanVectorizeExpr(const BoundExpr& expr, size_t* max_col) {
  switch (expr.kind) {
    case BoundExprKind::kLiteral:
      return true;
    case BoundExprKind::kColumnRef: {
      const auto& ref = static_cast<const BoundColumnRef&>(expr);
      if (ref.level != 0) return false;  // correlated: row path only
      *max_col = std::max(*max_col, ref.index);
      return true;
    }
    case BoundExprKind::kUnary:
      return CanVectorizeExpr(*static_cast<const BoundUnary&>(expr).operand,
                              max_col);
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(expr);
      return CanVectorizeExpr(*e.lhs, max_col) &&
             CanVectorizeExpr(*e.rhs, max_col);
    }
    case BoundExprKind::kCast:
      return CanVectorizeExpr(*static_cast<const BoundCast&>(expr).operand,
                              max_col);
    case BoundExprKind::kIsNull:
      return CanVectorizeExpr(*static_cast<const BoundIsNull&>(expr).operand,
                              max_col);
    case BoundExprKind::kInList: {
      const auto& e = static_cast<const BoundInList&>(expr);
      // Expression items have per-row, per-item short-circuit order;
      // only the binder's precomputed literal-set form maps onto a
      // batch without re-deriving that order.
      return e.use_literal_set && CanVectorizeExpr(*e.operand, max_col);
    }
    case BoundExprKind::kBetween: {
      const auto& e = static_cast<const BoundBetween&>(expr);
      return CanVectorizeExpr(*e.operand, max_col) &&
             CanVectorizeExpr(*e.low, max_col) &&
             CanVectorizeExpr(*e.high, max_col);
    }
    case BoundExprKind::kLike: {
      const auto& e = static_cast<const BoundLike&>(expr);
      return CanVectorizeExpr(*e.operand, max_col) &&
             CanVectorizeExpr(*e.pattern, max_col);
    }
    case BoundExprKind::kFunctionCall:  // opaque scalar function
    case BoundExprKind::kCase:          // per-row WHEN short-circuit
    case BoundExprKind::kSubquery:      // needs the row-path machinery
      return false;
  }
  return false;
}

/// Peels Limit? -> Project? -> Filter* -> Scan; false on any other shape.
bool Decompose(const PlanNode& plan, VecPlan* out) {
  const PlanNode* node = &plan;
  if (node->kind == PlanKind::kLimit) {
    const auto& limit = static_cast<const LimitNode&>(*node);
    out->has_limit = true;
    out->limit = limit.limit;
    node = limit.child.get();
    if (node == nullptr) return false;
  }
  if (node->kind == PlanKind::kProject) {
    const auto& project = static_cast<const ProjectNode&>(*node);
    out->project = &project.exprs;
    node = project.child.get();
    if (node == nullptr) return false;  // SELECT without FROM
  }
  std::vector<const BoundExpr*> outer_first;
  while (node->kind == PlanKind::kFilter) {
    const auto& filter = static_cast<const FilterNode&>(*node);
    outer_first.push_back(filter.predicate.get());
    node = filter.child.get();
  }
  if (node->kind != PlanKind::kScan) return false;
  out->scan = static_cast<const ScanNode*>(node);
  if (out->scan->filter != nullptr) {
    out->filters.push_back(out->scan->filter.get());
  }
  out->filters.insert(out->filters.end(), outer_first.rbegin(),
                      outer_first.rend());
  return true;
}

// ---------------------------------------------------------------------------
// Dense tier: expression -> one Value per selected slot
// ---------------------------------------------------------------------------

Status EvalDense(const BoundExpr& expr, const FragmentSpan& span,
                 const uint32_t* rows, size_t n, std::vector<Value>* out);

/// AND/OR with the row engine's short-circuit: the rhs is evaluated only
/// for slots the lhs did not already decide (bool FALSE for AND, bool
/// TRUE for OR) — so an rhs that would error on a short-circuited slot
/// stays silent, exactly as on the row path.
Status EvalDenseLogic(const BoundBinary& e, const FragmentSpan& span,
                      const uint32_t* rows, size_t n,
                      std::vector<Value>* out) {
  const bool is_and = e.op == sql::BinaryOp::kAnd;
  std::vector<Value> lhs;
  PDM_RETURN_NOT_OK(EvalDense(*e.lhs, span, rows, n, &lhs));
  std::vector<uint32_t> rest_rows;
  std::vector<size_t> rest_idx;
  for (size_t i = 0; i < n; ++i) {
    if (lhs[i].is_bool() && lhs[i].bool_value() != is_and) continue;
    rest_rows.push_back(rows[i]);
    rest_idx.push_back(i);
  }
  std::vector<Value> rhs;
  if (!rest_rows.empty()) {
    PDM_RETURN_NOT_OK(
        EvalDense(*e.rhs, span, rest_rows.data(), rest_rows.size(), &rhs));
  }
  out->resize(n);
  for (size_t i = 0; i < n; ++i) (*out)[i] = Value::Bool(!is_and);
  for (size_t j = 0; j < rest_idx.size(); ++j) {
    Result<Value> v = SqlLogicValues(e.op, lhs[rest_idx[j]], rhs[j]);
    if (!v.ok()) return v.status();
    (*out)[rest_idx[j]] = std::move(v).value();
  }
  return Status::OK();
}

Status EvalDense(const BoundExpr& expr, const FragmentSpan& span,
                 const uint32_t* rows, size_t n, std::vector<Value>* out) {
  switch (expr.kind) {
    case BoundExprKind::kLiteral: {
      const Value& v = static_cast<const BoundLiteral&>(expr).value;
      out->resize(n);
      for (size_t i = 0; i < n; ++i) (*out)[i] = v;
      return Status::OK();
    }
    case BoundExprKind::kColumnRef: {
      const auto& ref = static_cast<const BoundColumnRef&>(expr);
      const ColumnFragment& col = span.fragment->cols[ref.index];
      out->resize(n);  // no clear: LoadInto recycles string capacity
      for (size_t i = 0; i < n; ++i) col.LoadInto(rows[i], &(*out)[i]);
      return Status::OK();
    }
    case BoundExprKind::kUnary: {
      const auto& e = static_cast<const BoundUnary&>(expr);
      std::vector<Value> v;
      PDM_RETURN_NOT_OK(EvalDense(*e.operand, span, rows, n, &v));
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        if (v[i].is_null()) {
          (*out)[i] = Value::Null();
        } else if (e.op == sql::UnaryOp::kNot) {
          if (!v[i].is_bool()) return Status::ExecutionError(kNonBoolNot);
          (*out)[i] = Value::Bool(!v[i].bool_value());
        } else if (v[i].is_int64()) {
          (*out)[i] = Value::Int64(-v[i].int64_value());
        } else if (v[i].is_double()) {
          (*out)[i] = Value::Double(-v[i].double_value());
        } else {
          return Status::ExecutionError("unary minus on non-numeric value");
        }
      }
      return Status::OK();
    }
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(expr);
      if (e.op == sql::BinaryOp::kAnd || e.op == sql::BinaryOp::kOr) {
        return EvalDenseLogic(e, span, rows, n, out);
      }
      std::vector<Value> a;
      std::vector<Value> b;
      PDM_RETURN_NOT_OK(EvalDense(*e.lhs, span, rows, n, &a));
      PDM_RETURN_NOT_OK(EvalDense(*e.rhs, span, rows, n, &b));
      const bool compare = e.op == sql::BinaryOp::kEq ||
                           e.op == sql::BinaryOp::kNotEq ||
                           e.op == sql::BinaryOp::kLess ||
                           e.op == sql::BinaryOp::kLessEq ||
                           e.op == sql::BinaryOp::kGreater ||
                           e.op == sql::BinaryOp::kGreaterEq;
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        Result<Value> v = compare ? SqlCompareValues(e.op, a[i], b[i])
                                  : SqlArithmeticValues(e.op, a[i], b[i]);
        if (!v.ok()) return v.status();
        (*out)[i] = std::move(v).value();
      }
      return Status::OK();
    }
    case BoundExprKind::kCast: {
      const auto& e = static_cast<const BoundCast&>(expr);
      std::vector<Value> v;
      PDM_RETURN_NOT_OK(EvalDense(*e.operand, span, rows, n, &v));
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        Result<Value> c = CastValue(v[i], e.target_type);
        if (!c.ok()) return c.status();
        (*out)[i] = std::move(c).value();
      }
      return Status::OK();
    }
    case BoundExprKind::kIsNull: {
      const auto& e = static_cast<const BoundIsNull&>(expr);
      std::vector<Value> v;
      PDM_RETURN_NOT_OK(EvalDense(*e.operand, span, rows, n, &v));
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        (*out)[i] = Value::Bool(e.negated ? !v[i].is_null() : v[i].is_null());
      }
      return Status::OK();
    }
    case BoundExprKind::kInList: {
      const auto& e = static_cast<const BoundInList&>(expr);
      std::vector<Value> needle;
      PDM_RETURN_NOT_OK(EvalDense(*e.operand, span, rows, n, &needle));
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        if (needle[i].is_null()) {
          (*out)[i] = Value::Null();
        } else if (e.literal_set.count(needle[i]) > 0) {
          (*out)[i] = Value::Bool(!e.negated);
        } else if (e.literal_list_has_null) {
          (*out)[i] = Value::Null();
        } else {
          (*out)[i] = Value::Bool(e.negated);
        }
      }
      return Status::OK();
    }
    case BoundExprKind::kBetween: {
      const auto& e = static_cast<const BoundBetween&>(expr);
      std::vector<Value> v;
      std::vector<Value> lo;
      std::vector<Value> hi;
      PDM_RETURN_NOT_OK(EvalDense(*e.operand, span, rows, n, &v));
      PDM_RETURN_NOT_OK(EvalDense(*e.low, span, rows, n, &lo));
      PDM_RETURN_NOT_OK(EvalDense(*e.high, span, rows, n, &hi));
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        Result<Value> ge =
            SqlCompareValues(sql::BinaryOp::kGreaterEq, v[i], lo[i]);
        if (!ge.ok()) return ge.status();
        Result<Value> le =
            SqlCompareValues(sql::BinaryOp::kLessEq, v[i], hi[i]);
        if (!le.ok()) return le.status();
        Result<Value> both =
            SqlLogicValues(sql::BinaryOp::kAnd, ge.value(), le.value());
        if (!both.ok()) return both.status();
        Value b = std::move(both).value();
        if (e.negated && !b.is_null()) b = Value::Bool(!b.bool_value());
        (*out)[i] = std::move(b);
      }
      return Status::OK();
    }
    case BoundExprKind::kLike: {
      const auto& e = static_cast<const BoundLike&>(expr);
      std::vector<Value> text;
      std::vector<Value> pattern;
      PDM_RETURN_NOT_OK(EvalDense(*e.operand, span, rows, n, &text));
      PDM_RETURN_NOT_OK(EvalDense(*e.pattern, span, rows, n, &pattern));
      out->resize(n);
      for (size_t i = 0; i < n; ++i) {
        if (text[i].is_null() || pattern[i].is_null()) {
          (*out)[i] = Value::Null();
          continue;
        }
        if (!text[i].is_string() || !pattern[i].is_string()) {
          return Status::ExecutionError("LIKE requires string operands");
        }
        const bool match =
            SqlLikeMatch(text[i].string_value(), pattern[i].string_value());
        (*out)[i] = Value::Bool(e.negated ? !match : match);
      }
      return Status::OK();
    }
    case BoundExprKind::kFunctionCall:
    case BoundExprKind::kCase:
    case BoundExprKind::kSubquery:
      break;  // rejected by CanVectorizeExpr
  }
  return Status::Internal("expression kind not vectorizable");
}

// ---------------------------------------------------------------------------
// Tri tier: predicate -> {TRUE=1, FALSE=0, NULL=-1} per selected slot
// ---------------------------------------------------------------------------

using TriVec = std::vector<int8_t>;

Status EvalTri(const BoundExpr& expr, const FragmentSpan& span,
               const uint32_t* rows, size_t n, const char* nonbool_error,
               TriVec* out);

/// tri := cell <op> literal (or flipped), straight off the column
/// arrays: no Value is constructed for any cell. Mirrors
/// SqlCompareValues exactly — NULL on a NULL side, error on incomparable
/// non-NULL kinds, exact int64 compare, mixed numerics via double.
Status CompareColumnLiteral(sql::BinaryOp op, const ColumnSpan& col,
                            const Value& lit, bool lit_on_left,
                            const uint32_t* rows, size_t n, TriVec* out) {
  out->resize(n);
  if (lit.is_null()) {
    std::fill(out->begin(), out->end(), int8_t{-1});
    return Status::OK();
  }
  const ValueKind lk = lit.kind();
  const bool lit_numeric = lit.is_numeric();
  const int64_t li = lit.is_int64() ? lit.int64_value() : 0;
  const double ld = lit_numeric ? lit.AsDouble() : 0.0;
  const std::string* ls = lit.is_string() ? &lit.string_value() : nullptr;
  const int lb = lit.is_bool() ? (lit.bool_value() ? 1 : 0) : 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t slot = rows[i];
    const ValueKind ck = static_cast<ValueKind>(col.kinds[slot]);
    if (ck == ValueKind::kNull) {
      (*out)[i] = -1;
      continue;
    }
    int c;  // sign of (cell - literal)
    if (ck == ValueKind::kInt64 && lk == ValueKind::kInt64) {
      const int64_t x = static_cast<int64_t>(col.fixed[slot]);
      c = x < li ? -1 : (x > li ? 1 : 0);
    } else if ((ck == ValueKind::kInt64 || ck == ValueKind::kDouble) &&
               lit_numeric) {
      const double x =
          ck == ValueKind::kInt64
              ? static_cast<double>(static_cast<int64_t>(col.fixed[slot]))
              : BitsToDouble(col.fixed[slot]);
      c = x < ld ? -1 : (x > ld ? 1 : 0);
    } else if (ck == ValueKind::kString && lk == ValueKind::kString) {
      const int r = col.strs[slot].compare(*ls);
      c = r < 0 ? -1 : (r > 0 ? 1 : 0);
    } else if (ck == ValueKind::kBool && lk == ValueKind::kBool) {
      c = (col.fixed[slot] != 0 ? 1 : 0) - lb;
    } else {
      const std::string cn(ValueKindName(ck));
      const std::string ln(ValueKindName(lk));
      return Status::ExecutionError(StrFormat(
          "cannot compare %s with %s", lit_on_left ? ln.c_str() : cn.c_str(),
          lit_on_left ? cn.c_str() : ln.c_str()));
    }
    if (lit_on_left) c = -c;
    bool t;
    switch (op) {
      case sql::BinaryOp::kEq:
        t = c == 0;
        break;
      case sql::BinaryOp::kNotEq:
        t = c != 0;
        break;
      case sql::BinaryOp::kLess:
        t = c < 0;
        break;
      case sql::BinaryOp::kLessEq:
        t = c <= 0;
        break;
      case sql::BinaryOp::kGreater:
        t = c > 0;
        break;
      case sql::BinaryOp::kGreaterEq:
        t = c >= 0;
        break;
      default:
        return Status::Internal("not a comparison operator");
    }
    (*out)[i] = t ? 1 : 0;
  }
  return Status::OK();
}

/// Kleene AND/OR with row-engine short-circuit at batch granularity: the
/// rhs runs only over slots the lhs left undecided.
Status EvalTriLogic(const BoundBinary& e, const FragmentSpan& span,
                    const uint32_t* rows, size_t n, TriVec* out) {
  const bool is_and = e.op == sql::BinaryOp::kAnd;
  const int8_t decided = is_and ? 0 : 1;
  TriVec lhs;
  PDM_RETURN_NOT_OK(EvalTri(*e.lhs, span, rows, n, kNonBoolLogic, &lhs));
  std::vector<uint32_t> rest_rows;
  std::vector<size_t> rest_idx;
  for (size_t i = 0; i < n; ++i) {
    if (lhs[i] == decided) continue;
    rest_rows.push_back(rows[i]);
    rest_idx.push_back(i);
  }
  TriVec rhs;
  if (!rest_rows.empty()) {
    PDM_RETURN_NOT_OK(EvalTri(*e.rhs, span, rest_rows.data(),
                              rest_rows.size(), kNonBoolLogic, &rhs));
  }
  out->resize(n);
  std::fill(out->begin(), out->end(), decided);
  for (size_t j = 0; j < rest_idx.size(); ++j) {
    const int8_t l = lhs[rest_idx[j]];
    const int8_t r = rhs[j];
    int8_t v;
    if (is_and) {
      v = r == 0 ? 0 : ((l == 1 && r == 1) ? 1 : int8_t{-1});
    } else {
      v = r == 1 ? 1 : ((l == 0 && r == 0) ? 0 : int8_t{-1});
    }
    (*out)[rest_idx[j]] = v;
  }
  return Status::OK();
}

Status EvalTri(const BoundExpr& expr, const FragmentSpan& span,
               const uint32_t* rows, size_t n, const char* nonbool_error,
               TriVec* out) {
  switch (expr.kind) {
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(expr);
      if (e.op == sql::BinaryOp::kAnd || e.op == sql::BinaryOp::kOr) {
        return EvalTriLogic(e, span, rows, n, out);
      }
      const bool compare = e.op == sql::BinaryOp::kEq ||
                           e.op == sql::BinaryOp::kNotEq ||
                           e.op == sql::BinaryOp::kLess ||
                           e.op == sql::BinaryOp::kLessEq ||
                           e.op == sql::BinaryOp::kGreater ||
                           e.op == sql::BinaryOp::kGreaterEq;
      if (compare) {
        const BoundExpr* l = e.lhs.get();
        const BoundExpr* r = e.rhs.get();
        if (l->kind == BoundExprKind::kColumnRef &&
            r->kind == BoundExprKind::kLiteral) {
          const auto& ref = static_cast<const BoundColumnRef&>(*l);
          return CompareColumnLiteral(
              e.op, span.column(ref.index),
              static_cast<const BoundLiteral&>(*r).value,
              /*lit_on_left=*/false, rows, n, out);
        }
        if (l->kind == BoundExprKind::kLiteral &&
            r->kind == BoundExprKind::kColumnRef) {
          const auto& ref = static_cast<const BoundColumnRef&>(*r);
          return CompareColumnLiteral(
              e.op, span.column(ref.index),
              static_cast<const BoundLiteral&>(*l).value,
              /*lit_on_left=*/true, rows, n, out);
        }
        std::vector<Value> a;
        std::vector<Value> b;
        PDM_RETURN_NOT_OK(EvalDense(*e.lhs, span, rows, n, &a));
        PDM_RETURN_NOT_OK(EvalDense(*e.rhs, span, rows, n, &b));
        out->resize(n);
        for (size_t i = 0; i < n; ++i) {
          Result<Value> v = SqlCompareValues(e.op, a[i], b[i]);
          if (!v.ok()) return v.status();
          const Value& c = v.value();
          (*out)[i] = c.is_null() ? int8_t{-1} : (c.bool_value() ? 1 : 0);
        }
        return Status::OK();
      }
      break;  // arithmetic result as a predicate: generic conversion
    }
    case BoundExprKind::kUnary: {
      const auto& e = static_cast<const BoundUnary&>(expr);
      if (e.op == sql::UnaryOp::kNot) {
        PDM_RETURN_NOT_OK(
            EvalTri(*e.operand, span, rows, n, kNonBoolNot, out));
        for (int8_t& t : *out) {
          if (t != -1) t = t == 1 ? 0 : 1;
        }
        return Status::OK();
      }
      break;
    }
    case BoundExprKind::kIsNull: {
      const auto& e = static_cast<const BoundIsNull&>(expr);
      out->resize(n);
      if (e.operand->kind == BoundExprKind::kColumnRef) {
        // Null-ness straight from the kind tags; never NULL-valued.
        const auto& ref = static_cast<const BoundColumnRef&>(*e.operand);
        const ColumnSpan col = span.column(ref.index);
        for (size_t i = 0; i < n; ++i) {
          const bool isnull = static_cast<ValueKind>(col.kinds[rows[i]]) ==
                              ValueKind::kNull;
          (*out)[i] = (e.negated ? !isnull : isnull) ? 1 : 0;
        }
        return Status::OK();
      }
      std::vector<Value> v;
      PDM_RETURN_NOT_OK(EvalDense(*e.operand, span, rows, n, &v));
      for (size_t i = 0; i < n; ++i) {
        (*out)[i] = (e.negated ? !v[i].is_null() : v[i].is_null()) ? 1 : 0;
      }
      return Status::OK();
    }
    default:
      break;
  }
  // Generic tier: dense-evaluate, then convert with the consuming
  // operator's non-boolean error so failures match the row engine.
  std::vector<Value> vals;
  PDM_RETURN_NOT_OK(EvalDense(expr, span, rows, n, &vals));
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Value& v = vals[i];
    if (v.is_null()) {
      (*out)[i] = -1;
    } else if (v.is_bool()) {
      (*out)[i] = v.bool_value() ? 1 : 0;
    } else {
      return Status::ExecutionError(nonbool_error);
    }
  }
  return Status::OK();
}

}  // namespace

Result<bool> TryExecuteVectorized(const PlanNode& plan, ExecContext* ctx,
                                  std::vector<Row>* out) {
  VecPlan vp;
  if (!Decompose(plan, &vp)) return false;
  size_t max_col = 0;
  for (const BoundExpr* f : vp.filters) {
    if (!CanVectorizeExpr(*f, &max_col)) return false;
  }
  if (vp.project != nullptr) {
    for (const BoundExprPtr& e : *vp.project) {
      if (!CanVectorizeExpr(*e, &max_col)) return false;
    }
  }
  // Point lookups belong to the row engine's index scan.
  if (vp.scan->filter != nullptr && HasIndexableEquality(*vp.scan->filter)) {
    return false;
  }
  Result<Table*> table_or = ctx->catalog()->GetTable(vp.scan->table_name);
  if (!table_or.ok()) return false;  // row path reports the same error
  const Table& table = *table_or.value();
  const size_t num_columns = table.schema().num_columns();
  if ((!vp.filters.empty() || vp.project != nullptr) &&
      max_col >= num_columns) {
    return false;  // defensive: let the row path surface the binder bug
  }

  const uint64_t snapshot = ctx->snapshot_ts();
  const size_t bound = table.num_versions();
  const size_t frags = (bound + kFragmentRows - 1) >> kFragmentShift;
  const size_t limit =
      vp.has_limit
          ? (vp.limit > 0 ? static_cast<size_t>(vp.limit) : 0)
          : std::numeric_limits<size_t>::max();

  out->clear();
  ExecStats& stats = ctx->stats();
  VecBatch batch;
  TriVec tri;
  std::vector<uint32_t> survivors;
  std::vector<std::vector<Value>> proj_cols;
  for (size_t frag = 0; frag < frags && out->size() < limit; ++frag) {
    batch.span = table.FragmentAt(frag, bound);
    batch.FillVisible(snapshot);
    stats.vec_batches++;
    stats.rows_scanned += batch.sel.size();
    stats.vec_rows_scanned += batch.sel.size();
    for (const BoundExpr* f : vp.filters) {
      if (batch.sel.empty()) break;
      PDM_RETURN_NOT_OK(EvalTri(*f, batch.span, batch.sel.data(),
                                batch.sel.size(), kNonBoolPredicate, &tri));
      survivors.clear();
      for (size_t i = 0; i < batch.sel.size(); ++i) {
        if (tri[i] == 1) survivors.push_back(batch.sel[i]);
      }
      batch.sel.swap(survivors);
    }
    if (batch.sel.empty()) continue;
    const size_t take = std::min(batch.sel.size(), limit - out->size());
    // Late materialization: only now do surviving slots become Values.
    if (vp.project != nullptr) {
      proj_cols.resize(vp.project->size());
      for (size_t e = 0; e < vp.project->size(); ++e) {
        PDM_RETURN_NOT_OK(EvalDense(*(*vp.project)[e], batch.span,
                                    batch.sel.data(), take, &proj_cols[e]));
      }
      for (size_t i = 0; i < take; ++i) {
        Row row;
        row.reserve(proj_cols.size());
        for (std::vector<Value>& col : proj_cols) {
          row.push_back(std::move(col[i]));
        }
        out->push_back(std::move(row));
      }
    } else {
      for (size_t i = 0; i < take; ++i) {
        const uint32_t slot = batch.sel[i];
        Row row;
        row.reserve(num_columns);
        for (size_t c = 0; c < num_columns; ++c) {
          row.push_back(batch.span.fragment->cols[c].Load(slot));
        }
        out->push_back(std::move(row));
      }
    }
  }
  return true;
}

}  // namespace pdm
