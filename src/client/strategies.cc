#include "client/strategies.h"

#include <chrono>
#include <deque>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rules/query_builder.h"
#include "rules/query_modificator.h"

namespace pdm::client {

using rules::QueryModificator;
using rules::RuleAction;

namespace {

/// RAII wall timer for one user action: on destruction observes
/// "client.action_seconds"{site, strategy, action} — the end-to-end
/// response time the paper's tables report, as a dimensioned quantile
/// histogram (DESIGN.md 5k).
class ActionTimer {
 public:
  ActionTimer(const ClientConfig& config, std::string_view strategy,
              std::string_view action)
      : hist_(obs::MetricsRegistry::Global().log_histogram(
            "client.action_seconds",
            {{"site", config.site.empty() ? "local" : config.site},
             {"strategy", std::string(strategy)},
             {"action", std::string(action)}})),
        start_(std::chrono::steady_clock::now()) {}

  ActionTimer(const ActionTimer&) = delete;
  ActionTimer& operator=(const ActionTimer&) = delete;

  ~ActionTimer() {
    hist_.Observe(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
  }

 private:
  obs::LogHistogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

AccessStrategy::AccessStrategy(Connection* conn,
                               const rules::RuleTable* rules,
                               pdmsys::UserContext user, ClientConfig config)
    : conn_(conn),
      rules_(rules),
      user_(std::move(user)),
      config_(config),
      evaluator_(rules, user_) {}

size_t HomogenizedResponseBytes(const ResultSet& result,
                                const ClientConfig& config) {
  // Pure link rows (type = 'link', as in the recursive result's second
  // UNION branch) carry structure info only; object rows — including
  // expand-result rows that have their link attributes inlined — are
  // charged the per-node size.
  std::optional<size_t> type_col = result.schema.FindColumn("type");
  size_t object_rows = 0;
  size_t link_rows = 0;
  for (const Row& row : result.rows) {
    if (type_col.has_value() && row[*type_col].is_string() &&
        row[*type_col].string_value() == "link") {
      ++link_rows;
    } else {
      ++object_rows;
    }
  }
  size_t bytes = object_rows * config.node_bytes;
  if (config.charge_link_rows) bytes += link_rows * config.node_bytes;
  return bytes == 0 ? 64 : bytes;
}

size_t AccessStrategy::SizeHomogenizedResponse(const ResultSet& result) const {
  return HomogenizedResponseBytes(result, config_);
}

// --- NavigationalStrategy ------------------------------------------------------

Result<ResultSet> NavigationalStrategy::ExpandOnce(
    int64_t node, PreparedRowFilter* late_filter, size_t* transmitted_rows) {
  std::unique_ptr<sql::SelectStmt> stmt =
      rules::BuildExpandQuery(node, config_.hierarchy);
  if (early_) {
    QueryModificator modificator(rules_, user_);
    PDM_RETURN_NOT_OK(modificator
                          .ApplyToNavigationalQuery(&stmt->query,
                                                    RuleAction::kExpand)
                          .status());
  }
  ResultSet rows;
  PDM_RETURN_NOT_OK(conn_->ExecuteSized(
      stmt->ToSql(), &rows,
      [this](const ResultSet& r) { return SizeHomogenizedResponse(r); }));
  if (transmitted_rows != nullptr) *transmitted_rows += rows.num_rows();

  if (!early_ && late_filter != nullptr) {
    // Late evaluation: the rows crossed the WAN; filter at the client.
    ResultSet kept;
    kept.schema = rows.schema;
    kept.rows.reserve(rows.rows.size());
    for (Row& row : rows.rows) {
      PDM_ASSIGN_OR_RETURN(bool pass, late_filter->Passes(row));
      if (pass) kept.rows.push_back(std::move(row));
    }
    return kept;
  }
  return rows;
}

Result<ActionResult> NavigationalStrategy::QueryAll() {
  obs::ScopedSpan action_span("action:navigational/query", obs::ModelTerm::kNone);
  ActionTimer action_timer(config_, name(), "query");
  conn_->ResetStats();
  ActionResult out;

  std::unique_ptr<sql::SelectStmt> stmt = rules::BuildFlatQuery();
  if (early_) {
    QueryModificator modificator(rules_, user_);
    PDM_RETURN_NOT_OK(modificator
                          .ApplyToNavigationalQuery(&stmt->query,
                                                    RuleAction::kQuery)
                          .status());
  }
  ResultSet rows;
  PDM_RETURN_NOT_OK(conn_->ExecuteSized(
      stmt->ToSql(), &rows,
      [this](const ResultSet& r) { return SizeHomogenizedResponse(r); }));
  out.transmitted_rows = rows.num_rows();

  if (early_) {
    out.visible_nodes = rows.num_rows();
  } else {
    PDM_ASSIGN_OR_RETURN(std::unique_ptr<PreparedRowFilter> filter,
                         evaluator_.Prepare(rows.schema, RuleAction::kQuery));
    for (const Row& row : rows.rows) {
      PDM_ASSIGN_OR_RETURN(bool pass, filter->Passes(row));
      if (pass) out.visible_nodes++;
    }
  }
  out.wan = conn_->stats();
  return out;
}

Result<ActionResult> NavigationalStrategy::SingleLevelExpand(int64_t node) {
  obs::ScopedSpan action_span("action:navigational/sle", obs::ModelTerm::kNone);
  ActionTimer action_timer(config_, name(), "sle");
  conn_->ResetStats();
  ActionResult out;

  std::unique_ptr<PreparedRowFilter> filter;
  if (!early_) {
    // The expand result schema is fixed; prepare against a probe result.
    std::unique_ptr<sql::SelectStmt> probe =
        rules::BuildExpandQuery(node, config_.hierarchy);
    ResultSet rows;
    ExecStats probe_stats;  // private stats: probes may run concurrently
    PDM_RETURN_NOT_OK(conn_->server().database().Execute(probe->ToSql(),
                                                         &rows,
                                                         &probe_stats));
    conn_->ResetStats();  // the probe ran locally, not over the WAN
    PDM_ASSIGN_OR_RETURN(filter,
                         evaluator_.Prepare(rows.schema, RuleAction::kExpand));
  }
  size_t transmitted = 0;
  PDM_ASSIGN_OR_RETURN(ResultSet kept,
                       ExpandOnce(node, filter.get(), &transmitted));
  out.transmitted_rows = transmitted;
  out.visible_nodes = kept.num_rows();
  out.wan = conn_->stats();
  return out;
}

Result<ActionResult> NavigationalStrategy::MultiLevelExpand(int64_t root) {
  obs::ScopedSpan action_span("action:navigational/mle", obs::ModelTerm::kNone);
  ActionTimer action_timer(config_, name(), "mle");
  conn_->ResetStats();
  ActionResult out;

  // The root object is already at the client (paper footnote 4).
  size_t root_index = out.tree.AddNode(root, "assy", "", std::nullopt);

  std::unique_ptr<PreparedRowFilter> filter;
  ResultSet kept_nodes;  // homogenized rows kept, for tree conditions
  bool filter_ready = false;

  std::deque<std::pair<int64_t, size_t>> frontier;  // (obid, tree index)
  frontier.emplace_back(root, root_index);
  while (!frontier.empty()) {
    auto [obid, index] = frontier.front();
    frontier.pop_front();

    if (!early_ && !filter_ready) {
      // Prepare the late filter from the first response's schema.
      std::unique_ptr<sql::SelectStmt> probe =
          rules::BuildExpandQuery(obid, config_.hierarchy);
      ResultSet rows;
      ExecStats probe_stats;  // private stats: probes may run concurrently
      PDM_RETURN_NOT_OK(conn_->server().database().Execute(
          probe->ToSql(), &rows, &probe_stats));
      PDM_ASSIGN_OR_RETURN(filter,
                           evaluator_.Prepare(rows.schema,
                                              RuleAction::kMultiLevelExpand));
      filter_ready = true;
    }

    PDM_ASSIGN_OR_RETURN(
        ResultSet children,
        ExpandOnce(obid, filter.get(), &out.transmitted_rows));
    if (kept_nodes.schema.num_columns() == 0) {
      kept_nodes.schema = children.schema;
    }
    std::optional<size_t> obid_col = children.schema.FindColumn("obid");
    std::optional<size_t> type_col = children.schema.FindColumn("type");
    std::optional<size_t> name_col = children.schema.FindColumn("name");
    kept_nodes.rows.reserve(kept_nodes.rows.size() + children.rows.size());
    for (Row& row : children.rows) {
      int64_t child_obid = row[*obid_col].int64_value();
      size_t child_index =
          out.tree.AddNode(child_obid, row[*type_col].ToString(),
                           row[*name_col].ToString(), index);
      frontier.emplace_back(child_obid, child_index);
      kept_nodes.rows.push_back(std::move(row));
    }
  }

  // Tree conditions are evaluated at the client in both navigational
  // modes (they cannot be compiled into per-node queries, Section 4.1).
  PDM_ASSIGN_OR_RETURN(
      bool tree_ok,
      evaluator_.TreeConditionsPass(kept_nodes,
                                    RuleAction::kMultiLevelExpand));
  if (!tree_ok) out.tree = pdmsys::ProductTree();  // all-or-nothing

  out.visible_nodes =
      out.tree.num_nodes() > 0 ? out.tree.num_nodes() - 1 : 0;
  out.wan = conn_->stats();
  return out;
}

// --- NavigationalBatchedStrategy ------------------------------------------------

namespace {

/// The expand statement for one node — byte-identical to what
/// NavigationalStrategy sends for the same node and variant. Batched
/// and pipelined clients both render through here, so their wire
/// traffic can never drift apart.
Result<std::string> RenderNavExpandSql(const rules::RuleTable* rules,
                                       const pdmsys::UserContext& user,
                                       const ClientConfig& config, bool early,
                                       int64_t node) {
  std::unique_ptr<sql::SelectStmt> stmt =
      rules::BuildExpandQuery(node, config.hierarchy);
  if (early) {
    QueryModificator modificator(rules, user);
    PDM_RETURN_NOT_OK(modificator
                          .ApplyToNavigationalQuery(&stmt->query,
                                                    RuleAction::kExpand)
                          .status());
  }
  return stmt->ToSql();
}

}  // namespace

Result<std::string> NavigationalBatchedStrategy::RenderExpandSql(
    int64_t node) const {
  return RenderNavExpandSql(rules_, user_, config_, early_, node);
}

Result<ActionResult> NavigationalBatchedStrategy::QueryAll() {
  NavigationalStrategy nav(conn_, rules_, user_, config_, early_);
  return nav.QueryAll();
}

Result<ActionResult> NavigationalBatchedStrategy::SingleLevelExpand(
    int64_t node) {
  NavigationalStrategy nav(conn_, rules_, user_, config_, early_);
  return nav.SingleLevelExpand(node);
}

Result<ActionResult> NavigationalBatchedStrategy::MultiLevelExpand(
    int64_t root) {
  obs::ScopedSpan action_span("action:batched/mle", obs::ModelTerm::kNone);
  ActionTimer action_timer(config_, name(), "mle");
  conn_->ResetStats();
  ActionResult out;

  // The root object is already at the client (paper footnote 4).
  size_t root_index = out.tree.AddNode(root, "assy", "", std::nullopt);

  std::unique_ptr<PreparedRowFilter> filter;
  if (!early_) {
    // Prepare the late filter from a local probe of the fixed expand
    // schema, exactly as the navigational client does (no WAN traffic).
    std::unique_ptr<sql::SelectStmt> probe =
        rules::BuildExpandQuery(root, config_.hierarchy);
    ResultSet rows;
    ExecStats probe_stats;  // private stats: probes may run concurrently
    PDM_RETURN_NOT_OK(conn_->server().database().Execute(
        probe->ToSql(), &rows, &probe_stats));
    PDM_ASSIGN_OR_RETURN(
        filter,
        evaluator_.Prepare(rows.schema, RuleAction::kMultiLevelExpand));
  }

  ResultSet kept_nodes;  // homogenized rows kept, for tree conditions

  // Breadth-first by construction: the frontier is exactly one tree
  // level, and one batch ships all of its expand queries. Processing
  // statements in frontier order makes the AddNode sequence identical
  // to the navigational FIFO traversal, so the trees match byte for
  // byte.
  std::vector<std::pair<int64_t, size_t>> frontier;  // (obid, tree index)
  frontier.emplace_back(root, root_index);
  while (!frontier.empty()) {
    std::vector<std::string> statements;
    statements.reserve(frontier.size());
    for (const auto& [obid, index] : frontier) {
      PDM_ASSIGN_OR_RETURN(std::string sql, RenderExpandSql(obid));
      statements.push_back(std::move(sql));
    }
    std::vector<Result<ResultSet>> responses;
    PDM_RETURN_NOT_OK(conn_->ExecuteBatchSized(
        statements, &responses,
        [this](const ResultSet& r) { return SizeHomogenizedResponse(r); }));

    std::vector<std::pair<int64_t, size_t>> next;
    for (size_t i = 0; i < frontier.size(); ++i) {
      PDM_RETURN_NOT_OK(responses[i].status());
      ResultSet rows = std::move(*responses[i]);
      out.transmitted_rows += rows.num_rows();

      if (!early_ && filter != nullptr) {
        // Late evaluation: the rows crossed the WAN; filter here.
        ResultSet kept;
        kept.schema = rows.schema;
        kept.rows.reserve(rows.rows.size());
        for (Row& row : rows.rows) {
          PDM_ASSIGN_OR_RETURN(bool pass, filter->Passes(row));
          if (pass) kept.rows.push_back(std::move(row));
        }
        rows = std::move(kept);
      }

      if (kept_nodes.schema.num_columns() == 0) {
        kept_nodes.schema = rows.schema;
      }
      std::optional<size_t> obid_col = rows.schema.FindColumn("obid");
      std::optional<size_t> type_col = rows.schema.FindColumn("type");
      std::optional<size_t> name_col = rows.schema.FindColumn("name");
      kept_nodes.rows.reserve(kept_nodes.rows.size() + rows.rows.size());
      for (Row& row : rows.rows) {
        int64_t child_obid = row[*obid_col].int64_value();
        size_t child_index =
            out.tree.AddNode(child_obid, row[*type_col].ToString(),
                             row[*name_col].ToString(), frontier[i].second);
        next.emplace_back(child_obid, child_index);
        kept_nodes.rows.push_back(std::move(row));
      }
    }
    frontier = std::move(next);
  }

  // Tree conditions are evaluated at the client, as in both
  // navigational modes (Section 4.1).
  PDM_ASSIGN_OR_RETURN(
      bool tree_ok,
      evaluator_.TreeConditionsPass(kept_nodes,
                                    RuleAction::kMultiLevelExpand));
  if (!tree_ok) out.tree = pdmsys::ProductTree();  // all-or-nothing

  out.visible_nodes =
      out.tree.num_nodes() > 0 ? out.tree.num_nodes() - 1 : 0;
  out.wan = conn_->stats();
  return out;
}

// --- NavigationalPipelinedStrategy ----------------------------------------------

Result<ActionResult> NavigationalPipelinedStrategy::QueryAll() {
  NavigationalStrategy nav(conn_, rules_, user_, config_, early_);
  return nav.QueryAll();
}

Result<ActionResult> NavigationalPipelinedStrategy::SingleLevelExpand(
    int64_t node) {
  NavigationalStrategy nav(conn_, rules_, user_, config_, early_);
  return nav.SingleLevelExpand(node);
}

Result<ActionResult> NavigationalPipelinedStrategy::MultiLevelExpand(
    int64_t root) {
  obs::ScopedSpan action_span("action:pipelined/mle", obs::ModelTerm::kNone);
  ActionTimer action_timer(config_, name(), "mle");
  conn_->ResetStats();
  ActionResult out;

  // The root object is already at the client (paper footnote 4).
  size_t root_index = out.tree.AddNode(root, "assy", "", std::nullopt);

  std::unique_ptr<PreparedRowFilter> filter;
  if (!early_) {
    // Prepare the late filter from a local probe of the fixed expand
    // schema, exactly as the navigational client does (no WAN traffic).
    std::unique_ptr<sql::SelectStmt> probe =
        rules::BuildExpandQuery(root, config_.hierarchy);
    ResultSet rows;
    ExecStats probe_stats;  // private stats: probes may run concurrently
    PDM_RETURN_NOT_OK(conn_->server().database().Execute(
        probe->ToSql(), &rows, &probe_stats));
    PDM_ASSIGN_OR_RETURN(
        filter,
        evaluator_.Prepare(rows.schema, RuleAction::kMultiLevelExpand));
  }

  const Connection::ResponseSizer sizer = [this](const ResultSet& r) {
    return SizeHomogenizedResponse(r);
  };

  ResultSet kept_nodes;  // homogenized rows kept, for tree conditions

  // Same breadth-first level batches as the batched client, but each
  // level's batch is issued *speculatively* against the previous
  // response stream: filtering needs only row values, which are
  // decodable from the prefix, so the next request can leave before the
  // previous transfer finishes. Tree assembly (phase C) then runs on
  // the fully received level, keeping the AddNode sequence — and hence
  // the tree — byte-identical to the batched traversal.
  std::vector<size_t> parent_index{root_index};  // tree index per statement
  Connection::PendingBatch pending;
  {
    PDM_ASSIGN_OR_RETURN(std::string sql,
                         RenderNavExpandSql(rules_, user_, config_, early_,
                                            root));
    std::vector<std::string> statements;
    statements.push_back(std::move(sql));
    pending = conn_->ExecuteBatchPipelined(std::move(statements),
                                           /*overlap_previous=*/false);
  }

  while (pending.valid()) {
    std::vector<Result<ResultSet>> responses;
    pending.Collect(&responses, sizer);

    // Phase A: decode and (when late) filter every OK slot. Error slots
    // keep an empty row set here; the error itself is raised in phase
    // C, after the speculative issue — exactly where a real pipelined
    // client would discover it.
    std::vector<ResultSet> kept(responses.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      if (!responses[i].ok()) continue;
      ResultSet rows = std::move(*responses[i]);
      out.transmitted_rows += rows.num_rows();
      if (!early_ && filter != nullptr) {
        ResultSet filtered;
        filtered.schema = rows.schema;
        filtered.rows.reserve(rows.rows.size());
        for (Row& row : rows.rows) {
          PDM_ASSIGN_OR_RETURN(bool pass, filter->Passes(row));
          if (pass) filtered.rows.push_back(std::move(row));
        }
        rows = std::move(filtered);
      }
      kept[i] = std::move(rows);
    }

    // Phase B: render and issue the next level before touching the
    // tree. Statement order is kept-row order across slots, identical
    // to the batched frontier order.
    std::vector<std::string> next_statements;
    for (const ResultSet& rows : kept) {
      std::optional<size_t> obid_col = rows.schema.FindColumn("obid");
      if (!obid_col.has_value()) continue;
      for (const Row& row : rows.rows) {
        PDM_ASSIGN_OR_RETURN(
            std::string sql,
            RenderNavExpandSql(rules_, user_, config_, early_,
                               row[*obid_col].int64_value()));
        next_statements.push_back(std::move(sql));
      }
    }
    Connection::PendingBatch next = conn_->ExecuteBatchPipelined(
        std::move(next_statements), /*overlap_previous=*/true);

    // Phase C: fail-fast and assembly. An error here abandons `next` to
    // its destructor, which drains the in-flight server work and aborts
    // the exchange unaccounted.
    std::vector<size_t> next_parent_index;
    for (size_t i = 0; i < responses.size(); ++i) {
      PDM_RETURN_NOT_OK(responses[i].status());
      ResultSet& rows = kept[i];
      if (kept_nodes.schema.num_columns() == 0) {
        kept_nodes.schema = rows.schema;
      }
      std::optional<size_t> obid_col = rows.schema.FindColumn("obid");
      std::optional<size_t> type_col = rows.schema.FindColumn("type");
      std::optional<size_t> name_col = rows.schema.FindColumn("name");
      kept_nodes.rows.reserve(kept_nodes.rows.size() + rows.rows.size());
      for (Row& row : rows.rows) {
        int64_t child_obid = row[*obid_col].int64_value();
        size_t child_index =
            out.tree.AddNode(child_obid, row[*type_col].ToString(),
                             row[*name_col].ToString(), parent_index[i]);
        next_parent_index.push_back(child_index);
        kept_nodes.rows.push_back(std::move(row));
      }
    }
    parent_index = std::move(next_parent_index);
    pending = std::move(next);
  }

  // Tree conditions are evaluated at the client, as in both
  // navigational modes (Section 4.1).
  PDM_ASSIGN_OR_RETURN(
      bool tree_ok,
      evaluator_.TreeConditionsPass(kept_nodes,
                                    RuleAction::kMultiLevelExpand));
  if (!tree_ok) out.tree = pdmsys::ProductTree();  // all-or-nothing

  out.visible_nodes =
      out.tree.num_nodes() > 0 ? out.tree.num_nodes() - 1 : 0;
  out.wan = conn_->stats();
  return out;
}

// --- RecursiveStrategy ----------------------------------------------------------

Result<ActionResult> RecursiveStrategy::QueryAll() {
  // A flat query is a single statement already; Approach 2 simply keeps
  // the early rule evaluation of Approach 1 for it.
  NavigationalStrategy early(conn_, rules_, user_, config_,
                             /*early_evaluation=*/true);
  return early.QueryAll();
}

Result<ActionResult> RecursiveStrategy::SingleLevelExpand(int64_t node) {
  NavigationalStrategy early(conn_, rules_, user_, config_,
                             /*early_evaluation=*/true);
  return early.SingleLevelExpand(node);
}

Result<ActionResult> RecursiveStrategy::MultiLevelExpand(int64_t root) {
  return RunTreeQuery(root, /*max_depth=*/0);
}

Result<ActionResult> RecursiveStrategy::PartialExpand(int64_t root,
                                                      int levels) {
  if (levels < 1) {
    return Status::InvalidArgument("partial expand needs >= 1 level");
  }
  return RunTreeQuery(root, levels);
}

Result<ActionResult> RecursiveStrategy::RunTreeQuery(int64_t root,
                                                     int max_depth) {
  obs::ScopedSpan action_span("action:recursive/tree", obs::ModelTerm::kNone);
  ActionTimer action_timer(config_, name(), "tree");
  conn_->ResetStats();
  ActionResult out;

  std::unique_ptr<sql::SelectStmt> stmt =
      rules::BuildRecursiveTreeQuery(root, max_depth, config_.hierarchy);
  QueryModificator modificator(rules_, user_);
  PDM_RETURN_NOT_OK(
      modificator
          .ApplyToRecursiveQuery(stmt.get(), RuleAction::kMultiLevelExpand)
          .status());

  ResultSet result;
  PDM_RETURN_NOT_OK(conn_->ExecuteSized(
      stmt->ToSql(), &result,
      [this](const ResultSet& r) { return SizeHomogenizedResponse(r); }));

  PDM_ASSIGN_OR_RETURN(out.tree,
                       pdmsys::AssembleFromHomogenized(result, root));
  out.transmitted_rows = result.num_rows();
  out.visible_nodes =
      out.tree.num_nodes() > 0 ? out.tree.num_nodes() - 1 : 0;
  out.wan = conn_->stats();
  return out;
}

}  // namespace pdm::client
