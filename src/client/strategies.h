#ifndef PDM_CLIENT_STRATEGIES_H_
#define PDM_CLIENT_STRATEGIES_H_

#include <memory>
#include <string_view>

#include "client/connection.h"
#include "client/rule_eval.h"
#include "common/result.h"
#include "net/wan_model.h"
#include "pdm/product_tree.h"
#include "pdm/user_context.h"
#include "rules/rule.h"

namespace pdm::client {

/// Client-side knobs for wire accounting (see DESIGN.md: the paper
/// charges a fixed per-node size; structure information rides along with
/// the child node's payload).
struct ClientConfig {
  size_t node_bytes = 512;        // the paper's avg node size
  bool charge_link_rows = false;  // ablation: charge link rows separately
  /// Which of the parallel product structures to traverse (physical by
  /// default; see pdm/pdm_schema.h hierarchy constants).
  std::string hierarchy = "phys";
  /// Site label the client's action metrics report under; empty
  /// inherits the WAN link's site (Experiment::Init syncs it).
  std::string site;
};

/// Wire size of a homogenized response: `node_bytes` per object row;
/// link rows ride along free unless `charge_link_rows` (see DESIGN.md).
size_t HomogenizedResponseBytes(const ResultSet& result,
                                const ClientConfig& config);

/// Outcome of one PDM user action, with the WAN traffic it caused.
struct ActionResult {
  pdmsys::ProductTree tree;    // assembled structure (tree actions)
  size_t transmitted_rows = 0; // rows that crossed the WAN
  size_t visible_nodes = 0;    // objects visible to the user (kept)
  net::WanStats wan;           // per-action traffic/delay
  double seconds() const { return wan.total_seconds(); }
};

/// Interface of the three access strategies the paper compares. Each
/// action resets the connection's WAN statistics and reports the
/// traffic it alone caused.
class AccessStrategy {
 public:
  AccessStrategy(Connection* conn, const rules::RuleTable* rules,
                 pdmsys::UserContext user, ClientConfig config);
  virtual ~AccessStrategy() = default;

  AccessStrategy(const AccessStrategy&) = delete;
  AccessStrategy& operator=(const AccessStrategy&) = delete;

  /// The "query" action: all nodes of the product, no structure info.
  virtual Result<ActionResult> QueryAll() = 0;

  /// Single-level expand: the direct children of `node`.
  virtual Result<ActionResult> SingleLevelExpand(int64_t node) = 0;

  /// Multi-level expand: the whole (visible) subtree under `root`.
  virtual Result<ActionResult> MultiLevelExpand(int64_t root) = 0;

  virtual std::string_view name() const = 0;

 protected:
  /// Response sizer charging `node_bytes` per transmitted object row
  /// (link rows free unless configured otherwise).
  size_t SizeHomogenizedResponse(const ResultSet& result) const;

  Connection* conn_;
  const rules::RuleTable* rules_;
  pdmsys::UserContext user_;
  ClientConfig config_;
  ClientRuleEvaluator evaluator_;
};

/// The baseline and Approach-1 client: one isolated SQL query per
/// navigation step. With `early_evaluation` = false rules are applied at
/// the client after the data crossed the WAN (the paper's status quo);
/// with true, row conditions are compiled into each query's WHERE clause
/// (Section 4).
class NavigationalStrategy : public AccessStrategy {
 public:
  NavigationalStrategy(Connection* conn, const rules::RuleTable* rules,
                       pdmsys::UserContext user, ClientConfig config,
                       bool early_evaluation)
      : AccessStrategy(conn, rules, std::move(user), config),
        early_(early_evaluation) {}

  Result<ActionResult> QueryAll() override;
  Result<ActionResult> SingleLevelExpand(int64_t node) override;
  Result<ActionResult> MultiLevelExpand(int64_t root) override;
  std::string_view name() const override {
    return early_ ? "navigational-early" : "navigational-late";
  }

 private:
  /// One expand round trip; returns the (filtered, when late) child rows
  /// and accumulates the transmitted row count.
  Result<ResultSet> ExpandOnce(int64_t node, PreparedRowFilter* late_filter,
                               size_t* transmitted_rows);

  bool early_;
};

/// The batched client (this repo's extension; DESIGN.md 5d): per-query
/// SQL identical to NavigationalStrategy, but a multi-level expand
/// ships all expand queries of one tree level as a single batch over
/// the wire — α + 1 round trips instead of n_v + 1 while still sending
/// n_v + 1 statements. Late- and early-evaluation variants mirror the
/// navigational ones; Query and single-level expand are one statement
/// already and delegate to NavigationalStrategy.
class NavigationalBatchedStrategy : public AccessStrategy {
 public:
  NavigationalBatchedStrategy(Connection* conn, const rules::RuleTable* rules,
                              pdmsys::UserContext user, ClientConfig config,
                              bool early_evaluation)
      : AccessStrategy(conn, rules, std::move(user), config),
        early_(early_evaluation) {}

  Result<ActionResult> QueryAll() override;
  Result<ActionResult> SingleLevelExpand(int64_t node) override;
  Result<ActionResult> MultiLevelExpand(int64_t root) override;
  std::string_view name() const override {
    return early_ ? "navigational-batched-early"
                  : "navigational-batched-late";
  }

 private:
  /// Renders the expand statement for one node — byte-identical to what
  /// NavigationalStrategy would send for the same node and variant.
  Result<std::string> RenderExpandSql(int64_t node) const;

  bool early_;
};

/// The pipelined client (DESIGN.md 5g): statements, per-level batches
/// and assembled trees are byte-identical to
/// NavigationalBatchedStrategy — still α + 1 round trips — but level
/// i+1's batch is issued speculatively the moment level i's response
/// prefix is decodable (its transfer start), so up to
/// min(2 * T_Lat, level-i transfer time) of every inter-level latency
/// window hides under the still-streaming previous response. Query and
/// single-level expand are one statement already and delegate to
/// NavigationalStrategy.
class NavigationalPipelinedStrategy : public AccessStrategy {
 public:
  NavigationalPipelinedStrategy(Connection* conn,
                                const rules::RuleTable* rules,
                                pdmsys::UserContext user, ClientConfig config,
                                bool early_evaluation)
      : AccessStrategy(conn, rules, std::move(user), config),
        early_(early_evaluation) {}

  Result<ActionResult> QueryAll() override;
  Result<ActionResult> SingleLevelExpand(int64_t node) override;
  Result<ActionResult> MultiLevelExpand(int64_t root) override;
  std::string_view name() const override {
    return early_ ? "navigational-pipelined-early"
                  : "navigational-pipelined-late";
  }

 private:
  bool early_;
};

/// The Approach-2 client (Section 5): multi-level expands compile into a
/// single WITH RECURSIVE statement with all rule classes injected by the
/// QueryModificator; two WAN messages total. Query and single-level
/// expand already take one round trip, so they use the early-evaluation
/// navigational form.
class RecursiveStrategy : public AccessStrategy {
 public:
  RecursiveStrategy(Connection* conn, const rules::RuleTable* rules,
                    pdmsys::UserContext user, ClientConfig config)
      : AccessStrategy(conn, rules, std::move(user), config) {}

  Result<ActionResult> QueryAll() override;
  Result<ActionResult> SingleLevelExpand(int64_t node) override;
  Result<ActionResult> MultiLevelExpand(int64_t root) override;

  /// Partial multi-level expand: the subtree under `root` down to
  /// `levels` levels, still in one round trip (the depth bound is
  /// compiled into the recursive members).
  Result<ActionResult> PartialExpand(int64_t root, int levels);

  std::string_view name() const override { return "recursive"; }

 private:
  Result<ActionResult> RunTreeQuery(int64_t root, int max_depth);
};

}  // namespace pdm::client

#endif  // PDM_CLIENT_STRATEGIES_H_
