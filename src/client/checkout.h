#ifndef PDM_CLIENT_CHECKOUT_H_
#define PDM_CLIENT_CHECKOUT_H_

#include <string>
#include <string_view>

#include "client/connection.h"
#include "client/strategies.h"
#include "common/result.h"
#include "pdm/user_context.h"
#include "rules/rule.h"

namespace pdm::client {

/// The three ways to run the paper's check-out action (Section 6
/// discussion): it "cannot be represented in one single query" —
/// retrieval and the flag update need separate communications unless the
/// whole flow moves to the server.
enum class CheckOutMethod {
  /// Navigational retrieval + one UPDATE per object: the status quo.
  kNavigational,
  /// One recursive retrieval + one batched UPDATE per object table.
  kRecursiveBatched,
  /// One CALL to a server-side procedure (function shipping).
  kStoredProcedure,
};

std::string_view CheckOutMethodName(CheckOutMethod method);

struct CheckOutResult {
  bool success = false;       // denied if a rule failed (e.g. ∀rows)
  size_t objects = 0;         // objects whose flag was flipped
  /// UPDATE statements that lost a first-writer-wins race
  /// (StatusCode::kWriteConflict) and were re-submitted. Conflicts are
  /// retryable, not errors: a concurrent writer committed between this
  /// client's snapshot and its write.
  size_t conflict_retries = 0;
  net::WanStats wan;          // traffic of the whole flow
  double seconds() const { return wan.total_seconds(); }
};

/// Client driver for check-out / check-in over the simulated WAN.
/// The rule table must contain the check-out rules (typically a ∀rows
/// condition "no node already checked out", the paper's rule example 2).
class CheckOutClient {
 public:
  CheckOutClient(Connection* conn, const rules::RuleTable* rules,
                 pdmsys::UserContext user, ClientConfig config)
      : conn_(conn), rules_(rules), user_(std::move(user)), config_(config) {}

  Result<CheckOutResult> CheckOut(int64_t root, CheckOutMethod method) {
    return Run(root, method, /*checking_out=*/true);
  }
  Result<CheckOutResult> CheckIn(int64_t root, CheckOutMethod method) {
    return Run(root, method, /*checking_out=*/false);
  }

 private:
  Result<CheckOutResult> Run(int64_t root, CheckOutMethod method,
                             bool checking_out);
  Result<CheckOutResult> RunClientSide(int64_t root, bool navigational,
                                       bool checking_out);
  Result<CheckOutResult> RunStoredProcedure(int64_t root, bool checking_out);

  Connection* conn_;
  const rules::RuleTable* rules_;
  pdmsys::UserContext user_;
  ClientConfig config_;
};

}  // namespace pdm::client

#endif  // PDM_CLIENT_CHECKOUT_H_
