#ifndef PDM_CLIENT_EXPERIMENT_H_
#define PDM_CLIENT_EXPERIMENT_H_

#include <memory>

#include "client/checkout.h"
#include "client/connection.h"
#include "client/strategies.h"
#include "common/result.h"
#include "model/cost_model.h"
#include "net/wan_model.h"
#include "pdm/generator.h"
#include "rules/rule.h"
#include "server/db_server.h"

namespace pdm::client {

/// Full configuration of one simulated deployment.
struct ExperimentConfig {
  pdmsys::GeneratorConfig generator;
  net::WanConfig wan;
  ClientConfig client;
};

/// A fully wired simulated PDM installation: database server with one
/// generated product, the standard rule set (object access rule,
/// relation effectivity/option rule, check-out ∀rows rule), server-side
/// procedures, and one client connection over the simulated WAN.
///
/// The standard rules are calibrated so that the reference user sees
/// exactly the generator's `visible_nodes` ground truth:
///   * object rule (row, all types):  acc = '+'
///   * relation rule (row, link):     effectivity overlaps the user's
///     window AND option sets overlap (BITAND) — the paper's rule
///     example 3 pair
///   * check-out rule (∀rows):        checkedout = FALSE on every node
///     (the paper's rule example 2)
class Experiment {
 public:
  static Result<std::unique_ptr<Experiment>> Create(
      const ExperimentConfig& config);

  DbServer& server() { return server_; }
  Connection& connection() { return *connection_; }
  rules::RuleTable& rule_table() { return rule_table_; }
  const pdmsys::GeneratedProduct& product() const { return product_; }
  const pdmsys::UserContext& user() const { return config_.generator.user; }
  const ExperimentConfig& config() const { return config_; }

  /// Strategy instance for one of the paper's three regimes.
  std::unique_ptr<AccessStrategy> MakeStrategy(model::StrategyKind kind);

  /// Check-out driver bound to this deployment.
  std::unique_ptr<CheckOutClient> MakeCheckOutClient();

  /// Runs the model-equivalent action with the given strategy regime.
  Result<ActionResult> RunAction(model::StrategyKind strategy,
                                 model::ActionKind action);

 private:
  explicit Experiment(ExperimentConfig config) : config_(config) {}

  Status Init();

  ExperimentConfig config_;
  DbServer server_;
  rules::RuleTable rule_table_;
  pdmsys::GeneratedProduct product_;
  std::unique_ptr<Connection> connection_;
};

/// Installs the standard rule set described above into `table`.
Status InstallStandardRules(rules::RuleTable* table);

}  // namespace pdm::client

#endif  // PDM_CLIENT_EXPERIMENT_H_
