#ifndef PDM_CLIENT_EXPERIMENT_H_
#define PDM_CLIENT_EXPERIMENT_H_

#include <memory>

#include "client/checkout.h"
#include "client/connection.h"
#include "client/strategies.h"
#include "common/result.h"
#include "model/cost_model.h"
#include "net/wan_model.h"
#include "pdm/generator.h"
#include "rules/rule.h"
#include "server/db_server.h"

namespace pdm::client {

/// Full configuration of one simulated deployment.
struct ExperimentConfig {
  pdmsys::GeneratorConfig generator;
  net::WanConfig wan;
  ClientConfig client;
};

/// A fully wired simulated PDM installation: database server with one
/// generated product, the standard rule set (object access rule,
/// relation effectivity/option rule, check-out ∀rows rule), server-side
/// procedures, and one client connection over the simulated WAN.
///
/// The standard rules are calibrated so that the reference user sees
/// exactly the generator's `visible_nodes` ground truth:
///   * object rule (row, all types):  acc = '+'
///   * relation rule (row, link):     effectivity overlaps the user's
///     window AND option sets overlap (BITAND) — the paper's rule
///     example 3 pair
///   * check-out rule (∀rows):        checkedout = FALSE on every node
///     (the paper's rule example 2)
class Experiment {
 public:
  static Result<std::unique_ptr<Experiment>> Create(
      const ExperimentConfig& config);

  DbServer& server() { return server_; }
  Connection& connection() { return *connection_; }
  rules::RuleTable& rule_table() { return rule_table_; }
  const pdmsys::GeneratedProduct& product() const { return product_; }
  const pdmsys::UserContext& user() const { return config_.generator.user; }
  const ExperimentConfig& config() const { return config_; }

  /// Strategy instance for one of the paper's three regimes.
  std::unique_ptr<AccessStrategy> MakeStrategy(model::StrategyKind kind);

  /// Strategy instance driving an arbitrary connection to this
  /// deployment's server (the multi-client driver gives every simulated
  /// client its own connection and WAN link).
  std::unique_ptr<AccessStrategy> MakeStrategyOn(Connection* conn,
                                                 model::StrategyKind kind);

  /// Check-out driver bound to this deployment.
  std::unique_ptr<CheckOutClient> MakeCheckOutClient();

  /// Runs the model-equivalent action with the given strategy regime.
  Result<ActionResult> RunAction(model::StrategyKind strategy,
                                 model::ActionKind action);

 private:
  explicit Experiment(ExperimentConfig config) : config_(config) {}

  Status Init();

  ExperimentConfig config_;
  DbServer server_;
  rules::RuleTable rule_table_;
  pdmsys::GeneratedProduct product_;
  std::unique_ptr<Connection> connection_;
};

/// Installs the standard rule set described above into `table`.
Status InstallStandardRules(rules::RuleTable* table);

/// Configuration of one multi-client replay (DESIGN.md 5e): N
/// independent clients, each with its own connection and WAN link,
/// concurrently replay the same navigational session against one
/// server through the shared admission queue.
struct MultiClientOptions {
  size_t clients = 2;
  model::StrategyKind strategy = model::StrategyKind::kBatchedEarly;
  model::ActionKind action = model::ActionKind::kMultiLevelExpand;
};

/// Outcome of one multi-client replay, with the admission queue's
/// per-wave coalescing totals for the run.
struct MultiClientResult {
  std::vector<ActionResult> per_client;  // indexed by client id
  size_t waves = 0;                 // execution waves formed
  size_t statements = 0;            // statements submitted through waves
  size_t unique_statements = 0;     // engine executions after dedup
  /// Statements served per engine execution (1.0 = no cross-client
  /// sharing; approaches `clients` as windows widen).
  double DedupFactor() const {
    return unique_statements == 0
               ? 1.0
               : static_cast<double>(statements) /
                     static_cast<double>(unique_statements);
  }
};

/// Replays `options.clients` independent sessions concurrently against
/// `experiment`'s server, one thread per client, all routed through the
/// shared admission queue. Each client's ActionResult is the same
/// (byte-identical tree, same per-client WAN traffic) as a solo
/// uncoalesced run; only server-side parse/plan work is shared. The
/// wave counters cover exactly this run (the queue's wave log is
/// cleared first). Read-only workloads only — concurrent DML sessions
/// are outside the engine's concurrency contract (DESIGN.md 5d).
Result<MultiClientResult> RunMultiClientAction(
    Experiment& experiment, const MultiClientOptions& options);

}  // namespace pdm::client

#endif  // PDM_CLIENT_EXPERIMENT_H_
