#ifndef PDM_CLIENT_EXPERIMENT_H_
#define PDM_CLIENT_EXPERIMENT_H_

#include <memory>

#include "client/checkout.h"
#include "client/connection.h"
#include "client/strategies.h"
#include "common/result.h"
#include "model/cost_model.h"
#include "net/wan_model.h"
#include "pdm/generator.h"
#include "rules/rule.h"
#include "server/db_server.h"

namespace pdm::client {

/// Full configuration of one simulated deployment.
struct ExperimentConfig {
  pdmsys::GeneratorConfig generator;
  net::WanConfig wan;
  ClientConfig client;
};

/// A fully wired simulated PDM installation: database server with one
/// generated product, the standard rule set (object access rule,
/// relation effectivity/option rule, check-out ∀rows rule), server-side
/// procedures, and one client connection over the simulated WAN.
///
/// The standard rules are calibrated so that the reference user sees
/// exactly the generator's `visible_nodes` ground truth:
///   * object rule (row, all types):  acc = '+'
///   * relation rule (row, link):     effectivity overlaps the user's
///     window AND option sets overlap (BITAND) — the paper's rule
///     example 3 pair
///   * check-out rule (∀rows):        checkedout = FALSE on every node
///     (the paper's rule example 2)
class Experiment {
 public:
  static Result<std::unique_ptr<Experiment>> Create(
      const ExperimentConfig& config);

  DbServer& server() { return server_; }
  Connection& connection() { return *connection_; }
  rules::RuleTable& rule_table() { return rule_table_; }
  const pdmsys::GeneratedProduct& product() const { return product_; }
  const pdmsys::UserContext& user() const { return config_.generator.user; }
  const ExperimentConfig& config() const { return config_; }

  /// Strategy instance for one of the paper's three regimes.
  std::unique_ptr<AccessStrategy> MakeStrategy(model::StrategyKind kind);

  /// Strategy instance driving an arbitrary connection to this
  /// deployment's server (the multi-client driver gives every simulated
  /// client its own connection and WAN link).
  std::unique_ptr<AccessStrategy> MakeStrategyOn(Connection* conn,
                                                 model::StrategyKind kind);

  /// Check-out driver bound to this deployment.
  std::unique_ptr<CheckOutClient> MakeCheckOutClient();

  /// Runs the model-equivalent action with the given strategy regime.
  Result<ActionResult> RunAction(model::StrategyKind strategy,
                                 model::ActionKind action);

 private:
  explicit Experiment(ExperimentConfig config) : config_(config) {}

  Status Init();

  ExperimentConfig config_;
  DbServer server_;
  rules::RuleTable rule_table_;
  pdmsys::GeneratedProduct product_;
  std::unique_ptr<Connection> connection_;
};

/// Installs the standard rule set described above into `table`.
Status InstallStandardRules(rules::RuleTable* table);

/// Configuration of one multi-client replay (DESIGN.md 5e): N
/// independent clients, each with its own connection and WAN link,
/// concurrently replay the same navigational session against one
/// server through the shared admission queue.
struct MultiClientOptions {
  size_t clients = 2;
  model::StrategyKind strategy = model::StrategyKind::kBatchedEarly;
  model::ActionKind action = model::ActionKind::kMultiLevelExpand;
};

/// Outcome of one multi-client replay, with the admission queue's
/// per-wave coalescing totals for the run.
struct MultiClientResult {
  std::vector<ActionResult> per_client;  // indexed by client id
  size_t waves = 0;                 // execution waves formed
  size_t statements = 0;            // statements submitted through waves
  size_t unique_statements = 0;     // engine executions after dedup
  /// Statements served per engine execution (1.0 = no cross-client
  /// sharing; approaches `clients` as windows widen).
  double DedupFactor() const {
    return unique_statements == 0
               ? 1.0
               : static_cast<double>(statements) /
                     static_cast<double>(unique_statements);
  }
};

/// Replays `options.clients` independent sessions concurrently against
/// `experiment`'s server, one thread per client, all routed through the
/// shared admission queue. Each client's ActionResult is the same
/// (byte-identical tree, same per-client WAN traffic) as a solo
/// uncoalesced run; only server-side parse/plan work is shared. The
/// wave counters cover exactly this run (the queue's wave log is
/// cleared first). For mixed reader/writer sessions use
/// RunConcurrentDmlAction below — it reports the writer outcomes and
/// the MVCC conflict counters this read-only driver has no slots for.
Result<MultiClientResult> RunMultiClientAction(
    Experiment& experiment, const MultiClientOptions& options);

/// Configuration of one concurrent reader/writer replay (DESIGN.md 5h):
/// `readers` clients run the read-only action while `writers` clients
/// run check-out/check-in cycles against the same product tree, all
/// through the shared admission queue. Reader statements run against
/// wave snapshots, writer UPDATEs go through the serial writer lane and
/// retry on first-writer-wins conflicts.
/// How concurrent-DML writers generate their load:
///  * kCheckOutCycles: full check-out/check-in flows through
///    CheckOutClient — retrieval waves alternate with update waves,
///    the realistic PDM action mix.
///  * kUpdateBursts: every submission is one UPDATE flipping the flag
///    of the writer's target row — DML is pending in *every* wave,
///    the steady-state worst case for the pre-MVCC serial path.
enum class DmlWriterMode { kCheckOutCycles, kUpdateBursts };

struct ConcurrentDmlOptions {
  size_t readers = 8;
  size_t writers = 4;
  /// Check-out + check-in pairs (kCheckOutCycles) or UPDATE
  /// submissions (kUpdateBursts) each writer performs.
  size_t writer_cycles = 4;
  DmlWriterMode writer_mode = DmlWriterMode::kCheckOutCycles;
  /// Root of the subtree the writers cycle on; 0 means the product
  /// root. Real check-outs target a subassembly, not the whole
  /// product — pointing the writers at a child keeps the contention
  /// (they all fight over the same rows) without the writers' DML
  /// dominating the CPU the readers are measured on.
  int64_t writer_root_obid = 0;
  /// De-phase odd-indexed writers by one submission. All writers start
  /// their first check-out in the same wave, so their
  /// retrieval/update alternation stays in lockstep and whole waves
  /// deterministically carry either no DML or all writers' DML.
  /// Staggered starts (the realistic arrival pattern) put some
  /// writer's UPDATE batch in every wave instead.
  bool stagger_writers = true;
  model::StrategyKind reader_strategy = model::StrategyKind::kBatchedEarly;
  model::ActionKind reader_action = model::ActionKind::kMultiLevelExpand;
  CheckOutMethod writer_method = CheckOutMethod::kRecursiveBatched;
};

/// Outcome of one concurrent reader/writer replay.
struct ConcurrentDmlResult {
  std::vector<ActionResult> reader_results;  // indexed by reader
  /// Wall-clock seconds each reader's action took — the number the
  /// MVCC claim is about: it must stay flat as writers are added
  /// (simulated WAN seconds are deterministic and cannot show the
  /// reader/writer serialization the paper-era design suffered).
  std::vector<double> reader_wall_seconds;
  /// Flattened writer outcomes, 2 per cycle (check-out then check-in),
  /// grouped by writer. A denied action (rule refused) is a valid
  /// outcome, not an error.
  std::vector<CheckOutResult> writer_results;
  size_t waves = 0;
  size_t statements = 0;
  size_t dml_statements = 0;   // INSERT/UPDATE/DELETE through waves
  size_t conflicts = 0;        // first-writer-wins losses at the server
  size_t conflict_retries = 0; // client-side re-submissions
};

/// Runs `options.readers` read-only sessions and `options.writers`
/// check-out/check-in sessions concurrently, one thread per client,
/// all through the shared admission queue. Reader trees are
/// byte-identical to a quiesced run: check-out flips only `checkedout`
/// flags, which the expand queries never read, and every reader
/// statement sees one consistent MVCC snapshot.
Result<ConcurrentDmlResult> RunConcurrentDmlAction(
    Experiment& experiment, const ConcurrentDmlOptions& options);

}  // namespace pdm::client

#endif  // PDM_CLIENT_EXPERIMENT_H_
