#ifndef PDM_CLIENT_CONNECTION_H_
#define PDM_CLIENT_CONNECTION_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "exec/result_set.h"
#include "net/wan_model.h"
#include "server/db_server.h"

namespace pdm::client {

/// A PDM client's connection to the database server through the
/// simulated WAN. Every Execute() is one round trip: the SQL text goes
/// out (padded to packets), the serialized result comes back; the link
/// accumulates latency/transfer statistics.
class Connection {
 public:
  /// Sizes a result set on the wire; overrides the server's policy.
  using ResponseSizer = std::function<size_t(const ResultSet&)>;

  Connection(DbServer* server, net::WanConfig wan)
      : server_(server), link_(wan) {}

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// One query/response round trip with the server's response sizing.
  Status Execute(std::string_view sql, ResultSet* out);

  /// One round trip with caller-controlled response sizing (used by the
  /// recursive strategy to charge node rows at the paper's per-node
  /// size; see DESIGN.md).
  Status ExecuteSized(std::string_view sql, ResultSet* out,
                      const ResponseSizer& sizer);

  /// One *batched* round trip: all statements ship as one request, all
  /// results return as one response (DESIGN.md 5d). `out` receives one
  /// Result per statement, in statement order — a failing statement
  /// reports its error in its slot without poisoning siblings. Uses the
  /// server's response sizing.
  Status ExecuteBatch(const std::vector<std::string>& statements,
                      std::vector<Result<ResultSet>>* out);

  /// ExecuteBatch with caller-controlled response sizing. Error slots
  /// are charged the server's minimal 64-byte frame, not `sizer`.
  Status ExecuteBatchSized(const std::vector<std::string>& statements,
                           std::vector<Result<ResultSet>>* out,
                           const ResponseSizer& sizer);

  DbServer& server() { return *server_; }
  net::WanLink& link() { return link_; }
  const net::WanStats& stats() const { return link_.stats(); }
  void ResetStats() { link_.ResetStats(); }

 private:
  DbServer* server_;
  net::WanLink link_;
};

}  // namespace pdm::client

#endif  // PDM_CLIENT_CONNECTION_H_
