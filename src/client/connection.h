#ifndef PDM_CLIENT_CONNECTION_H_
#define PDM_CLIENT_CONNECTION_H_

#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "exec/result_set.h"
#include "net/wan_model.h"
#include "server/db_server.h"

namespace pdm::client {

/// A PDM client's connection to the database server through the
/// simulated WAN. Every Execute() is one round trip: the SQL text goes
/// out (padded to packets), the serialized result comes back; the link
/// accumulates latency/transfer statistics.
class Connection {
 public:
  /// Sizes a result set on the wire; overrides the server's policy.
  using ResponseSizer = std::function<size_t(const ResultSet&)>;

  Connection(DbServer* server, net::WanConfig wan)
      : server_(server), link_(wan) {}

  ~Connection() { DetachFromAdmissionQueue(); }

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Routes this connection's server traffic through the shared
  /// admission queue (DESIGN.md 5e) as client `client_id`, registering
  /// it as an active queue client. Wire accounting is unchanged — each
  /// Execute/ExecuteBatch is still one round trip on this link; only
  /// server-side execution coalesces across clients. Detach (or destroy
  /// the connection) when the session ends so other clients' waves stop
  /// waiting for this one.
  void AttachToAdmissionQueue(uint64_t client_id);
  void DetachFromAdmissionQueue();
  bool attached_to_admission_queue() const { return admission_attached_; }

  /// One query/response round trip with the server's response sizing.
  Status Execute(std::string_view sql, ResultSet* out);

  /// One round trip with caller-controlled response sizing (used by the
  /// recursive strategy to charge node rows at the paper's per-node
  /// size; see DESIGN.md).
  Status ExecuteSized(std::string_view sql, ResultSet* out,
                      const ResponseSizer& sizer);

  /// One *batched* round trip: all statements ship as one request, all
  /// results return as one response (DESIGN.md 5d). `out` receives one
  /// Result per statement, in statement order — a failing statement
  /// reports its error in its slot without poisoning siblings. Uses the
  /// server's response sizing. An empty batch is a no-op: nothing is
  /// sent and no round trip is charged.
  Status ExecuteBatch(const std::vector<std::string>& statements,
                      std::vector<Result<ResultSet>>* out);

  /// ExecuteBatch with caller-controlled response sizing. Error slots
  /// are charged the server's minimal 64-byte frame, not `sizer`.
  Status ExecuteBatchSized(const std::vector<std::string>& statements,
                           std::vector<Result<ResultSet>>* out,
                           const ResponseSizer& sizer);

  /// One in-flight pipelined batch exchange (DESIGN.md 5g): the request
  /// is on the wire (WanLink::BeginExchange) and the statements execute
  /// at the server on a background thread. Collect() blocks for the
  /// results and completes the exchange on the link. Destroying a
  /// never-collected PendingBatch drains the server work and aborts the
  /// exchange unaccounted — the fail-fast path can simply drop it
  /// without deadlocking or corrupting the link timeline.
  class PendingBatch {
   public:
    PendingBatch() = default;
    ~PendingBatch();

    PendingBatch(PendingBatch&& other) noexcept
        : conn_(std::exchange(other.conn_, nullptr)),
          future_(std::move(other.future_)),
          n_statements_(other.n_statements_) {}
    PendingBatch& operator=(PendingBatch&& other) noexcept;

    /// False for an empty batch (nothing was issued) or after Collect.
    bool valid() const { return conn_ != nullptr; }
    size_t statements() const { return n_statements_; }

    /// Blocks for the server results, completes the exchange on the
    /// link and fills `out` (one Result per statement, in order, as
    /// ExecuteBatch does). OK slots are sized by `sizer` when provided
    /// (error slots: the 64-byte frame), by the server's policy
    /// otherwise. Returns the exchange's timeline entry; zeroed if the
    /// batch was invalid.
    net::ExchangeTiming Collect(std::vector<Result<ResultSet>>* out,
                                const ResponseSizer& sizer = nullptr);

   private:
    friend class Connection;

    Connection* conn_ = nullptr;
    std::future<std::vector<DbServer::BatchStatementResult>> future_;
    size_t n_statements_ = 0;
  };

  /// Issues a batch without waiting for it (DESIGN.md 5g). With
  /// `overlap_previous` the exchange is charged as issued at the
  /// previous exchange's transfer start — the speculative issue of a
  /// pipelined client that decoded the streaming prefix. The server work
  /// runs on a background thread (through the admission queue when
  /// attached). An empty batch issues nothing and returns an invalid
  /// handle. At most one pipelined batch may be in flight per
  /// connection (the link serializes exchanges).
  PendingBatch ExecuteBatchPipelined(std::vector<std::string> statements,
                                     bool overlap_previous);

  DbServer& server() { return *server_; }
  net::WanLink& link() { return link_; }
  const net::WanStats& stats() const { return link_.stats(); }
  void ResetStats() { link_.ResetStats(); }

 private:
  /// Executes `statements` at the server: through the admission queue
  /// when attached, directly otherwise.
  std::vector<DbServer::BatchStatementResult> RunAtServer(
      const std::vector<std::string>& statements);

  DbServer* server_;
  net::WanLink link_;
  bool admission_attached_ = false;
  uint64_t admission_client_id_ = 0;
};

}  // namespace pdm::client

#endif  // PDM_CLIENT_CONNECTION_H_
