#ifndef PDM_CLIENT_MULTISITE_H_
#define PDM_CLIENT_MULTISITE_H_

#include <memory>
#include <string>
#include <vector>

#include "client/experiment.h"
#include "common/result.h"
#include "common/rng.h"
#include "model/cost_model.h"
#include "net/replication.h"
#include "net/wan_model.h"
#include "server/replica.h"

namespace pdm::client {

/// One remote site of the worldwide deployment (DESIGN.md 5l): a local
/// read replica behind the site's WAN link, a population of simulated
/// clients, and the site's open-loop arrival process.
struct SiteSpec {
  std::string name;    // site label (becomes a metric dimension)
  /// Site <-> primary WAN link: write-through traffic and the
  /// replication stream share it (each on its own simulated channel,
  /// as the paper's sites each had their own line).
  net::WanConfig wan;
  /// Client <-> local-replica link (campus LAN: sub-ms latency, fast).
  net::WanConfig lan;
  size_t clients = 1000;        // simulated client population
  double arrival_rate_hz = 40;  // open-loop Poisson arrival rate
  size_t arrivals = 400;        // events generated for the run
  double write_fraction = 0.05; // arrivals that write through to primary
};

struct MultiSiteOptions {
  pdmsys::GeneratorConfig generator;  // the shared product's shape
  /// The primary deployment's own (local) link — the Experiment every
  /// site replicates from.
  net::WanConfig primary_wan;
  std::vector<SiteSpec> sites;
  uint64_t seed = 42;
  /// Simulated per-site service parallelism (the open-loop queue's c
  /// servers) and the real worker-pool width of every DbServer. The
  /// arrival schedule is independent of this by construction — the
  /// determinism gate in bench/table_multisite replays it at several
  /// values and asserts byte-identical schedules and replica states.
  size_t batch_threads = 1;
  model::StrategyKind read_strategy = model::StrategyKind::kBatchedEarly;
  /// Replica-side apply cost charged per replayed DML statement in the
  /// staleness accounting — a calibration knob like ServerCostParams,
  /// shared with the closed form so the staleness term reconciles
  /// exactly.
  double apply_seconds_per_statement = 2.0e-4;
};

/// One open-loop arrival. The schedule is a pure function of
/// (seed, site index, SiteSpec): Poisson-like interarrivals and client
/// assignment come from Rng::ForStream sub-streams keyed on the site's
/// *logical* index, never on threads or submission order.
struct ArrivalEvent {
  double arrival_s = 0;
  uint64_t client_id = 0;  // within the site's population
  bool is_write = false;
};

std::vector<ArrivalEvent> GenerateArrivalSchedule(const SiteSpec& site,
                                                  size_t site_index,
                                                  uint64_t seed);

/// Per-site outcome of one open-loop run. Quantiles are exact (computed
/// from the full per-event vectors); the same distributions are also
/// exported as "openloop.action_seconds"{site} and
/// "openloop.queue_wait_seconds"{site} histogram families.
struct SiteReport {
  std::string name;
  size_t arrivals = 0;
  size_t reads = 0;
  size_t writes = 0;
  double p50_latency_s = 0;     // arrival -> completion
  double p99_latency_s = 0;
  double p50_queue_wait_s = 0;  // arrival -> service start
  double p99_queue_wait_s = 0;
  double mean_service_s = 0;
  double end_s = 0;             // completion of the site's last event
  double utilization = 0;       // busy server-seconds / (c * end_s)
  // Replication, over the whole run:
  size_t shipments = 0;
  size_t shipped_statements = 0;
  double mean_lag_s = 0;
  double max_lag_s = 0;
  size_t queued_shipments = 0;  // found the channel busy at commit
  /// Worst relative gap between a non-queued shipment's simulated lag
  /// and model::ReplicaStalenessSeconds, in percent. Queued shipments
  /// carry channel-wait on top of the closed form and are excluded.
  double staleness_model_err_pct = 0;
  uint64_t applied_commit_ts = 0;
};

struct MultiSiteResult {
  std::vector<SiteReport> sites;
  uint64_t primary_commit_ts = 0;
  size_t total_arrivals = 0;
};

/// The worldwide topology of ROADMAP item 1: one primary deployment
/// (Experiment) plus N sites, each with a bootstrapped local replica
/// (ReplicaServer), an asynchronous replication channel over the site's
/// WAN link, a read connection to the replica and a write-through
/// connection to the primary. RunOpenLoop drives the deterministic
/// arrival schedules through it and reports per-site tail latency,
/// queue wait and replication lag.
class MultiSiteDeployment {
 public:
  static Result<std::unique_ptr<MultiSiteDeployment>> Create(
      const MultiSiteOptions& options);

  Experiment& primary() { return *primary_; }
  size_t num_sites() const { return sites_.size(); }
  ReplicaServer& replica(size_t site) { return *sites_[site]->replica; }
  net::ReplicationChannel& channel(size_t site) {
    return *sites_[site]->channel;
  }
  Connection& read_connection(size_t site) {
    return *sites_[site]->read_conn;
  }
  Connection& write_connection(size_t site) {
    return *sites_[site]->write_conn;
  }
  const MultiSiteOptions& options() const { return options_; }

  /// Runs every site's open-loop schedule to completion. Events are
  /// processed in global simulated-arrival order, so engine state,
  /// per-event service times and the replication stream are exactly
  /// reproducible from the seed; each site's queueing (c = batch_threads
  /// simulated servers) is evaluated by the standard open-loop
  /// recursion on top of the deterministic service times.
  Result<MultiSiteResult> RunOpenLoop();

  /// Post-run consistency gate: drains replication at every site, then
  /// asserts (a) applied commit ts == primary commit clock, (b) the
  /// replica's multi-level expand tree is byte-identical to the
  /// quiesced primary's, and (c) the replicated tables' full contents
  /// (including the checkedout flags the expand never reads) match the
  /// primary row for row.
  Status VerifyReplicaConsistency();

 private:
  struct Site {
    SiteSpec spec;
    std::unique_ptr<ReplicaServer> replica;
    std::unique_ptr<net::ReplicationChannel> channel;
    std::unique_ptr<Connection> read_conn;   // -> local replica (LAN)
    std::unique_ptr<Connection> write_conn;  // -> primary (WAN)
    std::unique_ptr<AccessStrategy> read_strategy;
    int64_t write_target_obid = 0;
    bool write_toggle = false;
    /// Simulated commit time of the newest primary commit this site has
    /// not shipped yet — the `commit_s` of its next shipment, so lag is
    /// always measured from the real commit, not the pump trigger.
    double pending_commit_s = 0;
    std::vector<net::ReplicationShipment> shipments;
  };

  MultiSiteDeployment() = default;

  Status Init(const MultiSiteOptions& options);
  /// Ships the primary commits a site has not applied yet, committed at
  /// simulated time `commit_s`.
  Status PumpSite(Site& site, double commit_s);

  MultiSiteOptions options_;
  std::unique_ptr<Experiment> primary_;
  std::vector<std::unique_ptr<Site>> sites_;
  /// Visible expand targets: the product root plus its direct children,
  /// obid-sorted. Reads expand targets_[client % size]; site i writes
  /// the checkedout flag of child i % (size - 1).
  std::vector<int64_t> targets_;
};

}  // namespace pdm::client

#endif  // PDM_CLIENT_MULTISITE_H_
