#include "client/rule_eval.h"

#include <cassert>

#include "common/string_util.h"
#include "exec/expr_eval.h"
#include "pdm/pdm_schema.h"
#include "plan/binder.h"

namespace pdm::client {

using rules::ConditionClass;
using rules::Rule;
using rules::RuleAction;

ClientRuleEvaluator::ClientRuleEvaluator(const rules::RuleTable* rule_table,
                                         pdmsys::UserContext user)
    : rule_table_(rule_table),
      user_(std::move(user)),
      functions_(std::make_unique<FunctionRegistry>()),
      scratch_catalog_(std::make_unique<Catalog>()) {
  Status status = functions_->RegisterBuiltins();
  assert(status.ok());
  (void)status;
}

ClientRuleEvaluator::~ClientRuleEvaluator() = default;

namespace {

/// Binds `predicate` against the result-row schema (as the single table
/// "r" in scope).
Result<BoundExprPtr> BindAgainstSchema(const sql::Expr& predicate,
                                       const Schema& schema,
                                       const Catalog* catalog,
                                       const FunctionRegistry* functions) {
  Binder binder(catalog, functions);
  Scope scope;
  scope.AddTable("r", schema);
  return binder.BindExprInScope(predicate, &scope);
}

}  // namespace

Result<std::unique_ptr<PreparedRowFilter>> ClientRuleEvaluator::Prepare(
    const Schema& schema, RuleAction action) const {
  std::optional<size_t> type_col = schema.FindColumn("type");
  if (!type_col.has_value()) {
    return Status::InvalidArgument(
        "result schema lacks the 'type' discriminator column");
  }
  auto filter = std::unique_ptr<PreparedRowFilter>(
      new PreparedRowFilter(this, *type_col));

  std::vector<std::string> tables = pdmsys::ObjectTables();
  tables.push_back(pdmsys::kLinkTable);
  for (const std::string& table : tables) {
    std::vector<const Rule*> relevant = rule_table_->FetchRelevant(
        user_.name, action, ConditionClass::kRow, table);
    // "*" covers object types only; relation rules must name the table.
    if (table == pdmsys::kLinkTable) {
      std::erase_if(relevant,
                    [](const Rule* r) { return r->object_type == "*"; });
    }
    if (relevant.empty()) continue;
    std::vector<sql::ExprPtr> preds;
    for (const Rule* rule : relevant) {
      const auto& cond = static_cast<const rules::RowCondition&>(
          *rule->condition);
      // Unqualified: attribute names resolve against the result schema.
      PDM_ASSIGN_OR_RETURN(sql::ExprPtr pred, cond.Instantiate(user_, ""));
      preds.push_back(std::move(pred));
    }
    sql::ExprPtr group = sql::MakeDisjunction(std::move(preds));
    Result<BoundExprPtr> bound = BindAgainstSchema(
        *group, schema, scratch_catalog_.get(), functions_.get());
    if (!bound.ok()) {
      if (bound.status().code() == StatusCode::kBindError) {
        // The schema lacks the attributes this group tests (e.g. link
        // conditions on a structure-less result): group does not apply.
        continue;
      }
      return bound.status();
    }
    if (table == pdmsys::kLinkTable) {
      filter->link_group_ = std::move(bound).value();
    } else {
      filter->type_groups_[table] = std::move(bound).value();
    }
  }
  return filter;
}

Result<bool> PreparedRowFilter::Passes(const Row& row) const {
  ExecStats stats;
  ExecContext ctx(owner_->scratch_catalog_.get(), &owner_->exec_options_,
                  &stats);
  const std::string type = row[type_column_].ToString();
  auto it = type_groups_.find(type);
  if (it != type_groups_.end() && it->second != nullptr) {
    PDM_ASSIGN_OR_RETURN(bool pass, EvaluatePredicate(*it->second, row, &ctx));
    if (!pass) return false;
  }
  if (link_group_ != nullptr) {
    PDM_ASSIGN_OR_RETURN(bool pass,
                         EvaluatePredicate(*link_group_, row, &ctx));
    if (!pass) return false;
  }
  return true;
}

Result<bool> ClientRuleEvaluator::TreeConditionsPass(
    const ResultSet& nodes, RuleAction action) const {
  ExecStats stats;
  ExecContext ctx(scratch_catalog_.get(), &exec_options_, &stats);
  std::optional<size_t> type_col = nodes.schema.FindColumn("type");
  if (!type_col.has_value()) {
    return Status::InvalidArgument("node rows lack the 'type' column");
  }

  // ∀rows: every (type-matching) node must satisfy the row predicate.
  for (const Rule* rule : rule_table_->FetchRelevant(
           user_.name, action, ConditionClass::kForAllRows)) {
    const auto& cond =
        static_cast<const rules::ForAllRowsCondition&>(*rule->condition);
    PDM_ASSIGN_OR_RETURN(sql::ExprPtr pred,
                         cond.InstantiateRowPredicate(user_, ""));
    PDM_ASSIGN_OR_RETURN(
        BoundExprPtr bound,
        BindAgainstSchema(*pred, nodes.schema, scratch_catalog_.get(),
                          functions_.get()));
    const std::string& filter = cond.node_type_filter();
    bool all_filter = filter.empty() || filter == "*";
    for (const Row& row : nodes.rows) {
      if (!all_filter && row[*type_col].ToString() != filter) continue;
      PDM_ASSIGN_OR_RETURN(bool pass, EvaluatePredicate(*bound, row, &ctx));
      if (!pass) return false;  // all-or-nothing
    }
  }

  // Tree aggregates over the fetched node set.
  for (const Rule* rule : rule_table_->FetchRelevant(
           user_.name, action, ConditionClass::kTreeAggregate)) {
    const auto& cond =
        static_cast<const rules::TreeAggregateCondition&>(*rule->condition);
    const std::string& filter = cond.node_type_filter();
    bool all_filter = filter.empty() || filter == "*";
    std::optional<size_t> attr_col;
    if (!cond.attribute().empty()) {
      attr_col = nodes.schema.FindColumn(cond.attribute());
      if (!attr_col.has_value()) {
        return Status::InvalidArgument("tree-aggregate attribute '" +
                                       cond.attribute() + "' not in result");
      }
    }

    int64_t count = 0;
    double sum = 0;
    Value extreme;
    for (const Row& row : nodes.rows) {
      if (!all_filter && row[*type_col].ToString() != filter) continue;
      if (!attr_col.has_value()) {
        ++count;
        continue;
      }
      const Value& v = row[*attr_col];
      if (v.is_null()) continue;
      ++count;
      if (v.is_numeric()) sum += v.AsDouble();
      if (extreme.is_null() ||
          (Value::Comparable(extreme, v) &&
           ((cond.agg() == AggKind::kMin && Value::Compare(v, extreme) < 0) ||
            (cond.agg() == AggKind::kMax &&
             Value::Compare(v, extreme) > 0)))) {
        extreme = v;
      }
    }

    Value aggregate;
    switch (cond.agg()) {
      case AggKind::kCountStar:
      case AggKind::kCount:
        aggregate = Value::Int64(count);
        break;
      case AggKind::kSum:
        aggregate = count > 0 ? Value::Double(sum) : Value::Null();
        break;
      case AggKind::kAvg:
        aggregate = count > 0 ? Value::Double(sum / static_cast<double>(count))
                              : Value::Null();
        break;
      case AggKind::kMin:
      case AggKind::kMax:
        aggregate = extreme;
        break;
    }
    if (aggregate.is_null()) return false;
    if (!Value::Comparable(aggregate, cond.threshold())) {
      return Status::InvalidArgument(
          "tree-aggregate threshold incomparable with aggregate value");
    }
    int c = Value::Compare(aggregate, cond.threshold());
    bool pass = false;
    switch (cond.cmp()) {
      case sql::BinaryOp::kEq:
        pass = c == 0;
        break;
      case sql::BinaryOp::kNotEq:
        pass = c != 0;
        break;
      case sql::BinaryOp::kLess:
        pass = c < 0;
        break;
      case sql::BinaryOp::kLessEq:
        pass = c <= 0;
        break;
      case sql::BinaryOp::kGreater:
        pass = c > 0;
        break;
      case sql::BinaryOp::kGreaterEq:
        pass = c >= 0;
        break;
      default:
        return Status::InvalidArgument(
            "tree-aggregate comparison operator must be a comparison");
    }
    if (!pass) return false;
  }
  return true;
}

}  // namespace pdm::client
