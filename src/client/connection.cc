#include "client/connection.h"

namespace pdm::client {

Status Connection::Execute(std::string_view sql, ResultSet* out) {
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  size_t response_bytes = 0;
  PDM_RETURN_NOT_OK(server_->Execute(sql, out, &response_bytes));
  link_.RecordRoundTrip(sql.size(), response_bytes);
  return Status::OK();
}

Status Connection::ExecuteSized(std::string_view sql, ResultSet* out,
                                const ResponseSizer& sizer) {
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  PDM_RETURN_NOT_OK(server_->Execute(sql, out, nullptr));
  link_.RecordRoundTrip(sql.size(), sizer(*out));
  return Status::OK();
}

}  // namespace pdm::client
