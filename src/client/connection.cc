#include "client/connection.h"

#include "server/admission_queue.h"

namespace pdm::client {

void Connection::AttachToAdmissionQueue(uint64_t client_id) {
  if (admission_attached_) DetachFromAdmissionQueue();
  admission_client_id_ = client_id;
  admission_attached_ = true;
  server_->admission_queue().RegisterClient();
}

void Connection::DetachFromAdmissionQueue() {
  if (!admission_attached_) return;
  admission_attached_ = false;
  server_->admission_queue().UnregisterClient();
}

std::vector<DbServer::BatchStatementResult> Connection::RunAtServer(
    const std::vector<std::string>& statements) {
  if (admission_attached_) {
    return server_->Submit(admission_client_id_, statements);
  }
  return server_->ExecuteBatch(statements);
}

Status Connection::Execute(std::string_view sql, ResultSet* out) {
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  if (admission_attached_) {
    std::vector<std::string> statements{std::string(sql)};
    std::vector<DbServer::BatchStatementResult> results =
        server_->Submit(admission_client_id_, statements);
    PDM_RETURN_NOT_OK(results[0].status);
    *out = std::move(results[0].result);
    link_.RecordRoundTrip(sql.size(), results[0].response_bytes);
    return Status::OK();
  }
  size_t response_bytes = 0;
  PDM_RETURN_NOT_OK(server_->Execute(sql, out, &response_bytes));
  link_.RecordRoundTrip(sql.size(), response_bytes);
  return Status::OK();
}

Status Connection::ExecuteSized(std::string_view sql, ResultSet* out,
                                const ResponseSizer& sizer) {
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  if (admission_attached_) {
    std::vector<std::string> statements{std::string(sql)};
    std::vector<DbServer::BatchStatementResult> results =
        server_->Submit(admission_client_id_, statements);
    PDM_RETURN_NOT_OK(results[0].status);
    *out = std::move(results[0].result);
    link_.RecordRoundTrip(sql.size(), sizer(*out));
    return Status::OK();
  }
  PDM_RETURN_NOT_OK(server_->Execute(sql, out, nullptr));
  link_.RecordRoundTrip(sql.size(), sizer(*out));
  return Status::OK();
}

namespace {

/// Request payload of a batch: the statements concatenated with one
/// separator byte (';') between them.
size_t BatchRequestBytes(const std::vector<std::string>& statements) {
  size_t bytes = statements.empty() ? 0 : statements.size() - 1;
  for (const std::string& sql : statements) bytes += sql.size();
  return bytes;
}

}  // namespace

Status Connection::ExecuteBatch(const std::vector<std::string>& statements,
                                std::vector<Result<ResultSet>>* out) {
  if (out != nullptr) out->clear();
  // Empty batch: nothing to ship, no round trip charged.
  if (statements.empty()) return Status::OK();
  std::vector<DbServer::BatchStatementResult> results =
      RunAtServer(statements);
  size_t response_bytes = 0;
  for (const DbServer::BatchStatementResult& r : results) {
    response_bytes += r.response_bytes;
  }
  link_.RecordBatchRoundTrip(BatchRequestBytes(statements), response_bytes,
                             statements.size());
  if (out != nullptr) {
    out->reserve(results.size());
    for (DbServer::BatchStatementResult& r : results) {
      if (r.status.ok()) {
        out->emplace_back(std::move(r.result));
      } else {
        out->emplace_back(std::move(r.status));
      }
    }
  }
  return Status::OK();
}

Status Connection::ExecuteBatchSized(
    const std::vector<std::string>& statements,
    std::vector<Result<ResultSet>>* out, const ResponseSizer& sizer) {
  if (out != nullptr) out->clear();
  // Empty batch: nothing to ship, no round trip charged.
  if (statements.empty()) return Status::OK();
  std::vector<DbServer::BatchStatementResult> results =
      RunAtServer(statements);
  size_t response_bytes = 0;
  for (const DbServer::BatchStatementResult& r : results) {
    // Error slots occupy the server's minimal frame; OK slots use the
    // caller's sizing, matching what ExecuteSized charges per statement.
    response_bytes += r.status.ok() ? sizer(r.result) : size_t{64};
  }
  link_.RecordBatchRoundTrip(BatchRequestBytes(statements), response_bytes,
                             statements.size());
  if (out != nullptr) {
    out->reserve(results.size());
    for (DbServer::BatchStatementResult& r : results) {
      if (r.status.ok()) {
        out->emplace_back(std::move(r.result));
      } else {
        out->emplace_back(std::move(r.status));
      }
    }
  }
  return Status::OK();
}

}  // namespace pdm::client
