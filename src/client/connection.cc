#include "client/connection.h"

namespace pdm::client {

Status Connection::Execute(std::string_view sql, ResultSet* out) {
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  size_t response_bytes = 0;
  PDM_RETURN_NOT_OK(server_->Execute(sql, out, &response_bytes));
  link_.RecordRoundTrip(sql.size(), response_bytes);
  return Status::OK();
}

Status Connection::ExecuteSized(std::string_view sql, ResultSet* out,
                                const ResponseSizer& sizer) {
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  PDM_RETURN_NOT_OK(server_->Execute(sql, out, nullptr));
  link_.RecordRoundTrip(sql.size(), sizer(*out));
  return Status::OK();
}

namespace {

/// Request payload of a batch: the statements concatenated with one
/// separator byte (';') between them.
size_t BatchRequestBytes(const std::vector<std::string>& statements) {
  size_t bytes = statements.empty() ? 0 : statements.size() - 1;
  for (const std::string& sql : statements) bytes += sql.size();
  return bytes;
}

}  // namespace

Status Connection::ExecuteBatch(const std::vector<std::string>& statements,
                                std::vector<Result<ResultSet>>* out) {
  std::vector<DbServer::BatchStatementResult> results =
      server_->ExecuteBatch(statements);
  size_t response_bytes = 0;
  for (const DbServer::BatchStatementResult& r : results) {
    response_bytes += r.response_bytes;
  }
  link_.RecordBatchRoundTrip(BatchRequestBytes(statements), response_bytes,
                             statements.size());
  if (out != nullptr) {
    out->clear();
    out->reserve(results.size());
    for (DbServer::BatchStatementResult& r : results) {
      if (r.status.ok()) {
        out->emplace_back(std::move(r.result));
      } else {
        out->emplace_back(std::move(r.status));
      }
    }
  }
  return Status::OK();
}

Status Connection::ExecuteBatchSized(
    const std::vector<std::string>& statements,
    std::vector<Result<ResultSet>>* out, const ResponseSizer& sizer) {
  std::vector<DbServer::BatchStatementResult> results =
      server_->ExecuteBatch(statements);
  size_t response_bytes = 0;
  for (const DbServer::BatchStatementResult& r : results) {
    // Error slots occupy the server's minimal frame; OK slots use the
    // caller's sizing, matching what ExecuteSized charges per statement.
    response_bytes += r.status.ok() ? sizer(r.result) : size_t{64};
  }
  link_.RecordBatchRoundTrip(BatchRequestBytes(statements), response_bytes,
                             statements.size());
  if (out != nullptr) {
    out->clear();
    out->reserve(results.size());
    for (DbServer::BatchStatementResult& r : results) {
      if (r.status.ok()) {
        out->emplace_back(std::move(r.result));
      } else {
        out->emplace_back(std::move(r.status));
      }
    }
  }
  return Status::OK();
}

}  // namespace pdm::client
