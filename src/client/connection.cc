#include "client/connection.h"

#include "server/admission_queue.h"

namespace pdm::client {

void Connection::AttachToAdmissionQueue(uint64_t client_id) {
  if (admission_attached_) DetachFromAdmissionQueue();
  admission_client_id_ = client_id;
  admission_attached_ = true;
  server_->admission_queue().RegisterClient();
}

void Connection::DetachFromAdmissionQueue() {
  if (!admission_attached_) return;
  admission_attached_ = false;
  server_->admission_queue().UnregisterClient();
}

std::vector<DbServer::BatchStatementResult> Connection::RunAtServer(
    const std::vector<std::string>& statements) {
  if (admission_attached_) {
    return server_->Submit(admission_client_id_, statements);
  }
  return server_->ExecuteBatch(statements);
}

Status Connection::Execute(std::string_view sql, ResultSet* out) {
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  if (admission_attached_) {
    std::vector<std::string> statements{std::string(sql)};
    std::vector<DbServer::BatchStatementResult> results =
        server_->Submit(admission_client_id_, statements);
    PDM_RETURN_NOT_OK(results[0].status);
    *out = std::move(results[0].result);
    link_.RecordRoundTrip(sql.size(), results[0].response_bytes);
    return Status::OK();
  }
  size_t response_bytes = 0;
  PDM_RETURN_NOT_OK(server_->Execute(sql, out, &response_bytes));
  link_.RecordRoundTrip(sql.size(), response_bytes);
  return Status::OK();
}

Status Connection::ExecuteSized(std::string_view sql, ResultSet* out,
                                const ResponseSizer& sizer) {
  ResultSet scratch;
  if (out == nullptr) out = &scratch;
  if (admission_attached_) {
    std::vector<std::string> statements{std::string(sql)};
    std::vector<DbServer::BatchStatementResult> results =
        server_->Submit(admission_client_id_, statements);
    PDM_RETURN_NOT_OK(results[0].status);
    *out = std::move(results[0].result);
    link_.RecordRoundTrip(sql.size(), sizer(*out));
    return Status::OK();
  }
  PDM_RETURN_NOT_OK(server_->Execute(sql, out, nullptr));
  link_.RecordRoundTrip(sql.size(), sizer(*out));
  return Status::OK();
}

namespace {

/// Request payload of a batch: the statements concatenated with one
/// separator byte (';') between them.
size_t BatchRequestBytes(const std::vector<std::string>& statements) {
  size_t bytes = statements.empty() ? 0 : statements.size() - 1;
  for (const std::string& sql : statements) bytes += sql.size();
  return bytes;
}

}  // namespace

Status Connection::ExecuteBatch(const std::vector<std::string>& statements,
                                std::vector<Result<ResultSet>>* out) {
  if (out != nullptr) out->clear();
  // Empty batch: nothing to ship, no round trip charged.
  if (statements.empty()) return Status::OK();
  std::vector<DbServer::BatchStatementResult> results =
      RunAtServer(statements);
  size_t response_bytes = 0;
  for (const DbServer::BatchStatementResult& r : results) {
    response_bytes += r.response_bytes;
  }
  link_.RecordBatchRoundTrip(BatchRequestBytes(statements), response_bytes,
                             statements.size());
  if (out != nullptr) {
    out->reserve(results.size());
    for (DbServer::BatchStatementResult& r : results) {
      if (r.status.ok()) {
        out->emplace_back(std::move(r.result));
      } else {
        out->emplace_back(std::move(r.status));
      }
    }
  }
  return Status::OK();
}

Status Connection::ExecuteBatchSized(
    const std::vector<std::string>& statements,
    std::vector<Result<ResultSet>>* out, const ResponseSizer& sizer) {
  if (out != nullptr) out->clear();
  // Empty batch: nothing to ship, no round trip charged.
  if (statements.empty()) return Status::OK();
  std::vector<DbServer::BatchStatementResult> results =
      RunAtServer(statements);
  size_t response_bytes = 0;
  for (const DbServer::BatchStatementResult& r : results) {
    // Error slots occupy the server's minimal frame; OK slots use the
    // caller's sizing, matching what ExecuteSized charges per statement.
    response_bytes += r.status.ok() ? sizer(r.result) : size_t{64};
  }
  link_.RecordBatchRoundTrip(BatchRequestBytes(statements), response_bytes,
                             statements.size());
  if (out != nullptr) {
    out->reserve(results.size());
    for (DbServer::BatchStatementResult& r : results) {
      if (r.status.ok()) {
        out->emplace_back(std::move(r.result));
      } else {
        out->emplace_back(std::move(r.status));
      }
    }
  }
  return Status::OK();
}

Connection::PendingBatch::~PendingBatch() {
  if (conn_ == nullptr) return;
  // Never collected: the action failed before this level's results were
  // needed. Drain the server work (its thread touches shared state) and
  // drop the exchange from the timeline unaccounted.
  if (future_.valid()) future_.wait();
  conn_->link_.AbortExchange();
}

Connection::PendingBatch& Connection::PendingBatch::operator=(
    PendingBatch&& other) noexcept {
  if (this != &other) {
    if (conn_ != nullptr) {
      if (future_.valid()) future_.wait();
      conn_->link_.AbortExchange();
    }
    conn_ = std::exchange(other.conn_, nullptr);
    future_ = std::move(other.future_);
    n_statements_ = other.n_statements_;
  }
  return *this;
}

net::ExchangeTiming Connection::PendingBatch::Collect(
    std::vector<Result<ResultSet>>* out, const ResponseSizer& sizer) {
  if (out != nullptr) out->clear();
  net::ExchangeTiming timing;
  if (conn_ == nullptr) return timing;
  Connection* conn = std::exchange(conn_, nullptr);
  std::vector<DbServer::BatchStatementResult> results = future_.get();
  size_t response_bytes = 0;
  for (const DbServer::BatchStatementResult& r : results) {
    if (sizer) {
      response_bytes += r.status.ok() ? sizer(r.result) : size_t{64};
    } else {
      response_bytes += r.response_bytes;
    }
  }
  timing = conn->link_.CompleteExchange(response_bytes);
  if (out != nullptr) {
    out->reserve(results.size());
    for (DbServer::BatchStatementResult& r : results) {
      if (r.status.ok()) {
        out->emplace_back(std::move(r.result));
      } else {
        out->emplace_back(std::move(r.status));
      }
    }
  }
  return timing;
}

Connection::PendingBatch Connection::ExecuteBatchPipelined(
    std::vector<std::string> statements, bool overlap_previous) {
  PendingBatch pending;
  // Empty batch: nothing to ship, no exchange opened.
  if (statements.empty()) return pending;
  pending.conn_ = this;
  pending.n_statements_ = statements.size();
  link_.BeginExchange(BatchRequestBytes(statements), statements.size(),
                      overlap_previous);
  pending.future_ =
      admission_attached_
          ? server_->SubmitAsync(admission_client_id_, std::move(statements))
          : server_->ExecuteBatchAsync(std::move(statements));
  return pending;
}

}  // namespace pdm::client
