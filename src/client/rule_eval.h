#ifndef PDM_CLIENT_RULE_EVAL_H_
#define PDM_CLIENT_RULE_EVAL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/exec_context.h"
#include "exec/result_set.h"
#include "pdm/user_context.h"
#include "plan/bound_expr.h"
#include "plan/functions.h"
#include "rules/rule.h"

namespace pdm::client {

class PreparedRowFilter;

/// Client-side ("late") rule evaluation — the baseline the paper
/// measures against: objects cross the WAN first, then the client
/// decides visibility. Row conditions are checked per fetched row; the
/// tree conditions (∀rows / tree-aggregate) are checked once the whole
/// tree has been fetched. (∃structure conditions would require further
/// server data and are exercised through the early/recursive paths; see
/// EXPERIMENTS.md.)
class ClientRuleEvaluator {
 public:
  ClientRuleEvaluator(const rules::RuleTable* rule_table,
                      pdmsys::UserContext user);
  ~ClientRuleEvaluator();

  ClientRuleEvaluator(const ClientRuleEvaluator&) = delete;
  ClientRuleEvaluator& operator=(const ClientRuleEvaluator&) = delete;

  /// Binds this action's row conditions against a result-row schema.
  /// Per-type groups (assy/comp/link) are OR-combined internally and
  /// AND-combined across types; groups whose predicates do not bind
  /// against the schema (e.g. link conditions on a result without link
  /// attributes) do not apply.
  Result<std::unique_ptr<PreparedRowFilter>> Prepare(
      const Schema& schema, rules::RuleAction action) const;

  /// Whole-tree checks on the set of fetched node rows (homogenized
  /// schema): all ∀rows conditions hold and all tree-aggregate
  /// conditions hold. Rows must all be object rows.
  Result<bool> TreeConditionsPass(const ResultSet& nodes,
                                  rules::RuleAction action) const;

  const pdmsys::UserContext& user() const { return user_; }
  const rules::RuleTable& rule_table() const { return *rule_table_; }

 private:
  friend class PreparedRowFilter;

  const rules::RuleTable* rule_table_;
  pdmsys::UserContext user_;
  std::unique_ptr<FunctionRegistry> functions_;
  std::unique_ptr<Catalog> scratch_catalog_;  // empty; anchors ExecContext
  ExecOptions exec_options_;
};

/// Bound row-condition filter for one result schema. Rows are tested
/// with full SQL semantics (three-valued logic: non-TRUE rejects).
class PreparedRowFilter {
 public:
  /// True if the row (whose object type is read from the schema's
  /// `type` column) passes all applicable groups.
  Result<bool> Passes(const Row& row) const;

 private:
  friend class ClientRuleEvaluator;
  PreparedRowFilter(const ClientRuleEvaluator* owner, size_t type_column)
      : owner_(owner), type_column_(type_column) {}

  const ClientRuleEvaluator* owner_;
  size_t type_column_;
  /// Per object type: OR-combined bound predicate (may be null = none).
  std::map<std::string, BoundExprPtr> type_groups_;
  BoundExprPtr link_group_;  // applies to every row; may be null
};

}  // namespace pdm::client

#endif  // PDM_CLIENT_RULE_EVAL_H_
