#include "client/multisite.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "pdm/pdm_schema.h"
#include "rules/procedures.h"

namespace pdm::client {

namespace {

/// Exact empirical quantile: the ceil(q*n)-th smallest of `sorted`.
double QuantileOf(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

model::NetworkParams NetParamsOf(const net::WanConfig& wan) {
  model::NetworkParams net;
  net.latency_s = wan.latency_s;
  net.dtr_kbit = wan.dtr_kbit;
  net.packet_bytes = static_cast<double>(wan.packet_bytes);
  return net;
}

/// Full-content fingerprint of one replicated table, ordered so two
/// byte-identical databases render byte-identical strings. Includes
/// every column — in particular the checkedout flags the expand
/// queries never read.
Result<std::string> TableFingerprint(Database& db, const std::string& table) {
  PDM_ASSIGN_OR_RETURN(
      ResultSet rows,
      db.Query(StrFormat("SELECT * FROM %s ORDER BY obid", table.c_str())));
  return rows.ToString(1 << 20);
}

}  // namespace

std::vector<ArrivalEvent> GenerateArrivalSchedule(const SiteSpec& site,
                                                  size_t site_index,
                                                  uint64_t seed) {
  // Two sub-streams per site, keyed on the site's logical index only:
  // one for the interarrival gaps, one for client assignment and the
  // read/write draw. Nothing here may depend on threads, worker-pool
  // width or submission interleaving — that is the whole determinism
  // contract (Rng::ForStream).
  Rng gaps = Rng::ForStream(seed, static_cast<uint64_t>(site_index) * 2);
  Rng assign =
      Rng::ForStream(seed, static_cast<uint64_t>(site_index) * 2 + 1);
  std::vector<ArrivalEvent> schedule;
  schedule.reserve(site.arrivals);
  const double rate = site.arrival_rate_hz > 0 ? site.arrival_rate_hz : 1.0;
  double t = 0;
  for (size_t i = 0; i < site.arrivals; ++i) {
    // Exponential interarrival via inverse transform; NextDouble() is in
    // [0, 1), so log1p(-u) is finite.
    t += -std::log1p(-gaps.NextDouble()) / rate;
    ArrivalEvent event;
    event.arrival_s = t;
    event.client_id = assign.NextBelow(site.clients > 0 ? site.clients : 1);
    event.is_write = assign.NextBool(site.write_fraction);
    schedule.push_back(event);
  }
  return schedule;
}

Result<std::unique_ptr<MultiSiteDeployment>> MultiSiteDeployment::Create(
    const MultiSiteOptions& options) {
  std::unique_ptr<MultiSiteDeployment> deployment(new MultiSiteDeployment());
  PDM_RETURN_NOT_OK(deployment->Init(options));
  return deployment;
}

Status MultiSiteDeployment::Init(const MultiSiteOptions& options) {
  options_ = options;
  if (options_.sites.empty()) {
    return Status::InvalidArgument("MultiSiteOptions: no sites configured");
  }
  ExperimentConfig primary_config;
  primary_config.generator = options_.generator;
  primary_config.wan = options_.primary_wan;
  PDM_ASSIGN_OR_RETURN(primary_, Experiment::Create(primary_config));
  primary_->server().mutable_config().batch_threads = options_.batch_threads;

  // Expand/write targets: the root plus its direct children, obid-sorted
  // (deterministic across runs — obids are generator-assigned).
  {
    PDM_ASSIGN_OR_RETURN(
        ResultSet children,
        primary_->server().database().Query(StrFormat(
            "SELECT right FROM %s WHERE left = %lld AND hier = '%s' "
            "ORDER BY right",
            pdmsys::kLinkTable,
            static_cast<long long>(primary_->product().root_obid),
            pdmsys::kPhysicalHierarchy)));
    targets_.push_back(primary_->product().root_obid);
    for (size_t r = 0; r < children.num_rows(); ++r) {
      if (children.At(r, 0).is_int64()) {
        targets_.push_back(children.At(r, 0).int64_value());
      }
    }
  }

  // Capture starts now: every later commit is replicated. The replicas
  // bootstrap below by re-running the same deterministic generator —
  // the simulated equivalent of an initial full sync at this clock.
  primary_->server().database().EnableCommitLog(true);

  for (size_t i = 0; i < options_.sites.size(); ++i) {
    SiteSpec spec = options_.sites[i];
    spec.wan.site = spec.name;
    spec.lan.site = spec.name;
    PDM_RETURN_NOT_OK(spec.wan.Validate());
    PDM_RETURN_NOT_OK(spec.lan.Validate());
    auto site = std::make_unique<Site>();
    site->spec = spec;

    DbServer::Config replica_config;
    replica_config.site = spec.name;
    replica_config.batch_threads = options_.batch_threads;
    site->replica = std::make_unique<ReplicaServer>(
        &primary_->server().database(), replica_config);
    PDM_ASSIGN_OR_RETURN(
        pdmsys::GeneratedProduct replica_product,
        pdmsys::GenerateProduct(&site->replica->database(),
                                options_.generator));
    if (replica_product.root_obid != primary_->product().root_obid ||
        replica_product.total_nodes != primary_->product().total_nodes) {
      return Status::Internal(StrFormat(
          "site '%s' bootstrap diverged from the primary product",
          spec.name.c_str()));
    }
    PDM_RETURN_NOT_OK(rules::RegisterPdmProcedures(
        &site->replica->database(), &primary_->rule_table()));

    site->channel = std::make_unique<net::ReplicationChannel>(spec.wan);
    PDM_RETURN_NOT_OK(site->channel->status());

    site->read_conn =
        std::make_unique<Connection>(&site->replica->server(), spec.lan);
    // Site reads drive the replica's admission queue: one registered
    // client per replica, so every submission forms a wave and the
    // queue instruments cover the open-loop read traffic.
    site->read_conn->AttachToAdmissionQueue(i + 1);
    // Writes go through to the primary over the site's WAN. Direct
    // execution (not admission-attached): the open-loop driver issues
    // them in simulated-arrival order, one at a time.
    site->write_conn =
        std::make_unique<Connection>(&primary_->server(), spec.wan);
    site->read_strategy =
        primary_->MakeStrategyOn(site->read_conn.get(),
                                 options_.read_strategy);
    site->write_target_obid =
        targets_.size() > 1
            ? targets_[1 + (i % (targets_.size() - 1))]
            : targets_[0];

    // Eager-register the site's open-loop families so exported
    // snapshots carry them (at zero) even before the first event.
    obs::MetricsRegistry::Global().log_histogram("openloop.action_seconds",
                                                 {{"site", spec.name}});
    obs::MetricsRegistry::Global().log_histogram(
        "openloop.queue_wait_seconds", {{"site", spec.name}});
    sites_.push_back(std::move(site));
  }
  return Status::OK();
}

Status MultiSiteDeployment::PumpSite(Site& site, double commit_s) {
  PDM_ASSIGN_OR_RETURN(ReplicaServer::PumpResult pumped,
                       site.replica->PumpReplication());
  if (pumped.applied == 0) return Status::OK();
  net::ReplicationShipment shipment = site.channel->Ship(
      pumped.payload_bytes, pumped.applied, commit_s,
      static_cast<double>(pumped.applied) *
          options_.apply_seconds_per_statement);
  site.shipments.push_back(shipment);
  return Status::OK();
}

Result<MultiSiteResult> MultiSiteDeployment::RunOpenLoop() {
  // Per-site schedules, then one global order by simulated arrival time
  // (site index breaks exact ties deterministically). Processing in
  // global arrival order makes engine state — and with it every service
  // time and the whole replication stream — a pure function of the seed.
  struct Indexed {
    size_t site;
    size_t pos;
    double arrival_s;
  };
  std::vector<std::vector<ArrivalEvent>> schedules;
  std::vector<Indexed> order;
  for (size_t s = 0; s < sites_.size(); ++s) {
    schedules.push_back(
        GenerateArrivalSchedule(sites_[s]->spec, s, options_.seed));
    for (size_t j = 0; j < schedules.back().size(); ++j) {
      order.push_back(Indexed{s, j, schedules.back()[j].arrival_s});
    }
  }
  std::sort(order.begin(), order.end(),
            [](const Indexed& a, const Indexed& b) {
              if (a.arrival_s != b.arrival_s) return a.arrival_s < b.arrival_s;
              if (a.site != b.site) return a.site < b.site;
              return a.pos < b.pos;
            });

  // Open-loop queue state per site: c simulated servers, earliest-free
  // first. Per-event latency = queue wait + service.
  const size_t c = options_.batch_threads > 0 ? options_.batch_threads : 1;
  struct SiteRun {
    std::vector<double> free_s;  // per simulated server
    std::vector<double> latencies;
    std::vector<double> waits;
    double service_sum = 0;
    double end_s = 0;
    size_t reads = 0;
    size_t writes = 0;
  };
  std::vector<SiteRun> runs(sites_.size());
  for (SiteRun& run : runs) run.free_s.assign(c, 0.0);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (const Indexed& idx : order) {
    Site& site = *sites_[idx.site];
    SiteRun& run = runs[idx.site];
    const ArrivalEvent& event = schedules[idx.site][idx.pos];

    double service_s = 0;
    if (event.is_write) {
      // Write-through: one UPDATE round trip to the primary over the
      // site's WAN, flipping the site's designated check-out flag.
      site.write_toggle = !site.write_toggle;
      const std::string sql = StrFormat(
          "UPDATE %s SET checkedout = %s WHERE obid = %lld",
          pdmsys::kAssyTable, site.write_toggle ? "TRUE" : "FALSE",
          static_cast<long long>(site.write_target_obid));
      site.write_conn->ResetStats();
      ResultSet out;
      PDM_RETURN_NOT_OK(site.write_conn->Execute(sql, &out));
      service_s = site.write_conn->stats().total_seconds();
      run.writes += 1;
    } else {
      // Local read: expand a client-chosen node on the site replica.
      const int64_t target =
          targets_[event.client_id % targets_.size()];
      PDM_ASSIGN_OR_RETURN(ActionResult result,
                           site.read_strategy->SingleLevelExpand(target));
      service_s = result.seconds();
      run.reads += 1;
    }

    // Standard open-loop recursion: the event starts on the earliest
    // free of the site's c servers, never before its arrival.
    auto earliest = std::min_element(run.free_s.begin(), run.free_s.end());
    const double start_s = std::max(event.arrival_s, *earliest);
    const double completion_s = start_s + service_s;
    *earliest = completion_s;
    const double wait_s = start_s - event.arrival_s;
    const double latency_s = completion_s - event.arrival_s;
    run.waits.push_back(wait_s);
    run.latencies.push_back(latency_s);
    run.service_sum += service_s;
    run.end_s = std::max(run.end_s, completion_s);
    registry
        .log_histogram("openloop.action_seconds", {{"site", site.spec.name}})
        .Observe(latency_s);
    registry
        .log_histogram("openloop.queue_wait_seconds",
                       {{"site", site.spec.name}})
        .Observe(wait_s);

    if (event.is_write) {
      // Asynchronous replication: a site pulls the new commit at the
      // writer's simulated completion time — but only if its channel is
      // free (one shipment in flight per site). A busy channel lets
      // commits accumulate and ships them as one batch on the next
      // trigger, so replication lag stays bounded by the channel's
      // shipment time instead of growing with a per-commit backlog.
      for (std::unique_ptr<Site>& target_site : sites_) {
        target_site->pending_commit_s = completion_s;
        if (target_site->channel->busy_until_s() <= completion_s) {
          PDM_RETURN_NOT_OK(
              PumpSite(*target_site, target_site->pending_commit_s));
        }
      }
    }
  }

  // Drain: ship whatever the busy-channel coalescing left pending, then
  // build the per-site reports.
  MultiSiteResult result;
  result.primary_commit_ts = primary_->server().database().commit_clock();
  for (size_t s = 0; s < sites_.size(); ++s) {
    Site& site = *sites_[s];
    SiteRun& run = runs[s];
    PDM_RETURN_NOT_OK(PumpSite(site, site.pending_commit_s));

    SiteReport report;
    report.name = site.spec.name;
    report.arrivals = run.latencies.size();
    report.reads = run.reads;
    report.writes = run.writes;
    std::vector<double> sorted = run.latencies;
    std::sort(sorted.begin(), sorted.end());
    report.p50_latency_s = QuantileOf(sorted, 0.5);
    report.p99_latency_s = QuantileOf(sorted, 0.99);
    sorted = run.waits;
    std::sort(sorted.begin(), sorted.end());
    report.p50_queue_wait_s = QuantileOf(sorted, 0.5);
    report.p99_queue_wait_s = QuantileOf(sorted, 0.99);
    report.mean_service_s =
        report.arrivals == 0
            ? 0.0
            : run.service_sum / static_cast<double>(report.arrivals);
    report.end_s = run.end_s;
    report.utilization =
        run.end_s > 0
            ? run.service_sum / (static_cast<double>(c) * run.end_s)
            : 0.0;
    report.shipments = site.channel->shipments();
    report.shipped_statements = site.channel->statements_shipped();
    report.mean_lag_s = site.channel->mean_lag_seconds();
    report.max_lag_s = site.channel->max_lag_seconds();
    const model::NetworkParams net = NetParamsOf(site.spec.wan);
    for (const net::ReplicationShipment& shipment : site.shipments) {
      if (shipment.queued) {
        report.queued_shipments += 1;
        continue;
      }
      const double expected = model::ReplicaStalenessSeconds(
          net, static_cast<double>(shipment.payload_bytes),
          shipment.apply_seconds);
      const double err_pct =
          expected > 0
              ? std::abs(shipment.lag_seconds() - expected) / expected * 100.0
              : 0.0;
      report.staleness_model_err_pct =
          std::max(report.staleness_model_err_pct, err_pct);
    }
    report.applied_commit_ts = site.replica->applied_commit_ts();
    result.total_arrivals += report.arrivals;
    result.sites.push_back(std::move(report));
  }
  return result;
}

Status MultiSiteDeployment::VerifyReplicaConsistency() {
  // Quiesce: drain the stream everywhere, then compare against the
  // primary at its latest snapshot.
  for (std::unique_ptr<Site>& site : sites_) {
    PDM_ASSIGN_OR_RETURN(ReplicaServer::PumpResult pumped,
                         site->replica->PumpReplication());
    (void)pumped;
  }
  const uint64_t primary_ts = primary_->server().database().commit_clock();
  PDM_ASSIGN_OR_RETURN(ActionResult primary_expand,
                       primary_->RunAction(options_.read_strategy,
                                           model::ActionKind::kMultiLevelExpand));
  const std::string primary_tree = primary_expand.tree.ToString(1 << 20);
  for (std::unique_ptr<Site>& site : sites_) {
    if (site->replica->applied_commit_ts() != primary_ts) {
      return Status::Internal(StrFormat(
          "site '%s' not caught up after drain: applied %llu, primary %llu",
          site->spec.name.c_str(),
          static_cast<unsigned long long>(site->replica->applied_commit_ts()),
          static_cast<unsigned long long>(primary_ts)));
    }
    PDM_ASSIGN_OR_RETURN(
        ActionResult replica_expand,
        site->read_strategy->MultiLevelExpand(primary_->product().root_obid));
    if (replica_expand.tree.ToString(1 << 20) != primary_tree) {
      return Status::Internal(StrFormat(
          "site '%s' replica expand tree differs from the quiesced primary",
          site->spec.name.c_str()));
    }
    // The expand never reads the checkedout flags writes flip — compare
    // the replicated tables' full contents too.
    for (const std::string& table :
         {std::string(pdmsys::kAssyTable), std::string(pdmsys::kCompTable),
          std::string(pdmsys::kLinkTable)}) {
      PDM_ASSIGN_OR_RETURN(
          std::string primary_rows,
          TableFingerprint(primary_->server().database(), table));
      PDM_ASSIGN_OR_RETURN(std::string replica_rows,
                           TableFingerprint(site->replica->database(), table));
      if (primary_rows != replica_rows) {
        return Status::Internal(StrFormat(
            "site '%s' replica table '%s' differs from the primary",
            site->spec.name.c_str(), table.c_str()));
      }
    }
  }
  return Status::OK();
}

}  // namespace pdm::client
