#include "client/experiment.h"

#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "pdm/pdm_schema.h"
#include "rules/procedures.h"
#include "rules/query_builder.h"
#include "server/admission_queue.h"
#include "sql/parser.h"

namespace pdm::client {

Status InstallStandardRules(rules::RuleTable* table) {
  // Object access rule: only objects whose materialized visibility flag
  // is '+' may be seen (see DESIGN.md on the acc column).
  {
    PDM_ASSIGN_OR_RETURN(std::unique_ptr<rules::RowCondition> cond,
                         rules::RowCondition::Parse("*", "acc = '+'"));
    rules::Rule rule;
    rule.user = "*";
    rule.action = rules::RuleAction::kAccess;
    rule.object_type = "*";
    rule.condition = std::move(cond);
    table->AddRule(std::move(rule));
  }
  // Relation access rule (paper rule example 3): the link's effectivity
  // must overlap the user's selected window AND its structure-option set
  // must overlap the user's selected options.
  {
    PDM_ASSIGN_OR_RETURN(
        std::unique_ptr<rules::RowCondition> cond,
        rules::RowCondition::Parse(
            pdmsys::kLinkTable,
            "eff_from <= $user.eff_to AND eff_to >= $user.eff_from "
            "AND BITAND(strc_opt, $user.strc_opt) <> 0"));
    rules::Rule rule;
    rule.user = "*";
    rule.action = rules::RuleAction::kAccess;
    rule.object_type = pdmsys::kLinkTable;
    rule.condition = std::move(cond);
    table->AddRule(std::move(rule));
  }
  // Check-out rule (paper rule example 2): the whole subtree must be
  // checked in.
  {
    PDM_ASSIGN_OR_RETURN(sql::ExprPtr pred,
                         sql::ParseSqlExpression("checkedout = FALSE"));
    rules::Rule rule;
    rule.user = "*";
    rule.action = rules::RuleAction::kCheckOut;
    rule.object_type = "*";
    rule.condition = std::make_unique<rules::ForAllRowsCondition>(
        "", std::move(pred));
    table->AddRule(std::move(rule));
  }
  return Status::OK();
}

Result<std::unique_ptr<Experiment>> Experiment::Create(
    const ExperimentConfig& config) {
  std::unique_ptr<Experiment> experiment(new Experiment(config));
  PDM_RETURN_NOT_OK(experiment->Init());
  return experiment;
}

Status Experiment::Init() {
  // Reject degenerate WAN parameters up front: an invalid link would
  // otherwise silently account nothing (net/wan_model.h).
  PDM_RETURN_NOT_OK(config_.wan.Validate());
  // One site per experiment: the WAN config's site label propagates to
  // the server's and client's dimensioned metrics so per-site quantiles
  // line up across all three tiers (DESIGN.md 5k).
  server_.mutable_config().site = config_.wan.site;
  if (config_.client.site.empty()) config_.client.site = config_.wan.site;
  PDM_ASSIGN_OR_RETURN(product_, pdmsys::GenerateProduct(&server_.database(),
                                                         config_.generator));
  PDM_RETURN_NOT_OK(InstallStandardRules(&rule_table_));
  // The server keeps its own reference to the (shared) rule table for
  // the function-shipping procedures.
  PDM_RETURN_NOT_OK(
      rules::RegisterPdmProcedures(&server_.database(), &rule_table_));
  connection_ = std::make_unique<Connection>(&server_, config_.wan);
  return Status::OK();
}

std::unique_ptr<AccessStrategy> Experiment::MakeStrategy(
    model::StrategyKind kind) {
  return MakeStrategyOn(connection_.get(), kind);
}

std::unique_ptr<AccessStrategy> Experiment::MakeStrategyOn(
    Connection* conn, model::StrategyKind kind) {
  switch (kind) {
    case model::StrategyKind::kNavigationalLate:
      return std::make_unique<NavigationalStrategy>(
          conn, &rule_table_, user(), config_.client,
          /*early_evaluation=*/false);
    case model::StrategyKind::kNavigationalEarly:
      return std::make_unique<NavigationalStrategy>(
          conn, &rule_table_, user(), config_.client,
          /*early_evaluation=*/true);
    case model::StrategyKind::kBatchedLate:
      return std::make_unique<NavigationalBatchedStrategy>(
          conn, &rule_table_, user(), config_.client,
          /*early_evaluation=*/false);
    case model::StrategyKind::kBatchedEarly:
      return std::make_unique<NavigationalBatchedStrategy>(
          conn, &rule_table_, user(), config_.client,
          /*early_evaluation=*/true);
    case model::StrategyKind::kPipelinedLate:
      return std::make_unique<NavigationalPipelinedStrategy>(
          conn, &rule_table_, user(), config_.client,
          /*early_evaluation=*/false);
    case model::StrategyKind::kPipelinedEarly:
      return std::make_unique<NavigationalPipelinedStrategy>(
          conn, &rule_table_, user(), config_.client,
          /*early_evaluation=*/true);
    case model::StrategyKind::kRecursive:
      return std::make_unique<RecursiveStrategy>(conn, &rule_table_, user(),
                                                 config_.client);
  }
  return nullptr;
}

std::unique_ptr<CheckOutClient> Experiment::MakeCheckOutClient() {
  return std::make_unique<CheckOutClient>(connection_.get(), &rule_table_,
                                          user(), config_.client);
}

Result<ActionResult> Experiment::RunAction(model::StrategyKind strategy,
                                           model::ActionKind action) {
  std::unique_ptr<AccessStrategy> impl = MakeStrategy(strategy);
  switch (action) {
    case model::ActionKind::kQuery:
      return impl->QueryAll();
    case model::ActionKind::kSingleLevelExpand:
      return impl->SingleLevelExpand(product_.root_obid);
    case model::ActionKind::kMultiLevelExpand:
      return impl->MultiLevelExpand(product_.root_obid);
  }
  return Status::Internal("unhandled action kind");
}

Result<MultiClientResult> RunMultiClientAction(
    Experiment& experiment, const MultiClientOptions& options) {
  if (options.clients == 0) {
    return Status::InvalidArgument("multi-client run needs >= 1 client");
  }
  AdmissionQueue& queue = experiment.server().admission_queue();
  queue.ClearWaveLog();

  // One connection (own WAN link) and one thread per client. Every
  // connection registers with the queue before any thread starts so the
  // wave barrier sees the full client count from the first submission.
  std::vector<std::unique_ptr<Connection>> connections;
  connections.reserve(options.clients);
  for (size_t i = 0; i < options.clients; ++i) {
    auto conn = std::make_unique<Connection>(&experiment.server(),
                                             experiment.config().wan);
    conn->AttachToAdmissionQueue(i);
    connections.push_back(std::move(conn));
  }

  std::vector<Result<ActionResult>> outcomes(
      options.clients, Result<ActionResult>(Status::Internal("not run")));
  {
    std::vector<std::thread> threads;
    threads.reserve(options.clients);
    for (size_t i = 0; i < options.clients; ++i) {
      threads.emplace_back([&, i] {
        std::unique_ptr<AccessStrategy> strategy =
            experiment.MakeStrategyOn(connections[i].get(), options.strategy);
        switch (options.action) {
          case model::ActionKind::kQuery:
            outcomes[i] = strategy->QueryAll();
            break;
          case model::ActionKind::kSingleLevelExpand:
            outcomes[i] =
                strategy->SingleLevelExpand(experiment.product().root_obid);
            break;
          case model::ActionKind::kMultiLevelExpand:
            outcomes[i] =
                strategy->MultiLevelExpand(experiment.product().root_obid);
            break;
        }
        // A finished client leaves the barrier so remaining clients'
        // waves stop waiting for it.
        connections[i]->DetachFromAdmissionQueue();
      });
    }
    for (std::thread& t : threads) t.join();
  }

  MultiClientResult result;
  result.per_client.reserve(options.clients);
  for (size_t i = 0; i < options.clients; ++i) {
    PDM_RETURN_NOT_OK(outcomes[i].status());
    result.per_client.push_back(std::move(*outcomes[i]));
  }
  for (const AdmissionQueue::WaveLogEntry& wave : queue.wave_log()) {
    ++result.waves;
    result.statements += wave.statements;
    result.unique_statements += wave.unique_statements;
  }
  return result;
}

Result<ConcurrentDmlResult> RunConcurrentDmlAction(
    Experiment& experiment, const ConcurrentDmlOptions& options) {
  if (options.readers == 0) {
    return Status::InvalidArgument("concurrent DML run needs >= 1 reader");
  }
  AdmissionQueue& queue = experiment.server().admission_queue();
  queue.ClearWaveLog();

  // Readers get client ids [0, readers), writers [readers, total). Every
  // connection registers before any thread starts, exactly like
  // RunMultiClientAction.
  const size_t total = options.readers + options.writers;
  std::vector<std::unique_ptr<Connection>> connections;
  connections.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    auto conn = std::make_unique<Connection>(&experiment.server(),
                                             experiment.config().wan);
    conn->AttachToAdmissionQueue(i);
    connections.push_back(std::move(conn));
  }

  std::vector<Result<ActionResult>> reader_outcomes(
      options.readers, Result<ActionResult>(Status::Internal("not run")));
  std::vector<double> reader_wall(options.readers, 0.0);
  // Per writer: its cycle outcomes, or the first hard error.
  std::vector<Status> writer_errors(options.writers, Status::OK());
  std::vector<std::vector<CheckOutResult>> writer_outcomes(options.writers);
  {
    std::vector<std::thread> threads;
    threads.reserve(total);
    for (size_t i = 0; i < options.readers; ++i) {
      threads.emplace_back([&, i] {
        std::unique_ptr<AccessStrategy> strategy =
            experiment.MakeStrategyOn(connections[i].get(),
                                      options.reader_strategy);
        const auto start = std::chrono::steady_clock::now();
        switch (options.reader_action) {
          case model::ActionKind::kQuery:
            reader_outcomes[i] = strategy->QueryAll();
            break;
          case model::ActionKind::kSingleLevelExpand:
            reader_outcomes[i] =
                strategy->SingleLevelExpand(experiment.product().root_obid);
            break;
          case model::ActionKind::kMultiLevelExpand:
            reader_outcomes[i] =
                strategy->MultiLevelExpand(experiment.product().root_obid);
            break;
        }
        reader_wall[i] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        connections[i]->DetachFromAdmissionQueue();
      });
    }
    for (size_t w = 0; w < options.writers; ++w) {
      threads.emplace_back([&, w] {
        Connection* conn = connections[options.readers + w].get();
        CheckOutClient client(conn, &experiment.rule_table(),
                              experiment.user(),
                              experiment.config().client);
        const int64_t root = options.writer_root_obid != 0
                                 ? options.writer_root_obid
                                 : experiment.product().root_obid;
        if (options.writer_mode == DmlWriterMode::kUpdateBursts) {
          // Every writer flips the same row's flag, so same-wave bursts
          // race under first-writer-wins; losers re-submit (the same
          // bounded client retry the check-out flow uses).
          for (size_t cycle = 0; cycle < options.writer_cycles; ++cycle) {
            CheckOutResult burst;
            const std::string sql =
                rules::BuildCheckOutUpdate(pdmsys::kAssyTable, {root},
                                           /*checking_out=*/cycle % 2 == 0)
                    ->ToSql();
            std::vector<Result<ResultSet>> acks;
            Status status = conn->ExecuteBatch({sql}, &acks);
            for (int attempt = 0;
                 status.ok() &&
                 IsRetryableConflict(acks[0].status().code()) &&
                 attempt < 64;
                 ++attempt) {
              ++burst.conflict_retries;
              obs::MetricsRegistry::Global()
                  .counter("mvcc.conflict_retries")
                  .Increment();
              status = conn->ExecuteBatch({sql}, &acks);
            }
            if (status.ok() && !acks[0].ok()) status = acks[0].status();
            if (!status.ok()) {
              writer_errors[w] = std::move(status);
              break;
            }
            burst.success = true;
            burst.objects = acks[0]->affected_rows;
            writer_outcomes[w].push_back(std::move(burst));
          }
          conn->DetachFromAdmissionQueue();
          return;
        }
        if (options.stagger_writers && w % 2 == 1) {
          // One throwaway read shifts this writer's retrieval/update
          // alternation by one wave relative to its even-indexed peers.
          std::vector<Result<ResultSet>> ignored;
          Status staggered = conn->ExecuteBatch(
              {std::string("SELECT obid FROM ") + pdmsys::kAssyTable +
               " WHERE obid = " + std::to_string(root)},
              &ignored);
          if (!staggered.ok()) {
            writer_errors[w] = std::move(staggered);
            conn->DetachFromAdmissionQueue();
            return;
          }
        }
        for (size_t cycle = 0; cycle < options.writer_cycles; ++cycle) {
          Result<CheckOutResult> out =
              client.CheckOut(root, options.writer_method);
          if (!out.ok()) {
            writer_errors[w] = out.status();
            break;
          }
          writer_outcomes[w].push_back(std::move(*out));
          Result<CheckOutResult> in =
              client.CheckIn(root, options.writer_method);
          if (!in.ok()) {
            writer_errors[w] = in.status();
            break;
          }
          writer_outcomes[w].push_back(std::move(*in));
        }
        conn->DetachFromAdmissionQueue();
      });
    }
    for (std::thread& t : threads) t.join();
  }

  ConcurrentDmlResult result;
  result.reader_results.reserve(options.readers);
  for (size_t i = 0; i < options.readers; ++i) {
    PDM_RETURN_NOT_OK(reader_outcomes[i].status());
    result.reader_results.push_back(std::move(*reader_outcomes[i]));
  }
  result.reader_wall_seconds = std::move(reader_wall);
  for (size_t w = 0; w < options.writers; ++w) {
    PDM_RETURN_NOT_OK(writer_errors[w]);
    for (CheckOutResult& out : writer_outcomes[w]) {
      result.conflict_retries += out.conflict_retries;
      result.writer_results.push_back(std::move(out));
    }
  }
  for (const AdmissionQueue::WaveLogEntry& wave : queue.wave_log()) {
    ++result.waves;
    result.statements += wave.statements;
    result.dml_statements += wave.dml_statements;
    result.conflicts += wave.conflicts;
  }
  return result;
}

}  // namespace pdm::client
