#include "client/experiment.h"

#include <thread>

#include "pdm/pdm_schema.h"
#include "rules/procedures.h"
#include "server/admission_queue.h"
#include "sql/parser.h"

namespace pdm::client {

Status InstallStandardRules(rules::RuleTable* table) {
  // Object access rule: only objects whose materialized visibility flag
  // is '+' may be seen (see DESIGN.md on the acc column).
  {
    PDM_ASSIGN_OR_RETURN(std::unique_ptr<rules::RowCondition> cond,
                         rules::RowCondition::Parse("*", "acc = '+'"));
    rules::Rule rule;
    rule.user = "*";
    rule.action = rules::RuleAction::kAccess;
    rule.object_type = "*";
    rule.condition = std::move(cond);
    table->AddRule(std::move(rule));
  }
  // Relation access rule (paper rule example 3): the link's effectivity
  // must overlap the user's selected window AND its structure-option set
  // must overlap the user's selected options.
  {
    PDM_ASSIGN_OR_RETURN(
        std::unique_ptr<rules::RowCondition> cond,
        rules::RowCondition::Parse(
            pdmsys::kLinkTable,
            "eff_from <= $user.eff_to AND eff_to >= $user.eff_from "
            "AND BITAND(strc_opt, $user.strc_opt) <> 0"));
    rules::Rule rule;
    rule.user = "*";
    rule.action = rules::RuleAction::kAccess;
    rule.object_type = pdmsys::kLinkTable;
    rule.condition = std::move(cond);
    table->AddRule(std::move(rule));
  }
  // Check-out rule (paper rule example 2): the whole subtree must be
  // checked in.
  {
    PDM_ASSIGN_OR_RETURN(sql::ExprPtr pred,
                         sql::ParseSqlExpression("checkedout = FALSE"));
    rules::Rule rule;
    rule.user = "*";
    rule.action = rules::RuleAction::kCheckOut;
    rule.object_type = "*";
    rule.condition = std::make_unique<rules::ForAllRowsCondition>(
        "", std::move(pred));
    table->AddRule(std::move(rule));
  }
  return Status::OK();
}

Result<std::unique_ptr<Experiment>> Experiment::Create(
    const ExperimentConfig& config) {
  std::unique_ptr<Experiment> experiment(new Experiment(config));
  PDM_RETURN_NOT_OK(experiment->Init());
  return experiment;
}

Status Experiment::Init() {
  // Reject degenerate WAN parameters up front: an invalid link would
  // otherwise silently account nothing (net/wan_model.h).
  PDM_RETURN_NOT_OK(config_.wan.Validate());
  PDM_ASSIGN_OR_RETURN(product_, pdmsys::GenerateProduct(&server_.database(),
                                                         config_.generator));
  PDM_RETURN_NOT_OK(InstallStandardRules(&rule_table_));
  // The server keeps its own reference to the (shared) rule table for
  // the function-shipping procedures.
  PDM_RETURN_NOT_OK(
      rules::RegisterPdmProcedures(&server_.database(), &rule_table_));
  connection_ = std::make_unique<Connection>(&server_, config_.wan);
  return Status::OK();
}

std::unique_ptr<AccessStrategy> Experiment::MakeStrategy(
    model::StrategyKind kind) {
  return MakeStrategyOn(connection_.get(), kind);
}

std::unique_ptr<AccessStrategy> Experiment::MakeStrategyOn(
    Connection* conn, model::StrategyKind kind) {
  switch (kind) {
    case model::StrategyKind::kNavigationalLate:
      return std::make_unique<NavigationalStrategy>(
          conn, &rule_table_, user(), config_.client,
          /*early_evaluation=*/false);
    case model::StrategyKind::kNavigationalEarly:
      return std::make_unique<NavigationalStrategy>(
          conn, &rule_table_, user(), config_.client,
          /*early_evaluation=*/true);
    case model::StrategyKind::kBatchedLate:
      return std::make_unique<NavigationalBatchedStrategy>(
          conn, &rule_table_, user(), config_.client,
          /*early_evaluation=*/false);
    case model::StrategyKind::kBatchedEarly:
      return std::make_unique<NavigationalBatchedStrategy>(
          conn, &rule_table_, user(), config_.client,
          /*early_evaluation=*/true);
    case model::StrategyKind::kPipelinedLate:
      return std::make_unique<NavigationalPipelinedStrategy>(
          conn, &rule_table_, user(), config_.client,
          /*early_evaluation=*/false);
    case model::StrategyKind::kPipelinedEarly:
      return std::make_unique<NavigationalPipelinedStrategy>(
          conn, &rule_table_, user(), config_.client,
          /*early_evaluation=*/true);
    case model::StrategyKind::kRecursive:
      return std::make_unique<RecursiveStrategy>(conn, &rule_table_, user(),
                                                 config_.client);
  }
  return nullptr;
}

std::unique_ptr<CheckOutClient> Experiment::MakeCheckOutClient() {
  return std::make_unique<CheckOutClient>(connection_.get(), &rule_table_,
                                          user(), config_.client);
}

Result<ActionResult> Experiment::RunAction(model::StrategyKind strategy,
                                           model::ActionKind action) {
  std::unique_ptr<AccessStrategy> impl = MakeStrategy(strategy);
  switch (action) {
    case model::ActionKind::kQuery:
      return impl->QueryAll();
    case model::ActionKind::kSingleLevelExpand:
      return impl->SingleLevelExpand(product_.root_obid);
    case model::ActionKind::kMultiLevelExpand:
      return impl->MultiLevelExpand(product_.root_obid);
  }
  return Status::Internal("unhandled action kind");
}

Result<MultiClientResult> RunMultiClientAction(
    Experiment& experiment, const MultiClientOptions& options) {
  if (options.clients == 0) {
    return Status::InvalidArgument("multi-client run needs >= 1 client");
  }
  AdmissionQueue& queue = experiment.server().admission_queue();
  queue.ClearWaveLog();

  // One connection (own WAN link) and one thread per client. Every
  // connection registers with the queue before any thread starts so the
  // wave barrier sees the full client count from the first submission.
  std::vector<std::unique_ptr<Connection>> connections;
  connections.reserve(options.clients);
  for (size_t i = 0; i < options.clients; ++i) {
    auto conn = std::make_unique<Connection>(&experiment.server(),
                                             experiment.config().wan);
    conn->AttachToAdmissionQueue(i);
    connections.push_back(std::move(conn));
  }

  std::vector<Result<ActionResult>> outcomes(
      options.clients, Result<ActionResult>(Status::Internal("not run")));
  {
    std::vector<std::thread> threads;
    threads.reserve(options.clients);
    for (size_t i = 0; i < options.clients; ++i) {
      threads.emplace_back([&, i] {
        std::unique_ptr<AccessStrategy> strategy =
            experiment.MakeStrategyOn(connections[i].get(), options.strategy);
        switch (options.action) {
          case model::ActionKind::kQuery:
            outcomes[i] = strategy->QueryAll();
            break;
          case model::ActionKind::kSingleLevelExpand:
            outcomes[i] =
                strategy->SingleLevelExpand(experiment.product().root_obid);
            break;
          case model::ActionKind::kMultiLevelExpand:
            outcomes[i] =
                strategy->MultiLevelExpand(experiment.product().root_obid);
            break;
        }
        // A finished client leaves the barrier so remaining clients'
        // waves stop waiting for it.
        connections[i]->DetachFromAdmissionQueue();
      });
    }
    for (std::thread& t : threads) t.join();
  }

  MultiClientResult result;
  result.per_client.reserve(options.clients);
  for (size_t i = 0; i < options.clients; ++i) {
    PDM_RETURN_NOT_OK(outcomes[i].status());
    result.per_client.push_back(std::move(*outcomes[i]));
  }
  for (const AdmissionQueue::WaveLogEntry& wave : queue.wave_log()) {
    ++result.waves;
    result.statements += wave.statements;
    result.unique_statements += wave.unique_statements;
  }
  return result;
}

}  // namespace pdm::client
