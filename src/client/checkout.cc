#include "client/checkout.h"

#include <deque>
#include <map>

#include "client/rule_eval.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "rules/query_builder.h"
#include "rules/query_modificator.h"

namespace pdm::client {

using rules::QueryModificator;
using rules::RuleAction;

namespace {

/// Bound on re-submissions of a conflicted UPDATE. Every lost wave
/// means some other writer committed (first-writer-wins guarantees
/// global progress), so a client loses at most as many consecutive
/// waves as its peers have batches left to commit. The bound is sized
/// well past any realistic contention — exhausting it means livelock,
/// and the conflict surfaces as the statement's status (callers treat
/// it like any other error).
constexpr int kMaxConflictRetries = 64;

obs::Counter& ConflictRetryCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("mvcc.conflict_retries");
  return c;
}

}  // namespace

std::string_view CheckOutMethodName(CheckOutMethod method) {
  switch (method) {
    case CheckOutMethod::kNavigational:
      return "navigational";
    case CheckOutMethod::kRecursiveBatched:
      return "recursive-batched";
    case CheckOutMethod::kStoredProcedure:
      return "stored-procedure";
  }
  return "?";
}

Result<CheckOutResult> CheckOutClient::Run(int64_t root,
                                           CheckOutMethod method,
                                           bool checking_out) {
  switch (method) {
    case CheckOutMethod::kNavigational:
      return RunClientSide(root, /*navigational=*/true, checking_out);
    case CheckOutMethod::kRecursiveBatched:
      return RunClientSide(root, /*navigational=*/false, checking_out);
    case CheckOutMethod::kStoredProcedure:
      return RunStoredProcedure(root, checking_out);
  }
  return Status::Internal("unhandled check-out method");
}

Result<CheckOutResult> CheckOutClient::RunClientSide(int64_t root,
                                                     bool navigational,
                                                     bool checking_out) {
  conn_->ResetStats();
  CheckOutResult out;
  RuleAction action =
      checking_out ? RuleAction::kCheckOut : RuleAction::kCheckIn;
  QueryModificator modificator(rules_, user_);

  // Phase 1: retrieve the (visible) subtree.
  std::map<std::string, std::vector<int64_t>> obids_by_type;
  obids_by_type["assy"].push_back(root);  // the root is part of the flow
  bool denied = false;

  if (navigational) {
    // One expand query per visible node; row conditions pushed into each
    // query, tree conditions verified at the client afterwards.
    ClientRuleEvaluator evaluator(rules_, user_);
    ResultSet fetched_nodes;
    std::deque<int64_t> frontier{root};
    while (!frontier.empty()) {
      int64_t obid = frontier.front();
      frontier.pop_front();
      std::unique_ptr<sql::SelectStmt> stmt =
          rules::BuildExpandQuery(obid, config_.hierarchy);
      PDM_RETURN_NOT_OK(
          modificator.ApplyToNavigationalQuery(&stmt->query, action)
              .status());
      ResultSet children;
      PDM_RETURN_NOT_OK(conn_->ExecuteSized(
          stmt->ToSql(), &children, [this](const ResultSet& r) {
            return HomogenizedResponseBytes(r, config_);
          }));
      if (fetched_nodes.schema.num_columns() == 0) {
        fetched_nodes.schema = children.schema;
      }
      std::optional<size_t> obid_col = children.schema.FindColumn("obid");
      std::optional<size_t> type_col = children.schema.FindColumn("type");
      fetched_nodes.rows.reserve(fetched_nodes.rows.size() +
                                 children.rows.size());
      for (Row& row : children.rows) {
        int64_t child = row[*obid_col].int64_value();
        obids_by_type[row[*type_col].ToString()].push_back(child);
        frontier.push_back(child);
        fetched_nodes.rows.push_back(std::move(row));
      }
    }
    PDM_ASSIGN_OR_RETURN(bool tree_ok,
                         evaluator.TreeConditionsPass(fetched_nodes, action));
    denied = !tree_ok;
  } else {
    // One recursive query with all rule classes (incl. the ∀rows
    // check-out condition) evaluated at the server: an empty result
    // means the action is denied (all-or-nothing).
    std::unique_ptr<sql::SelectStmt> stmt =
        rules::BuildRecursiveTreeQuery(root, /*max_depth=*/0,
                                       config_.hierarchy);
    PDM_RETURN_NOT_OK(
        modificator.ApplyToRecursiveQuery(stmt.get(), action).status());
    ResultSet tree;
    PDM_RETURN_NOT_OK(conn_->ExecuteSized(
        stmt->ToSql(), &tree, [this](const ResultSet& r) {
          return HomogenizedResponseBytes(r, config_);
        }));
    denied = tree.rows.empty();
    std::optional<size_t> obid_col = tree.schema.FindColumn("obid");
    std::optional<size_t> type_col = tree.schema.FindColumn("type");
    std::optional<size_t> left_col = tree.schema.FindColumn("LEFT");
    for (const Row& row : tree.rows) {
      if (!row[*left_col].is_null()) continue;  // link row
      obids_by_type[row[*type_col].ToString()].push_back(
          row[*obid_col].int64_value());
    }
  }

  if (!denied) {
    // Phase 2: flip the flags — the "separate WAN communication" the
    // paper points out. Navigational: one UPDATE per object (the status
    // quo baseline). Batched: one UPDATE per object table, all tables
    // shipped as ONE batch — with the retrieval, the whole check-out is
    // two round trips instead of 1 + #tables.
    size_t flipped = 0;
    if (navigational) {
      for (const auto& [type, obids] : obids_by_type) {
        if (type == "link" || obids.empty()) continue;
        for (int64_t obid : obids) {
          std::unique_ptr<sql::Statement> update =
              rules::BuildCheckOutUpdate(type, {obid}, checking_out);
          const std::string sql = update->ToSql();
          ResultSet ack;
          Status status = conn_->Execute(sql, &ack);
          // A write conflict is retryable, not fatal: re-submit, which
          // re-evaluates at a fresh snapshot.
          for (int attempt = 0;
               IsRetryableConflict(status.code()) &&
               attempt < kMaxConflictRetries;
               ++attempt) {
            ++out.conflict_retries;
            ConflictRetryCounter().Increment();
            status = conn_->Execute(sql, &ack);
          }
          PDM_RETURN_NOT_OK(status);
          flipped += ack.affected_rows;
        }
      }
    } else {
      std::vector<std::string> updates;
      for (const auto& [type, obids] : obids_by_type) {
        if (type == "link" || obids.empty()) continue;
        updates.push_back(
            rules::BuildCheckOutUpdate(type, obids, checking_out)->ToSql());
      }
      std::vector<Result<ResultSet>> acks;
      PDM_RETURN_NOT_OK(conn_->ExecuteBatch(updates, &acks));
      // Re-batch only the conflicted slots: conflicts are retryable
      // (a concurrent writer won first-writer-wins), every other error
      // aborts below as before.
      for (int attempt = 0; attempt < kMaxConflictRetries; ++attempt) {
        std::vector<size_t> conflicted;
        for (size_t i = 0; i < acks.size(); ++i) {
          if (IsRetryableConflict(acks[i].status().code())) {
            conflicted.push_back(i);
          }
        }
        if (conflicted.empty()) break;
        out.conflict_retries += conflicted.size();
        ConflictRetryCounter().Add(conflicted.size());
        std::vector<std::string> retry_sql;
        retry_sql.reserve(conflicted.size());
        for (size_t i : conflicted) retry_sql.push_back(updates[i]);
        std::vector<Result<ResultSet>> retry_acks;
        PDM_RETURN_NOT_OK(conn_->ExecuteBatch(retry_sql, &retry_acks));
        for (size_t j = 0; j < conflicted.size(); ++j) {
          acks[conflicted[j]] = std::move(retry_acks[j]);
        }
      }
      for (Result<ResultSet>& ack : acks) {
        PDM_RETURN_NOT_OK(ack.status());
        flipped += ack->affected_rows;
      }
    }
    out.success = true;
    out.objects = flipped;
  }

  // Single accounting exit: every outcome (denied included) reports the
  // traffic of exactly this run — no mid-function snapshot that later
  // phases could silently outgrow.
  out.wan = conn_->stats();
  return out;
}

Result<CheckOutResult> CheckOutClient::RunStoredProcedure(int64_t root,
                                                          bool checking_out) {
  conn_->ResetStats();
  CheckOutResult out;
  std::string call = StrFormat(
      "CALL %s(%lld, '%s', %lld, %lld, %lld)",
      checking_out ? "pdm_checkout" : "pdm_checkin",
      static_cast<long long>(root), user_.name.c_str(),
      static_cast<long long>(user_.strc_opt),
      static_cast<long long>(user_.eff_from),
      static_cast<long long>(user_.eff_to));
  ResultSet result;
  PDM_RETURN_NOT_OK(conn_->Execute(call, &result));
  if (result.num_rows() == 1 && result.At(0, 0).is_int64()) {
    out.objects = static_cast<size_t>(result.At(0, 0).int64_value());
  }
  out.success = out.objects > 0;
  out.wan = conn_->stats();
  return out;
}

}  // namespace pdm::client
