#ifndef PDM_COMMON_RESULT_H_
#define PDM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pdm {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Modeled after arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit so `return SomeStatus;` works. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out, or returns `fallback` on error.
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status to the caller.
#define PDM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define PDM_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define PDM_ASSIGN_OR_RETURN_NAME(x, y) PDM_ASSIGN_OR_RETURN_CONCAT(x, y)

#define PDM_ASSIGN_OR_RETURN(lhs, expr) \
  PDM_ASSIGN_OR_RETURN_IMPL(            \
      PDM_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace pdm

#endif  // PDM_COMMON_RESULT_H_
