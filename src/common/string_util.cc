#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace pdm {

namespace {
char LowerChar(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
char UpperChar(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}
}  // namespace

std::string ToLowerAscii(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out += LowerChar(c);
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out += UpperChar(c);
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (LowerChar(a[i]) != LowerChar(b[i])) return false;
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripAscii(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b &&
         (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
          s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool SqlLikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace pdm
