#include "common/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace pdm {

std::string_view ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "NULL";
    case ValueKind::kBool:
      return "BOOL";
    case ValueKind::kInt64:
      return "INT64";
    case ValueKind::kDouble:
      return "DOUBLE";
    case ValueKind::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

bool Value::Comparable(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return false;
  if (a.is_numeric() && b.is_numeric()) return true;
  return a.kind() == b.kind();
}

int Value::Compare(const Value& a, const Value& b) {
  // NULLs first, as a total order for sorting/grouping.
  if (a.is_null() && b.is_null()) return 0;
  if (a.is_null()) return -1;
  if (b.is_null()) return 1;
  if (a.is_numeric() && b.is_numeric()) {
    // Exact path when both are ints; avoids double rounding on large ids.
    if (a.is_int64() && b.is_int64()) {
      int64_t x = a.int64_value();
      int64_t y = b.int64_value();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a.AsDouble();
    double y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.kind() != b.kind()) {
    // Heterogeneous non-numeric values: order by kind tag. This keeps
    // Compare a total order for containers; the evaluator rejects such
    // comparisons before they get here.
    return static_cast<int>(a.kind()) < static_cast<int>(b.kind()) ? -1 : 1;
  }
  switch (a.kind()) {
    case ValueKind::kBool: {
      int x = a.bool_value() ? 1 : 0;
      int y = b.bool_value() ? 1 : 0;
      return x - y;
    }
    case ValueKind::kString:
      return a.string_value().compare(b.string_value()) < 0
                 ? -1
                 : (a.string_value() == b.string_value() ? 0 : 1);
    default:
      return 0;
  }
}

size_t Value::Hash() const {
  switch (kind()) {
    case ValueKind::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueKind::kBool:
      return bool_value() ? 0x853c49e6748fea9bULL : 0xda3e39cb94b95bdbULL;
    case ValueKind::kInt64:
      // Hash via double so 1 and 1.0 agree with Compare().
      return std::hash<double>()(static_cast<double>(int64_value()));
    case ValueKind::kDouble:
      return std::hash<double>()(double_value());
    case ValueKind::kString:
      return std::hash<std::string>()(string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "NULL";
    case ValueKind::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case ValueKind::kInt64:
      return std::to_string(int64_value());
    case ValueKind::kDouble: {
      std::ostringstream os;
      os << double_value();
      return os.str();
    }
    case ValueKind::kString:
      return string_value();
  }
  return "";
}

std::string Value::ToSqlLiteral() const {
  if (is_string()) {
    std::string out = "'";
    for (char c : string_value()) {
      if (c == '\'') out += '\'';  // double the quote
      out += c;
    }
    out += "'";
    return out;
  }
  return ToString();
}

size_t Value::WireSize() const {
  switch (kind()) {
    case ValueKind::kNull:
      return 1;
    case ValueKind::kBool:
      return 1;
    case ValueKind::kInt64:
      return 8;
    case ValueKind::kDouble:
      return 8;
    case ValueKind::kString:
      return 2 + string_value().size();  // length prefix + payload
  }
  return 1;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

size_t HashRow(const Row& row) {
  size_t h = 0x811c9dc5ULL;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (Value::Compare(a[i], b[i]) != 0) return false;
    // Kind-sensitive tie-break: '1' (string) vs 1 (int) never equal.
    if (a[i].is_string() != b[i].is_string()) return false;
  }
  return true;
}

}  // namespace pdm
