#ifndef PDM_COMMON_VALUE_H_
#define PDM_COMMON_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace pdm {

/// Runtime type tag of a Value. NULL is modeled as its own kind so that a
/// Value is self-describing (three-valued logic lives in the expression
/// evaluator, see exec/expr_eval.h).
enum class ValueKind {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
};

std::string_view ValueKindName(ValueKind kind);

/// A dynamically typed SQL value. Small, copyable, ordered and hashable;
/// used for table cells, expression results and wire serialization.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value Int64(int64_t v) { return Value(Payload(v)); }
  static Value Double(double v) { return Value(Payload(v)); }
  static Value String(std::string v) { return Value(Payload(std::move(v))); }
  static Value String(const char* v) { return String(std::string(v)); }

  ValueKind kind() const { return static_cast<ValueKind>(data_.index()); }
  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int64() const { return kind() == ValueKind::kInt64; }
  bool is_double() const { return kind() == ValueKind::kDouble; }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_numeric() const { return is_int64() || is_double(); }

  /// Accessors; the caller must check the kind first.
  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int64_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const {
    return std::get<std::string>(data_);
  }

  /// Numeric value widened to double (valid for INT64 and DOUBLE).
  double AsDouble() const {
    return is_int64() ? static_cast<double>(int64_value()) : double_value();
  }

  // In-place mutation, used by hot materialization loops that recycle a
  // scratch Row instead of constructing fresh Values: SetString keeps
  // the existing heap buffer when the slot already holds a string.
  void SetNull() { data_ = std::monostate{}; }
  void SetBool(bool v) { data_ = v; }
  void SetInt64(int64_t v) { data_ = v; }
  void SetDouble(double v) { data_ = v; }
  void SetString(const std::string& v) {
    if (std::string* s = std::get_if<std::string>(&data_)) {
      *s = v;  // reuse capacity
    } else {
      data_ = v;
    }
  }

  /// Moves the string payload out (caller must know kind() == kString);
  /// the Value is left holding a moved-from string.
  std::string ReleaseString() {
    return std::move(std::get<std::string>(data_));
  }

  /// True if `a` and `b` are comparable: same kind, or both numeric.
  static bool Comparable(const Value& a, const Value& b);

  /// Three-way comparison for comparable non-NULL values:
  /// -1, 0, +1. NULLs order first (used only for ORDER BY / DISTINCT,
  /// where SQL NULL grouping applies; predicate NULL semantics are
  /// handled by the evaluator).
  static int Compare(const Value& a, const Value& b);

  /// Structural equality (NULL == NULL here; this is *identity*, used by
  /// containers — SQL equality is in the evaluator).
  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }

  /// Stable hash consistent with operator== (numerics hash by double
  /// value so 1 and 1.0 collide, matching Compare).
  size_t Hash() const;

  /// Display form: NULL -> "NULL", strings unquoted.
  std::string ToString() const;

  /// SQL literal form: strings quoted with '' escaping, bools as
  /// TRUE/FALSE. Round-trips through the parser.
  std::string ToSqlLiteral() const;

  /// Approximate serialized size in bytes on the simulated wire.
  size_t WireSize() const;

 private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Payload data) : data_(std::move(data)) {}

  Payload data_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

/// A row is a flat vector of values; schemas (catalog/schema.h) give the
/// positions meaning.
using Row = std::vector<Value>;

/// Hash of a full row, for hash joins / DISTINCT / UNION.
size_t HashRow(const Row& row);

/// Identity-equality of full rows (NULLs compare equal, as in UNION
/// DISTINCT / GROUP BY semantics).
bool RowsEqual(const Row& a, const Row& b);

/// Functor pair for unordered containers keyed by Row.
struct RowHash {
  size_t operator()(const Row& row) const { return HashRow(row); }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const { return RowsEqual(a, b); }
};

/// Functor pair for unordered containers keyed by a single Value,
/// consistent with RowHash/RowEq (numerics compare across kinds; strings
/// never equal numbers).
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return Value::Compare(a, b) == 0 && a.is_string() == b.is_string();
  }
};

}  // namespace pdm

#endif  // PDM_COMMON_VALUE_H_
