#ifndef PDM_COMMON_STATUS_H_
#define PDM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace pdm {

/// Machine-readable classification of an error carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller supplied a bad value
  kParseError,        // SQL text could not be parsed
  kBindError,         // name resolution / semantic analysis failed
  kExecutionError,    // runtime failure while evaluating a plan
  kNotFound,          // a named entity (table, column, rule, ...) is missing
  kAlreadyExists,     // attempt to create a duplicate entity
  kNotImplemented,    // feature outside the supported dialect/scope
  kInternal,          // invariant violation inside the library
  kWriteConflict,     // first-writer-wins loss; retry the statement
};

/// True for errors a client may transparently retry: the statement lost
/// a write-write race (MVCC first-writer-wins, DESIGN.md 5h) and is
/// expected to succeed against the now-current snapshot.
inline bool IsRetryableConflict(StatusCode code) {
  return code == StatusCode::kWriteConflict;
}

/// Returns a stable human-readable name ("ParseError", ...) for a code.
std::string_view StatusCodeName(StatusCode code);

/// Arrow/RocksDB-style error carrier. The library does not throw; every
/// fallible operation returns a Status (or a Result<T>, see result.h).
///
/// Statuses are cheap to copy in the OK case (no allocation) and carry a
/// message in the error case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status WriteConflict(std::string msg) {
    return Status(StatusCode::kWriteConflict, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prefixes the error message with additional context; no-op on OK.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller.
#define PDM_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::pdm::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace pdm

#endif  // PDM_COMMON_STATUS_H_
