#ifndef PDM_COMMON_RNG_H_
#define PDM_COMMON_RNG_H_

#include <cstdint>

namespace pdm {

/// Deterministic 64-bit PRNG (SplitMix64). Used by the workload generator
/// and property tests; deterministic across platforms so experiments and
/// tests are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Full-avalanche 64-bit mix (the SplitMix64 output function applied
  /// to a fixed increment of `x`). Every input bit affects every output
  /// bit; Mix(0) != 0.
  static uint64_t Mix(uint64_t x) {
    uint64_t z = x + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Derives an independent sub-stream of `seed` keyed by a *logical*
  /// stream id (site index, client id, ...). Never key streams on thread
  /// ids or submission order: the whole point is that a workload
  /// generator split this way replays byte-identically at any
  /// worker-pool size (DESIGN.md 5l).
  ///
  /// Naive derivations are unsafe with SplitMix64: the generator walks
  /// `state += gamma` once per draw, so `Rng(seed + k * gamma)` is
  /// literally `Rng(seed)` advanced k draws, and adjacent additive seeds
  /// correlate. Avalanche-mixing (seed, stream) scatters the derived
  /// states pseudo-randomly across the 2^64 state cycle, so any
  /// realistic number of streams x draws overlaps with negligible
  /// probability.
  static Rng ForStream(uint64_t seed, uint64_t stream) {
    return Rng(Mix(seed ^ Mix(stream)));
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace pdm

#endif  // PDM_COMMON_RNG_H_
