#ifndef PDM_COMMON_RNG_H_
#define PDM_COMMON_RNG_H_

#include <cstdint>

namespace pdm {

/// Deterministic 64-bit PRNG (SplitMix64). Used by the workload generator
/// and property tests; deterministic across platforms so experiments and
/// tests are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace pdm

#endif  // PDM_COMMON_RNG_H_
