#include "common/status.h"

namespace pdm {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kWriteConflict:
      return "WriteConflict";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace pdm
