#ifndef PDM_COMMON_STRING_UTIL_H_
#define PDM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace pdm {

/// ASCII-only case mapping (SQL identifiers/keywords are ASCII).
std::string ToLowerAscii(std::string_view s);
std::string ToUpperAscii(std::string_view s);

/// Case-insensitive ASCII equality, for keyword and identifier matching.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripAscii(std::string_view s);

/// True if `s` starts with `prefix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// SQL LIKE match: '%' = any run, '_' = any single char. Case-sensitive,
/// no escape character (matches the dialect subset we accept).
bool SqlLikeMatch(std::string_view text, std::string_view pattern);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace pdm

#endif  // PDM_COMMON_STRING_UTIL_H_
