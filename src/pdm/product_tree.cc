#include "pdm/product_tree.h"

#include <algorithm>

#include "common/string_util.h"

namespace pdm::pdmsys {

size_t ProductTree::AddNode(int64_t obid, std::string type, std::string name,
                            std::optional<size_t> parent) {
  auto it = by_obid_.find(obid);
  if (it != by_obid_.end()) return it->second;
  size_t index = nodes_.size();
  nodes_.push_back(ProductNode{obid, std::move(type), std::move(name), parent,
                               {}});
  by_obid_[obid] = index;
  if (parent.has_value()) nodes_[*parent].children.push_back(index);
  return index;
}

std::optional<size_t> ProductTree::FindByObid(int64_t obid) const {
  auto it = by_obid_.find(obid);
  if (it == by_obid_.end()) return std::nullopt;
  return it->second;
}

size_t ProductTree::Depth() const {
  size_t max_depth = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    size_t depth = 0;
    std::optional<size_t> cursor = nodes_[i].parent;
    while (cursor.has_value()) {
      ++depth;
      cursor = nodes_[*cursor].parent;
    }
    max_depth = std::max(max_depth, depth);
  }
  return max_depth;
}

std::string ProductTree::ToString(size_t max_nodes) const {
  std::string out;
  size_t printed = 0;
  // Depth-first from every root (normally exactly one).
  std::vector<std::pair<size_t, size_t>> stack;  // (index, indent)
  for (size_t i = nodes_.size(); i-- > 0;) {
    if (!nodes_[i].parent.has_value()) stack.emplace_back(i, 0);
  }
  while (!stack.empty() && printed < max_nodes) {
    auto [index, indent] = stack.back();
    stack.pop_back();
    const ProductNode& n = nodes_[index];
    out += std::string(indent * 2, ' ') +
           StrFormat("%s %lld (%s)\n", n.type.c_str(),
                     static_cast<long long>(n.obid), n.name.c_str());
    ++printed;
    for (size_t c = n.children.size(); c-- > 0;) {
      stack.emplace_back(n.children[c], indent + 1);
    }
  }
  if (printed < nodes_.size()) {
    out += StrFormat("... (%zu more node(s))\n", nodes_.size() - printed);
  }
  return out;
}

Result<ProductTree> AssembleFromHomogenized(const ResultSet& result,
                                            int64_t root_obid) {
  auto col = [&](const char* name) -> Result<size_t> {
    std::optional<size_t> idx = result.schema.FindColumn(name);
    if (!idx.has_value()) {
      return Status::InvalidArgument(
          std::string("homogenized result lacks column '") + name + "'");
    }
    return *idx;
  };
  PDM_ASSIGN_OR_RETURN(size_t type_col, col("type"));
  PDM_ASSIGN_OR_RETURN(size_t obid_col, col("obid"));
  PDM_ASSIGN_OR_RETURN(size_t name_col, col("name"));
  PDM_ASSIGN_OR_RETURN(size_t left_col, col("LEFT"));
  PDM_ASSIGN_OR_RETURN(size_t right_col, col("RIGHT"));

  // Pass 1: object rows (LEFT is NULL) indexed by obid.
  struct ObjectInfo {
    std::string type;
    std::string name;
  };
  std::map<int64_t, ObjectInfo> objects;
  std::multimap<int64_t, int64_t> edges;  // parent obid -> child obid
  for (const Row& row : result.rows) {
    if (row[left_col].is_null()) {
      if (!row[obid_col].is_int64()) {
        return Status::InvalidArgument("object row with non-integer obid");
      }
      objects[row[obid_col].int64_value()] =
          ObjectInfo{row[type_col].ToString(), row[name_col].ToString()};
    } else {
      if (!row[left_col].is_int64() || !row[right_col].is_int64()) {
        return Status::InvalidArgument("link row with non-integer endpoints");
      }
      edges.emplace(row[left_col].int64_value(),
                    row[right_col].int64_value());
    }
  }

  ProductTree tree;
  auto root_it = objects.find(root_obid);
  if (root_it == objects.end()) {
    if (objects.empty() && edges.empty()) return tree;  // empty result
    return Status::InvalidArgument("root object missing from result");
  }

  // Pass 2: BFS from the root along link edges.
  size_t root_index = tree.AddNode(root_obid, root_it->second.type,
                                   root_it->second.name, std::nullopt);
  std::vector<std::pair<int64_t, size_t>> frontier{{root_obid, root_index}};
  while (!frontier.empty()) {
    std::vector<std::pair<int64_t, size_t>> next;
    for (const auto& [obid, index] : frontier) {
      auto [begin, end] = edges.equal_range(obid);
      for (auto it = begin; it != end; ++it) {
        auto child_it = objects.find(it->second);
        if (child_it == objects.end()) continue;  // filtered-out child
        size_t child_index = tree.AddNode(it->second, child_it->second.type,
                                          child_it->second.name, index);
        next.emplace_back(it->second, child_index);
      }
    }
    frontier = std::move(next);
  }
  return tree;
}

}  // namespace pdm::pdmsys
