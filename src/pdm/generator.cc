#include "pdm/generator.h"

#include "common/rng.h"
#include "common/string_util.h"
#include "pdm/pdm_schema.h"

namespace pdm::pdmsys {

namespace {

/// Object-id layout: nodes count up from the current maximum; links and
/// specs live in their own ranges so ids never collide across tables.
constexpr int64_t kLinkIdBase = 1000000000;
constexpr int64_t kSpecIdBase = 2000000000;

int64_t MaxObid(const Table& table, size_t obid_col) {
  int64_t max_id = 0;
  table.ForEachVisible(kMaxCommitTs - 1, [&](const Row& row) {
    if (row[obid_col].is_int64()) {
      max_id = std::max(max_id, row[obid_col].int64_value());
    }
  });
  return max_id;
}

const char* Material(Rng* rng) {
  static const char* kMaterials[] = {"steel", "aluminium", "plastic",
                                     "rubber", "copper"};
  return kMaterials[rng->NextBelow(5)];
}

}  // namespace

Result<GeneratedProduct> GenerateProduct(Database* db,
                                         const GeneratorConfig& config) {
  if (config.depth < 1 || config.branching < 1) {
    return Status::InvalidArgument("depth and branching must be >= 1");
  }
  if (config.sigma < 0 || config.sigma > 1) {
    return Status::InvalidArgument("sigma must be in [0, 1]");
  }
  PDM_RETURN_NOT_OK(InstallPdmSchema(db));

  PDM_ASSIGN_OR_RETURN(Table * assy, db->catalog().GetTable(kAssyTable));
  PDM_ASSIGN_OR_RETURN(Table * comp, db->catalog().GetTable(kCompTable));
  PDM_ASSIGN_OR_RETURN(Table * link, db->catalog().GetTable(kLinkTable));
  PDM_ASSIGN_OR_RETURN(Table * spec, db->catalog().GetTable(kSpecTable));
  PDM_ASSIGN_OR_RETURN(Table * spec_by,
                       db->catalog().GetTable(kSpecifiedByTable));
  PDM_ASSIGN_OR_RETURN(Table * users, db->catalog().GetTable(kUsersTable));

  Rng rng(config.seed);
  GeneratedProduct out;
  out.nodes_per_level.assign(static_cast<size_t>(config.depth) + 1, 0);
  out.visible_per_level.assign(static_cast<size_t>(config.depth) + 1, 0);

  int64_t next_node = std::max(MaxObid(*assy, 1), MaxObid(*comp, 1)) + 1;
  int64_t next_link = std::max<int64_t>(MaxObid(*link, 1), kLinkIdBase) + 1;
  int64_t next_spec = std::max<int64_t>(MaxObid(*spec, 1), kSpecIdBase) + 1;

  const UserContext& user = config.user;

  // Register the reference user (idempotent enough for experiments).
  users->InsertUnchecked(Row{Value::String(user.name),
                             Value::Int64(user.strc_opt),
                             Value::Int64(user.eff_from),
                             Value::Int64(user.eff_to)});

  auto add_assy = [&](int64_t obid, bool visible) {
    assy->InsertUnchecked(Row{
        Value::String("assy"), Value::Int64(obid),
        Value::String(StrFormat("Assy%lld", static_cast<long long>(obid))),
        Value::String(rng.NextBool(0.9) ? "+" : "-"),
        Value::String(rng.NextBool(0.8) ? "make" : "buy"),
        Value::Double(0.1 + rng.NextDouble() * 99.9),
        Value::String(visible ? "+" : "-"), Value::Bool(false),
        Value::Bool(false)});
    out.num_assemblies++;
  };
  auto add_comp = [&](int64_t obid, bool visible) {
    comp->InsertUnchecked(Row{
        Value::String("comp"), Value::Int64(obid),
        Value::String(StrFormat("Comp%lld", static_cast<long long>(obid))),
        Value::String(Material(&rng)),
        Value::Double(0.01 + rng.NextDouble() * 9.99),
        Value::String(visible ? "+" : "-"), Value::Bool(false)});
    out.num_components++;
    if (rng.NextBool(config.spec_fraction)) {
      int64_t spec_id = next_spec++;
      spec->InsertUnchecked(
          Row{Value::String("spec"), Value::Int64(spec_id),
              Value::String(
                  StrFormat("Spec%lld", static_cast<long long>(spec_id))),
              Value::Int64(rng.NextInRange(1, 5000))});
      spec_by->InsertUnchecked(Row{Value::Int64(obid), Value::Int64(spec_id)});
      out.num_specs++;
    }
  };

  // Link attributes calibrated against the reference user:
  //  pass: effectivity covers the user's window AND options overlap;
  //  fail: alternately a disjoint effectivity or a disjoint option set.
  size_t fail_flavor = 0;
  auto add_link = [&](int64_t parent, int64_t child, bool pass,
                      const char* hierarchy) {
    int64_t eff_from = 1;
    int64_t eff_to = 100;
    int64_t strc = user.strc_opt;
    if (!pass) {
      if (fail_flavor++ % 2 == 0) {
        eff_to = std::max<int64_t>(1, user.eff_from - 1);  // misses window
      } else {
        strc = user.strc_opt << 1;  // disjoint option set
      }
    }
    link->InsertUnchecked(Row{Value::String("link"), Value::Int64(next_link++),
                              Value::Int64(parent), Value::Int64(child),
                              Value::Int64(eff_from), Value::Int64(eff_to),
                              Value::Int64(strc),
                              Value::String(hierarchy)});
  };

  // σ realization: error diffusion keeps the running pass rate at σ.
  double diffusion = 0.5;
  auto link_passes = [&]() {
    if (config.sigma_mode == GeneratorConfig::SigmaMode::kBernoulli) {
      return rng.NextBool(config.sigma);
    }
    diffusion += config.sigma;
    if (diffusion >= 1.0) {
      diffusion -= 1.0;
      return true;
    }
    return false;
  };

  // BFS by level. The root (level 0) is always visible.
  struct NodeRef {
    int64_t obid;
    bool visible;
  };
  out.root_obid = next_node++;
  add_assy(out.root_obid, true);
  out.nodes_per_level[0] = 1;

  std::vector<NodeRef> frontier{{out.root_obid, true}};
  std::vector<std::vector<int64_t>> levels{{out.root_obid}};
  for (int level = 1; level <= config.depth; ++level) {
    std::vector<NodeRef> next_frontier;
    next_frontier.reserve(frontier.size() *
                          static_cast<size_t>(config.branching));
    std::vector<int64_t> level_obids;
    bool children_are_leaves = level == config.depth;
    for (const NodeRef& parent : frontier) {
      for (int b = 0; b < config.branching; ++b) {
        int64_t child = next_node++;
        // Only links under visible parents consume the σ pattern: their
        // pass/fail decides user visibility, so the per-level visible
        // counts track the model's (σω)^i closely. Links in invisible
        // subtrees are invisible regardless; they fail outright.
        bool pass = parent.visible && link_passes();
        bool visible = parent.visible && pass;
        if (children_are_leaves) {
          add_comp(child, visible);
        } else {
          add_assy(child, visible);
        }
        add_link(parent.obid, child, pass, kPhysicalHierarchy);
        out.total_links++;
        out.total_nodes++;
        out.nodes_per_level[static_cast<size_t>(level)]++;
        if (visible) {
          out.visible_nodes++;
          out.visible_per_level[static_cast<size_t>(level)]++;
        }
        next_frontier.push_back(NodeRef{child, visible});
        level_obids.push_back(child);
      }
    }
    frontier = std::move(next_frontier);
    levels.push_back(std::move(level_obids));
  }

  // Optional functional hierarchy: same level populations, parents
  // rotated by one within each level, every link passing. The same flat
  // data thus carries a second tree in parallel.
  if (config.build_functional_view) {
    for (size_t level = 1; level < levels.size(); ++level) {
      const std::vector<int64_t>& parents = levels[level - 1];
      const std::vector<int64_t>& children = levels[level];
      for (size_t j = 0; j < children.size(); ++j) {
        size_t phys_parent = j / static_cast<size_t>(config.branching);
        size_t func_parent = (phys_parent + 1) % parents.size();
        add_link(parents[func_parent], children[j], /*pass=*/true,
                 kFunctionalHierarchy);
        out.functional_links++;
      }
    }
  }
  return out;
}

}  // namespace pdm::pdmsys
