#include "pdm/pdm_schema.h"

namespace pdm::pdmsys {

const std::vector<std::string>& AssyColumns() {
  static const std::vector<std::string>* kColumns = new std::vector<std::string>{
      "type", "obid", "name",       "dec",    "make_or_buy",
      "weight", "acc", "checkedout", "frozen",
  };
  return *kColumns;
}

const std::vector<std::string>& CompColumns() {
  static const std::vector<std::string>* kColumns = new std::vector<std::string>{
      "type", "obid", "name", "material", "weight", "acc", "checkedout",
  };
  return *kColumns;
}

const std::vector<std::string>& LinkColumns() {
  static const std::vector<std::string>* kColumns = new std::vector<std::string>{
      "type", "obid", "left",     "right",
      "eff_from", "eff_to", "strc_opt", "hier",
  };
  return *kColumns;
}

const std::vector<std::string>& HomogenizedObjectColumns() {
  // Union of assy and comp attributes, assy-first (paper Section 5.2:
  // "a new (result-)type enfolding all attribute definitions of all
  // object types appearing in the result").
  static const std::vector<std::string>* kColumns = new std::vector<std::string>{
      "type",   "obid", "name", "dec",        "make_or_buy",
      "material", "weight", "acc", "checkedout", "frozen",
  };
  return *kColumns;
}

namespace {

bool Contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  for (const std::string& s : haystack) {
    if (s == needle) return true;
  }
  return false;
}

}  // namespace

std::string HomogenizedValueFor(const std::string& object_table,
                                const std::string& column) {
  const std::vector<std::string>& have =
      object_table == kAssyTable ? AssyColumns() : CompColumns();
  if (Contains(have, column)) return object_table + "." + column;
  // Attribute missing on this type: fill with a neutral value of the
  // right kind (the paper fills with NULLs / empty strings).
  if (column == "weight") return "cast(NULL AS double)";
  if (column == "frozen" || column == "checkedout") {
    return "cast(NULL AS boolean)";
  }
  return "''";
}

Status InstallPdmSchema(Database* db) {
  return db->ExecuteScript(R"sql(
    CREATE TABLE IF NOT EXISTS assy (
      type VARCHAR, obid INTEGER, name VARCHAR, dec VARCHAR,
      make_or_buy VARCHAR, weight DOUBLE, acc VARCHAR,
      checkedout BOOLEAN, frozen BOOLEAN);
    CREATE TABLE IF NOT EXISTS comp (
      type VARCHAR, obid INTEGER, name VARCHAR, material VARCHAR,
      weight DOUBLE, acc VARCHAR, checkedout BOOLEAN);
    CREATE TABLE IF NOT EXISTS link (
      type VARCHAR, obid INTEGER, left INTEGER, right INTEGER,
      eff_from INTEGER, eff_to INTEGER, strc_opt INTEGER, hier VARCHAR);
    CREATE TABLE IF NOT EXISTS spec (
      type VARCHAR, obid INTEGER, title VARCHAR, doc_size INTEGER);
    CREATE TABLE IF NOT EXISTS specified_by (left INTEGER, right INTEGER);
    CREATE TABLE IF NOT EXISTS users (
      name VARCHAR, strc_opt INTEGER, eff_from INTEGER, eff_to INTEGER);
  )sql");
}

std::vector<std::string> ObjectTables() { return {kAssyTable, kCompTable}; }

}  // namespace pdm::pdmsys
