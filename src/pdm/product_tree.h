#ifndef PDM_PDM_PRODUCT_TREE_H_
#define PDM_PDM_PRODUCT_TREE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/result_set.h"

namespace pdm::pdmsys {

/// One node of a client-side product structure.
struct ProductNode {
  int64_t obid = 0;
  std::string type;  // "assy" / "comp"
  std::string name;
  std::optional<size_t> parent;  // index into the tree; nullopt for root
  std::vector<size_t> children;  // indices into the tree
};

/// The client-side, reassembled view of (part of) a product structure —
/// what the PDM system "retrieves, interprets, and reassembles" from the
/// flat relational representation (paper Section 1).
class ProductTree {
 public:
  ProductTree() = default;

  /// Adds a node; `parent` must already exist (nullopt for the root).
  /// Returns the node's index. Duplicate obids are ignored (returns the
  /// existing index) — this makes assembly idempotent under UNION
  /// semantics.
  size_t AddNode(int64_t obid, std::string type, std::string name,
                 std::optional<size_t> parent);

  size_t num_nodes() const { return nodes_.size(); }
  const ProductNode& node(size_t index) const { return nodes_[index]; }
  const std::vector<ProductNode>& nodes() const { return nodes_; }

  std::optional<size_t> FindByObid(int64_t obid) const;

  /// Longest root-to-leaf path length (root alone = 0); 0 for empty.
  size_t Depth() const;

  /// Indented rendering for examples/debugging.
  std::string ToString(size_t max_nodes = 50) const;

 private:
  std::vector<ProductNode> nodes_;
  std::map<int64_t, size_t> by_obid_;
};

/// Reassembles a tree from a homogenized recursive-query result (paper
/// Figure 3 layout): object rows carry NULL in the "LEFT" column, link
/// rows carry LEFT/RIGHT obids. Column names are looked up in the result
/// schema ("type", "obid", "name", "LEFT", "RIGHT" — case-insensitive).
Result<ProductTree> AssembleFromHomogenized(const ResultSet& result,
                                            int64_t root_obid);

}  // namespace pdm::pdmsys

#endif  // PDM_PDM_PRODUCT_TREE_H_
