#ifndef PDM_PDM_GENERATOR_H_
#define PDM_PDM_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "pdm/user_context.h"

namespace pdm::pdmsys {

/// Configuration for synthetic product structures: complete ω-ary trees
/// of depth α with per-link rule selectivity σ, mirroring the paper's
/// evaluation parameters. This substitutes for DaimlerChrysler's
/// proprietary product data (see DESIGN.md).
struct GeneratorConfig {
  int depth = 3;       // α: levels below the root
  int branching = 9;   // ω: children per internal node
  double sigma = 0.6;  // σ: probability a link passes the user's rules

  uint64_t seed = 42;

  /// How σ is realized per link:
  ///  * kErrorDiffusion (default): a deterministic pattern whose running
  ///    average is exactly σ — keeps simulated counts close to the
  ///    model's (σω)^i expectations.
  ///  * kBernoulli: independent coin flips from `seed`.
  enum class SigmaMode { kErrorDiffusion, kBernoulli };
  SigmaMode sigma_mode = SigmaMode::kErrorDiffusion;

  /// Fraction of components that receive a specification document
  /// (drives the ∃structure rule experiments).
  double spec_fraction = 0.3;

  /// Also emit a second, *functional* hierarchy over the same objects
  /// (hier = 'func'): same nodes per level, shuffled parent assignment,
  /// all links passing — the paper's "different views ... in parallel on
  /// the same set of data".
  bool build_functional_view = false;

  /// The reference user whose option/effectivity choices the generated
  /// link attributes are calibrated against: a link "passes" iff its
  /// effectivity overlaps the user window AND its option set overlaps
  /// the user's options.
  UserContext user;
};

/// Summary of one generated product, including ground truth the
/// experiments compare against.
struct GeneratedProduct {
  int64_t root_obid = 0;
  size_t total_nodes = 0;    // nodes below the root
  size_t total_links = 0;    // physical-hierarchy links
  size_t functional_links = 0;
  size_t num_assemblies = 0;  // including the root
  size_t num_components = 0;
  size_t num_specs = 0;
  /// Nodes visible to the reference user (all ancestors' links pass),
  /// excluding the root; per level and in total.
  size_t visible_nodes = 0;
  std::vector<size_t> nodes_per_level;    // index 1..depth
  std::vector<size_t> visible_per_level;  // index 1..depth
};

/// Generates one complete product tree into `db` (installing the PDM
/// schema if needed). Deterministic in the config. Internal nodes become
/// assemblies, leaves become components; node `acc` flags materialize
/// path visibility for the reference user (see DESIGN.md).
Result<GeneratedProduct> GenerateProduct(Database* db,
                                         const GeneratorConfig& config);

}  // namespace pdm::pdmsys

#endif  // PDM_PDM_GENERATOR_H_
