#ifndef PDM_PDM_PDM_SCHEMA_H_
#define PDM_PDM_PDM_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"

namespace pdm::pdmsys {

/// Table names of the PDM store (the paper's Figure 2 schema, extended
/// with the attributes its rule examples use: make_or_buy, checkedout,
/// frozen, weight, plus an `acc` visibility flag materializing the row
/// access rules — see DESIGN.md).
inline constexpr char kAssyTable[] = "assy";
inline constexpr char kCompTable[] = "comp";
inline constexpr char kLinkTable[] = "link";
inline constexpr char kSpecTable[] = "spec";
inline constexpr char kSpecifiedByTable[] = "specified_by";
inline constexpr char kUsersTable[] = "users";

/// Hierarchy discriminator values on link rows. The same flat object set
/// can carry several structures in parallel — the paper's introduction:
/// "different hierarchical views may have to be supported in parallel on
/// the same set of data" (designers vs engineers vs functional units).
inline constexpr char kPhysicalHierarchy[] = "phys";
inline constexpr char kFunctionalHierarchy[] = "func";

/// Column lists (schema order) used when building homogenized queries.
/// The CTE result type is the union of assy and comp attributes; link
/// attributes are appended by the outer query (paper Section 5.2).
const std::vector<std::string>& AssyColumns();
const std::vector<std::string>& CompColumns();
const std::vector<std::string>& LinkColumns();

/// Columns of the homogenized object type (union of assy and comp).
const std::vector<std::string>& HomogenizedObjectColumns();

/// Per-column value expression when a given object table is cast into
/// the homogenized type: the column itself when the table has it, a
/// neutral literal otherwise. Returns SQL text.
std::string HomogenizedValueFor(const std::string& object_table,
                                const std::string& column);

/// Creates all PDM tables in `db` (idempotent).
Status InstallPdmSchema(Database* db);

/// The object-type tables participating in product structures.
std::vector<std::string> ObjectTables();

}  // namespace pdm::pdmsys

#endif  // PDM_PDM_PDM_SCHEMA_H_
