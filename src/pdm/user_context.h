#ifndef PDM_PDM_USER_CONTEXT_H_
#define PDM_PDM_USER_CONTEXT_H_

#include <cstdint>
#include <string>

namespace pdm::pdmsys {

/// A PDM user's session environment: identity plus the configuration
/// choices that drive rule evaluation — the selected structure options
/// (a bit set, cf. paper rule example 3) and the selected effectivity
/// window (cf. Section 3.1).
struct UserContext {
  std::string name = "scott";
  int64_t strc_opt = 1;     // bit mask of selected structure options
  int64_t eff_from = 40;    // selected effectivity window (unit numbers)
  int64_t eff_to = 60;
};

}  // namespace pdm::pdmsys

#endif  // PDM_PDM_USER_CONTEXT_H_
