#ifndef PDM_CATALOG_TABLE_H_
#define PDM_CATALOG_TABLE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/column_store.h"
#include "catalog/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace pdm {

/// Undo log of one DML statement: enough to roll a failed statement
/// back so its half-applied versions can never become visible once the
/// commit clock later passes their timestamps.
struct TableUndo {
  struct KilledVersion {
    class Table* table;
    size_t pos;
  };
  struct AppendedVersion {
    class Table* table;
    size_t pos;
  };
  std::vector<KilledVersion> killed;
  std::vector<AppendedVersion> appended;

  /// Reopens killed versions and marks appended ones dead-on-arrival
  /// (end = begin, invisible to every snapshot and GC-able).
  void Rollback();
};

/// In-memory multi-versioned COLUMN-MAJOR row store for one table
/// (DESIGN.md 5h/5i). Each logical row is a chain of versions in append
/// order; a version is visible to snapshot `ts` iff
/// `begin_ts <= ts < end_ts`. Readers never block: UPDATE kills the old
/// version (end_ts := write_ts) and appends a new one, DELETE only
/// kills — concurrent scans at an older snapshot keep seeing the old
/// version. Version order is append order, so scans stay deterministic
/// and experiments reproducible.
///
/// Storage is column-major in 1024-row fragments
/// (catalog/column_store.h): per column a kind tag + 64-bit payload per
/// cell, with string payloads in a lazily allocated side array. The
/// vectorized executor (exec/vectorized.h) scans fragments directly via
/// FragmentAt(); the legacy row API survives as an adapter —
/// MaterializeRow/VersionData reassemble a Row on demand — so
/// row-at-a-time operators, DML and tools keep working during the
/// migration.
///
/// Concurrency contract: any number of readers (scans, index lookups)
/// may run concurrently with at most ONE writer (the engine serializes
/// writers under Database's DML mutex). Fragments live in a fixed-size
/// directory of atomic pointers and never move once allocated; versions
/// become reachable only when `published_` is advanced with release
/// ordering, so readers never observe a half-constructed cell.
/// PruneVersions (GC) is the only operation that moves versions and
/// requires full exclusivity (no readers, no writers).
///
/// Tables maintain lazily built per-column hash indexes (value ->
/// version positions) that executors use for equality scans and index
/// joins. Indexes cover ALL published versions, dead ones included;
/// readers filter candidates through VisibleAt(). Appends maintain
/// in-sync indexes incrementally, kills need no index work at all, so
/// DML no longer invalidates indexes — only GC compaction does (it
/// renumbers positions and bumps `version_`). All index state is
/// guarded by `index_mutex_`; concurrent read paths must use
/// IndexLookup (which copies matches under the mutex) instead of
/// holding references into the maps a writer may be growing.
class Table {
 public:
  using ColumnIndex =
      std::unordered_map<Value, std::vector<size_t>, ValueHash, ValueEq>;
  Table(std::string name, Schema schema)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        versions_(schema_.num_columns()) {}

  // Tables are heavyweight (own all versions); handled by pointer.
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Live (visible-at-latest) row count.
  size_t num_rows() const {
    return live_rows_.load(std::memory_order_relaxed);
  }

  /// Published version count — the exclusive scan bound for readers
  /// (every position below it is fully constructed).
  size_t num_versions() const {
    return published_.load(std::memory_order_acquire);
  }

  /// Row data of a published version, reassembled from the column
  /// fragments (adapter over the columnar layout; hot loops use
  /// MaterializeRow with a recycled scratch row instead).
  Row VersionData(size_t pos) const {
    Row row;
    versions_.MaterializeRow(pos, &row);
    return row;
  }

  /// Reassembles version `pos` into *out, reusing its element storage
  /// (string cells keep the target's heap buffer when possible).
  void MaterializeRow(size_t pos, Row* out) const {
    versions_.MaterializeRow(pos, out);
  }

  /// Single cell of a published version.
  Value Cell(size_t pos, size_t col) const { return versions_.Cell(pos, col); }

  /// Number of 1024-row fragments covering the published versions.
  size_t num_fragments() const {
    return (num_versions() + kFragmentRows - 1) >> kFragmentShift;
  }

  /// Borrowed column-major view of fragment `frag`, clipped to scan
  /// bound `bound` (callers capture `bound = num_versions()` once per
  /// scan). The vectorized executor's storage entry point.
  FragmentSpan FragmentAt(size_t frag, size_t bound) const {
    return versions_.Span(frag, bound);
  }

  /// True if version `pos` is visible to snapshot `ts`. Positions at or
  /// past the published bound are never visible (an index may briefly
  /// carry a not-yet-published position).
  bool VisibleAt(size_t pos, uint64_t ts) const {
    if (pos >= published_.load(std::memory_order_acquire)) return false;
    return MetaVisibleAt(versions_.meta(pos), ts);
  }

  /// Validates against the schema and appends one version beginning at
  /// `begin_ts` (default: the bulk-load timestamp, visible everywhere).
  Status Insert(Row row, uint64_t begin_ts = 0);

  /// Appends without validation (trusted internal callers, e.g. bulk
  /// generation that constructs rows straight from the schema).
  void InsertUnchecked(Row row, uint64_t begin_ts = 0) {
    AppendVersion(std::move(row), begin_ts, nullptr);
  }

  /// Writer primitive: appends a new version beginning at `begin_ts`
  /// and returns its position. Recorded in `undo` (if given) so a
  /// failed statement can roll it back. Single-writer only.
  size_t AppendVersion(Row row, uint64_t begin_ts, TableUndo* undo);

  /// Writer primitive: closes version `pos` at `end_ts` under
  /// first-writer-wins. Returns false — without touching anything — if
  /// the version was already killed (a writer that committed after the
  /// caller's snapshot won the race); the caller must roll back its
  /// statement and surface a retryable conflict. Single-writer only.
  bool KillVersion(size_t pos, uint64_t end_ts, TableUndo* undo);

  /// MVCC-aware convenience update: for each open (not yet killed)
  /// version matching `predicate`, kills it at `write_ts` and appends
  /// the mutated copy beginning at `write_ts`. Returns rows touched.
  /// A zero-match call touches nothing — every fresh index stays fresh.
  template <typename Pred, typename Mut>
  size_t UpdateRows(Pred predicate, Mut mutator, uint64_t write_ts) {
    const size_t bound = num_versions();
    size_t n = 0;
    Row scratch;
    for (size_t pos = 0; pos < bound; ++pos) {
      if (versions_.meta(pos).end_ts.load(std::memory_order_relaxed) !=
          kMaxCommitTs) {
        continue;  // already dead
      }
      versions_.MaterializeRow(pos, &scratch);
      if (!predicate(scratch)) continue;
      Row copy = scratch;
      mutator(copy);
      if (!KillVersion(pos, write_ts, nullptr)) continue;
      AppendVersion(std::move(copy), write_ts, nullptr);
      ++n;
    }
    return n;
  }

  /// MVCC-aware convenience delete: kills open versions matching
  /// `predicate` at `write_ts`; returns how many were killed. A
  /// zero-match call leaves every index fresh.
  template <typename Pred>
  size_t DeleteRows(Pred predicate, uint64_t write_ts) {
    const size_t bound = num_versions();
    size_t n = 0;
    Row scratch;
    for (size_t pos = 0; pos < bound; ++pos) {
      if (versions_.meta(pos).end_ts.load(std::memory_order_relaxed) !=
          kMaxCommitTs) {
        continue;
      }
      versions_.MaterializeRow(pos, &scratch);
      if (!predicate(scratch)) continue;
      if (KillVersion(pos, write_ts, nullptr)) ++n;
    }
    return n;
  }

  /// Calls `fn(row)` for every version visible at `ts`, in version
  /// (i.e. insertion) order. The row reference is to a scratch buffer
  /// valid only for the duration of the call.
  template <typename Fn>
  void ForEachVisible(uint64_t ts, Fn fn) const {
    const size_t bound = num_versions();
    Row scratch;
    for (size_t pos = 0; pos < bound; ++pos) {
      if (MetaVisibleAt(versions_.meta(pos), ts)) {
        versions_.MaterializeRow(pos, &scratch);
        fn(scratch);
      }
    }
  }

  /// Materialized copy of the rows visible at `ts` (defaults to "all
  /// committed-or-open data"); test/tooling convenience.
  std::vector<Row> SnapshotRows(uint64_t ts = kMaxCommitTs - 1) const;

  /// Garbage collection: physically removes versions dead at or before
  /// `horizon` (end_ts <= horizon) plus rolled-back versions (end ==
  /// begin), renumbering the survivors. Requires FULL exclusivity — no
  /// concurrent readers or writers (the engine's GC gate enforces
  /// this). Invalidate-only for indexes (positions shift). Returns how
  /// many versions were pruned.
  size_t PruneVersions(uint64_t horizon);

  /// Positions of published versions whose `column` equals `key`,
  /// copied under the index lock (safe next to a concurrent writer
  /// growing the same index). Builds the index on first use. Dead
  /// versions are included — filter through VisibleAt().
  void IndexLookup(size_t column, const Value& key,
                   std::vector<size_t>* out) const;

  /// Hash index on `column`: built on first use, maintained across
  /// appends, rebuilt on first use after GC. NULL values are not
  /// indexed — equality never matches them.
  ///
  /// Quiesced callers only (tests, single-threaded tools): the
  /// returned reference is into state a concurrent writer mutates.
  /// Concurrent read paths use IndexLookup instead.
  const ColumnIndex& GetOrBuildIndex(size_t column) const;

  /// True if an index on `column` exists and is in sync with the
  /// versions (usable without a rebuild). Scan planning prefers such
  /// columns.
  bool HasFreshIndex(size_t column) const;

  /// Records that a scan saw an equality filter on `column` without a
  /// fresh index, and returns how many such sightings came before. The
  /// vectorized router (exec/vectorized.cc) sweeps the first sighting
  /// batchwise — comparable in cost to the full pass a lazy index build
  /// would do anyway — and sends repeat offenders to the row path,
  /// whose index build then amortizes across statements.
  size_t NoteIndexDemand(size_t column) const {
    std::lock_guard<std::mutex> lock(index_mutex_);
    return index_demand_[column]++;
  }

  /// Marks all cached indexes stale; called by mutations that cannot
  /// maintain them incrementally (today: only GC compaction).
  void InvalidateIndexes() {
    std::lock_guard<std::mutex> lock(index_mutex_);
    ++version_;
  }

  /// Bumped by every version append and by GC; index freshness is
  /// judged against it.
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(index_mutex_);
    return version_;
  }

 private:
  friend struct TableUndo;

  struct CachedIndex {
    ColumnIndex map;
    uint64_t built_version = 0;  // 0 = never built (version_ starts at 1)
  };

  /// Appends position `pos` (the about-to-publish version) to every
  /// in-sync index and bumps the table version; stale indexes stay
  /// stale.
  void MaintainIndexesForAppend(size_t pos);

  /// Builds (or rebuilds) the index on `column` if stale; requires
  /// `index_mutex_` held.
  CachedIndex& EnsureIndexLocked(size_t column) const;

  std::string name_;
  Schema schema_;
  /// Column-major version storage; fragments never move under a
  /// concurrent writer, so readers' spans/positions stay valid. Only
  /// positions below `published_` are readable.
  FragmentStore versions_;
  std::atomic<size_t> published_{0};
  std::atomic<size_t> live_rows_{0};
  uint64_t version_ = 1;  // index-freshness epoch, guarded by index_mutex_
  /// Guards `indexes_` (map shape + lazy builds + incremental appends)
  /// and `version_`.
  mutable std::mutex index_mutex_;
  mutable std::map<size_t, CachedIndex> indexes_;
  /// Equality-filter sightings per column that found no fresh index
  /// (NoteIndexDemand); guarded by `index_mutex_`.
  mutable std::map<size_t, size_t> index_demand_;
};

}  // namespace pdm

#endif  // PDM_CATALOG_TABLE_H_
