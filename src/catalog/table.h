#ifndef PDM_CATALOG_TABLE_H_
#define PDM_CATALOG_TABLE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace pdm {

/// In-memory row store for one table. Rows are kept in insertion order
/// (scans are deterministic, which keeps experiments reproducible).
///
/// Tables maintain lazily built per-column hash indexes (value -> row
/// positions) that executors use for equality scans and index joins —
/// the moral equivalent of the B-trees a production RDBMS would keep on
/// link.left / obid. Invalidation is versioned: every mutating entry
/// point bumps `version_`, and a cached index is usable only while its
/// `built_version` matches. Appends (the navigational workload's only
/// frequent mutation) maintain in-sync indexes incrementally instead of
/// discarding them; updates and deletes leave indexes stale until the
/// next GetOrBuildIndex rebuilds them.
class Table {
 public:
  using ColumnIndex =
      std::unordered_map<Value, std::vector<size_t>, ValueHash, ValueEq>;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // Tables are heavyweight (own all rows); handled by pointer.
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Validates against the schema and appends.
  Status Insert(Row row);

  /// Appends without validation (trusted internal callers, e.g. bulk
  /// generation that constructs rows straight from the schema).
  void InsertUnchecked(Row row) {
    MaintainIndexesForAppend(row);
    rows_.push_back(std::move(row));
  }

  /// In-place update: for each row matching `predicate`, `mutator` is
  /// applied. Returns the number of rows touched.
  template <typename Pred, typename Mut>
  size_t UpdateRows(Pred predicate, Mut mutator) {
    InvalidateIndexes();
    size_t n = 0;
    for (Row& row : rows_) {
      if (predicate(row)) {
        mutator(row);
        ++n;
      }
    }
    return n;
  }

  /// Deletes rows matching `predicate`; returns how many were removed.
  template <typename Pred>
  size_t DeleteRows(Pred predicate) {
    InvalidateIndexes();
    size_t before = rows_.size();
    std::erase_if(rows_, predicate);
    return before - rows_.size();
  }

  /// Direct mutable access for the engine's UPDATE/DELETE executors
  /// (conservatively invalidates all indexes).
  std::vector<Row>& mutable_rows() {
    InvalidateIndexes();
    return rows_;
  }

  /// Hash index on `column`: built on first use, maintained across
  /// appends, rebuilt on first use after any other mutation. NULL
  /// values are not indexed — equality never matches them.
  ///
  /// Thread safety: the build itself is serialized under a mutex, so
  /// concurrent read-only statements may race to a cold index safely
  /// (DESIGN.md 5d). The returned reference stays valid because a
  /// rebuild only happens after a mutation, and mutations never run
  /// concurrently with reads by contract.
  const ColumnIndex& GetOrBuildIndex(size_t column) const;

  /// True if an index on `column` exists and is in sync with the rows
  /// (usable without a rebuild). Scan planning prefers such columns.
  bool HasFreshIndex(size_t column) const;

  /// Marks all cached indexes stale; called by every mutating entry
  /// point that cannot maintain them incrementally.
  void InvalidateIndexes() { ++version_; }

  /// Bumped by every mutation; index freshness is judged against it.
  uint64_t version() const { return version_; }

 private:
  struct CachedIndex {
    ColumnIndex map;
    uint64_t built_version = 0;  // 0 = never built (version_ starts at 1)
  };

  /// Appends the about-to-be-inserted row to every in-sync index and
  /// bumps the table version; stale indexes stay stale.
  void MaintainIndexesForAppend(const Row& row);

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  uint64_t version_ = 1;
  /// Guards `indexes_` (map shape + lazy builds). std::map nodes are
  /// stable, so a reference returned by GetOrBuildIndex survives other
  /// columns' indexes being built concurrently.
  mutable std::mutex index_mutex_;
  mutable std::map<size_t, CachedIndex> indexes_;
};

}  // namespace pdm

#endif  // PDM_CATALOG_TABLE_H_
