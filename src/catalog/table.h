#ifndef PDM_CATALOG_TABLE_H_
#define PDM_CATALOG_TABLE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace pdm {

/// Commit timestamps (DESIGN.md 5h). 0 is the bulk-load timestamp (a
/// row loaded before any writer is visible to every snapshot);
/// kMaxCommitTs marks an open (never killed) version.
inline constexpr uint64_t kMaxCommitTs = ~0ull;

/// Undo log of one DML statement: enough to roll a failed statement
/// back so its half-applied versions can never become visible once the
/// commit clock later passes their timestamps.
struct TableUndo {
  struct KilledVersion {
    class Table* table;
    size_t pos;
  };
  struct AppendedVersion {
    class Table* table;
    size_t pos;
  };
  std::vector<KilledVersion> killed;
  std::vector<AppendedVersion> appended;

  /// Reopens killed versions and marks appended ones dead-on-arrival
  /// (end = begin, invisible to every snapshot and GC-able).
  void Rollback();
};

/// In-memory multi-versioned row store for one table (DESIGN.md 5h).
/// Each logical row is a chain of versions in append order; a version
/// is visible to snapshot `ts` iff `begin_ts <= ts < end_ts`. Readers
/// never block: UPDATE kills the old version (end_ts := write_ts) and
/// appends a new one, DELETE only kills — concurrent scans at an older
/// snapshot keep seeing the old version. Version order is append order,
/// so scans stay deterministic and experiments reproducible.
///
/// Concurrency contract: any number of readers (scans, index lookups)
/// may run concurrently with at most ONE writer (the engine serializes
/// writers under Database's DML mutex). Versions live in a chunked
/// arena whose chunks never move once allocated (a deque is NOT
/// enough: push_back keeps element addresses stable but reallocates
/// the deque's internal node map, which concurrent operator[] walks —
/// a genuine data race). Versions become reachable only when
/// `published_` is advanced with release ordering, so readers never
/// observe a half-constructed version. PruneVersions (GC) is the only
/// operation that moves versions and requires full exclusivity (no
/// readers, no writers).
///
/// Tables maintain lazily built per-column hash indexes (value ->
/// version positions) that executors use for equality scans and index
/// joins. Indexes cover ALL published versions, dead ones included;
/// readers filter candidates through VisibleAt(). Appends maintain
/// in-sync indexes incrementally, kills need no index work at all, so
/// DML no longer invalidates indexes — only GC compaction does (it
/// renumbers positions and bumps `version_`). All index state is
/// guarded by `index_mutex_`; concurrent read paths must use
/// IndexLookup (which copies matches under the mutex) instead of
/// holding references into the maps a writer may be growing.
class Table {
 public:
  using ColumnIndex =
      std::unordered_map<Value, std::vector<size_t>, ValueHash, ValueEq>;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // Tables are heavyweight (own all versions); handled by pointer.
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Live (visible-at-latest) row count.
  size_t num_rows() const {
    return live_rows_.load(std::memory_order_relaxed);
  }

  /// Published version count — the exclusive scan bound for readers
  /// (every position below it is fully constructed).
  size_t num_versions() const {
    return published_.load(std::memory_order_acquire);
  }

  /// Row data of a published version. The reference is stable across
  /// concurrent appends (arena storage); only PruneVersions moves it.
  const Row& VersionData(size_t pos) const { return versions_[pos].data; }

  /// True if version `pos` is visible to snapshot `ts`. Positions at or
  /// past the published bound are never visible (an index may briefly
  /// carry a not-yet-published position).
  bool VisibleAt(size_t pos, uint64_t ts) const {
    if (pos >= published_.load(std::memory_order_acquire)) return false;
    const RowVersion& v = versions_[pos];
    return v.begin_ts <= ts && ts < v.end_ts.load(std::memory_order_acquire);
  }

  /// Validates against the schema and appends one version beginning at
  /// `begin_ts` (default: the bulk-load timestamp, visible everywhere).
  Status Insert(Row row, uint64_t begin_ts = 0);

  /// Appends without validation (trusted internal callers, e.g. bulk
  /// generation that constructs rows straight from the schema).
  void InsertUnchecked(Row row, uint64_t begin_ts = 0) {
    AppendVersion(std::move(row), begin_ts, nullptr);
  }

  /// Writer primitive: appends a new version beginning at `begin_ts`
  /// and returns its position. Recorded in `undo` (if given) so a
  /// failed statement can roll it back. Single-writer only.
  size_t AppendVersion(Row row, uint64_t begin_ts, TableUndo* undo);

  /// Writer primitive: closes version `pos` at `end_ts` under
  /// first-writer-wins. Returns false — without touching anything — if
  /// the version was already killed (a writer that committed after the
  /// caller's snapshot won the race); the caller must roll back its
  /// statement and surface a retryable conflict. Single-writer only.
  bool KillVersion(size_t pos, uint64_t end_ts, TableUndo* undo);

  /// MVCC-aware convenience update: for each open (not yet killed)
  /// version matching `predicate`, kills it at `write_ts` and appends
  /// the mutated copy beginning at `write_ts`. Returns rows touched.
  /// A zero-match call touches nothing — every fresh index stays fresh.
  template <typename Pred, typename Mut>
  size_t UpdateRows(Pred predicate, Mut mutator, uint64_t write_ts) {
    const size_t bound = num_versions();
    size_t n = 0;
    for (size_t pos = 0; pos < bound; ++pos) {
      if (versions_[pos].end_ts.load(std::memory_order_relaxed) !=
          kMaxCommitTs) {
        continue;  // already dead
      }
      const Row& row = versions_[pos].data;
      if (!predicate(row)) continue;
      Row copy = row;
      mutator(copy);
      if (!KillVersion(pos, write_ts, nullptr)) continue;
      AppendVersion(std::move(copy), write_ts, nullptr);
      ++n;
    }
    return n;
  }

  /// MVCC-aware convenience delete: kills open versions matching
  /// `predicate` at `write_ts`; returns how many were killed. A
  /// zero-match call leaves every index fresh.
  template <typename Pred>
  size_t DeleteRows(Pred predicate, uint64_t write_ts) {
    const size_t bound = num_versions();
    size_t n = 0;
    for (size_t pos = 0; pos < bound; ++pos) {
      if (versions_[pos].end_ts.load(std::memory_order_relaxed) !=
          kMaxCommitTs) {
        continue;
      }
      if (!predicate(versions_[pos].data)) continue;
      if (KillVersion(pos, write_ts, nullptr)) ++n;
    }
    return n;
  }

  /// Calls `fn(row)` for every version visible at `ts`, in version
  /// (i.e. insertion) order.
  template <typename Fn>
  void ForEachVisible(uint64_t ts, Fn fn) const {
    const size_t bound = num_versions();
    for (size_t pos = 0; pos < bound; ++pos) {
      if (VisibleAt(pos, ts)) fn(versions_[pos].data);
    }
  }

  /// Materialized copy of the rows visible at `ts` (defaults to "all
  /// committed-or-open data"); test/tooling convenience.
  std::vector<Row> SnapshotRows(uint64_t ts = kMaxCommitTs - 1) const;

  /// Garbage collection: physically removes versions dead at or before
  /// `horizon` (end_ts <= horizon) plus rolled-back versions (end ==
  /// begin), renumbering the survivors. Requires FULL exclusivity — no
  /// concurrent readers or writers (the engine's GC gate enforces
  /// this). Invalidate-only for indexes (positions shift). Returns how
  /// many versions were pruned.
  size_t PruneVersions(uint64_t horizon);

  /// Positions of published versions whose `column` equals `key`,
  /// copied under the index lock (safe next to a concurrent writer
  /// growing the same index). Builds the index on first use. Dead
  /// versions are included — filter through VisibleAt().
  void IndexLookup(size_t column, const Value& key,
                   std::vector<size_t>* out) const;

  /// Hash index on `column`: built on first use, maintained across
  /// appends, rebuilt on first use after GC. NULL values are not
  /// indexed — equality never matches them.
  ///
  /// Quiesced callers only (tests, single-threaded tools): the
  /// returned reference is into state a concurrent writer mutates.
  /// Concurrent read paths use IndexLookup instead.
  const ColumnIndex& GetOrBuildIndex(size_t column) const;

  /// True if an index on `column` exists and is in sync with the
  /// versions (usable without a rebuild). Scan planning prefers such
  /// columns.
  bool HasFreshIndex(size_t column) const;

  /// Marks all cached indexes stale; called by mutations that cannot
  /// maintain them incrementally (today: only GC compaction).
  void InvalidateIndexes() {
    std::lock_guard<std::mutex> lock(index_mutex_);
    ++version_;
  }

  /// Bumped by every version append and by GC; index freshness is
  /// judged against it.
  uint64_t version() const {
    std::lock_guard<std::mutex> lock(index_mutex_);
    return version_;
  }

 private:
  friend struct TableUndo;

  /// One row version. `end_ts` is atomic: a writer kills a version
  /// while readers evaluate visibility against it.
  struct RowVersion {
    Row data;
    uint64_t begin_ts = 0;
    std::atomic<uint64_t> end_ts{kMaxCommitTs};
    RowVersion() = default;
    RowVersion(Row d, uint64_t b) : data(std::move(d)), begin_ts(b) {}
  };

  /// Append-only version storage safe to index concurrently with
  /// appends. Chunks are allocated once and never moved; the directory
  /// of chunk pointers has fixed capacity, so the writer publishing a
  /// new chunk (release store into its slot) never relocates anything
  /// a reader may be walking. Single writer appends; readers access
  /// positions below Table::published_ (whose release/acquire pair
  /// orders the chunk stores); Reset()/move require full exclusivity.
  class VersionArena {
   public:
    static constexpr size_t kChunkShift = 10;  // 1024 versions per chunk
    static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
    static constexpr size_t kChunkMask = kChunkSize - 1;
    static constexpr size_t kMaxChunks = size_t{1} << 12;  // 4M versions

    VersionArena() = default;
    VersionArena(VersionArena&& other) noexcept
        : dir_(std::move(other.dir_)), size_(other.size_) {
      other.size_ = 0;
    }
    VersionArena& operator=(VersionArena&& other) noexcept {
      if (this != &other) {
        FreeChunks();
        dir_ = std::move(other.dir_);
        size_ = other.size_;
        other.size_ = 0;
      }
      return *this;
    }
    ~VersionArena() { FreeChunks(); }

    /// Versions appended so far (writer-side count; readers bound
    /// their scans by Table::published_ instead).
    size_t size() const { return size_; }

    RowVersion& operator[](size_t pos) {
      return dir_[pos >> kChunkShift].load(std::memory_order_acquire)
          [pos & kChunkMask];
    }
    const RowVersion& operator[](size_t pos) const {
      return dir_[pos >> kChunkShift].load(std::memory_order_acquire)
          [pos & kChunkMask];
    }

    /// Appends one version and returns it. Single writer only; the
    /// slot stays invisible to readers until the caller advances
    /// Table::published_.
    RowVersion& Append(Row row, uint64_t begin_ts) {
      if (dir_ == nullptr) {
        dir_.reset(new std::atomic<RowVersion*>[kMaxChunks]());
      }
      const size_t chunk = size_ >> kChunkShift;
      assert(chunk < kMaxChunks && "version arena capacity exhausted");
      if ((size_ & kChunkMask) == 0) {
        dir_[chunk].store(new RowVersion[kChunkSize],
                          std::memory_order_release);
      }
      RowVersion& v =
          dir_[chunk].load(std::memory_order_relaxed)[size_ & kChunkMask];
      v.data = std::move(row);
      v.begin_ts = begin_ts;
      v.end_ts.store(kMaxCommitTs, std::memory_order_relaxed);
      ++size_;
      return v;
    }

   private:
    void FreeChunks() {
      if (dir_ == nullptr) return;
      const size_t chunks = (size_ + kChunkSize - 1) >> kChunkShift;
      for (size_t c = 0; c < chunks; ++c) {
        delete[] dir_[c].load(std::memory_order_relaxed);
      }
    }

    std::unique_ptr<std::atomic<RowVersion*>[]> dir_;
    size_t size_ = 0;
  };

  struct CachedIndex {
    ColumnIndex map;
    uint64_t built_version = 0;  // 0 = never built (version_ starts at 1)
  };

  /// Appends position `pos` (the about-to-publish version) to every
  /// in-sync index and bumps the table version; stale indexes stay
  /// stale.
  void MaintainIndexesForAppend(const Row& row, size_t pos);

  /// Builds (or rebuilds) the index on `column` if stale; requires
  /// `index_mutex_` held.
  CachedIndex& EnsureIndexLocked(size_t column) const;

  std::string name_;
  Schema schema_;
  /// Version storage; chunks never move under a concurrent writer, so
  /// readers' references/positions stay valid. Only positions below
  /// `published_` are readable.
  VersionArena versions_;
  std::atomic<size_t> published_{0};
  std::atomic<size_t> live_rows_{0};
  uint64_t version_ = 1;  // index-freshness epoch, guarded by index_mutex_
  /// Guards `indexes_` (map shape + lazy builds + incremental appends)
  /// and `version_`.
  mutable std::mutex index_mutex_;
  mutable std::map<size_t, CachedIndex> indexes_;
};

}  // namespace pdm

#endif  // PDM_CATALOG_TABLE_H_
