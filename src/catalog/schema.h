#ifndef PDM_CATALOG_SCHEMA_H_
#define PDM_CATALOG_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace pdm {

/// Declared column type. Values of any kind may still be NULL; the
/// declared type constrains the non-NULL kind on insert.
enum class ColumnType {
  kBool,
  kInt64,
  kDouble,
  kString,
};

std::string_view ColumnTypeName(ColumnType type);

/// Parses "INTEGER"/"INT"/"BIGINT"/"DOUBLE"/"FLOAT"/"VARCHAR"/"CHAR"/
/// "TEXT"/"BOOLEAN" (case-insensitive) into a ColumnType.
Result<ColumnType> ParseColumnType(std::string_view name);

/// True if a value of `kind` may be stored in a column of `type`
/// (NULL always fits; INT64 may widen into DOUBLE columns).
bool KindFitsColumn(ValueKind kind, ColumnType type);

/// A named, typed column.
struct Column {
  std::string name;
  ColumnType type;
};

/// An ordered list of columns. Column names are matched
/// case-insensitively, as in SQL.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  /// Index of the column named `name`, or nullopt. Case-insensitive.
  std::optional<size_t> FindColumn(std::string_view name) const;

  /// Checks `row` against arity and column types.
  Status ValidateRow(const Row& row) const;

  /// "name TYPE, name TYPE, ..." — for error messages and CREATE TABLE
  /// round-tripping.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace pdm

#endif  // PDM_CATALOG_SCHEMA_H_
