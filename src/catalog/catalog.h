#ifndef PDM_CATALOG_CATALOG_H_
#define PDM_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "common/status.h"

namespace pdm {

/// Owns all tables of one database. Table names are case-insensitive.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates a table; fails with AlreadyExists unless `if_not_exists`.
  Status CreateTable(std::string_view name, Schema schema,
                     bool if_not_exists = false);

  /// Drops a table; fails with NotFound unless `if_exists`.
  Status DropTable(std::string_view name, bool if_exists = false);

  /// Looks a table up; nullptr if absent.
  Table* FindTable(std::string_view name);
  const Table* FindTable(std::string_view name) const;

  /// Like FindTable but returns NotFound as a Status.
  Result<Table*> GetTable(std::string_view name);

  bool HasTable(std::string_view name) const {
    return FindTable(name) != nullptr;
  }

  /// Names of all tables, sorted.
  std::vector<std::string> TableNames() const;

  size_t num_tables() const { return tables_.size(); }

  /// Monotonic schema version, bumped by every CreateTable/DropTable.
  /// The engine's plan cache discards entries bound under an older
  /// version (a dropped-and-recreated table may have a new schema).
  uint64_t version() const { return version_; }

 private:
  static std::string Key(std::string_view name);

  std::map<std::string, std::unique_ptr<Table>> tables_;
  uint64_t version_ = 0;
};

}  // namespace pdm

#endif  // PDM_CATALOG_CATALOG_H_
