#include "catalog/schema.h"

#include "common/string_util.h"

namespace pdm {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kBool:
      return "BOOLEAN";
    case ColumnType::kInt64:
      return "INTEGER";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "VARCHAR";
  }
  return "UNKNOWN";
}

Result<ColumnType> ParseColumnType(std::string_view name) {
  std::string lower = ToLowerAscii(name);
  if (lower == "int" || lower == "integer" || lower == "bigint" ||
      lower == "smallint") {
    return ColumnType::kInt64;
  }
  if (lower == "double" || lower == "float" || lower == "real" ||
      lower == "decimal" || lower == "numeric") {
    return ColumnType::kDouble;
  }
  if (lower == "varchar" || lower == "char" || lower == "text" ||
      lower == "string") {
    return ColumnType::kString;
  }
  if (lower == "boolean" || lower == "bool") {
    return ColumnType::kBool;
  }
  return Status::InvalidArgument("unknown column type: " + std::string(name));
}

bool KindFitsColumn(ValueKind kind, ColumnType type) {
  switch (kind) {
    case ValueKind::kNull:
      return true;
    case ValueKind::kBool:
      return type == ColumnType::kBool;
    case ValueKind::kInt64:
      return type == ColumnType::kInt64 || type == ColumnType::kDouble;
    case ValueKind::kDouble:
      return type == ColumnType::kDouble;
    case ValueKind::kString:
      return type == ColumnType::kString;
  }
  return false;
}

std::optional<size_t> Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, schema has %zu columns", row.size(),
                  columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!KindFitsColumn(row[i].kind(), columns_[i].type)) {
      return Status::InvalidArgument(StrFormat(
          "value of kind %s does not fit column '%s' of type %s",
          std::string(ValueKindName(row[i].kind())).c_str(),
          columns_[i].name.c_str(),
          std::string(ColumnTypeName(columns_[i].type)).c_str()));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const Column& c : columns_) {
    parts.push_back(c.name + " " + std::string(ColumnTypeName(c.type)));
  }
  return Join(parts, ", ");
}

}  // namespace pdm
