#include "catalog/catalog.h"

#include "common/string_util.h"

namespace pdm {

std::string Catalog::Key(std::string_view name) { return ToLowerAscii(name); }

Status Catalog::CreateTable(std::string_view name, Schema schema,
                            bool if_not_exists) {
  std::string key = Key(name);
  if (tables_.count(key) > 0) {
    if (if_not_exists) return Status::OK();
    return Status::AlreadyExists("table '" + std::string(name) +
                                 "' already exists");
  }
  tables_[key] =
      std::make_unique<Table>(std::string(name), std::move(schema));
  ++version_;
  return Status::OK();
}

Status Catalog::DropTable(std::string_view name, bool if_exists) {
  std::string key = Key(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (if_exists) return Status::OK();
    return Status::NotFound("table '" + std::string(name) + "' does not exist");
  }
  tables_.erase(it);
  ++version_;
  return Status::OK();
}

Table* Catalog::FindTable(std::string_view name) {
  auto it = tables_.find(Key(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::FindTable(std::string_view name) const {
  auto it = tables_.find(Key(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Result<Table*> Catalog::GetTable(std::string_view name) {
  Table* table = FindTable(name);
  if (table == nullptr) {
    return Status::NotFound("table '" + std::string(name) + "' does not exist");
  }
  return table;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace pdm
