#ifndef PDM_CATALOG_COLUMN_STORE_H_
#define PDM_CATALOG_COLUMN_STORE_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace pdm {

/// Commit timestamps (DESIGN.md 5h). 0 is the bulk-load timestamp (a
/// row loaded before any writer is visible to every snapshot);
/// kMaxCommitTs marks an open (never killed) version.
inline constexpr uint64_t kMaxCommitTs = ~0ull;

// Fragment geometry: versions are stored column-major in fixed 1024-row
// fragments. The fragment size doubles as the vectorized executor's
// batch size (exec/vec_batch.h) so a VecBatch borrows exactly one
// fragment's column arrays with no copying or realignment.
inline constexpr size_t kFragmentShift = 10;
inline constexpr size_t kFragmentRows = size_t{1} << kFragmentShift;
inline constexpr size_t kFragmentMask = kFragmentRows - 1;
inline constexpr size_t kMaxFragments = size_t{1} << 12;  // 4M versions

/// MVCC metadata of one row version. `end_ts` is atomic: a writer kills
/// a version while readers evaluate visibility against it.
struct VersionMeta {
  uint64_t begin_ts = 0;
  std::atomic<uint64_t> end_ts{kMaxCommitTs};
};

/// True if a version with this metadata is visible to snapshot `ts`.
inline bool MetaVisibleAt(const VersionMeta& m, uint64_t ts) {
  return m.begin_ts <= ts && ts < m.end_ts.load(std::memory_order_acquire);
}

inline uint64_t DoubleToBits(double d) {
  uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}
inline double BitsToDouble(uint64_t b) {
  double d;
  std::memcpy(&d, &b, sizeof(d));
  return d;
}

/// One column of one fragment: a ValueKind tag per cell (a kDouble
/// column may legally hold kInt64 cells — KindFitsColumn widens — and
/// NULL fits anywhere, so cells stay self-describing exactly like the
/// row engine's Values), 64-bit payload bits for the fixed-width kinds,
/// and a string array allocated only when the column's first string
/// lands in this fragment (release-published; readers below the table's
/// published bound are ordered by that bound's release/acquire pair,
/// the pointer's own acquire guards fragment-internal lazy readers).
struct ColumnFragment {
  ColumnFragment()
      : kinds(new uint8_t[kFragmentRows]()),
        fixed(new uint64_t[kFragmentRows]()) {}
  ~ColumnFragment() { delete[] strs.load(std::memory_order_relaxed); }
  ColumnFragment(const ColumnFragment&) = delete;
  ColumnFragment& operator=(const ColumnFragment&) = delete;

  std::unique_ptr<uint8_t[]> kinds;   // ValueKind per slot (0 = NULL)
  std::unique_ptr<uint64_t[]> fixed;  // int64 / double bits / bool
  std::atomic<std::string*> strs{nullptr};

  const std::string* strings() const {
    return strs.load(std::memory_order_acquire);
  }

  /// Writer-side cell store (single writer, slot not yet published).
  void Store(size_t slot, Value v) {
    switch (v.kind()) {
      case ValueKind::kNull:
        kinds[slot] = static_cast<uint8_t>(ValueKind::kNull);
        return;
      case ValueKind::kBool:
        fixed[slot] = v.bool_value() ? 1 : 0;
        break;
      case ValueKind::kInt64:
        fixed[slot] = static_cast<uint64_t>(v.int64_value());
        break;
      case ValueKind::kDouble:
        fixed[slot] = DoubleToBits(v.double_value());
        break;
      case ValueKind::kString: {
        std::string* s = strs.load(std::memory_order_relaxed);
        if (s == nullptr) {
          s = new std::string[kFragmentRows];
          strs.store(s, std::memory_order_release);
        }
        s[slot] = v.ReleaseString();
        break;
      }
    }
    kinds[slot] = static_cast<uint8_t>(v.kind());
  }

  /// Reconstructs the cell as a Value (reader side, published slots).
  Value Load(size_t slot) const {
    switch (static_cast<ValueKind>(kinds[slot])) {
      case ValueKind::kNull:
        return Value::Null();
      case ValueKind::kBool:
        return Value::Bool(fixed[slot] != 0);
      case ValueKind::kInt64:
        return Value::Int64(static_cast<int64_t>(fixed[slot]));
      case ValueKind::kDouble:
        return Value::Double(BitsToDouble(fixed[slot]));
      case ValueKind::kString:
        return Value::String(strings()[slot]);
    }
    return Value::Null();
  }

  /// In-place variant of Load for scratch-row recycling (string slots
  /// reuse the target's capacity).
  void LoadInto(size_t slot, Value* out) const {
    switch (static_cast<ValueKind>(kinds[slot])) {
      case ValueKind::kNull:
        out->SetNull();
        return;
      case ValueKind::kBool:
        out->SetBool(fixed[slot] != 0);
        return;
      case ValueKind::kInt64:
        out->SetInt64(static_cast<int64_t>(fixed[slot]));
        return;
      case ValueKind::kDouble:
        out->SetDouble(BitsToDouble(fixed[slot]));
        return;
      case ValueKind::kString:
        out->SetString(strings()[slot]);
        return;
    }
  }
};

/// A 1024-row column-major fragment: version metadata plus one
/// ColumnFragment per table column. The column vector is sized at
/// construction and never resized, so readers may hold pointers into it
/// while the single writer fills later slots.
struct Fragment {
  explicit Fragment(size_t num_columns)
      : meta(new VersionMeta[kFragmentRows]), cols(num_columns) {}
  Fragment(const Fragment&) = delete;
  Fragment& operator=(const Fragment&) = delete;

  std::unique_ptr<VersionMeta[]> meta;
  std::vector<ColumnFragment> cols;
};

/// Borrowed read-only view of one column within one fragment, the unit
/// the vectorized executor scans. `strs` is null when no string cell
/// was ever stored in this column-fragment (then no kind tag below the
/// scan bound is kString, so it is never dereferenced).
struct ColumnSpan {
  const uint8_t* kinds = nullptr;
  const uint64_t* fixed = nullptr;
  const std::string* strs = nullptr;
};

/// Borrowed view of one fragment clipped to a scan bound: `rows` valid
/// slots starting at absolute version position `base`.
struct FragmentSpan {
  const Fragment* fragment = nullptr;
  const VersionMeta* meta = nullptr;
  size_t base = 0;
  size_t rows = 0;

  ColumnSpan column(size_t col) const {
    const ColumnFragment& c = fragment->cols[col];
    return ColumnSpan{c.kinds.get(), c.fixed.get(), c.strings()};
  }
};

/// Append-only column-major version storage safe to scan concurrently
/// with appends. Fragments are allocated once and never moved; the
/// directory of fragment pointers has fixed capacity, so the writer
/// publishing a new fragment (release store into its slot) never
/// relocates anything a reader may be walking. Single writer appends;
/// readers access positions below Table::published_ (whose
/// release/acquire pair orders the cell stores); move/destruction
/// require full exclusivity.
class FragmentStore {
 public:
  explicit FragmentStore(size_t num_columns) : num_columns_(num_columns) {}
  FragmentStore(FragmentStore&& other) noexcept
      : dir_(std::move(other.dir_)),
        num_columns_(other.num_columns_),
        size_(other.size_) {
    other.size_ = 0;
  }
  FragmentStore& operator=(FragmentStore&& other) noexcept {
    if (this != &other) {
      FreeFragments();
      dir_ = std::move(other.dir_);
      num_columns_ = other.num_columns_;
      size_ = other.size_;
      other.size_ = 0;
    }
    return *this;
  }
  ~FragmentStore() { FreeFragments(); }

  /// Versions appended so far (writer-side count; readers bound their
  /// scans by Table::published_ instead).
  size_t size() const { return size_; }
  size_t num_columns() const { return num_columns_; }

  const Fragment& fragment(size_t frag) const {
    return *dir_[frag].load(std::memory_order_acquire);
  }

  VersionMeta& meta(size_t pos) {
    return dir_[pos >> kFragmentShift].load(std::memory_order_acquire)
        ->meta[pos & kFragmentMask];
  }
  const VersionMeta& meta(size_t pos) const {
    return dir_[pos >> kFragmentShift].load(std::memory_order_acquire)
        ->meta[pos & kFragmentMask];
  }

  /// View of fragment `frag` clipped to scan bound `bound` (exclusive
  /// absolute position, normally Table::published_).
  FragmentSpan Span(size_t frag, size_t bound) const {
    const Fragment& f = fragment(frag);
    const size_t base = frag << kFragmentShift;
    const size_t rows = bound > base ? std::min(kFragmentRows, bound - base)
                                     : 0;
    return FragmentSpan{&f, f.meta.get(), base, rows};
  }

  Value Cell(size_t pos, size_t col) const {
    return fragment(pos >> kFragmentShift)
        .cols[col]
        .Load(pos & kFragmentMask);
  }

  /// Reassembles the row of version `pos` into *out, recycling its
  /// element storage (the row-API adapter's hot path).
  void MaterializeRow(size_t pos, Row* out) const {
    const Fragment& f = fragment(pos >> kFragmentShift);
    const size_t slot = pos & kFragmentMask;
    out->resize(num_columns_);
    for (size_t c = 0; c < num_columns_; ++c) {
      f.cols[c].LoadInto(slot, &(*out)[c]);
    }
  }

  /// Appends one version and returns its position. Single writer only;
  /// the slot stays invisible to readers until the caller advances
  /// Table::published_.
  size_t Append(Row row, uint64_t begin_ts) {
    if (dir_ == nullptr) {
      dir_.reset(new std::atomic<Fragment*>[kMaxFragments]());
    }
    const size_t frag = size_ >> kFragmentShift;
    assert(frag < kMaxFragments && "fragment store capacity exhausted");
    if ((size_ & kFragmentMask) == 0) {
      dir_[frag].store(new Fragment(num_columns_),
                       std::memory_order_release);
    }
    Fragment& f = *dir_[frag].load(std::memory_order_relaxed);
    const size_t slot = size_ & kFragmentMask;
    f.meta[slot].begin_ts = begin_ts;
    f.meta[slot].end_ts.store(kMaxCommitTs, std::memory_order_relaxed);
    const size_t n = std::min(row.size(), num_columns_);
    for (size_t c = 0; c < n; ++c) {
      f.cols[c].Store(slot, std::move(row[c]));
    }
    for (size_t c = n; c < num_columns_; ++c) {
      f.cols[c].Store(slot, Value::Null());
    }
    return size_++;
  }

 private:
  void FreeFragments() {
    if (dir_ == nullptr) return;
    const size_t frags = (size_ + kFragmentRows - 1) >> kFragmentShift;
    for (size_t fr = 0; fr < frags; ++fr) {
      delete dir_[fr].load(std::memory_order_relaxed);
    }
  }

  std::unique_ptr<std::atomic<Fragment*>[]> dir_;
  size_t num_columns_ = 0;
  size_t size_ = 0;
};

}  // namespace pdm

#endif  // PDM_CATALOG_COLUMN_STORE_H_
