#include "catalog/table.h"

namespace pdm {

void TableUndo::Rollback() {
  // Reverse order: a statement that killed and then appended restores
  // the pre-statement picture exactly.
  for (auto it = appended.rbegin(); it != appended.rend(); ++it) {
    VersionMeta& m = it->table->versions_.meta(it->pos);
    // end == begin: invisible to every snapshot (begin <= ts < end is
    // unsatisfiable) and prunable by the next GC regardless of horizon.
    m.end_ts.store(m.begin_ts, std::memory_order_release);
    it->table->live_rows_.fetch_sub(1, std::memory_order_relaxed);
  }
  for (auto it = killed.rbegin(); it != killed.rend(); ++it) {
    it->table->versions_.meta(it->pos).end_ts.store(
        kMaxCommitTs, std::memory_order_release);
    it->table->live_rows_.fetch_add(1, std::memory_order_relaxed);
  }
  appended.clear();
  killed.clear();
}

Status Table::Insert(Row row, uint64_t begin_ts) {
  PDM_RETURN_NOT_OK(schema_.ValidateRow(row).WithContext(
      "insert into table '" + name_ + "'"));
  AppendVersion(std::move(row), begin_ts, nullptr);
  return Status::OK();
}

size_t Table::AppendVersion(Row row, uint64_t begin_ts, TableUndo* undo) {
  const size_t pos = versions_.Append(std::move(row), begin_ts);
  // Index maintenance happens before the position is published: a
  // concurrent index lookup may already surface `pos`, but VisibleAt
  // rejects positions at or past the published bound.
  MaintainIndexesForAppend(pos);
  published_.store(pos + 1, std::memory_order_release);
  live_rows_.fetch_add(1, std::memory_order_relaxed);
  if (undo != nullptr) undo->appended.push_back({this, pos});
  return pos;
}

bool Table::KillVersion(size_t pos, uint64_t end_ts, TableUndo* undo) {
  VersionMeta& m = versions_.meta(pos);
  // First writer wins: a version killed by a writer that committed
  // after the caller's snapshot stays killed; the caller loses.
  uint64_t open = kMaxCommitTs;
  if (!m.end_ts.compare_exchange_strong(open, end_ts,
                                        std::memory_order_acq_rel)) {
    return false;
  }
  live_rows_.fetch_sub(1, std::memory_order_relaxed);
  if (undo != nullptr) undo->killed.push_back({this, pos});
  return true;
}

std::vector<Row> Table::SnapshotRows(uint64_t ts) const {
  std::vector<Row> rows;
  rows.reserve(num_rows());
  ForEachVisible(ts, [&rows](const Row& row) { rows.push_back(row); });
  return rows;
}

size_t Table::PruneVersions(uint64_t horizon) {
  // Exclusive by contract: no readers, no writers. Everything dead at
  // or before the horizon — plus rolled-back versions, whose end ==
  // begin makes them invisible to any snapshot — goes away. Counting
  // pass first: a no-op pass must not rebuild the fragment store.
  const size_t bound = versions_.size();
  size_t pruned = 0;
  for (size_t pos = 0; pos < bound; ++pos) {
    const VersionMeta& m = versions_.meta(pos);
    const uint64_t end = m.end_ts.load(std::memory_order_relaxed);
    if (end <= horizon || end <= m.begin_ts) ++pruned;
  }
  if (pruned == 0) return 0;
  FragmentStore kept(versions_.num_columns());
  Row scratch;
  for (size_t pos = 0; pos < bound; ++pos) {
    const VersionMeta& m = versions_.meta(pos);
    const uint64_t end = m.end_ts.load(std::memory_order_relaxed);
    if (end <= horizon || end <= m.begin_ts) continue;
    versions_.MaterializeRow(pos, &scratch);
    const size_t new_pos = kept.Append(std::move(scratch), m.begin_ts);
    kept.meta(new_pos).end_ts.store(end, std::memory_order_relaxed);
  }
  versions_ = std::move(kept);
  published_.store(versions_.size(), std::memory_order_release);
  InvalidateIndexes();  // survivor positions shifted
  return pruned;
}

void Table::MaintainIndexesForAppend(size_t pos) {
  std::lock_guard<std::mutex> lock(index_mutex_);
  const uint64_t old_version = version_++;
  for (auto& [column, cached] : indexes_) {
    if (cached.built_version != old_version) continue;  // already stale
    if (column < versions_.num_columns()) {
      Value key = versions_.Cell(pos, column);
      if (!key.is_null()) cached.map[std::move(key)].push_back(pos);
    }
    cached.built_version = version_;
  }
}

Table::CachedIndex& Table::EnsureIndexLocked(size_t column) const {
  CachedIndex& cached = indexes_[column];
  if (cached.built_version != version_) {
    const size_t bound = published_.load(std::memory_order_acquire);
    cached.map.clear();
    cached.map.reserve(bound);
    for (size_t pos = 0; pos < bound; ++pos) {
      Value key = versions_.Cell(pos, column);
      if (key.is_null()) continue;
      cached.map[std::move(key)].push_back(pos);
    }
    cached.built_version = version_;
  }
  return cached;
}

const Table::ColumnIndex& Table::GetOrBuildIndex(size_t column) const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  return EnsureIndexLocked(column).map;
}

void Table::IndexLookup(size_t column, const Value& key,
                        std::vector<size_t>* out) const {
  out->clear();
  if (key.is_null()) return;  // NULLs are not indexed
  std::lock_guard<std::mutex> lock(index_mutex_);
  const ColumnIndex& map = EnsureIndexLocked(column).map;
  auto it = map.find(key);
  if (it != map.end()) *out = it->second;  // copy under the lock
}

bool Table::HasFreshIndex(size_t column) const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  auto it = indexes_.find(column);
  return it != indexes_.end() && it->second.built_version == version_;
}

}  // namespace pdm
