#include "catalog/table.h"

namespace pdm {

Status Table::Insert(Row row) {
  PDM_RETURN_NOT_OK(schema_.ValidateRow(row).WithContext(
      "insert into table '" + name_ + "'"));
  MaintainIndexesForAppend(row);
  rows_.push_back(std::move(row));
  return Status::OK();
}

void Table::MaintainIndexesForAppend(const Row& row) {
  std::lock_guard<std::mutex> lock(index_mutex_);
  const uint64_t old_version = version_++;
  const size_t pos = rows_.size();
  for (auto& [column, cached] : indexes_) {
    if (cached.built_version != old_version) continue;  // already stale
    if (column < row.size() && !row[column].is_null()) {
      cached.map[row[column]].push_back(pos);
    }
    cached.built_version = version_;
  }
}

const Table::ColumnIndex& Table::GetOrBuildIndex(size_t column) const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  CachedIndex& cached = indexes_[column];
  if (cached.built_version != version_) {
    cached.map.clear();
    cached.map.reserve(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Value& key = rows_[i][column];
      if (key.is_null()) continue;
      cached.map[key].push_back(i);
    }
    cached.built_version = version_;
  }
  return cached.map;
}

bool Table::HasFreshIndex(size_t column) const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  auto it = indexes_.find(column);
  return it != indexes_.end() && it->second.built_version == version_;
}

}  // namespace pdm
