#include "catalog/table.h"

namespace pdm {

Status Table::Insert(Row row) {
  PDM_RETURN_NOT_OK(schema_.ValidateRow(row).WithContext(
      "insert into table '" + name_ + "'"));
  InvalidateIndexes();
  rows_.push_back(std::move(row));
  return Status::OK();
}

const Table::ColumnIndex& Table::GetOrBuildIndex(size_t column) const {
  auto it = indexes_.find(column);
  if (it != indexes_.end()) return it->second;
  ColumnIndex index;
  index.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    const Value& key = rows_[i][column];
    if (key.is_null()) continue;
    index[key].push_back(i);
  }
  return indexes_.emplace(column, std::move(index)).first->second;
}

}  // namespace pdm
