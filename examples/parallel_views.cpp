// Parallel hierarchical views: the same flat object set carries both the
// physical product structure and a functional grouping (the paper's
// footnote 1: hierarchically structured complex objects cannot support
// "different hierarchical views ... in parallel on the same set of
// data", which is why PDM systems store flat tables).
//
// The example expands the same product through both views and prints the
// two structures side by side, plus the WAN cost of each (identical:
// the recursive compilation is view-agnostic).

#include <cstdio>

#include "client/experiment.h"
#include "pdm/pdm_schema.h"

using namespace pdm;          // NOLINT: example brevity
using namespace pdm::client;  // NOLINT

int main() {
  ExperimentConfig config;
  config.generator.depth = 3;
  config.generator.branching = 3;
  config.generator.sigma = 1.0;
  config.generator.build_functional_view = true;
  config.wan.latency_s = 0.15;
  config.wan.dtr_kbit = 256;

  Result<std::unique_ptr<Experiment>> experiment =
      Experiment::Create(config);
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  Experiment& e = **experiment;
  std::printf("One flat object set: %zu assemblies, %zu components.\n",
              e.product().num_assemblies, e.product().num_components);
  std::printf("Two link sets: %zu physical, %zu functional.\n\n",
              e.product().total_links, e.product().functional_links);

  for (const char* hierarchy :
       {pdmsys::kPhysicalHierarchy, pdmsys::kFunctionalHierarchy}) {
    ClientConfig client;
    client.hierarchy = hierarchy;
    RecursiveStrategy strategy(&e.connection(), &e.rule_table(), e.user(),
                               client);
    Result<ActionResult> result =
        strategy.MultiLevelExpand(e.product().root_obid);
    if (!result.ok()) {
      std::fprintf(stderr, "expand failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("--- %s view: %zu nodes in %.2f s (1 round trip) ---\n%s\n",
                hierarchy, result->tree.num_nodes(), result->seconds(),
                result->tree.ToString(/*max_nodes=*/9).c_str());
  }
  std::printf(
      "Both views are produced by the same recursive query machinery —\n"
      "only the link.hier predicate differs.\n");
  return 0;
}
