// What-if WAN tuning tool: sweeps latency and bandwidth for a given
// product shape and prints the predicted (closed-form) and simulated
// response times of a multi-level expand under the three regimes —
// the decision aid the paper's authors built the model for ("before
// doing any implementations ... we were interested in the improvements
// that potentially might result").

#include <cstdio>
#include <cstdlib>

#include "client/experiment.h"

using namespace pdm;          // NOLINT: example brevity
using namespace pdm::client;  // NOLINT

int main(int argc, char** argv) {
  // Optional: tree shape from the command line: wan_tuning [depth]
  // [branching] [sigma].
  model::TreeParams tree{5, 4, 0.6};
  if (argc > 1) tree.depth = std::atoi(argv[1]);
  if (argc > 2) tree.branching = std::atoi(argv[2]);
  if (argc > 3) tree.sigma = std::atof(argv[3]);
  std::printf("Multi-level expand, tree α=%d ω=%d σ=%.2f\n\n", tree.depth,
              tree.branching, tree.sigma);

  const double latencies_ms[] = {5, 50, 150, 300};
  const double bandwidths[] = {128, 256, 1024, 8192};

  std::printf("%-10s %-10s | %12s %12s %12s | %10s\n", "latency", "kbit/s",
              "late-eval", "early-eval", "recursive", "saving");
  for (double lat : latencies_ms) {
    for (double bw : bandwidths) {
      model::NetworkParams net{lat / 1000.0, bw, 4096, 512};

      double sim[3];
      int i = 0;
      for (model::StrategyKind strategy :
           {model::StrategyKind::kNavigationalLate,
            model::StrategyKind::kNavigationalEarly,
            model::StrategyKind::kRecursive}) {
        ExperimentConfig config;
        config.generator.depth = tree.depth;
        config.generator.branching = tree.branching;
        config.generator.sigma = tree.sigma;
        config.wan.latency_s = net.latency_s;
        config.wan.dtr_kbit = net.dtr_kbit;
        Result<std::unique_ptr<Experiment>> experiment =
            Experiment::Create(config);
        if (!experiment.ok()) {
          std::fprintf(stderr, "setup failed: %s\n",
                       experiment.status().ToString().c_str());
          return 1;
        }
        Result<ActionResult> result = (*experiment)->RunAction(
            strategy, model::ActionKind::kMultiLevelExpand);
        if (!result.ok()) {
          std::fprintf(stderr, "expand failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        sim[i++] = result->seconds();
      }
      std::printf("%7.0fms %10.0f | %11.2fs %11.2fs %11.2fs | %9.1f%%\n",
                  lat, bw, sim[0], sim[1], sim[2],
                  (sim[0] - sim[2]) / sim[0] * 100.0);
    }
  }
  std::printf(
      "\nReading: early evaluation alone only helps when data volume\n"
      "dominates; the recursive compilation is what removes the\n"
      "latency-bound round trips (the paper's central conclusion).\n");
  return 0;
}
