// Quickstart: the paper's running example (Figure 2) end to end.
//
// Creates the assy/comp/link tables, loads the example product, runs the
// Section 5.2 recursive query, prints the homogenized result (Figure 3)
// and the client-side reassembled product tree.

#include <cstdio>

#include "engine/database.h"
#include "pdm/product_tree.h"

using pdm::Database;
using pdm::Result;
using pdm::ResultSet;

int main() {
  Database db;

  // The Figure 2 data: eight assemblies, seven components, eight links.
  pdm::Status status = db.ExecuteScript(R"sql(
    CREATE TABLE assy (type VARCHAR, obid INTEGER, name VARCHAR, dec VARCHAR);
    CREATE TABLE comp (type VARCHAR, obid INTEGER, name VARCHAR);
    CREATE TABLE link (type VARCHAR, obid INTEGER, left INTEGER,
                       right INTEGER, eff_from INTEGER, eff_to INTEGER);
    INSERT INTO assy VALUES
      ('assy', 1, 'Assy1', '+'), ('assy', 2, 'Assy2', '+'),
      ('assy', 3, 'Assy3', '+'), ('assy', 4, 'Assy4', '+'),
      ('assy', 5, 'Assy5', '-'), ('assy', 6, 'Assy6', '-'),
      ('assy', 7, 'Assy7', '-'), ('assy', 8, 'Assy8', '-');
    INSERT INTO comp VALUES
      ('comp', 101, 'Comp1'), ('comp', 102, 'Comp2'), ('comp', 103, 'Comp3'),
      ('comp', 104, 'Comp4'), ('comp', 105, 'Comp5'), ('comp', 106, 'Comp6'),
      ('comp', 107, 'Comp7');
    INSERT INTO link VALUES
      ('link', 1001, 1, 2, 1, 3),    ('link', 1002, 1, 3, 4, 10),
      ('link', 1003, 2, 4, 1, 10),   ('link', 1004, 2, 5, 1, 10),
      ('link', 1005, 4, 101, 6, 10), ('link', 1006, 4, 102, 1, 5),
      ('link', 1007, 5, 103, 1, 10), ('link', 1008, 5, 104, 1, 10);
  )sql");
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // The Section 5.2 recursive query, verbatim (modulo whitespace):
  // collect the whole tree under Assy1 into one homogenized result.
  Result<ResultSet> result = db.Query(R"sql(
WITH RECURSIVE rtbl (type, obid, name, dec) AS
  (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
   UNION
   SELECT assy.type, assy.obid, assy.name, assy.dec
   FROM rtbl JOIN link ON rtbl.obid = link.left
             JOIN assy ON link.right = assy.obid
   UNION
   SELECT comp.type, comp.obid, comp.name, ''
   FROM rtbl JOIN link ON rtbl.obid = link.left
             JOIN comp ON link.right = comp.obid)
SELECT type, obid, name, dec AS "DEC",
       cast(NULL AS integer) AS "LEFT",
       cast(NULL AS integer) AS "RIGHT",
       cast(NULL AS integer) AS "EFF_FROM",
       cast(NULL AS integer) AS "EFF_TO"
FROM rtbl
UNION
SELECT type, obid, '' AS "NAME", '' AS "DEC",
       left, right, eff_from, eff_to
FROM link
WHERE (left IN (SELECT obid FROM rtbl)
   AND right IN (SELECT obid FROM rtbl))
ORDER BY 1, 2
)sql");
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Homogenized result (paper Figure 3), %zu rows:\n\n%s\n",
              result->num_rows(), result->ToString().c_str());

  // Reassemble the object tree at the "client".
  Result<pdm::pdmsys::ProductTree> tree =
      pdm::pdmsys::AssembleFromHomogenized(*result, /*root_obid=*/1);
  if (!tree.ok()) {
    std::fprintf(stderr, "reassembly failed: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }
  std::printf("Reassembled product structure (%zu nodes, depth %zu):\n\n%s",
              tree->num_nodes(), tree->Depth(), tree->ToString().c_str());
  return 0;
}
