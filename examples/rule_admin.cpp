// Rule administration walkthrough: defines one rule of every condition
// class from the paper (Section 3), shows its classification and SQL
// translation, and prints the recursive tree query before and after the
// Section 5.5 modification steps.

#include <cstdio>

#include "pdm/pdm_schema.h"
#include "pdm/user_context.h"
#include "rules/procedures.h"
#include "rules/query_builder.h"
#include "rules/query_modificator.h"
#include "sql/parser.h"

using namespace pdm;         // NOLINT: example brevity
using namespace pdm::rules;  // NOLINT

namespace {

void Show(const Rule& rule) {
  std::printf("  user=%-6s action=%-18s type=%-6s class=%s\n    %s\n",
              rule.user.c_str(),
              std::string(RuleActionName(rule.action)).c_str(),
              rule.object_type.c_str(),
              std::string(ConditionClassName(
                  rule.condition->condition_class()))
                  .c_str(),
              rule.condition->Describe().c_str());
}

}  // namespace

int main() {
  RuleTable table;
  pdmsys::UserContext scott;
  scott.name = "scott";
  scott.strc_opt = 0x3;  // cabriolet + sports package
  scott.eff_from = 100;
  scott.eff_to = 200;

  // Paper example 1: a row condition — Scott may multi-level-expand an
  // assembly only if it is not bought from a supplier.
  {
    Result<std::unique_ptr<RowCondition>> cond =
        RowCondition::Parse("assy", "make_or_buy <> 'buy'");
    Rule rule;
    rule.user = "scott";
    rule.action = RuleAction::kMultiLevelExpand;
    rule.object_type = "assy";
    rule.condition = std::move(*cond);
    table.AddRule(std::move(rule));
  }
  // Paper example 2: a ∀rows tree condition — check-out only if every
  // node of the subtree is checked in.
  {
    Result<sql::ExprPtr> pred = sql::ParseSqlExpression("checkedout = FALSE");
    Rule rule;
    rule.action = RuleAction::kCheckOut;
    rule.condition =
        std::make_unique<ForAllRowsCondition>("", std::move(*pred));
    table.AddRule(std::move(rule));
  }
  // Paper example 3: structure options / effectivities as relation
  // access rules — the link's option set must overlap the user's and its
  // effectivity must overlap the selected window.
  {
    Result<std::unique_ptr<RowCondition>> cond = RowCondition::Parse(
        pdmsys::kLinkTable,
        "BITAND(strc_opt, $user.strc_opt) <> 0 AND "
        "eff_from <= $user.eff_to AND eff_to >= $user.eff_from");
    Rule rule;
    rule.object_type = pdmsys::kLinkTable;
    rule.condition = std::move(*cond);
    table.AddRule(std::move(rule));
  }
  // Section 3.2's ∃structure example: a component is visible only if at
  // least one specification document is attached.
  {
    Rule rule;
    rule.object_type = "comp";
    rule.condition = std::make_unique<ExistsStructureCondition>(
        "comp", pdmsys::kSpecifiedByTable, pdmsys::kSpecTable);
    table.AddRule(std::move(rule));
  }
  // Section 3.2's tree-aggregate example: trees with more than ten
  // assemblies may not be retrieved.
  {
    Rule rule;
    rule.action = RuleAction::kMultiLevelExpand;
    rule.condition = std::make_unique<TreeAggregateCondition>(
        AggKind::kCountStar, "", "assy", sql::BinaryOp::kLessEq,
        Value::Int64(10));
    table.AddRule(std::move(rule));
  }

  std::printf("Rule table (%zu rules):\n", table.size());
  for (const Rule& rule : table.rules()) Show(rule);

  // The unmodified Section 5.2 query...
  std::unique_ptr<sql::SelectStmt> stmt = BuildRecursiveTreeQuery(1);
  std::printf("\n--- generated recursive tree query (no rules) ---\n%s\n",
              stmt->ToSql().c_str());

  // ...and after the Section 5.5 steps A-D for Scott's multi-level
  // expand.
  QueryModificator modificator(&table, scott);
  Result<ModificationSummary> summary = modificator.ApplyToRecursiveQuery(
      stmt.get(), RuleAction::kMultiLevelExpand);
  if (!summary.ok()) {
    std::fprintf(stderr, "modification failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\n--- after early-rule-evaluation modification ---\n"
      "(injected: %zu forall-rows, %zu tree-aggregate, %zu "
      "exists-structure, %zu row predicates)\n\n%s\n",
      summary->forall_rows, summary->tree_aggregates,
      summary->exists_structure, summary->row_conditions,
      stmt->ToSql().c_str());
  return 0;
}
