// Digital mockup scenario (paper Section 4: "expands e.g. for digital
// mockups need to retrieve the entire structure from the root down to
// each single leaf").
//
// Generates a realistic product structure, then runs the same
// multi-level expand under the three regimes over a simulated
// intercontinental WAN and prints what the engineer would experience.

#include <cstdio>

#include "client/experiment.h"

using namespace pdm;          // NOLINT: example brevity
using namespace pdm::client;  // NOLINT

int main() {
  ExperimentConfig config;
  config.generator.depth = 6;      // six structure levels
  config.generator.branching = 5;  // five children per assembly
  config.generator.sigma = 0.6;    // 60% of branches visible to the user
  config.generator.seed = 2026;
  config.wan.latency_s = 0.15;     // Germany <-> Brazil
  config.wan.dtr_kbit = 256;

  Result<std::unique_ptr<Experiment>> experiment =
      Experiment::Create(config);
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  Experiment& e = **experiment;
  std::printf(
      "Product: %zu assemblies, %zu components, %zu links "
      "(%zu nodes visible to user '%s')\n\n",
      e.product().num_assemblies, e.product().num_components,
      e.product().total_links, e.product().visible_nodes,
      e.user().name.c_str());

  std::printf("%-20s %12s %12s %12s %12s\n", "strategy", "queries",
              "nodes-sent", "latency-s", "total-s");
  for (model::StrategyKind strategy :
       {model::StrategyKind::kNavigationalLate,
        model::StrategyKind::kNavigationalEarly,
        model::StrategyKind::kRecursive}) {
    Result<ActionResult> result =
        e.RunAction(strategy, model::ActionKind::kMultiLevelExpand);
    if (!result.ok()) {
      std::fprintf(stderr, "expand failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-20s %12zu %12zu %12.2f %12.2f\n",
                std::string(model::StrategyKindName(strategy)).c_str(),
                result->wan.round_trips, result->transmitted_rows,
                result->wan.latency_seconds, result->seconds());
  }

  Result<ActionResult> rec = e.RunAction(
      model::StrategyKind::kRecursive, model::ActionKind::kMultiLevelExpand);
  std::printf(
      "\nThe mockup tree (first levels):\n\n%s",
      rec->tree.ToString(/*max_nodes=*/15).c_str());
  return 0;
}
