
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/binder.cc" "src/plan/CMakeFiles/pdm_plan.dir/binder.cc.o" "gcc" "src/plan/CMakeFiles/pdm_plan.dir/binder.cc.o.d"
  "/root/repo/src/plan/functions.cc" "src/plan/CMakeFiles/pdm_plan.dir/functions.cc.o" "gcc" "src/plan/CMakeFiles/pdm_plan.dir/functions.cc.o.d"
  "/root/repo/src/plan/plan_node.cc" "src/plan/CMakeFiles/pdm_plan.dir/plan_node.cc.o" "gcc" "src/plan/CMakeFiles/pdm_plan.dir/plan_node.cc.o.d"
  "/root/repo/src/plan/view_registry.cc" "src/plan/CMakeFiles/pdm_plan.dir/view_registry.cc.o" "gcc" "src/plan/CMakeFiles/pdm_plan.dir/view_registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/pdm_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/pdm_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
