file(REMOVE_RECURSE
  "CMakeFiles/pdm_plan.dir/binder.cc.o"
  "CMakeFiles/pdm_plan.dir/binder.cc.o.d"
  "CMakeFiles/pdm_plan.dir/functions.cc.o"
  "CMakeFiles/pdm_plan.dir/functions.cc.o.d"
  "CMakeFiles/pdm_plan.dir/plan_node.cc.o"
  "CMakeFiles/pdm_plan.dir/plan_node.cc.o.d"
  "CMakeFiles/pdm_plan.dir/view_registry.cc.o"
  "CMakeFiles/pdm_plan.dir/view_registry.cc.o.d"
  "libpdm_plan.a"
  "libpdm_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdm_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
