file(REMOVE_RECURSE
  "libpdm_plan.a"
)
