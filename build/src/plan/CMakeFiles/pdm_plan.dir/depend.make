# Empty dependencies file for pdm_plan.
# This may be replaced when dependencies are built.
