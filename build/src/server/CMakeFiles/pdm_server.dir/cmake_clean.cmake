file(REMOVE_RECURSE
  "CMakeFiles/pdm_server.dir/db_server.cc.o"
  "CMakeFiles/pdm_server.dir/db_server.cc.o.d"
  "libpdm_server.a"
  "libpdm_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdm_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
