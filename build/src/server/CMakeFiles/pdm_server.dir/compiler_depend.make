# Empty compiler generated dependencies file for pdm_server.
# This may be replaced when dependencies are built.
