file(REMOVE_RECURSE
  "libpdm_server.a"
)
