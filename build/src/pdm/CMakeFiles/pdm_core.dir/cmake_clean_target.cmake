file(REMOVE_RECURSE
  "libpdm_core.a"
)
