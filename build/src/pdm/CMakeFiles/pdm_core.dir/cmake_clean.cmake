file(REMOVE_RECURSE
  "CMakeFiles/pdm_core.dir/generator.cc.o"
  "CMakeFiles/pdm_core.dir/generator.cc.o.d"
  "CMakeFiles/pdm_core.dir/pdm_schema.cc.o"
  "CMakeFiles/pdm_core.dir/pdm_schema.cc.o.d"
  "CMakeFiles/pdm_core.dir/product_tree.cc.o"
  "CMakeFiles/pdm_core.dir/product_tree.cc.o.d"
  "libpdm_core.a"
  "libpdm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
