# Empty compiler generated dependencies file for pdm_core.
# This may be replaced when dependencies are built.
