file(REMOVE_RECURSE
  "CMakeFiles/pdm_rules.dir/condition.cc.o"
  "CMakeFiles/pdm_rules.dir/condition.cc.o.d"
  "CMakeFiles/pdm_rules.dir/procedures.cc.o"
  "CMakeFiles/pdm_rules.dir/procedures.cc.o.d"
  "CMakeFiles/pdm_rules.dir/query_builder.cc.o"
  "CMakeFiles/pdm_rules.dir/query_builder.cc.o.d"
  "CMakeFiles/pdm_rules.dir/query_modificator.cc.o"
  "CMakeFiles/pdm_rules.dir/query_modificator.cc.o.d"
  "CMakeFiles/pdm_rules.dir/rule.cc.o"
  "CMakeFiles/pdm_rules.dir/rule.cc.o.d"
  "libpdm_rules.a"
  "libpdm_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdm_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
