# Empty dependencies file for pdm_rules.
# This may be replaced when dependencies are built.
