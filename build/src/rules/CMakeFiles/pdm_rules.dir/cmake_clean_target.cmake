file(REMOVE_RECURSE
  "libpdm_rules.a"
)
