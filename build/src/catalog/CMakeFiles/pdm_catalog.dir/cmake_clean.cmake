file(REMOVE_RECURSE
  "CMakeFiles/pdm_catalog.dir/catalog.cc.o"
  "CMakeFiles/pdm_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/pdm_catalog.dir/schema.cc.o"
  "CMakeFiles/pdm_catalog.dir/schema.cc.o.d"
  "CMakeFiles/pdm_catalog.dir/table.cc.o"
  "CMakeFiles/pdm_catalog.dir/table.cc.o.d"
  "libpdm_catalog.a"
  "libpdm_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdm_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
