# Empty compiler generated dependencies file for pdm_catalog.
# This may be replaced when dependencies are built.
