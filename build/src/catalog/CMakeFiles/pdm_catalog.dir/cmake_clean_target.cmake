file(REMOVE_RECURSE
  "libpdm_catalog.a"
)
