# Empty dependencies file for pdm_common.
# This may be replaced when dependencies are built.
