file(REMOVE_RECURSE
  "libpdm_common.a"
)
