file(REMOVE_RECURSE
  "CMakeFiles/pdm_common.dir/status.cc.o"
  "CMakeFiles/pdm_common.dir/status.cc.o.d"
  "CMakeFiles/pdm_common.dir/string_util.cc.o"
  "CMakeFiles/pdm_common.dir/string_util.cc.o.d"
  "CMakeFiles/pdm_common.dir/value.cc.o"
  "CMakeFiles/pdm_common.dir/value.cc.o.d"
  "libpdm_common.a"
  "libpdm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
