file(REMOVE_RECURSE
  "libpdm_model.a"
)
