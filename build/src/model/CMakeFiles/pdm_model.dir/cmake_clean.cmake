file(REMOVE_RECURSE
  "CMakeFiles/pdm_model.dir/cost_model.cc.o"
  "CMakeFiles/pdm_model.dir/cost_model.cc.o.d"
  "libpdm_model.a"
  "libpdm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
