# Empty compiler generated dependencies file for pdm_model.
# This may be replaced when dependencies are built.
