file(REMOVE_RECURSE
  "CMakeFiles/pdm_sql.dir/ast.cc.o"
  "CMakeFiles/pdm_sql.dir/ast.cc.o.d"
  "CMakeFiles/pdm_sql.dir/lexer.cc.o"
  "CMakeFiles/pdm_sql.dir/lexer.cc.o.d"
  "CMakeFiles/pdm_sql.dir/parser.cc.o"
  "CMakeFiles/pdm_sql.dir/parser.cc.o.d"
  "CMakeFiles/pdm_sql.dir/token.cc.o"
  "CMakeFiles/pdm_sql.dir/token.cc.o.d"
  "libpdm_sql.a"
  "libpdm_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdm_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
