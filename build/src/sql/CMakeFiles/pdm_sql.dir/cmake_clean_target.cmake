file(REMOVE_RECURSE
  "libpdm_sql.a"
)
