# Empty compiler generated dependencies file for pdm_sql.
# This may be replaced when dependencies are built.
