
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/pdm_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/pdm_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/expr_eval.cc" "src/exec/CMakeFiles/pdm_exec.dir/expr_eval.cc.o" "gcc" "src/exec/CMakeFiles/pdm_exec.dir/expr_eval.cc.o.d"
  "/root/repo/src/exec/recursive_cte.cc" "src/exec/CMakeFiles/pdm_exec.dir/recursive_cte.cc.o" "gcc" "src/exec/CMakeFiles/pdm_exec.dir/recursive_cte.cc.o.d"
  "/root/repo/src/exec/result_set.cc" "src/exec/CMakeFiles/pdm_exec.dir/result_set.cc.o" "gcc" "src/exec/CMakeFiles/pdm_exec.dir/result_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/pdm_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/pdm_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/pdm_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
