# Empty dependencies file for pdm_exec.
# This may be replaced when dependencies are built.
