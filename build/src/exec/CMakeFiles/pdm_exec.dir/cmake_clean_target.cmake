file(REMOVE_RECURSE
  "libpdm_exec.a"
)
