file(REMOVE_RECURSE
  "CMakeFiles/pdm_exec.dir/executor.cc.o"
  "CMakeFiles/pdm_exec.dir/executor.cc.o.d"
  "CMakeFiles/pdm_exec.dir/expr_eval.cc.o"
  "CMakeFiles/pdm_exec.dir/expr_eval.cc.o.d"
  "CMakeFiles/pdm_exec.dir/recursive_cte.cc.o"
  "CMakeFiles/pdm_exec.dir/recursive_cte.cc.o.d"
  "CMakeFiles/pdm_exec.dir/result_set.cc.o"
  "CMakeFiles/pdm_exec.dir/result_set.cc.o.d"
  "libpdm_exec.a"
  "libpdm_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdm_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
