# Empty dependencies file for pdm_client.
# This may be replaced when dependencies are built.
