file(REMOVE_RECURSE
  "libpdm_client.a"
)
