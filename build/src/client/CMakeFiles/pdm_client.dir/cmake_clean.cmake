file(REMOVE_RECURSE
  "CMakeFiles/pdm_client.dir/checkout.cc.o"
  "CMakeFiles/pdm_client.dir/checkout.cc.o.d"
  "CMakeFiles/pdm_client.dir/connection.cc.o"
  "CMakeFiles/pdm_client.dir/connection.cc.o.d"
  "CMakeFiles/pdm_client.dir/experiment.cc.o"
  "CMakeFiles/pdm_client.dir/experiment.cc.o.d"
  "CMakeFiles/pdm_client.dir/rule_eval.cc.o"
  "CMakeFiles/pdm_client.dir/rule_eval.cc.o.d"
  "CMakeFiles/pdm_client.dir/strategies.cc.o"
  "CMakeFiles/pdm_client.dir/strategies.cc.o.d"
  "libpdm_client.a"
  "libpdm_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdm_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
