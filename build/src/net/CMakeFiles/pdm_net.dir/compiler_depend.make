# Empty compiler generated dependencies file for pdm_net.
# This may be replaced when dependencies are built.
