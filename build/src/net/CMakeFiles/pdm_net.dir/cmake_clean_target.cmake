file(REMOVE_RECURSE
  "libpdm_net.a"
)
