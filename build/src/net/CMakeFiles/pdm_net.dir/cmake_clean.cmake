file(REMOVE_RECURSE
  "CMakeFiles/pdm_net.dir/wan_model.cc.o"
  "CMakeFiles/pdm_net.dir/wan_model.cc.o.d"
  "libpdm_net.a"
  "libpdm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
