# Empty compiler generated dependencies file for pdm_engine.
# This may be replaced when dependencies are built.
