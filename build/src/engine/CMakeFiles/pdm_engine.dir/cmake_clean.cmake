file(REMOVE_RECURSE
  "CMakeFiles/pdm_engine.dir/database.cc.o"
  "CMakeFiles/pdm_engine.dir/database.cc.o.d"
  "libpdm_engine.a"
  "libpdm_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdm_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
