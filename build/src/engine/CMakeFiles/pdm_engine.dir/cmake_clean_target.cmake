file(REMOVE_RECURSE
  "libpdm_engine.a"
)
