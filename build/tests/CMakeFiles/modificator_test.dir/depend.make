# Empty dependencies file for modificator_test.
# This may be replaced when dependencies are built.
