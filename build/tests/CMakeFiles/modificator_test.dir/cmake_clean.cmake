file(REMOVE_RECURSE
  "CMakeFiles/modificator_test.dir/modificator_test.cc.o"
  "CMakeFiles/modificator_test.dir/modificator_test.cc.o.d"
  "modificator_test"
  "modificator_test.pdb"
  "modificator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modificator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
