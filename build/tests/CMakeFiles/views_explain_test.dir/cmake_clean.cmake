file(REMOVE_RECURSE
  "CMakeFiles/views_explain_test.dir/views_explain_test.cc.o"
  "CMakeFiles/views_explain_test.dir/views_explain_test.cc.o.d"
  "views_explain_test"
  "views_explain_test.pdb"
  "views_explain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/views_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
