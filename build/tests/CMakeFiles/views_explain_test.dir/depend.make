# Empty dependencies file for views_explain_test.
# This may be replaced when dependencies are built.
